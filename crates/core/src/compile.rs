//! The compiled execution backend: rule programs lowered to
//! closure-threaded native code.
//!
//! The event-driven Vm ([`crate::exec::Vm`]) still pays per-instruction
//! costs on every rule firing: an opcode dispatch, program-counter
//! bookkeeping, and a heap-allocated value stack that every operand is
//! copied through (plus a fresh argument `Vec` per method call). This
//! module removes all of that with a one-time lowering pass: each guard
//! and rule body is compiled — straight from the (already lifted and
//! sequentialized) AST, so control flow stays structured — into a tree of
//! monomorphized Rust closures threaded into a single callable. Operands
//! flow through machine registers as closure return values, let-bound
//! locals become pre-resolved slots in a reusable [`NativeFrame`],
//! `Index`/`Field` on a let-bound base are fused into direct slot
//! accesses (no base clone), and method-call argument lists of arity
//! ≤ 2 live on the stack.
//!
//! **Cost parity is load-bearing.** Every closure charges exactly the ops
//! the AST interpreter ([`crate::exec::eval`]/[`crate::exec::exec`]) and
//! the Vm charge, at the same evaluation points, into the same [`Cost`]
//! ledgers (via `NativePort`, a closed, fully monomorphized port enum —
//! a `&mut dyn PrimPort` here would pay a virtual call per charge, which
//! measurably loses to the stack machine). Modeled
//! `cpu_cycles`/`fpga_cycles` are therefore bit-identical across all
//! three executors (the cycle-regression pins and the fuzz farm's sixth
//! leg both assert this). Only wall-clock time changes.
//!
//! Coverage is identical to the stack-machine compiler
//! ([`crate::xform::compile_expr`]/[`crate::xform::compile_action`]):
//! lowering returns `None` for `localGuard` bodies, unelaborated `Named`
//! targets, and unbound variables, and the schedulers fall back to the
//! AST interpreter for exactly those rules in every backend.
//!
//! ## Word-level lowering
//!
//! On a flat-arena store ([`Store::new_flat`]) a second lowering pass
//! removes the last source of boxed-`Value` traffic: the primitive-port
//! boundary. Each rule is lowered twice — once to the boxed closures
//! above (used verbatim on tree-backed stores), and once with a
//! [`Design`]-derived layout table that lets scalar subexpressions flow
//! as packed `u64` words end-to-end. Word-typed register reads, FIFO
//! heads, and regfile cells come through
//! [`Store::call_value_word_at`]/[`Store::call_action_word_at`] without
//! ever materializing a `Value`; field names and element offsets of
//! packed aggregates are resolved to bit offsets at lower time; and
//! `MkVec`/`MkStruct` arguments to `enq`/register writes are packed
//! directly into frame scratch words instead of building `Vec`/`Struct`
//! heap values. Guard probes lowered entirely to the word domain return
//! a bare `u64` verdict. Cost metering is bit-identical to the boxed
//! path: every word closure charges the same [`Cost`] deltas at the
//! same evaluation points, and any expression the word pass cannot
//! prove chargeable-identically falls back to the boxed closure.

use crate::ast::{Action, Expr, PrimId, PrimMethod, Target};
use crate::design::Design;
use crate::error::{ExecError, ExecResult};
use crate::exec::RuleOutcome;
use crate::prim::PrimSpec;
use crate::store::{Cost, ShadowPolicy, Store, Txn};
use crate::types::{Layout, LayoutKind};
use crate::value::{
    copy_bits, copy_bits_within, get_bits, mask, put_bits, sign_extend, BinOp, UnOp, Value,
};
use crate::xform::RulePlan;
use std::fmt;
use std::sync::Arc;

/// Scratch space for compiled rules: the local-slot file. One frame is
/// kept per scheduler and reused across every guard and body execution;
/// it grows to the largest program's footprint once and is never cleared
/// (every slot is stored by its `let` before any load can see it).
#[derive(Debug, Default)]
pub struct NativeFrame {
    slots: Vec<Value>,
    /// Word scratch for the flat lowering: unboxed scalar locals (one
    /// word each) and bit-packed aggregate regions, addressed by bit
    /// offset. Grows like `slots` and is likewise never cleared.
    words: Vec<u64>,
}

impl NativeFrame {
    /// A fresh frame with no slots.
    pub fn new() -> NativeFrame {
        NativeFrame::default()
    }

    #[inline]
    fn ensure(&mut self, n: usize) {
        if self.slots.len() < n {
            self.slots.resize(n, Value::Bool(false));
        }
    }

    #[inline]
    fn ensure_words(&mut self, n: usize) {
        if self.words.len() < n {
            self.words.resize(n, 0);
        }
    }
}

type ExprThunk =
    Box<dyn for<'s> Fn(&mut NativePort<'s>, &mut NativeFrame) -> ExecResult<Value> + Send + Sync>;
type ActThunk =
    Box<dyn for<'s> Fn(&mut NativePort<'s>, &mut NativeFrame) -> ExecResult<()> + Send + Sync>;
type WordThunk =
    Box<dyn for<'s> Fn(&mut NativePort<'s>, &mut NativeFrame) -> ExecResult<u64> + Send + Sync>;
type PlaceThunk =
    Box<dyn for<'s> Fn(&mut NativePort<'s>, &mut NativeFrame) -> ExecResult<Place> + Send + Sync>;

/// The scalar type of an unboxed word in the flat lowering. Mirrors the
/// three leaf [`Value`] variants; the packed representation is always
/// the value's `write_flat` bit pattern in the low `width()` bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WordTy {
    Bool,
    Bits(u32),
    Int(u32),
}

impl WordTy {
    #[inline]
    fn width(self) -> u32 {
        match self {
            WordTy::Bool => 1,
            WordTy::Bits(w) | WordTy::Int(w) => w,
        }
    }

    fn of_layout(l: &Layout) -> Option<WordTy> {
        match l.kind {
            LayoutKind::Bool => Some(WordTy::Bool),
            LayoutKind::Bits(w) if w <= 64 => Some(WordTy::Bits(w)),
            LayoutKind::Int(w) if w <= 64 => Some(WordTy::Int(w)),
            _ => None,
        }
    }

    /// A constant's word type and packed bits, for scalar constants.
    fn of_value(v: &Value) -> Option<(WordTy, u64)> {
        match v {
            Value::Bool(b) => Some((WordTy::Bool, *b as u64)),
            Value::Bits { width, bits } => Some((WordTy::Bits(*width), *bits)),
            Value::Int { width, val } => Some((WordTy::Int(*width), (*val as u64) & mask(*width))),
            _ => None,
        }
    }

    /// The `as_int` view of a packed word: raw for `Bool`/`Bits`,
    /// sign-extended for `Int` — exactly [`Value::as_int`] on the
    /// materialized value.
    #[inline]
    fn view_int(self, w: u64) -> i64 {
        match self {
            WordTy::Bool | WordTy::Bits(_) => w as i64,
            WordTy::Int(wd) => sign_extend(wd, w),
        }
    }

    /// Rebuilds the canonical boxed value. Charge-free (scalar `Value`s
    /// are inline enum variants, no heap).
    #[inline]
    fn materialize(self, w: u64) -> Value {
        match self {
            WordTy::Bool => Value::Bool(w != 0),
            WordTy::Bits(wd) => Value::Bits { width: wd, bits: w },
            WordTy::Int(wd) => Value::Int {
                width: wd,
                val: sign_extend(wd, w),
            },
        }
    }
}

/// Lower-time knowledge about one primitive, derived from the
/// [`Design`]: what word-level methods it supports and the packed
/// layout of its element type.
struct PrimInfo {
    kind: PrimKindInfo,
    layout: Layout,
}

/// The word-relevant primitive kind (mirrors `flat.rs`'s arena mapping:
/// synchronizers flatten to FIFOs, sources/sinks stay dynamic).
#[derive(Clone, Copy)]
enum PrimKindInfo {
    Reg,
    Fifo,
    RegFile { size: usize },
    Dyn,
}

/// Builds the per-primitive layout table the flat lowering pass keys on.
fn prim_infos(design: &Design) -> Vec<PrimInfo> {
    design
        .prims
        .iter()
        .map(|p| {
            let kind = match &p.spec {
                PrimSpec::Reg { .. } => PrimKindInfo::Reg,
                PrimSpec::Fifo { .. } | PrimSpec::Sync { .. } => PrimKindInfo::Fifo,
                PrimSpec::RegFile { size, .. } => PrimKindInfo::RegFile { size: *size },
                PrimSpec::Source { .. } | PrimSpec::Sink { .. } => PrimKindInfo::Dyn,
            };
            PrimInfo {
                kind,
                layout: Layout::of(&p.spec.value_type()),
            }
        })
        .collect()
}

/// A resolved packed location: frame scratch words or a primitive
/// element, plus a bit offset accumulated from lower-time field offsets
/// and runtime element indices.
#[derive(Clone, Copy)]
struct Place {
    kind: PlaceKind,
    off: u32,
}

#[derive(Clone, Copy)]
enum PlaceKind {
    /// Bit `bit` of the frame's word scratch.
    Frame { bit: usize },
    /// The element addressed by `(id, m, cell)` through the word port.
    Prim {
        id: PrimId,
        m: PrimMethod,
        cell: usize,
    },
}

#[inline]
fn read_place_word(
    p: &mut NativePort<'_>,
    f: &NativeFrame,
    pl: Place,
    width: u32,
) -> ExecResult<u64> {
    match pl.kind {
        PlaceKind::Frame { bit } => Ok(get_bits(&f.words, bit + pl.off as usize, width)),
        PlaceKind::Prim { id, m, cell } => p.peek_word(id, m, cell, pl.off, width),
    }
}

#[inline]
fn copy_place_packed(
    p: &mut NativePort<'_>,
    f: &mut NativeFrame,
    pl: Place,
    width: u32,
    dst_bit: usize,
) -> ExecResult<()> {
    match pl.kind {
        PlaceKind::Frame { bit } => {
            copy_bits_within(&mut f.words, bit + pl.off as usize, dst_bit, width);
            Ok(())
        }
        PlaceKind::Prim { id, m, cell } => {
            p.peek_packed(id, m, cell, pl.off, width, &mut f.words, dst_bit)
        }
    }
}

/// How a let-bound name is stored in the frame: a boxed [`Value`] slot,
/// an unboxed word, or a bit-packed aggregate region.
#[derive(Clone)]
enum Binding {
    Boxed(usize),
    Word { slot: usize, ty: WordTy },
    Packed { base: usize, layout: Arc<Layout> },
}

/// Where a compiled closure reads and writes primitives. A closed enum
/// rather than `&mut dyn PrimPort`: the Vm is monomorphized over its
/// port, so matching it means the per-node cost charges and method
/// calls here must also compile to direct code — a vtable call per
/// `ops += 1` measurably loses to the stack machine.
pub(crate) enum NativePort<'s> {
    /// Transactional rule body.
    Txn(Txn<'s>),
    /// Read-only guard probe over the committed store.
    Ro {
        /// The committed store.
        store: &'s Store,
        /// Ledger for the probe's reads and ops.
        cost: &'s mut Cost,
    },
    /// Fully guard-lifted body writing straight to the committed store.
    InPlace {
        /// The committed store.
        store: &'s mut Store,
        /// Ledger for the run.
        cost: Cost,
    },
}

impl NativePort<'_> {
    #[inline]
    fn cost(&mut self) -> &mut Cost {
        match self {
            NativePort::Txn(t) => &mut t.cost,
            NativePort::Ro { cost, .. } => cost,
            NativePort::InPlace { cost, .. } => cost,
        }
    }

    #[inline]
    fn call_value(&mut self, id: PrimId, m: PrimMethod, args: &[Value]) -> ExecResult<Value> {
        match self {
            NativePort::Txn(t) => t.call_value(id, m, args),
            NativePort::Ro { store, cost } => {
                cost.reads += 1;
                store.call_value_at(id, m, args)
            }
            NativePort::InPlace { store, cost } => {
                cost.reads += 1;
                store.call_value_at(id, m, args)
            }
        }
    }

    #[inline]
    fn call_action(&mut self, id: PrimId, m: PrimMethod, args: &[Value]) -> ExecResult<()> {
        match self {
            NativePort::Txn(t) => t.call_action(id, m, args),
            NativePort::Ro { .. } => Err(ExecError::Malformed(format!(
                "action method `{m:?}` called in a guard expression"
            ))),
            NativePort::InPlace { store, cost } => {
                cost.writes += 1;
                store.call_action_at(id, m, args)
            }
        }
    }

    /// Charges one read without performing one — used when a word place
    /// is resolved first and its packed bits are fetched later, so the
    /// charge lands where the boxed path's `call_value` would put it.
    #[inline]
    fn charge_read(&mut self) {
        self.cost().reads += 1;
    }

    /// Word-level `call_value`: one read charged, the element's packed
    /// bits returned without materializing a [`Value`].
    #[inline]
    fn call_value_word(
        &mut self,
        id: PrimId,
        m: PrimMethod,
        cell: usize,
        off: u32,
        width: u32,
    ) -> ExecResult<u64> {
        match self {
            NativePort::Txn(t) => t.call_value_word(id, m, cell, off, width),
            NativePort::Ro { store, cost } => {
                cost.reads += 1;
                store.call_value_word_at(id, m, cell, off, width)
            }
            NativePort::InPlace { store, cost } => {
                cost.reads += 1;
                store.call_value_word_at(id, m, cell, off, width)
            }
        }
    }

    /// Uncharged word read (shadow-aware under a transaction): the
    /// caller has already charged the access via [`Self::charge_read`].
    #[inline]
    fn peek_word(
        &self,
        id: PrimId,
        m: PrimMethod,
        cell: usize,
        off: u32,
        width: u32,
    ) -> ExecResult<u64> {
        match self {
            NativePort::Txn(t) => t.peek_value_word(id, m, cell, off, width),
            NativePort::Ro { store, .. } => store.call_value_word_at(id, m, cell, off, width),
            NativePort::InPlace { store, .. } => store.call_value_word_at(id, m, cell, off, width),
        }
    }

    /// Uncharged packed-aggregate read into frame scratch; same charging
    /// contract as [`Self::peek_word`].
    #[inline]
    #[allow(clippy::too_many_arguments)]
    fn peek_packed(
        &self,
        id: PrimId,
        m: PrimMethod,
        cell: usize,
        off: u32,
        width: u32,
        dst: &mut [u64],
        dst_bit: usize,
    ) -> ExecResult<()> {
        match self {
            NativePort::Txn(t) => t.peek_value_packed(id, m, cell, off, width, dst, dst_bit),
            NativePort::Ro { store, .. } => {
                store.call_value_packed_at(id, m, cell, off, width, dst, dst_bit)
            }
            NativePort::InPlace { store, .. } => {
                store.call_value_packed_at(id, m, cell, off, width, dst, dst_bit)
            }
        }
    }

    /// Word-level `call_action`: one write charged, the payload an
    /// unboxed word. `cell` is signed so regfile index errors keep the
    /// boxed error order (see [`Store::call_action_word_at`]).
    #[inline]
    fn call_action_word(&mut self, id: PrimId, m: PrimMethod, cell: i64, w: u64) -> ExecResult<()> {
        match self {
            NativePort::Txn(t) => t.call_action_word(id, m, cell, w),
            NativePort::Ro { .. } => Err(ExecError::Malformed(format!(
                "action method `{m:?}` called in a guard expression"
            ))),
            NativePort::InPlace { store, cost } => {
                cost.writes += 1;
                store.call_action_word_at(id, m, cell, w)
            }
        }
    }

    /// Packed-aggregate `call_action` from frame scratch bits.
    #[inline]
    fn call_action_packed(
        &mut self,
        id: PrimId,
        m: PrimMethod,
        cell: i64,
        src: &[u64],
        src_bit: usize,
    ) -> ExecResult<()> {
        match self {
            NativePort::Txn(t) => t.call_action_packed(id, m, cell, src, src_bit),
            NativePort::Ro { .. } => Err(ExecError::Malformed(format!(
                "action method `{m:?}` called in a guard expression"
            ))),
            NativePort::InPlace { store, cost } => {
                cost.writes += 1;
                store.call_action_packed_at(id, m, cell, src, src_bit)
            }
        }
    }

    #[inline]
    fn policy(&self) -> ShadowPolicy {
        match self {
            NativePort::Txn(t) => t.policy,
            NativePort::Ro { .. } => ShadowPolicy::Partial,
            NativePort::InPlace { .. } => ShadowPolicy::InPlace,
        }
    }

    #[inline]
    fn loop_bound(&self) -> u64 {
        match self {
            NativePort::Txn(t) => t.max_loop_iters,
            _ => 1_000_000,
        }
    }

    fn par_start(&mut self) -> ExecResult<()> {
        match self {
            NativePort::Txn(t) => t.par_start(),
            NativePort::Ro { .. } => Err(ExecError::Malformed(
                "parallel composition reached a port without transaction frames".into(),
            )),
            NativePort::InPlace { .. } => Err(ExecError::Malformed(
                "parallel composition reached an in-place (guard-lifted) execution".into(),
            )),
        }
    }

    fn par_mid(&mut self) {
        if let NativePort::Txn(t) = self {
            t.par_mid();
        }
    }

    fn par_end(&mut self) -> ExecResult<()> {
        match self {
            NativePort::Txn(t) => t.par_end(),
            _ => Ok(()),
        }
    }
}

/// An expression (typically a lifted guard) lowered to a native
/// closure. When compiled against a [`Design`] (via [`compile_plan`]),
/// it additionally carries a flat-store variant whose scalar traffic
/// stays in unboxed words; the executor picks it iff the store is
/// arena-backed.
pub struct CompiledExpr {
    thunk: ExprThunk,
    /// Local-slot footprint.
    pub slots: usize,
    flat: Option<FlatExpr>,
}

/// The flat-store lowering of a guard expression.
struct FlatExpr {
    eval: FlatEval,
    slots: usize,
    words: usize,
}

/// A fully word-lowered guard returns a bare `u64` verdict (no `Value`
/// is ever materialized); anything else falls back to a boxed closure
/// whose subexpressions may still take the word path internally.
enum FlatEval {
    Word(WordThunk),
    Boxed(ExprThunk),
}

/// The flat-store lowering of a rule body.
struct FlatAction {
    thunk: ActThunk,
    slots: usize,
    words: usize,
}

impl fmt::Debug for CompiledExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CompiledExpr")
            .field("slots", &self.slots)
            .finish_non_exhaustive()
    }
}

/// A rule body lowered to a native closure, optionally with a
/// flat-store word-path variant (see [`CompiledExpr`]).
pub struct CompiledAction {
    thunk: ActThunk,
    /// Local-slot footprint.
    pub slots: usize,
    flat: Option<FlatAction>,
}

impl fmt::Debug for CompiledAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CompiledAction")
            .field("slots", &self.slots)
            .finish_non_exhaustive()
    }
}

/// A [`RulePlan`] lowered to native closures. `None` components fall back
/// to the AST interpreter, mirroring the stack-machine fallback exactly.
#[derive(Debug, Default)]
pub struct NativeRule {
    /// The lifted guard, when present and compilable.
    pub guard: Option<CompiledExpr>,
    /// The rule body, when compilable.
    pub body: Option<CompiledAction>,
}

/// Compile-time lexical scope: let-bound names resolved to bindings.
/// `prims` is `Some` for the flat (word-lowering) pass and `None` for
/// the boxed pass, which then behaves exactly like the pre-word
/// backend: every binding is boxed and every port call carries a
/// [`Value`].
struct Lowerer<'d> {
    scope: Vec<(String, Binding)>,
    slots: usize,
    /// Word-scratch footprint (in 64-bit words) for the flat pass.
    words: usize,
    prims: Option<&'d [PrimInfo]>,
}

impl<'d> Lowerer<'d> {
    fn new(prims: Option<&'d [PrimInfo]>) -> Lowerer<'d> {
        Lowerer {
            scope: Vec::new(),
            slots: 0,
            words: 0,
            prims,
        }
    }

    fn lookup(&self, n: &str) -> Option<Binding> {
        self.scope
            .iter()
            .rev()
            .find(|(name, _)| name == n)
            .map(|(_, b)| b.clone())
    }

    fn info(&self, id: PrimId) -> Option<&'d PrimInfo> {
        self.prims.and_then(|ps| ps.get(id.0))
    }

    /// Reserves a contiguous word-scratch region for `bits` packed bits
    /// and returns its base bit offset.
    fn alloc_region(&mut self, bits: u32) -> usize {
        let at = self.words;
        self.words += (bits as usize).div_ceil(64).max(1);
        at * 64
    }

    /// Lowers an expression. In the flat pass, scalar expressions take
    /// the word path and are rematerialized only at the boxed boundary;
    /// evaluation order and cost-charge points are identical either way.
    fn expr(&mut self, e: &Expr) -> Option<ExprThunk> {
        if self.prims.is_some() {
            if let Some((wt, ty)) = self.word_expr(e) {
                return Some(Box::new(move |p, f| Ok(ty.materialize(wt(p, f)?))));
            }
        }
        self.expr_boxed(e)
    }

    /// The boxed lowering (the only one on tree stores). Evaluation
    /// order and cost-charge points mirror the AST interpreter
    /// instruction for instruction.
    fn expr_boxed(&mut self, e: &Expr) -> Option<ExprThunk> {
        Some(match e {
            Expr::Const(v) => {
                let v = v.clone();
                Box::new(move |_, _| Ok(v.clone()))
            }
            Expr::Var(n) => match self.lookup(n)? {
                Binding::Boxed(s) => Box::new(move |_, f| Ok(f.slots[s].clone())),
                Binding::Word { slot, ty } => {
                    Box::new(move |_, f| Ok(ty.materialize(f.words[slot])))
                }
                Binding::Packed { base, layout } => {
                    Box::new(move |_, f| Ok(Value::read_flat(&layout, &f.words, base)))
                }
            },
            Expr::Un(op, a) => {
                let a = self.expr(a)?;
                let op = *op;
                Box::new(move |p, f| {
                    let va = a(p, f)?;
                    p.cost().ops += 1;
                    Value::un_op(op, &va)
                })
            }
            Expr::Bin(op, a, b) => {
                let a = self.expr(a)?;
                let b = self.expr(b)?;
                let op = *op;
                let charge = op.cpu_cost();
                Box::new(move |p, f| {
                    let va = a(p, f)?;
                    let vb = b(p, f)?;
                    p.cost().ops += charge;
                    Value::bin_op(op, &va, &vb)
                })
            }
            Expr::Cond(c, t, fl) => {
                let c = self.expr(c)?;
                let t = self.expr(t)?;
                let fl = self.expr(fl)?;
                Box::new(move |p, f| {
                    let vc = c(p, f)?.as_bool()?;
                    p.cost().ops += 1;
                    if vc {
                        t(p, f)
                    } else {
                        fl(p, f)
                    }
                })
            }
            Expr::When(v, g) => {
                // The guard is evaluated first, like the interpreter.
                let v = self.expr(v)?;
                let g = self.expr(g)?;
                Box::new(move |p, f| {
                    let gv = g(p, f)?.as_bool()?;
                    p.cost().ops += 1;
                    if gv {
                        v(p, f)
                    } else {
                        Err(ExecError::GuardFail)
                    }
                })
            }
            Expr::Let(n, v, b) => {
                let (vt, binding) = self.bind_value(v)?;
                self.scope.push((n.clone(), binding));
                let b = self.expr(b);
                self.scope.pop();
                let b = b?;
                Box::new(move |p, f| {
                    vt(p, f)?;
                    b(p, f)
                })
            }
            Expr::Call(t, args) => {
                let (id, m) = prim_target(t)?;
                return self.call_value(id, m, args);
            }
            Expr::Index(v, i) => {
                // Indexing a let-bound vector is fused into a direct slot
                // access, like the Vm's `LoadIndex`: the element is copied
                // straight out of the slot without cloning the vector.
                // `Var` evaluation is infallible, so hoisting it past the
                // index expression cannot reorder failures; charged cost
                // is identical.
                if let Expr::Var(n) = v.as_ref() {
                    let i = self.expr(i)?;
                    match self.lookup(n)? {
                        Binding::Boxed(s) => Box::new(move |p, f| {
                            let iv = i(p, f)?.as_index()?;
                            p.cost().ops += 1;
                            f.slots[s].index(iv).cloned()
                        }),
                        // A word binding is a scalar: indexing it is a
                        // type error. Materialize for the identical
                        // error message.
                        Binding::Word { slot, ty } => Box::new(move |p, f| {
                            let iv = i(p, f)?.as_index()?;
                            p.cost().ops += 1;
                            ty.materialize(f.words[slot]).index(iv).cloned()
                        }),
                        Binding::Packed { base, layout } => match layout.kind.clone() {
                            LayoutKind::Vector { len, stride, elem } => Box::new(move |p, f| {
                                let iv = i(p, f)?.as_index()?;
                                p.cost().ops += 1;
                                if iv >= len {
                                    return Err(ExecError::Bounds(format!(
                                        "index {iv} out of {len}"
                                    )));
                                }
                                Ok(Value::read_flat(
                                    &elem,
                                    &f.words,
                                    base + iv * stride as usize,
                                ))
                            }),
                            _ => Box::new(move |p, f| {
                                let iv = i(p, f)?.as_index()?;
                                p.cost().ops += 1;
                                Value::read_flat(&layout, &f.words, base).index(iv).cloned()
                            }),
                        },
                    }
                } else {
                    let v = self.expr(v)?;
                    let i = self.expr(i)?;
                    Box::new(move |p, f| {
                        let vv = v(p, f)?;
                        let iv = i(p, f)?.as_index()?;
                        p.cost().ops += 1;
                        vv.index(iv).cloned()
                    })
                }
            }
            Expr::Field(v, name) => {
                // Field of a let-bound struct: fused like the Vm's
                // `LoadField`.
                if let Expr::Var(n) = v.as_ref() {
                    let name = name.clone();
                    match self.lookup(n)? {
                        Binding::Boxed(s) => Box::new(move |p, f| {
                            p.cost().ops += 1;
                            f.slots[s].field(&name).cloned()
                        }),
                        Binding::Word { slot, ty } => Box::new(move |p, f| {
                            p.cost().ops += 1;
                            ty.materialize(f.words[slot]).field(&name).cloned()
                        }),
                        Binding::Packed { base, layout } => {
                            // Field offsets resolve at lower time; a
                            // missing field materializes for the boxed
                            // error message.
                            let found = match &layout.kind {
                                LayoutKind::Struct { fields } => fields
                                    .iter()
                                    .find(|fl| fl.name == name)
                                    .map(|fl| (fl.offset as usize, fl.layout.clone())),
                                _ => None,
                            };
                            match found {
                                Some((foff, flay)) => Box::new(move |p, f| {
                                    p.cost().ops += 1;
                                    Ok(Value::read_flat(&flay, &f.words, base + foff))
                                }),
                                None => Box::new(move |p, f| {
                                    p.cost().ops += 1;
                                    Value::read_flat(&layout, &f.words, base)
                                        .field(&name)
                                        .cloned()
                                }),
                            }
                        }
                    }
                } else {
                    let v = self.expr(v)?;
                    let name = name.clone();
                    Box::new(move |p, f| {
                        let vv = v(p, f)?;
                        p.cost().ops += 1;
                        vv.field(&name).cloned()
                    })
                }
            }
            Expr::MkVec(es) => {
                let ts = self.exprs(es)?;
                let n = ts.len() as u64;
                Box::new(move |p, f| {
                    let mut out = Vec::with_capacity(ts.len());
                    for t in &ts {
                        out.push(t(p, f)?);
                    }
                    p.cost().ops += n;
                    Ok(Value::Vec(out))
                })
            }
            Expr::MkStruct(fs) => {
                let names: Vec<String> = fs.iter().map(|(n, _)| n.clone()).collect();
                let ts = self.exprs(&fs.iter().map(|(_, e)| e.clone()).collect::<Vec<_>>())?;
                let n = ts.len() as u64;
                Box::new(move |p, f| {
                    let mut out = Vec::with_capacity(ts.len());
                    for (name, t) in names.iter().zip(&ts) {
                        out.push((name.clone(), t(p, f)?));
                    }
                    p.cost().ops += n;
                    Ok(Value::Struct(out))
                })
            }
            Expr::UpdateIndex(v, i, x) => {
                let v = self.expr(v)?;
                let i = self.expr(i)?;
                let x = self.expr(x)?;
                Box::new(move |p, f| {
                    let vv = v(p, f)?;
                    let iv = i(p, f)?.as_index()?;
                    let xv = x(p, f)?;
                    // Functional update costs a copy of the vector.
                    p.cost().ops += vv.as_vec().map(|s| s.len() as u64).unwrap_or(1);
                    vv.update_index(iv, xv)
                })
            }
            Expr::UpdateField(v, name, x) => {
                let v = self.expr(v)?;
                let x = self.expr(x)?;
                let name = name.clone();
                Box::new(move |p, f| {
                    let vv = v(p, f)?;
                    let xv = x(p, f)?;
                    p.cost().ops += 1;
                    vv.update_field(&name, xv)
                })
            }
        })
    }

    fn exprs(&mut self, es: &[Expr]) -> Option<Vec<ExprThunk>> {
        es.iter().map(|e| self.expr(e)).collect()
    }

    /// Lowers a let-bound value to the cheapest binding it supports:
    /// an unboxed word, a packed aggregate region (copied bitwise from
    /// its place, no `Value` built), or a boxed slot. The returned
    /// thunk performs the store; charges are exactly the value
    /// expression's own (the slot store itself is free, as in the
    /// interpreter).
    fn bind_value(&mut self, v: &Expr) -> Option<(ActThunk, Binding)> {
        if self.prims.is_some() {
            if let Some((wt, ty)) = self.word_expr(v) {
                let slot = self.words;
                self.words += 1;
                let t: ActThunk = Box::new(move |p, f| {
                    f.words[slot] = wt(p, f)?;
                    Ok(())
                });
                return Some((t, Binding::Word { slot, ty }));
            }
            if let Some((pt, lay)) = self.agg_place(v) {
                if matches!(
                    lay.kind,
                    LayoutKind::Vector { .. } | LayoutKind::Struct { .. }
                ) {
                    let base = self.alloc_region(lay.width);
                    let width = lay.width;
                    let t: ActThunk = Box::new(move |p, f| {
                        let pl = pt(p, f)?;
                        copy_place_packed(p, f, pl, width, base)
                    });
                    return Some((
                        t,
                        Binding::Packed {
                            base,
                            layout: Arc::new(lay),
                        },
                    ));
                }
            }
        }
        let v = self.expr(v)?;
        let slot = self.slots;
        self.slots += 1;
        let t: ActThunk = Box::new(move |p, f| {
            f.slots[slot] = v(p, f)?;
            Ok(())
        });
        Some((t, Binding::Boxed(slot)))
    }

    /// Lowers a scalar expression to an unboxed-word closure, or `None`
    /// when the expression (or its type) is not provably word-safe —
    /// the caller then uses the boxed lowering, which charges
    /// identically. Only called in the flat pass.
    ///
    /// Every arm's packed result equals the `write_flat` bits of the
    /// boxed value the interpreter would produce, and every charge
    /// lands at the same point ([`Value::bin_op`]'s division errors
    /// included).
    fn word_expr(&mut self, e: &Expr) -> Option<(WordThunk, WordTy)> {
        self.prims?;
        Some(match e {
            Expr::Const(v) => {
                let (ty, w) = WordTy::of_value(v)?;
                (Box::new(move |_, _| Ok(w)), ty)
            }
            Expr::Var(n) => match self.lookup(n)? {
                Binding::Word { slot, ty } => (Box::new(move |_, f| Ok(f.words[slot])), ty),
                _ => return None,
            },
            Expr::Un(op, a) => {
                let (at, aty) = self.word_expr(a)?;
                let wd = aty.width();
                let m = mask(wd);
                let apply: fn(u64, u64) -> u64 = match (*op, aty) {
                    (UnOp::Not, WordTy::Bool) => |w, _| w ^ 1,
                    (UnOp::Neg, WordTy::Int(_)) | (UnOp::Neg, WordTy::Bits(_)) => {
                        |w, m| w.wrapping_neg() & m
                    }
                    (UnOp::Inv, WordTy::Int(_)) | (UnOp::Inv, WordTy::Bits(_)) => |w, m| !w & m,
                    _ => return None,
                };
                (
                    Box::new(move |p, f| {
                        let w = at(p, f)?;
                        p.cost().ops += 1;
                        Ok(apply(w, m))
                    }),
                    aty,
                )
            }
            Expr::Bin(op, a, b) => {
                let (at, aty) = self.word_expr(a)?;
                let (bt, bty) = self.word_expr(b)?;
                let op = *op;
                let charge = op.cpu_cost();
                // Boolean logic stays in the 1-bit domain (mirrors the
                // `(Bool, Bool)` branch of `Value::bin_op`).
                if (aty, bty) == (WordTy::Bool, WordTy::Bool) {
                    let apply: fn(u64, u64) -> u64 = match op {
                        BinOp::And => |x, y| x & y,
                        BinOp::Or => |x, y| x | y,
                        BinOp::Xor | BinOp::Ne => |x, y| x ^ y,
                        BinOp::Eq => |x, y| (x == y) as u64,
                        _ => return None,
                    };
                    return Some((
                        Box::new(move |p, f| {
                            let x = at(p, f)?;
                            let y = bt(p, f)?;
                            p.cost().ops += charge;
                            Ok(apply(x, y))
                        }),
                        WordTy::Bool,
                    ));
                }
                if op.is_comparison() {
                    return Some((
                        Box::new(move |p, f| {
                            let x = aty.view_int(at(p, f)?);
                            let y = bty.view_int(bt(p, f)?);
                            p.cost().ops += charge;
                            let r = match op {
                                BinOp::Eq => x == y,
                                BinOp::Ne => x != y,
                                BinOp::Lt => x < y,
                                BinOp::Le => x <= y,
                                BinOp::Gt => x > y,
                                BinOp::Ge => x >= y,
                                _ => unreachable!(),
                            };
                            Ok(r as u64)
                        }),
                        WordTy::Bool,
                    ));
                }
                // Arithmetic wraps at the left operand's width; a Bool
                // left operand promotes to Int(64), like `as_int`.
                let (width, rty) = match aty {
                    WordTy::Bool => (64, WordTy::Int(64)),
                    WordTy::Bits(w) => (w, WordTy::Bits(w)),
                    WordTy::Int(w) => (w, WordTy::Int(w)),
                };
                let m = mask(width);
                (
                    Box::new(move |p, f| {
                        let x = aty.view_int(at(p, f)?);
                        let y = bty.view_int(bt(p, f)?);
                        p.cost().ops += charge;
                        let r: i64 = match op {
                            BinOp::Add => x.wrapping_add(y),
                            BinOp::Sub => x.wrapping_sub(y),
                            BinOp::Mul => x.wrapping_mul(y),
                            BinOp::FixMul(fx) => (((x as i128) * (y as i128)) >> fx) as i64,
                            BinOp::FixDiv(fx) => {
                                if y == 0 {
                                    return Err(ExecError::Malformed(
                                        "fixed-point division by zero".into(),
                                    ));
                                }
                                (((x as i128) << fx) / (y as i128)) as i64
                            }
                            BinOp::Div => {
                                if y == 0 {
                                    return Err(ExecError::Malformed("division by zero".into()));
                                }
                                x.wrapping_div(y)
                            }
                            BinOp::Rem => {
                                if y == 0 {
                                    return Err(ExecError::Malformed("remainder by zero".into()));
                                }
                                x.wrapping_rem(y)
                            }
                            BinOp::And => x & y,
                            BinOp::Or => x | y,
                            BinOp::Xor => x ^ y,
                            BinOp::Shl => x.wrapping_shl(y as u32 & 63),
                            BinOp::Shr => x.wrapping_shr(y as u32 & 63),
                            BinOp::Min => x.min(y),
                            BinOp::Max => x.max(y),
                            _ => unreachable!(),
                        };
                        Ok((r as u64) & m)
                    }),
                    rty,
                )
            }
            Expr::Cond(c, t, fl) => {
                let (ct, cty) = self.word_expr(c)?;
                if cty != WordTy::Bool {
                    return None;
                }
                let (tt, tty) = self.word_expr(t)?;
                let (ft, fty) = self.word_expr(fl)?;
                if tty != fty {
                    return None;
                }
                (
                    Box::new(move |p, f| {
                        let vc = ct(p, f)? != 0;
                        p.cost().ops += 1;
                        if vc {
                            tt(p, f)
                        } else {
                            ft(p, f)
                        }
                    }),
                    tty,
                )
            }
            Expr::When(v, g) => {
                let (vt, vty) = self.word_expr(v)?;
                let (gt, gty) = self.word_expr(g)?;
                if gty != WordTy::Bool {
                    return None;
                }
                (
                    Box::new(move |p, f| {
                        let gv = gt(p, f)? != 0;
                        p.cost().ops += 1;
                        if gv {
                            vt(p, f)
                        } else {
                            Err(ExecError::GuardFail)
                        }
                    }),
                    vty,
                )
            }
            Expr::Let(n, v, b) => {
                let (vt, binding) = self.bind_value(v)?;
                self.scope.push((n.clone(), binding));
                let b = self.word_expr(b);
                self.scope.pop();
                let (bt, bty) = b?;
                (
                    Box::new(move |p, f| {
                        vt(p, f)?;
                        bt(p, f)
                    }),
                    bty,
                )
            }
            Expr::Call(t, args) => {
                let (id, m) = prim_target(t)?;
                // FIFO occupancy probes are 1-bit words already.
                if matches!(m, PrimMethod::NotEmpty | PrimMethod::NotFull)
                    && args.is_empty()
                    && matches!(self.info(id)?.kind, PrimKindInfo::Fifo)
                {
                    return Some((
                        Box::new(move |p, _| p.call_value_word(id, m, 0, 0, 1)),
                        WordTy::Bool,
                    ));
                }
                return self.word_leaf(e);
            }
            Expr::Field(..) | Expr::Index(..) => return self.word_leaf(e),
            _ => return None,
        })
    }

    /// A scalar leaf read out of a resolved packed place: the place
    /// chain carries all charges, the final bit extraction is free
    /// (the boxed path's `call_value`/`field`/`index` have already
    /// been accounted by [`Lowerer::agg_place`]).
    fn word_leaf(&mut self, e: &Expr) -> Option<(WordThunk, WordTy)> {
        let (pt, lay) = self.agg_place(e)?;
        let ty = WordTy::of_layout(&lay)?;
        let width = ty.width();
        Some((
            Box::new(move |p, f| {
                let pl = pt(p, f)?;
                read_place_word(p, f, pl, width)
            }),
            ty,
        ))
    }

    /// Resolves an aggregate-access chain (`prim.read()`, `.field`,
    /// `[index]`) to a packed [`Place`] without materializing any
    /// intermediate `Value`. Field offsets fold at lower time; element
    /// strides multiply a runtime index. The place thunk carges exactly
    /// what the boxed chain charges, in the same order: the port read
    /// first (including the FIFO-empty guard failure, so later
    /// field/index ops are not charged on the failing path), then one
    /// op per field/index step.
    fn agg_place(&mut self, e: &Expr) -> Option<(PlaceThunk, Layout)> {
        match e {
            Expr::Var(n) => match self.lookup(n)? {
                Binding::Packed { base, layout } => Some((
                    Box::new(move |_, _| {
                        Ok(Place {
                            kind: PlaceKind::Frame { bit: base },
                            off: 0,
                        })
                    }),
                    (*layout).clone(),
                )),
                _ => None,
            },
            Expr::Call(t, args) => {
                let (id, m) = prim_target(t)?;
                let info = self.info(id)?;
                match (info.kind, m, args.as_slice()) {
                    (PrimKindInfo::Reg, PrimMethod::RegRead, []) => Some((
                        Box::new(move |p, _| {
                            p.charge_read();
                            Ok(Place {
                                kind: PlaceKind::Prim {
                                    id,
                                    m: PrimMethod::RegRead,
                                    cell: 0,
                                },
                                off: 0,
                            })
                        }),
                        info.layout.clone(),
                    )),
                    (PrimKindInfo::Fifo, PrimMethod::First, []) => Some((
                        Box::new(move |p, _| {
                            p.charge_read();
                            if p.peek_word(id, PrimMethod::NotEmpty, 0, 0, 1)? == 0 {
                                return Err(ExecError::GuardFail);
                            }
                            Ok(Place {
                                kind: PlaceKind::Prim {
                                    id,
                                    m: PrimMethod::First,
                                    cell: 0,
                                },
                                off: 0,
                            })
                        }),
                        info.layout.clone(),
                    )),
                    (PrimKindInfo::RegFile { size }, PrimMethod::Sub, [i]) => {
                        let layout = info.layout.clone();
                        let (it, ity) = self.word_expr(i)?;
                        Some((
                            Box::new(move |p, f| {
                                let iv = ity.view_int(it(p, f)?);
                                p.charge_read();
                                let cell = usize::try_from(iv).map_err(|_| {
                                    ExecError::Bounds(format!("negative index {iv}"))
                                })?;
                                if cell >= size {
                                    return Err(ExecError::Bounds(format!(
                                        "sub {cell} out of {size}"
                                    )));
                                }
                                Ok(Place {
                                    kind: PlaceKind::Prim {
                                        id,
                                        m: PrimMethod::Sub,
                                        cell,
                                    },
                                    off: 0,
                                })
                            }),
                            layout,
                        ))
                    }
                    _ => None,
                }
            }
            Expr::Field(v, name) => {
                let (inner, lay) = self.agg_place(v)?;
                let LayoutKind::Struct { fields } = &lay.kind else {
                    return None;
                };
                let fl = fields.iter().find(|fl| &fl.name == name)?;
                let foff = fl.offset;
                let flay = fl.layout.clone();
                Some((
                    Box::new(move |p, f| {
                        let mut pl = inner(p, f)?;
                        p.cost().ops += 1;
                        pl.off += foff;
                        Ok(pl)
                    }),
                    flay,
                ))
            }
            Expr::Index(v, i) => {
                let (inner, lay) = self.agg_place(v)?;
                let LayoutKind::Vector { len, stride, elem } = &lay.kind else {
                    return None;
                };
                let (len, stride, elay) = (*len, *stride, (**elem).clone());
                let (it, ity) = self.word_expr(i)?;
                Some((
                    Box::new(move |p, f| {
                        let mut pl = inner(p, f)?;
                        let iv = ity.view_int(it(p, f)?);
                        let idx = usize::try_from(iv)
                            .map_err(|_| ExecError::Bounds(format!("negative index {iv}")))?;
                        p.cost().ops += 1;
                        if idx >= len {
                            return Err(ExecError::Bounds(format!("index {idx} out of {len}")));
                        }
                        pl.off += idx as u32 * stride;
                        Ok(pl)
                    }),
                    elay,
                ))
            }
            _ => None,
        }
    }

    /// Lowers an expression to a closure that writes its packed bits
    /// into frame scratch at `dst` — the zero-`Value` path for
    /// aggregate method arguments. Returns the packed width. `MkVec`/
    /// `MkStruct` pack elements at their running offsets and charge
    /// one op per element after evaluation, like the boxed
    /// constructors; constants pre-pack at lower time.
    fn packed_expr(&mut self, e: &Expr, dst: usize) -> Option<(ActThunk, u32)> {
        if let Some((wt, ty)) = self.word_expr(e) {
            let width = ty.width();
            return Some((
                Box::new(move |p, f| {
                    let w = wt(p, f)?;
                    put_bits(&mut f.words, dst, width, w);
                    Ok(())
                }),
                width,
            ));
        }
        match e {
            Expr::Const(v) => {
                let lay = Layout::of(&v.type_of());
                let mut ws = vec![0u64; lay.words64().max(1)];
                v.write_flat(&mut ws, 0);
                let width = lay.width;
                Some((
                    Box::new(move |_, f| {
                        copy_bits(&ws, 0, &mut f.words, dst, width);
                        Ok(())
                    }),
                    width,
                ))
            }
            Expr::MkVec(es) => {
                let mut parts = Vec::with_capacity(es.len());
                let mut at = dst;
                for el in es {
                    let (t, w) = self.packed_expr(el, at)?;
                    at += w as usize;
                    parts.push(t);
                }
                let n = es.len() as u64;
                Some((
                    Box::new(move |p, f| {
                        for t in &parts {
                            t(p, f)?;
                        }
                        p.cost().ops += n;
                        Ok(())
                    }),
                    (at - dst) as u32,
                ))
            }
            Expr::MkStruct(fs) => {
                let mut parts = Vec::with_capacity(fs.len());
                let mut at = dst;
                for (_, el) in fs {
                    let (t, w) = self.packed_expr(el, at)?;
                    at += w as usize;
                    parts.push(t);
                }
                let n = fs.len() as u64;
                Some((
                    Box::new(move |p, f| {
                        for t in &parts {
                            t(p, f)?;
                        }
                        p.cost().ops += n;
                        Ok(())
                    }),
                    (at - dst) as u32,
                ))
            }
            _ => {
                let (pt, lay) = self.agg_place(e)?;
                let width = lay.width;
                Some((
                    Box::new(move |p, f| {
                        let pl = pt(p, f)?;
                        copy_place_packed(p, f, pl, width, dst)
                    }),
                    width,
                ))
            }
        }
    }

    /// The word-path lowering of an action-method call: register
    /// writes, FIFO enqueues, and regfile updates whose payload can
    /// travel as a word or as packed scratch bits. `None` falls back to
    /// the boxed call (which still word-lowers its argument
    /// subexpressions where possible). The payload width must equal
    /// the primitive's element width — the boxed path's runtime width
    /// check, proved at lower time.
    fn call_action_flat(&mut self, id: PrimId, m: PrimMethod, args: &[Expr]) -> Option<ActThunk> {
        self.prims?;
        let info = self.info(id)?;
        let lane_width = info.layout.width;
        match (info.kind, m, args) {
            (PrimKindInfo::Reg, PrimMethod::RegWrite, [e])
            | (PrimKindInfo::Fifo, PrimMethod::Enq, [e]) => {
                if let Some((wt, wty)) = self.word_expr(e) {
                    if wty.width() != lane_width {
                        return None;
                    }
                    return Some(Box::new(move |p, f| {
                        let w = wt(p, f)?;
                        p.call_action_word(id, m, 0, w)
                    }));
                }
                let dst = self.alloc_region(lane_width);
                let (pt, w) = self.packed_expr(e, dst)?;
                if w != lane_width {
                    return None;
                }
                Some(Box::new(move |p, f| {
                    pt(p, f)?;
                    p.call_action_packed(id, m, 0, &f.words, dst)
                }))
            }
            (PrimKindInfo::RegFile { .. }, PrimMethod::Upd, [i, e]) => {
                let (it, ity) = self.word_expr(i)?;
                if let Some((wt, wty)) = self.word_expr(e) {
                    if wty.width() != lane_width {
                        return None;
                    }
                    return Some(Box::new(move |p, f| {
                        let iv = ity.view_int(it(p, f)?);
                        let w = wt(p, f)?;
                        p.call_action_word(id, PrimMethod::Upd, iv, w)
                    }));
                }
                let dst = self.alloc_region(lane_width);
                let (pt, w) = self.packed_expr(e, dst)?;
                if w != lane_width {
                    return None;
                }
                Some(Box::new(move |p, f| {
                    let iv = ity.view_int(it(p, f)?);
                    pt(p, f)?;
                    p.call_action_packed(id, PrimMethod::Upd, iv, &f.words, dst)
                }))
            }
            _ => None,
        }
    }

    /// A value-method call, argument lists of arity ≤ 2 specialized to
    /// stack arrays (the Vm allocates a `Vec` per call via `split_off`).
    fn call_value(&mut self, id: PrimId, m: PrimMethod, args: &[Expr]) -> Option<ExprThunk> {
        Some(match args {
            [] => Box::new(move |p, _| p.call_value(id, m, &[])),
            [a0] => {
                let a0 = self.expr(a0)?;
                Box::new(move |p, f| {
                    let v0 = a0(p, f)?;
                    p.call_value(id, m, std::slice::from_ref(&v0))
                })
            }
            [a0, a1] => {
                let a0 = self.expr(a0)?;
                let a1 = self.expr(a1)?;
                Box::new(move |p, f| {
                    let v0 = a0(p, f)?;
                    let v1 = a1(p, f)?;
                    p.call_value(id, m, &[v0, v1])
                })
            }
            _ => {
                let ts = self.exprs(args)?;
                Box::new(move |p, f| {
                    let mut vals = Vec::with_capacity(ts.len());
                    for t in &ts {
                        vals.push(t(p, f)?);
                    }
                    p.call_value(id, m, &vals)
                })
            }
        })
    }

    /// An action-method call; same arity specialization as value calls.
    fn call_action(&mut self, id: PrimId, m: PrimMethod, args: &[Expr]) -> Option<ActThunk> {
        Some(match args {
            [] => Box::new(move |p, _| p.call_action(id, m, &[])),
            [a0] => {
                let a0 = self.expr(a0)?;
                Box::new(move |p, f| {
                    let v0 = a0(p, f)?;
                    p.call_action(id, m, std::slice::from_ref(&v0))
                })
            }
            [a0, a1] => {
                let a0 = self.expr(a0)?;
                let a1 = self.expr(a1)?;
                Box::new(move |p, f| {
                    let v0 = a0(p, f)?;
                    let v1 = a1(p, f)?;
                    p.call_action(id, m, &[v0, v1])
                })
            }
            _ => {
                let ts = self.exprs(args)?;
                Box::new(move |p, f| {
                    let mut vals = Vec::with_capacity(ts.len());
                    for t in &ts {
                        vals.push(t(p, f)?);
                    }
                    p.call_action(id, m, &vals)
                })
            }
        })
    }

    fn action(&mut self, a: &Action) -> Option<ActThunk> {
        Some(match a {
            Action::NoAction => Box::new(|_, _| Ok(())),
            Action::Write(t, e) => {
                let (id, m) = prim_target(t)?;
                if self.prims.is_some() {
                    if let Some(t) = self.call_action_flat(id, m, std::slice::from_ref(e)) {
                        return Some(t);
                    }
                }
                return self.call_action(id, m, std::slice::from_ref(e));
            }
            Action::Call(t, args) => {
                let (id, m) = prim_target(t)?;
                if self.prims.is_some() {
                    if let Some(t) = self.call_action_flat(id, m, args) {
                        return Some(t);
                    }
                }
                return self.call_action(id, m, args);
            }
            Action::If(c, th, el) => {
                let c = self.expr(c)?;
                let th = self.action(th)?;
                let el = self.action(el)?;
                Box::new(move |p, f| {
                    let vc = c(p, f)?.as_bool()?;
                    p.cost().ops += 1;
                    if vc {
                        th(p, f)
                    } else {
                        el(p, f)
                    }
                })
            }
            Action::Seq(x, y) => {
                let x = self.action(x)?;
                let y = self.action(y)?;
                Box::new(move |p, f| {
                    x(p, f)?;
                    y(p, f)
                })
            }
            Action::When(g, x) => {
                let g = self.expr(g)?;
                let x = self.action(x)?;
                Box::new(move |p, f| {
                    let gv = g(p, f)?.as_bool()?;
                    p.cost().ops += 1;
                    if gv {
                        x(p, f)
                    } else if p.policy() == ShadowPolicy::InPlace {
                        // A failing guard on the in-place path is a lifting
                        // bug: earlier writes cannot be rolled back.
                        Err(ExecError::Malformed(
                            "guard failed during in-place execution (unsound lifting)".into(),
                        ))
                    } else {
                        Err(ExecError::GuardFail)
                    }
                })
            }
            Action::Let(n, e, x) => {
                let (et, binding) = self.bind_value(e)?;
                self.scope.push((n.clone(), binding));
                let x = self.action(x);
                self.scope.pop();
                let x = x?;
                Box::new(move |p, f| {
                    et(p, f)?;
                    x(p, f)
                })
            }
            Action::Loop(c, body) => {
                let c = self.expr(c)?;
                let body = self.action(body)?;
                Box::new(move |p, f| {
                    let mut iters = 0u64;
                    loop {
                        let cv = c(p, f)?.as_bool()?;
                        p.cost().ops += 1;
                        if !cv {
                            return Ok(());
                        }
                        body(p, f)?;
                        iters += 1;
                        if iters > p.loop_bound() {
                            return Err(ExecError::Malformed(format!(
                                "loop exceeded {} iterations",
                                p.loop_bound()
                            )));
                        }
                    }
                })
            }
            Action::Par(x, y) => {
                // Mirror the Vm's ParStart/ParMid/ParEnd frame discipline
                // through the port; an error mid-branch propagates with
                // the frames unbalanced and rollback clears them, exactly
                // like the stack machine.
                let x = self.action(x)?;
                let y = self.action(y)?;
                Box::new(move |p, f| {
                    p.par_start()?;
                    x(p, f)?;
                    p.par_mid();
                    y(p, f)?;
                    p.par_end()
                })
            }
            // localGuard absorbs guard failures into a discardable frame,
            // which needs catch semantics the closure chain does not model;
            // it stays on the interpreter (same fallback as the Vm).
            Action::LocalGuard(..) => return None,
        })
    }
}

fn prim_target(t: &Target) -> Option<(PrimId, PrimMethod)> {
    match t {
        Target::Prim(id, m) => Some((*id, *m)),
        Target::Named(..) => None,
    }
}

/// Lowers an expression (typically a lifted guard) to a native closure.
/// `None` when it references unelaborated names or free variables —
/// callers fall back to the AST interpreter. The result carries no
/// flat-store variant; use [`compile_plan`] (which knows the
/// [`Design`]) for the word-path lowering.
pub fn compile_expr(e: &Expr) -> Option<CompiledExpr> {
    let mut l = Lowerer::new(None);
    let thunk = l.expr(e)?;
    Some(CompiledExpr {
        thunk,
        slots: l.slots,
        flat: None,
    })
}

/// Lowers a rule body to a native closure, or `None` if it uses
/// constructs the backend does not model (`localGuard`, unelaborated
/// names). Boxed-only, like [`compile_expr`].
pub fn compile_action(a: &Action) -> Option<CompiledAction> {
    let mut l = Lowerer::new(None);
    let thunk = l.action(a)?;
    Some(CompiledAction {
        thunk,
        slots: l.slots,
        flat: None,
    })
}

/// Lowers a guard twice: boxed (used on tree stores) and flat. A guard
/// whose word lowering reaches the root becomes a [`FlatEval::Word`]
/// that never materializes a `Value`; otherwise the flat variant is a
/// boxed closure whose scalar subexpressions still travel as words.
fn compile_expr_flat(e: &Expr, infos: &[PrimInfo]) -> Option<CompiledExpr> {
    let boxed = compile_expr(e)?;
    let mut l = Lowerer::new(Some(infos));
    let flat = match l.word_expr(e) {
        // Guards are Bool-typed; a non-Bool root must keep the boxed
        // `as_bool` error, so only Bool roots take the bare-word form.
        Some((wt, WordTy::Bool)) => Some(FlatExpr {
            eval: FlatEval::Word(wt),
            slots: l.slots,
            words: l.words,
        }),
        Some((wt, ty)) => Some(FlatExpr {
            eval: FlatEval::Boxed(Box::new(move |p, f| Ok(ty.materialize(wt(p, f)?)))),
            slots: l.slots,
            words: l.words,
        }),
        None => {
            let mut l = Lowerer::new(Some(infos));
            l.expr(e).map(|t| FlatExpr {
                eval: FlatEval::Boxed(t),
                slots: l.slots,
                words: l.words,
            })
        }
    };
    Some(CompiledExpr {
        thunk: boxed.thunk,
        slots: boxed.slots,
        flat,
    })
}

/// Lowers a rule body twice: boxed and flat (see [`compile_expr_flat`]).
fn compile_action_flat(a: &Action, infos: &[PrimInfo]) -> Option<CompiledAction> {
    let boxed = compile_action(a)?;
    let mut l = Lowerer::new(Some(infos));
    let flat = l.action(a).map(|t| FlatAction {
        thunk: t,
        slots: l.slots,
        words: l.words,
    });
    Some(CompiledAction {
        thunk: boxed.thunk,
        slots: boxed.slots,
        flat,
    })
}

fn compile_plan_with(plan: &RulePlan, infos: &[PrimInfo]) -> NativeRule {
    NativeRule {
        guard: plan
            .guard
            .as_ref()
            .and_then(|g| compile_expr_flat(g, infos)),
        body: compile_action_flat(&plan.body, infos),
    }
}

/// Lowers one compiled rule plan to native closures. The design is
/// consulted for primitive element layouts so that, on flat-arena
/// stores, scalar port traffic runs unboxed (see the module docs);
/// tree-backed stores use the boxed closures unchanged.
pub fn compile_plan(plan: &RulePlan, design: &Design) -> NativeRule {
    compile_plan_with(plan, &prim_infos(design))
}

/// Lowers every plan of a design, building the layout table once.
pub fn compile_plans(plans: &[RulePlan], design: &Design) -> Vec<NativeRule> {
    let infos = prim_infos(design);
    plans.iter().map(|p| compile_plan_with(p, &infos)).collect()
}

/// Native counterpart of [`crate::exec::eval_guard_ro`] /
/// [`crate::exec::eval_guard_compiled`]: evaluates a lowered guard
/// directly against the committed store, folding guard failures to
/// `Ok(false)`. Charges identical cost to both.
pub fn eval_guard_native(
    frame: &mut NativeFrame,
    store: &Store,
    guard: &CompiledExpr,
    cost: &mut Cost,
) -> ExecResult<bool> {
    cost.guard_evals += 1;
    if store.is_flat() {
        if let Some(fx) = &guard.flat {
            frame.ensure(fx.slots);
            frame.ensure_words(fx.words);
            let mut port = NativePort::Ro { store, cost };
            return match &fx.eval {
                FlatEval::Word(t) => match t(&mut port, frame) {
                    Ok(w) => Ok(w != 0),
                    Err(ExecError::GuardFail) => Ok(false),
                    Err(e) => Err(e),
                },
                FlatEval::Boxed(t) => match t(&mut port, frame) {
                    Ok(v) => v.as_bool(),
                    Err(ExecError::GuardFail) => Ok(false),
                    Err(e) => Err(e),
                },
            };
        }
    }
    frame.ensure(guard.slots);
    let mut port = NativePort::Ro { store, cost };
    match (guard.thunk)(&mut port, frame) {
        Ok(v) => v.as_bool(),
        Err(ExecError::GuardFail) => Ok(false),
        Err(e) => Err(e),
    }
}

/// Native counterpart of [`crate::exec::run_rule_compiled`]: executes a
/// lowered body as a transaction, committing on success and rolling back
/// on guard failure.
pub fn run_rule_native(
    frame: &mut NativeFrame,
    store: &mut Store,
    body: &CompiledAction,
    policy: ShadowPolicy,
) -> ExecResult<(RuleOutcome, Cost)> {
    let use_flat = store.is_flat();
    let mut txn = Txn::new(store, policy);
    txn.cost.txn_setups += 1;
    let thunk = match (&body.flat, use_flat) {
        (Some(fa), true) => {
            frame.ensure(fa.slots);
            frame.ensure_words(fa.words);
            &fa.thunk
        }
        _ => {
            frame.ensure(body.slots);
            &body.thunk
        }
    };
    let mut port = NativePort::Txn(txn);
    let r = thunk(&mut port, frame);
    let NativePort::Txn(txn) = port else {
        unreachable!("rule body cannot change its port variant")
    };
    match r {
        Ok(()) => Ok((RuleOutcome::Fired, txn.commit())),
        Err(ExecError::GuardFail) => Ok((RuleOutcome::GuardFailed, txn.rollback())),
        Err(e) => Err(e),
    }
}

/// Native counterpart of [`crate::exec::run_rule_inplace_compiled`]:
/// executes a fully guard-lifted body straight against the committed
/// store — no transaction, no frame stack, no shadow map. Cost-identical
/// to the in-place interpreter and Vm paths.
pub fn run_rule_inplace_native(
    frame: &mut NativeFrame,
    store: &mut Store,
    body: &CompiledAction,
) -> ExecResult<Cost> {
    let use_flat = store.is_flat();
    let thunk = match (&body.flat, use_flat) {
        (Some(fa), true) => {
            frame.ensure(fa.slots);
            frame.ensure_words(fa.words);
            &fa.thunk
        }
        _ => {
            frame.ensure(body.slots);
            &body.thunk
        }
    };
    let mut cost = Cost::default();
    cost.inplace_runs += 1;
    let mut port = NativePort::InPlace { store, cost };
    let r = thunk(&mut port, frame);
    let NativePort::InPlace { cost, .. } = port else {
        unreachable!("rule body cannot change its port variant")
    };
    match r {
        Ok(()) => Ok(cost),
        Err(ExecError::GuardFail) => Err(ExecError::Malformed(
            "guard failure during in-place execution (unsound lifting)".into(),
        )),
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Path, PrimId, PrimMethod, RuleDef};
    use crate::design::{Design, PrimDef};
    use crate::exec::{
        eval_guard_compiled, eval_guard_ro, run_rule, run_rule_compiled, run_rule_inplace,
        run_rule_inplace_compiled, Vm,
    };
    use crate::prim::PrimSpec;
    use crate::types::Type;
    use crate::value::BinOp;
    use crate::xform::{compile_rule, CompileOpts, ExecMode};

    const A: PrimId = PrimId(0);
    const F: PrimId = PrimId(1);
    const B: PrimId = PrimId(2);

    fn d3() -> Design {
        Design {
            name: "t".into(),
            prims: vec![
                PrimDef {
                    path: Path::new("a"),
                    spec: PrimSpec::Reg {
                        init: Value::int(32, 0),
                    },
                },
                PrimDef {
                    path: Path::new("f"),
                    spec: PrimSpec::Fifo {
                        depth: 2,
                        ty: Type::Int(32),
                    },
                },
                PrimDef {
                    path: Path::new("b"),
                    spec: PrimSpec::Reg {
                        init: Value::int(32, 0),
                    },
                },
            ],
            ..Default::default()
        }
    }

    fn wr(id: PrimId, e: Expr) -> Action {
        Action::Write(Target::Prim(id, PrimMethod::RegWrite), Box::new(e))
    }
    fn rd(id: PrimId) -> Expr {
        Expr::Call(Target::Prim(id, PrimMethod::RegRead), vec![])
    }
    fn enq(id: PrimId, e: Expr) -> Action {
        Action::Call(Target::Prim(id, PrimMethod::Enq), vec![e])
    }

    /// Five-way parity: the native backend must match the AST
    /// interpreter AND the stack machine in verdicts, final state, and —
    /// bit for bit — cost counters; the flat-store word path must match
    /// the flat-store interpreter the same way, with identical costs to
    /// the tree legs.
    fn assert_native_parity(rule: &RuleDef, design: &Design, setup: impl Fn(&mut Store)) {
        let plan = compile_rule(rule, CompileOpts::default());
        let native = compile_plan(&plan, design);
        let mut s_ast = Store::new(design);
        setup(&mut s_ast);
        let mut s_vm = s_ast.clone();
        let mut s_nat = s_ast.clone();
        let mut s_fla = Store::new_flat(design);
        setup(&mut s_fla);
        let mut s_fln = s_fla.clone();
        let mut vm = Vm::new();
        let mut frame = NativeFrame::new();
        if let Some(g) = &plan.guard {
            let prog = plan.guard_prog.as_ref().expect("guard compiles to Prog");
            let cg = native.guard.as_ref().expect("guard compiles natively");
            let mut c_ast = Cost::default();
            let mut c_vm = Cost::default();
            let mut c_nat = Cost::default();
            let mut c_fla = Cost::default();
            let mut c_fln = Cost::default();
            let v_ast = eval_guard_ro(&mut s_ast, g, &mut c_ast).unwrap();
            let v_vm = eval_guard_compiled(&mut vm, &s_vm, prog, &mut c_vm).unwrap();
            let v_nat = eval_guard_native(&mut frame, &s_nat, cg, &mut c_nat).unwrap();
            let v_fla = eval_guard_ro(&mut s_fla, g, &mut c_fla).unwrap();
            let v_fln = eval_guard_native(&mut frame, &s_fln, cg, &mut c_fln).unwrap();
            assert_eq!(v_ast, v_nat, "guard verdict for {}", rule.name);
            assert_eq!(v_vm, v_nat, "guard verdict vm/native for {}", rule.name);
            assert_eq!(c_ast, c_nat, "guard cost for {}", rule.name);
            assert_eq!(c_vm, c_nat, "guard cost vm/native for {}", rule.name);
            assert_eq!(v_fla, v_nat, "guard verdict flat/tree for {}", rule.name);
            assert_eq!(v_fln, v_nat, "guard verdict flat-native for {}", rule.name);
            assert_eq!(c_fla, c_nat, "guard cost flat-ast for {}", rule.name);
            assert_eq!(c_fln, c_nat, "guard cost flat-native for {}", rule.name);
        }
        let prog = plan.body_prog.as_ref().expect("body compiles to Prog");
        let cb = native.body.as_ref().expect("body compiles natively");
        let (out_ast, cost_ast) = run_rule(&mut s_ast, &plan.body, ShadowPolicy::Partial).unwrap();
        let (out_vm, cost_vm) =
            run_rule_compiled(&mut vm, &mut s_vm, prog, ShadowPolicy::Partial).unwrap();
        let (out_nat, cost_nat) =
            run_rule_native(&mut frame, &mut s_nat, cb, ShadowPolicy::Partial).unwrap();
        let (out_fla, cost_fla) = run_rule(&mut s_fla, &plan.body, ShadowPolicy::Partial).unwrap();
        let (out_fln, cost_fln) =
            run_rule_native(&mut frame, &mut s_fln, cb, ShadowPolicy::Partial).unwrap();
        assert_eq!(out_ast, out_nat, "outcome for {}", rule.name);
        assert_eq!(out_vm, out_nat, "outcome vm/native for {}", rule.name);
        assert_eq!(cost_ast, cost_nat, "body cost for {}", rule.name);
        assert_eq!(cost_vm, cost_nat, "body cost vm/native for {}", rule.name);
        assert_eq!(s_ast, s_nat, "state for {}", rule.name);
        assert_eq!(s_vm, s_nat, "state vm/native for {}", rule.name);
        assert_eq!(out_fla, out_nat, "outcome flat-ast for {}", rule.name);
        assert_eq!(out_fln, out_nat, "outcome flat-native for {}", rule.name);
        assert_eq!(cost_fla, cost_nat, "body cost flat-ast for {}", rule.name);
        assert_eq!(
            cost_fln, cost_nat,
            "body cost flat-native for {}",
            rule.name
        );
        assert_eq!(s_fla, s_fln, "state flat-ast/flat-native for {}", rule.name);
        for id in (0..design.prims.len()).map(PrimId) {
            assert_eq!(
                s_nat.get_state(id),
                s_fln.get_state(id),
                "prim {} state tree/flat for {}",
                id.0,
                rule.name
            );
        }
    }

    /// In-place parity for fully lifted rules, on both store backends.
    fn assert_inplace_parity(rule: &RuleDef, design: &Design, setup: impl Fn(&mut Store)) {
        let plan = compile_rule(rule, CompileOpts::default());
        assert_eq!(plan.mode, ExecMode::InPlace, "{} must lift", rule.name);
        let native = compile_plan(&plan, design);
        let cb = native.body.as_ref().expect("body compiles natively");
        let prog = plan.body_prog.as_ref().expect("body compiles to Prog");
        let mut s_ast = Store::new(design);
        setup(&mut s_ast);
        let mut s_vm = s_ast.clone();
        let mut s_nat = s_ast.clone();
        let mut s_fla = Store::new_flat(design);
        setup(&mut s_fla);
        let mut s_fln = s_fla.clone();
        let mut vm = Vm::new();
        let mut frame = NativeFrame::new();
        let c_ast = run_rule_inplace(&mut s_ast, &plan.body).unwrap();
        let c_vm = run_rule_inplace_compiled(&mut vm, &mut s_vm, prog).unwrap();
        let c_nat = run_rule_inplace_native(&mut frame, &mut s_nat, cb).unwrap();
        let c_fla = run_rule_inplace(&mut s_fla, &plan.body).unwrap();
        let c_fln = run_rule_inplace_native(&mut frame, &mut s_fln, cb).unwrap();
        assert_eq!(c_ast, c_nat, "in-place cost for {}", rule.name);
        assert_eq!(c_vm, c_nat, "in-place cost vm/native for {}", rule.name);
        assert_eq!(s_ast, s_nat, "in-place state for {}", rule.name);
        assert_eq!(s_vm, s_nat, "in-place state vm/native for {}", rule.name);
        assert_eq!(c_fla, c_nat, "in-place cost flat-ast for {}", rule.name);
        assert_eq!(c_fln, c_nat, "in-place cost flat-native for {}", rule.name);
        assert_eq!(s_fla, s_fln, "in-place state flat for {}", rule.name);
        for id in (0..design.prims.len()).map(PrimId) {
            assert_eq!(
                s_nat.get_state(id),
                s_fln.get_state(id),
                "in-place prim {} state tree/flat for {}",
                id.0,
                rule.name
            );
        }
    }

    /// The paper's running example: `Rule foo {a := 1; f.enq(a); a := 0}`.
    fn rule_foo() -> RuleDef {
        RuleDef {
            name: "foo".into(),
            body: Action::Seq(
                Box::new(wr(A, Expr::int(32, 1))),
                Box::new(Action::Seq(
                    Box::new(enq(F, rd(A))),
                    Box::new(wr(A, Expr::int(32, 0))),
                )),
            ),
        }
    }

    #[test]
    fn native_execution_matches_interpreter_and_vm() {
        let d = d3();
        assert_native_parity(&rule_foo(), &d, |_| {});
        assert_native_parity(&rule_foo(), &d, |s| {
            for _ in 0..2 {
                s.call_action_at(F, PrimMethod::Enq, &[Value::int(32, 0)])
                    .unwrap();
            }
        });
        // Conditional both ways.
        let cond = RuleDef {
            name: "c".into(),
            body: Action::If(
                Box::new(Expr::Bin(
                    BinOp::Gt,
                    Box::new(rd(A)),
                    Box::new(Expr::int(32, 0)),
                )),
                Box::new(enq(F, rd(A))),
                Box::new(wr(B, Expr::int(32, 9))),
            ),
        };
        assert_native_parity(&cond, &d, |_| {});
        assert_native_parity(&cond, &d, |s| {
            s.call_action_at(A, PrimMethod::RegWrite, &[Value::int(32, 3)])
                .unwrap();
        });
        // Nested lets with shadowing.
        let lets = RuleDef {
            name: "lets".into(),
            body: Action::Let(
                "x".into(),
                Box::new(Expr::int(32, 3)),
                Box::new(Action::Let(
                    "x".into(),
                    Box::new(Expr::Bin(
                        BinOp::Add,
                        Box::new(Expr::Var("x".into())),
                        Box::new(Expr::int(32, 1)),
                    )),
                    Box::new(wr(A, Expr::Var("x".into()))),
                )),
            ),
        };
        assert_native_parity(&lets, &d, |_| {});
        // A loop with per-iteration condition cost.
        let lp = RuleDef {
            name: "lp".into(),
            body: Action::Loop(
                Box::new(Expr::Bin(
                    BinOp::Lt,
                    Box::new(rd(A)),
                    Box::new(Expr::int(32, 3)),
                )),
                Box::new(wr(
                    A,
                    Expr::Bin(BinOp::Add, Box::new(rd(A)), Box::new(Expr::int(32, 1))),
                )),
            ),
        };
        assert_native_parity(&lp, &d, |_| {});
        // Vector expressions, including the fused LoadIndex path.
        let vecs = RuleDef {
            name: "vecs".into(),
            body: Action::Let(
                "v".into(),
                Box::new(Expr::UpdateIndex(
                    Box::new(Expr::MkVec(vec![
                        Expr::int(32, 10),
                        Expr::int(32, 20),
                        Expr::int(32, 30),
                    ])),
                    Box::new(Expr::int(32, 1)),
                    Box::new(Expr::int(32, 99)),
                )),
                Box::new(wr(
                    A,
                    Expr::Bin(
                        BinOp::Add,
                        Box::new(Expr::Index(
                            Box::new(Expr::Var("v".into())),
                            Box::new(Expr::int(32, 1)),
                        )),
                        Box::new(Expr::Index(
                            Box::new(Expr::Var("v".into())),
                            Box::new(Expr::int(32, 2)),
                        )),
                    ),
                )),
            ),
        };
        assert_native_parity(&vecs, &d, |_| {});
        // Struct expressions, including the fused LoadField path.
        let structs = RuleDef {
            name: "structs".into(),
            body: Action::Let(
                "s".into(),
                Box::new(Expr::UpdateField(
                    Box::new(Expr::MkStruct(vec![
                        ("re".into(), Expr::int(32, 7)),
                        ("im".into(), Expr::int(32, 8)),
                    ])),
                    "im".into(),
                    Box::new(Expr::int(32, 80)),
                )),
                Box::new(wr(
                    A,
                    Expr::Field(Box::new(Expr::Var("s".into())), "im".into()),
                )),
            ),
        };
        assert_native_parity(&structs, &d, |_| {});
        // A residual mid-sequence guard (deq;enq on the same FIFO) — the
        // native body must fail/rollback exactly like the interpreter.
        let residual = RuleDef {
            name: "res".into(),
            body: Action::Seq(
                Box::new(Action::Call(Target::Prim(F, PrimMethod::Deq), vec![])),
                Box::new(enq(F, Expr::int(32, 1))),
            ),
        };
        assert_native_parity(&residual, &d, |_| {});
        assert_native_parity(&residual, &d, |s| {
            s.call_action_at(F, PrimMethod::Enq, &[Value::int(32, 5)])
                .unwrap();
        });
        // A true swap keeps its Par body; the native closure drives the
        // same par_start/par_mid/par_end frame discipline.
        let swap = RuleDef {
            name: "swap".into(),
            body: Action::Par(Box::new(wr(A, rd(B))), Box::new(wr(B, rd(A)))),
        };
        assert_native_parity(&swap, &d, |s| {
            s.call_action_at(A, PrimMethod::RegWrite, &[Value::int(32, 7)])
                .unwrap();
        });
        // When-expression guard folding.
        let when_e = RuleDef {
            name: "when_e".into(),
            body: wr(
                A,
                Expr::When(
                    Box::new(rd(B)),
                    Box::new(Expr::Bin(
                        BinOp::Gt,
                        Box::new(rd(B)),
                        Box::new(Expr::int(32, 5)),
                    )),
                ),
            ),
        };
        assert_native_parity(&when_e, &d, |_| {});
    }

    #[test]
    fn native_inplace_matches_interpreter_and_vm() {
        let d = d3();
        assert_inplace_parity(&rule_foo(), &d, |_| {});
        let lg = RuleDef {
            name: "lg".into(),
            body: Action::LocalGuard(Box::new(enq(F, Expr::int(32, 1)))),
        };
        // The lifter turns this into a plain conditional, which the
        // native backend executes in place.
        assert_inplace_parity(&lg, &d, |_| {});
    }

    #[test]
    fn double_write_reported_identically() {
        let d = d3();
        let body = Action::Par(
            Box::new(wr(A, Expr::int(32, 1))),
            Box::new(wr(A, Expr::int(32, 2))),
        );
        let cb = compile_action(&body).expect("Par compiles");
        let mut s = Store::new(&d);
        let mut frame = NativeFrame::new();
        let err = run_rule_native(&mut frame, &mut s, &cb, ShadowPolicy::Partial).unwrap_err();
        let mut s2 = Store::new(&d);
        let err2 = run_rule(&mut s2, &body, ShadowPolicy::Partial).unwrap_err();
        assert_eq!(format!("{err}"), format!("{err2}"));
    }

    #[test]
    fn coverage_matches_stack_machine() {
        // localGuard, unelaborated names, and unbound variables fall back
        // to the interpreter — in both compiled backends.
        let lg = Action::LocalGuard(Box::new(Action::NoAction));
        assert!(compile_action(&lg).is_none());
        assert!(crate::xform::compile_action(&lg).is_none());
        let named = Action::Call(Target::Named("x".into(), "enq".into()), vec![]);
        assert!(compile_action(&named).is_none());
        assert!(crate::xform::compile_action(&named).is_none());
        let unbound = Expr::Var("nope".into());
        assert!(compile_expr(&unbound).is_none());
        assert!(crate::xform::compile_expr(&unbound).is_none());
    }

    #[test]
    fn guard_failures_fold_to_false() {
        let d = d3();
        let s = Store::new(&d);
        let mut frame = NativeFrame::new();
        let mut cost = Cost::default();
        // Guard reads f.first on an empty FIFO -> false, not an error.
        let g = Expr::Bin(
            BinOp::Gt,
            Box::new(Expr::Call(Target::Prim(F, PrimMethod::First), vec![])),
            Box::new(Expr::int(32, 0)),
        );
        let cg = compile_expr(&g).unwrap();
        assert!(!eval_guard_native(&mut frame, &s, &cg, &mut cost).unwrap());
        assert_eq!(cost.guard_evals, 1);
        // And cost parity with the interpreter on the failure path.
        let mut s2 = Store::new(&d);
        let mut cost2 = Cost::default();
        assert!(!eval_guard_ro(&mut s2, &g, &mut cost2).unwrap());
        assert_eq!(cost, cost2);
    }

    /// A design exercising the word paths: a complex-pair FIFO, a
    /// regfile, and scalar registers at awkward widths.
    fn d_word() -> Design {
        let pair = Type::Struct(vec![
            ("re".into(), Type::Int(32)),
            ("im".into(), Type::Int(32)),
        ]);
        Design {
            name: "w".into(),
            prims: vec![
                PrimDef {
                    path: Path::new("a"),
                    spec: PrimSpec::Reg {
                        init: Value::int(32, 0),
                    },
                },
                PrimDef {
                    path: Path::new("f"),
                    spec: PrimSpec::Fifo {
                        depth: 2,
                        ty: Type::Vector(2, Box::new(pair)),
                    },
                },
                PrimDef {
                    path: Path::new("rf"),
                    spec: PrimSpec::RegFile {
                        size: 4,
                        ty: Type::Int(63),
                        init: vec![],
                    },
                },
                PrimDef {
                    path: Path::new("n63"),
                    spec: PrimSpec::Reg {
                        init: Value::int(63, -5),
                    },
                },
                PrimDef {
                    path: Path::new("b64"),
                    spec: PrimSpec::Reg {
                        init: Value::bits(64, u64::MAX - 2),
                    },
                },
            ],
            ..Default::default()
        }
    }

    const RF: PrimId = PrimId(2);
    const N63: PrimId = PrimId(3);
    const B64: PrimId = PrimId(4);
    const FV: PrimId = PrimId(1);

    fn mkpair(re: i64, im: i64) -> Expr {
        Expr::MkStruct(vec![
            ("re".into(), Expr::int(32, re)),
            ("im".into(), Expr::int(32, im)),
        ])
    }

    #[test]
    fn word_path_aggregate_fifo_chain() {
        let d = d_word();
        // Let x = f.first(); a := x[1].im; f.deq(); f.enq([{1,2},{3,4}])
        let body = Action::Let(
            "x".into(),
            Box::new(Expr::Call(Target::Prim(FV, PrimMethod::First), vec![])),
            Box::new(Action::Seq(
                Box::new(wr(
                    A,
                    Expr::Field(
                        Box::new(Expr::Index(
                            Box::new(Expr::Var("x".into())),
                            Box::new(Expr::int(32, 1)),
                        )),
                        "im".into(),
                    ),
                )),
                Box::new(Action::Seq(
                    Box::new(Action::Call(Target::Prim(FV, PrimMethod::Deq), vec![])),
                    Box::new(Action::Call(
                        Target::Prim(FV, PrimMethod::Enq),
                        vec![Expr::MkVec(vec![mkpair(1, 2), mkpair(3, 4)])],
                    )),
                )),
            )),
        );
        let rule = RuleDef {
            name: "agg".into(),
            body,
        };
        let payload = Value::Vec(vec![
            Value::Struct(vec![
                ("re".into(), Value::int(32, 7)),
                ("im".into(), Value::int(32, -9)),
            ]),
            Value::Struct(vec![
                ("re".into(), Value::int(32, 11)),
                ("im".into(), Value::int(32, 13)),
            ]),
        ]);
        // Empty FIFO: guard-fails identically everywhere.
        assert_native_parity(&rule, &d, |_| {});
        let p = payload.clone();
        assert_native_parity(&rule, &d, move |s| {
            s.call_action_at(FV, PrimMethod::Enq, std::slice::from_ref(&p))
                .unwrap();
        });
    }

    #[test]
    fn word_path_regfile_and_widths() {
        let d = d_word();
        // rf.upd(a, n63 + 1); n63 := rf.sub(a) - 7; b64 := ~b64; a := a + 1
        let body = Action::Seq(
            Box::new(Action::Call(
                Target::Prim(RF, PrimMethod::Upd),
                vec![
                    rd(A),
                    Expr::Bin(
                        BinOp::Add,
                        Box::new(Expr::Call(Target::Prim(N63, PrimMethod::RegRead), vec![])),
                        Box::new(Expr::int(63, 1)),
                    ),
                ],
            )),
            Box::new(Action::Seq(
                Box::new(wr(
                    N63,
                    Expr::Bin(
                        BinOp::Sub,
                        Box::new(Expr::Call(Target::Prim(RF, PrimMethod::Sub), vec![rd(A)])),
                        Box::new(Expr::int(63, 7)),
                    ),
                )),
                Box::new(Action::Seq(
                    Box::new(wr(
                        B64,
                        Expr::Un(
                            UnOp::Inv,
                            Box::new(Expr::Call(Target::Prim(B64, PrimMethod::RegRead), vec![])),
                        ),
                    )),
                    Box::new(wr(
                        A,
                        Expr::Bin(BinOp::Add, Box::new(rd(A)), Box::new(Expr::int(32, 1))),
                    )),
                )),
            )),
        );
        let rule = RuleDef {
            name: "rfw".into(),
            body,
        };
        assert_native_parity(&rule, &d, |_| {});
        assert_native_parity(&rule, &d, |s| {
            s.call_action_at(A, PrimMethod::RegWrite, &[Value::int(32, 3)])
                .unwrap();
        });
    }

    #[test]
    fn word_path_regfile_error_parity() {
        let d = d_word();
        // Out-of-range dynamic upd: error text must match the
        // interpreter's, on both backends.
        let body = Action::Call(
            Target::Prim(RF, PrimMethod::Upd),
            vec![Expr::int(32, 9), Expr::int(63, 1)],
        );
        let cb = compile_action_flat(&body, &prim_infos(&d)).expect("compiles");
        let mut frame = NativeFrame::new();
        let mut s_flat = Store::new_flat(&d);
        let err_flat =
            run_rule_native(&mut frame, &mut s_flat, &cb, ShadowPolicy::Partial).unwrap_err();
        let mut s_tree = Store::new(&d);
        let err_tree = run_rule(&mut s_tree, &body, ShadowPolicy::Partial).unwrap_err();
        assert_eq!(format!("{err_flat}"), format!("{err_tree}"));
        // Negative dynamic index, same contract.
        let neg = Action::Call(
            Target::Prim(RF, PrimMethod::Upd),
            vec![Expr::int(32, -1), Expr::int(63, 1)],
        );
        let cb = compile_action_flat(&neg, &prim_infos(&d)).expect("compiles");
        let err_flat =
            run_rule_native(&mut frame, &mut s_flat, &cb, ShadowPolicy::Partial).unwrap_err();
        let err_tree = run_rule(&mut s_tree, &neg, ShadowPolicy::Partial).unwrap_err();
        assert_eq!(format!("{err_flat}"), format!("{err_tree}"));
    }

    #[test]
    fn word_guards_never_materialize() {
        let d = d_word();
        // A typical guard: f.notEmpty && (a > 0). Must lower to a bare
        // word thunk on the flat path.
        let g = Expr::Bin(
            BinOp::And,
            Box::new(Expr::Call(Target::Prim(FV, PrimMethod::NotEmpty), vec![])),
            Box::new(Expr::Bin(
                BinOp::Gt,
                Box::new(rd(A)),
                Box::new(Expr::int(32, 0)),
            )),
        );
        let cg = compile_expr_flat(&g, &prim_infos(&d)).expect("compiles");
        let fx = cg.flat.as_ref().expect("flat variant present");
        assert!(
            matches!(fx.eval, FlatEval::Word(_)),
            "guard should lower to the bare-word form"
        );
        // And it evaluates with interpreter-identical cost and verdict.
        let s = Store::new_flat(&d);
        let mut frame = NativeFrame::new();
        let mut c_nat = Cost::default();
        let v_nat = eval_guard_native(&mut frame, &s, &cg, &mut c_nat).unwrap();
        let mut s2 = Store::new_flat(&d);
        let mut c_ast = Cost::default();
        let v_ast = eval_guard_ro(&mut s2, &g, &mut c_ast).unwrap();
        assert_eq!(v_nat, v_ast);
        assert_eq!(c_nat, c_ast);
    }
}
