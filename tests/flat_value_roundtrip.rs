//! Property tests for the arena-store flat value codec: for any type
//! the kernel grammar can produce and any value of that type,
//!
//! * `Value → write_flat → read_flat` is the identity (canonical form:
//!   integers come back sign-extended exactly like `from_words`);
//! * the flat bit image re-marshals to the *same 32-bit wire words* as
//!   the tree path's `to_words`, and `wire_to_flat` inverts that — so
//!   a transactor reading straight out of the arena is bit-identical
//!   to one that materializes a `Value` first;
//! * boundary widths (1, 63, 64 bits) and nested struct-of-vec shapes
//!   pack densely at non-zero bit offsets without corrupting
//!   neighboring bits.

use bcl_core::types::{Layout, Type};
use bcl_core::value::{flat_to_wire, wire_to_flat, Value};
use proptest::prelude::*;

fn arb_type() -> impl Strategy<Value = Type> {
    let leaf = prop_oneof![
        Just(Type::Bool),
        (1u32..=64).prop_map(Type::Bits),
        (1u32..=64).prop_map(Type::Int),
        // Boundary widths get extra weight so every run exercises them.
        Just(Type::Bits(1)),
        Just(Type::Bits(63)),
        Just(Type::Bits(64)),
        Just(Type::Int(63)),
        Just(Type::Int(64)),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            (1usize..4, inner.clone()).prop_map(|(n, t)| Type::vector(n, t)),
            proptest::collection::vec(inner, 1..4).prop_map(|ts| {
                Type::Struct(
                    ts.into_iter()
                        .enumerate()
                        .map(|(i, t)| (format!("f{i}"), t))
                        .collect(),
                )
            }),
        ]
    })
}

fn arb_value_of(ty: &Type) -> BoxedStrategy<Value> {
    match ty.clone() {
        Type::Bool => any::<bool>().prop_map(Value::Bool).boxed(),
        Type::Bits(w) => any::<u64>().prop_map(move |b| Value::bits(w, b)).boxed(),
        Type::Int(w) => any::<i64>().prop_map(move |v| Value::int(w, v)).boxed(),
        Type::Vector(n, t) => proptest::collection::vec(arb_value_of(&t), n)
            .prop_map(Value::Vec)
            .boxed(),
        Type::Struct(fs) => {
            let strategies: Vec<BoxedStrategy<Value>> =
                fs.iter().map(|(_, t)| arb_value_of(t)).collect();
            let names: Vec<String> = fs.iter().map(|(n, _)| n.clone()).collect();
            strategies
                .prop_map(move |vs| Value::Struct(names.iter().cloned().zip(vs).collect()))
                .boxed()
        }
    }
}

fn arb_typed_value() -> impl Strategy<Value = (Type, Value)> {
    arb_type().prop_flat_map(|t| {
        let vs = arb_value_of(&t);
        (Just(t), vs)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Value → flat bits → Value is the identity, at bit offset 0 and
    /// at an unaligned offset inside a larger arena.
    #[test]
    fn flat_roundtrip_is_identity((ty, v) in arb_typed_value(), shift in 0usize..61) {
        let layout = Layout::of(&ty);
        prop_assert_eq!(layout.width, ty.width());

        let mut words = vec![0u64; layout.words64()];
        let wrote = v.write_flat(&mut words, 0);
        prop_assert_eq!(wrote, layout.width as usize);
        let back = Value::read_flat(&layout, &words, 0);
        prop_assert_eq!(&back, &v);

        // Same value packed at a non-zero bit offset, surrounded by
        // all-ones guard bits that must survive untouched.
        let total = (shift + layout.width as usize).div_ceil(64) + 1;
        let mut arena = vec![u64::MAX; total];
        // Clear exactly the value's bit span, then write into it.
        for bit in shift..shift + layout.width as usize {
            arena[bit / 64] &= !(1u64 << (bit % 64));
        }
        let cleared = arena.clone();
        let wrote = v.write_flat(&mut arena, shift);
        prop_assert_eq!(wrote, layout.width as usize);
        prop_assert_eq!(&Value::read_flat(&layout, &arena, shift), &v);
        // Guard bits outside the span are exactly as they were.
        for (i, (got, was)) in arena.iter().zip(&cleared).enumerate() {
            let mut span_mask = 0u64;
            for bit in 0..64 {
                let abs = i * 64 + bit;
                if abs >= shift && abs < shift + layout.width as usize {
                    span_mask |= 1 << bit;
                }
            }
            prop_assert_eq!(got & !span_mask, was & !span_mask, "guard bits at word {}", i);
        }
    }

    /// The flat image marshals to the exact same 32-bit wire words as
    /// the tree path, and the wire words write back the same flat image.
    #[test]
    fn flat_wire_format_matches_tree((ty, v) in arb_typed_value()) {
        let layout = Layout::of(&ty);
        let mut words = vec![0u64; layout.words64()];
        v.write_flat(&mut words, 0);

        let wire = flat_to_wire(&words, layout.width);
        prop_assert_eq!(&wire, &v.to_words(), "flat wire image != to_words");

        let mut lane = vec![0u64; layout.words64()];
        wire_to_flat(layout.width, &wire, &mut lane).unwrap();
        prop_assert_eq!(&lane, &words, "wire_to_flat did not invert flat_to_wire");

        let back = Value::from_words(&ty, &wire).unwrap();
        prop_assert_eq!(&back, &v);
    }
}

/// Deterministic pins for the boundary widths and a nested
/// struct-of-vec — the shapes where off-by-one packing bugs live.
#[test]
fn boundary_widths_roundtrip() {
    let cases: Vec<(Type, Value)> = vec![
        (Type::Bits(1), Value::bits(1, 1)),
        (Type::Bits(63), Value::bits(63, (1u64 << 63) - 1)),
        (Type::Bits(64), Value::bits(64, u64::MAX)),
        (Type::Int(63), Value::int(63, -1)),
        (Type::Int(64), Value::int(64, i64::MIN)),
        (Type::Bool, Value::Bool(true)),
    ];
    for (ty, v) in cases {
        let layout = Layout::of(&ty);
        let mut words = vec![0u64; layout.words64()];
        assert_eq!(v.write_flat(&mut words, 0), layout.width as usize);
        assert_eq!(Value::read_flat(&layout, &words, 0), v, "{ty}");
        assert_eq!(flat_to_wire(&words, layout.width), v.to_words(), "{ty}");
    }
}

#[test]
fn nested_struct_of_vec_packs_densely() {
    // struct { hdr: Bit#(3), body: Vector#(3, struct {re,im: Int#(17)}),
    //          tail: Bool } — 3 + 3*34 + 1 = 106 bits.
    let elem = Type::complex(Type::Int(17));
    let ty = Type::Struct(vec![
        ("hdr".into(), Type::Bits(3)),
        ("body".into(), Type::vector(3, elem)),
        ("tail".into(), Type::Bool),
    ]);
    let layout = Layout::of(&ty);
    assert_eq!(layout.width, 106);
    assert_eq!(layout.words64(), 2);

    let v = Value::Struct(vec![
        ("hdr".into(), Value::bits(3, 0b101)),
        (
            "body".into(),
            Value::Vec(
                (0..3)
                    .map(|i| {
                        Value::Struct(vec![
                            ("re".into(), Value::int(17, -(i as i64) - 1)),
                            ("im".into(), Value::int(17, 65_535 - i as i64)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("tail".into(), Value::Bool(true)),
    ]);
    let mut words = vec![0u64; layout.words64()];
    assert_eq!(v.write_flat(&mut words, 0), 106);
    assert_eq!(Value::read_flat(&layout, &words, 0), v);
    assert_eq!(flat_to_wire(&words, layout.width), v.to_words());
}
