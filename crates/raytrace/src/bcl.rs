//! The ray tracer as a BCL program (Figure 14 of the paper).
//!
//! The microarchitecture follows the paper's diagram: a **Ray Gen** rule
//! (always software) turns pixel indices into rays; a **BVH Trav**
//! finite-state machine walks the hierarchy with an explicit stack,
//! performing **Box Inter** slab tests against nodes held in **BVH Mem**;
//! leaf visits are dispatched to a **Geom Inter** engine that reads
//! **Scene Mem** and answers with hit records; **Light/Color** shading is
//! folded into the intersection result, and the final shade lands in the
//! **Bitmap** sink (always software).
//!
//! The partition is chosen by two domain names plus one structural flag:
//!
//! * `trav` — domain of the traversal FSM, its stack, and BVH memory;
//! * `geom` — domain of the intersection engine;
//! * `remote_scene` — when true, Scene Mem stays in software and each
//!   leaf request ships the full triangle across the boundary (partition
//!   B, where "the savings in computation are outweighed by the incurred
//!   cost of communication"); when false, Scene Mem lives with the
//!   intersection engine (on-chip block RAM when `geom` is hardware —
//!   partition C's winning configuration).

use crate::bvh::{Bvh, Node};
use crate::geom::{fov_step, Tri, DET_EPS, FRAC, LIGHT, ONE, T_INF};
use bcl_core::builder::{dsl::*, ModuleBuilder};
use bcl_core::design::Design;
use bcl_core::domain::SW;
use bcl_core::program::Program;
use bcl_core::types::Type;
use bcl_core::value::Value;
use bcl_core::{ElabError, Expr};

const I32: fn() -> Type = || Type::Int(32);

fn struct_ty(fields: &[&str]) -> Type {
    Type::Struct(fields.iter().map(|f| (f.to_string(), I32())).collect())
}

/// The ray record: pixel tag, origin, direction, reciprocal direction.
pub fn ray_ty() -> Type {
    struct_ty(&["pix", "ox", "oy", "oz", "dx", "dy", "dz", "ix", "iy", "iz"])
}

/// A flattened BVH node record.
pub fn node_ty() -> Type {
    struct_ty(&[
        "minx", "miny", "minz", "maxx", "maxy", "maxz", "left", "right", "first", "cnt",
    ])
}

/// A triangle record (vertex, two edges, normal).
pub fn tri_ty() -> Type {
    struct_ty(&[
        "v0x", "v0y", "v0z", "e1x", "e1y", "e1z", "e2x", "e2y", "e2z", "nx", "ny", "nz",
    ])
}

/// A leaf-test request when Scene Mem is local to the engine.
pub fn req_ty() -> Type {
    struct_ty(&["ox", "oy", "oz", "dx", "dy", "dz", "tri"])
}

/// A leaf-test request carrying the whole triangle (remote Scene Mem).
pub fn reqb_ty() -> Type {
    struct_ty(&[
        "ox", "oy", "oz", "dx", "dy", "dz", "v0x", "v0y", "v0z", "e1x", "e1y", "e1z", "e2x", "e2y",
        "e2z", "nx", "ny", "nz",
    ])
}

/// A hit record: distance (or `T_INF`) and shade.
pub fn resp_ty() -> Type {
    struct_ty(&["t", "shade"])
}

/// A finished pixel.
pub fn res_ty() -> Type {
    struct_ty(&["pix", "shade"])
}

fn fix(v: i64) -> Expr {
    cint(32, v)
}

/// Converts a BVH node to its BCL record value.
pub fn node_value(n: &Node) -> Value {
    let f = |name: &str, v: i64| (name.to_string(), Value::int(32, v));
    Value::Struct(vec![
        f("minx", n.bb.min.x),
        f("miny", n.bb.min.y),
        f("minz", n.bb.min.z),
        f("maxx", n.bb.max.x),
        f("maxy", n.bb.max.y),
        f("maxz", n.bb.max.z),
        f("left", n.left),
        f("right", n.right),
        f("first", n.first),
        f("cnt", n.count),
    ])
}

/// Converts a triangle to its BCL record value.
pub fn tri_value(t: &Tri) -> Value {
    let f = |name: &str, v: i64| (name.to_string(), Value::int(32, v));
    Value::Struct(vec![
        f("v0x", t.v0.x),
        f("v0y", t.v0.y),
        f("v0z", t.v0.z),
        f("e1x", t.e1.x),
        f("e1y", t.e1.y),
        f("e1z", t.e1.z),
        f("e2x", t.e2.x),
        f("e2y", t.e2.y),
        f("e2z", t.e2.z),
        f("nx", t.n.x),
        f("ny", t.n.y),
        f("nz", t.n.z),
    ])
}

// ---- expression kernels -------------------------------------------------

/// The slab test of [`crate::geom::box_hit`], over a ray record
/// expression, a node record expression, and the best-hit bound.
pub fn box_expr(ray: Expr, nd: Expr, best: Expr) -> Expr {
    let axis = |mn: &str, mx: &str, o: &str, i: &str| {
        (
            fixmul(
                sub_e(field(nd.clone(), mn), field(ray.clone(), o)),
                field(ray.clone(), i),
                FRAC,
            ),
            fixmul(
                sub_e(field(nd.clone(), mx), field(ray.clone(), o)),
                field(ray.clone(), i),
                FRAC,
            ),
        )
    };
    let (tx0, tx1) = axis("minx", "maxx", "ox", "ix");
    let (ty0, ty1) = axis("miny", "maxy", "oy", "iy");
    let (tz0, tz1) = axis("minz", "maxz", "oz", "iz");
    let bind = |n: &str, v: Expr, b: Expr| let_e(n, v, b);
    bind(
        "bx_tx0",
        tx0,
        bind(
            "bx_tx1",
            tx1,
            bind(
                "bx_ty0",
                ty0,
                bind(
                    "bx_ty1",
                    ty1,
                    bind(
                        "bx_tz0",
                        tz0,
                        bind("bx_tz1", tz1, {
                            let lo = |a: &str, b: &str| min_e(var(a), var(b));
                            let hi = |a: &str, b: &str| max_e(var(a), var(b));
                            let tmin = max_e(
                                max_e(lo("bx_tx0", "bx_tx1"), lo("bx_ty0", "bx_ty1")),
                                lo("bx_tz0", "bx_tz1"),
                            );
                            let tmax = min_e(
                                min_e(hi("bx_tx0", "bx_tx1"), hi("bx_ty0", "bx_ty1")),
                                hi("bx_tz0", "bx_tz1"),
                            );
                            let_e(
                                "bx_tmin",
                                tmin,
                                let_e(
                                    "bx_tmax",
                                    tmax,
                                    and(
                                        le(var("bx_tmin"), var("bx_tmax")),
                                        and(ge(var("bx_tmax"), fix(0)), lt(var("bx_tmin"), best)),
                                    ),
                                ),
                            )
                        }),
                    ),
                ),
            ),
        ),
    )
}

/// Möller–Trumbore over record expressions: `oray` provides `o`/`d`
/// fields, `tr` provides the triangle fields. Mirrors
/// [`crate::geom::mt_intersect`] operation for operation.
pub fn mt_expr(oray: Expr, tr: Expr) -> Expr {
    let o = ["ox", "oy", "oz"].map(|f| field(oray.clone(), f));
    let d = ["dx", "dy", "dz"].map(|f| field(oray.clone(), f));
    let v0 = ["v0x", "v0y", "v0z"].map(|f| field(tr.clone(), f));
    let e1 = ["e1x", "e1y", "e1z"].map(|f| field(tr.clone(), f));
    let e2 = ["e2x", "e2y", "e2z"].map(|f| field(tr.clone(), f));
    let n = ["nx", "ny", "nz"].map(|f| field(tr.clone(), f));
    let miss = mkstruct(vec![("t", fix(T_INF)), ("shade", fix(0))]);

    let fm = |a: Expr, b: Expr| fixmul(a, b, FRAC);
    let cross = |a: &[Expr; 3], b: &[Expr; 3]| -> [Expr; 3] {
        [
            sub_e(
                fm(a[1].clone(), b[2].clone()),
                fm(a[2].clone(), b[1].clone()),
            ),
            sub_e(
                fm(a[2].clone(), b[0].clone()),
                fm(a[0].clone(), b[2].clone()),
            ),
            sub_e(
                fm(a[0].clone(), b[1].clone()),
                fm(a[1].clone(), b[0].clone()),
            ),
        ]
    };
    let dot = |a: &[Expr; 3], b: &[Expr; 3]| -> Expr {
        add(
            add(
                fm(a[0].clone(), b[0].clone()),
                fm(a[1].clone(), b[1].clone()),
            ),
            fm(a[2].clone(), b[2].clone()),
        )
    };
    let vsub = |a: &[Expr; 3], b: &[Expr; 3]| -> [Expr; 3] {
        [
            sub_e(a[0].clone(), b[0].clone()),
            sub_e(a[1].clone(), b[1].clone()),
            sub_e(a[2].clone(), b[2].clone()),
        ]
    };
    let v3 = |base: &str| -> [Expr; 3] {
        [
            var(&format!("{base}x")),
            var(&format!("{base}y")),
            var(&format!("{base}z")),
        ]
    };
    let bind3 = |base: &str, vals: [Expr; 3], body: Expr| -> Expr {
        let_e(
            &format!("{base}x"),
            vals[0].clone(),
            let_e(
                &format!("{base}y"),
                vals[1].clone(),
                let_e(&format!("{base}z"), vals[2].clone(), body),
            ),
        )
    };

    let light = [
        cfix(LIGHT.0, FRAC),
        cfix(LIGHT.1, FRAC),
        cfix(LIGHT.2, FRAC),
    ];

    // let p = cross(d, e2); det = dot(e1, p); adet = |det|
    bind3(
        "mt_p",
        cross(&d, &e2),
        let_e(
            "mt_det",
            dot(&e1, &v3("mt_p")),
            let_e(
                "mt_adet",
                max_e(var("mt_det"), neg(var("mt_det"))),
                cond(
                    lt(var("mt_adet"), fix(DET_EPS)),
                    miss.clone(),
                    bind3(
                        "mt_tv",
                        vsub(&o, &v0),
                        let_e(
                            "mt_u",
                            fixdiv(dot(&v3("mt_tv"), &v3("mt_p")), var("mt_det"), FRAC),
                            cond(
                                or(lt(var("mt_u"), fix(0)), gt(var("mt_u"), fix(ONE))),
                                miss.clone(),
                                bind3(
                                    "mt_q",
                                    cross(&v3("mt_tv"), &e1),
                                    let_e(
                                        "mt_v",
                                        fixdiv(dot(&d, &v3("mt_q")), var("mt_det"), FRAC),
                                        cond(
                                            or(
                                                lt(var("mt_v"), fix(0)),
                                                gt(add(var("mt_u"), var("mt_v")), fix(ONE)),
                                            ),
                                            miss.clone(),
                                            let_e(
                                                "mt_t",
                                                fixdiv(dot(&e2, &v3("mt_q")), var("mt_det"), FRAC),
                                                cond(
                                                    le(var("mt_t"), fix(0)),
                                                    miss,
                                                    let_e(
                                                        "mt_ndl",
                                                        dot(&n, &light),
                                                        mkstruct(vec![
                                                            ("t", var("mt_t")),
                                                            (
                                                                "shade",
                                                                min_e(
                                                                    max_e(
                                                                        var("mt_ndl"),
                                                                        neg(var("mt_ndl")),
                                                                    ),
                                                                    fix(ONE),
                                                                ),
                                                            ),
                                                        ]),
                                                    ),
                                                ),
                                            ),
                                        ),
                                    ),
                                ),
                            ),
                        ),
                    ),
                ),
            ),
        ),
    )
}

/// Ray generation from a pixel index (variable `p`), for a `w`×`h`
/// image: the paper's Ray Gen module.
pub fn ray_expr(w: usize, h: usize) -> Expr {
    use bcl_core::value::BinOp;
    let bin = |op: BinOp, a: Expr, b: Expr| Expr::Bin(op, Box::new(a), Box::new(b));
    let px = bin(BinOp::Rem, var("p"), fix(w as i64));
    let py = bin(BinOp::Div, var("p"), fix(w as i64));
    // d = (2*p + 1 - extent) * fov_step(extent)  (see geom::fov_step).
    let dir = |c: Expr, extent: usize| {
        let steps = sub_e(add(mul(c, fix(2)), fix(1)), fix(extent as i64));
        mul(steps, fix(fov_step(extent)))
    };
    let_e(
        "rg_dx",
        dir(px, w),
        let_e(
            "rg_dy",
            dir(py, h),
            mkstruct(vec![
                ("pix", var("p")),
                ("ox", fix(0)),
                ("oy", fix(0)),
                ("oz", fix(crate::geom::fx(-4.0))),
                ("dx", var("rg_dx")),
                ("dy", var("rg_dy")),
                ("dz", fix(ONE)),
                ("ix", fixdiv(fix(ONE), var("rg_dx"), FRAC)),
                ("iy", fixdiv(fix(ONE), var("rg_dy"), FRAC)),
                ("iz", fix(ONE)),
            ]),
        ),
    )
}

// ---- design construction ------------------------------------------------

/// Partition-defining configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RtConfig {
    /// Domain of the traversal FSM, stack, and BVH memory.
    pub trav: String,
    /// Domain of the geometry intersection engine.
    pub geom: String,
    /// Scene memory stays in software; requests carry triangles
    /// (only meaningful when `geom` is not software).
    pub remote_scene: bool,
    /// Image width in pixels.
    pub width: usize,
    /// Image height in pixels.
    pub height: usize,
    /// Channel depth.
    pub depth: usize,
}

impl RtConfig {
    /// An all-software configuration for the given image size.
    pub fn all_sw(width: usize, height: usize) -> RtConfig {
        RtConfig {
            trav: SW.into(),
            geom: SW.into(),
            remote_scene: false,
            width,
            height,
            depth: 4,
        }
    }
}

/// FSM state encodings.
const IDLE: i64 = 0;
const TRAV: i64 = 1;
const WAIT: i64 = 2;
const DONE: i64 = 3;

/// Builds the complete ray-tracing program for a BVH (which carries the
/// leaf-ordered scene).
pub fn build_tracer(bvh: &Bvh, cfg: &RtConfig) -> Program {
    assert!(
        cfg.width.is_multiple_of(2) && cfg.height.is_multiple_of(2),
        "image dimensions must be even (see geom::gen_rays)"
    );
    let scene: &[Tri] = &bvh.tris;
    let mut m = ModuleBuilder::new("RayTracer");
    m.source("pixSrc", I32(), SW);
    m.sink("bitmap", res_ty(), SW);
    m.channel("chRay", cfg.depth, ray_ty(), SW, &cfg.trav);
    m.channel("chRes", cfg.depth, res_ty(), &cfg.trav, SW);
    m.channel("chResp", cfg.depth, resp_ty(), &cfg.geom, &cfg.trav);

    // Traversal state.
    m.reg("state", Value::int(32, IDLE));
    m.reg("curRay", Value::zero(&ray_ty()));
    m.reg("node", Value::int(32, 0));
    m.reg("bestT", Value::int(32, T_INF));
    m.reg("bestShade", Value::int(32, 0));
    m.reg("sp", Value::int(32, 0));
    // Current leaf bookkeeping: triangle range plus how many requests
    // have been issued and how many responses absorbed.
    m.reg("lfirst", Value::int(32, 0));
    m.reg("lcnt", Value::int(32, 0));
    m.reg("lsent", Value::int(32, 0));
    m.reg("lrecv", Value::int(32, 0));
    m.regfile("stackMem", 64, I32(), vec![]);
    m.regfile(
        "bvhMem",
        bvh.nodes.len(),
        node_ty(),
        bvh.nodes.iter().map(node_value).collect(),
    );

    let in_state = |s: i64, a| when_a(eq(read("state"), fix(s)), a);
    let pop_or_done = |cont: i64| {
        if_else(
            gt(read("sp"), fix(0)),
            par(vec![
                write("sp", sub_e(read("sp"), fix(1))),
                write("node", sub("stackMem", sub_e(read("sp"), fix(1)))),
                write("state", fix(cont)),
            ]),
            write("state", fix(DONE)),
        )
    };

    // Ray Gen (SW).
    m.rule(
        "rayGen",
        with_first("p", "pixSrc", enq("chRay", ray_expr(cfg.width, cfg.height))),
    );

    // FSM: accept a ray.
    m.rule(
        "startRay",
        in_state(
            IDLE,
            with_first(
                "r",
                "chRay",
                par(vec![
                    write("curRay", var("r")),
                    write("node", fix(0)),
                    write("sp", fix(0)),
                    write("bestT", fix(T_INF)),
                    write("bestShade", fix(0)),
                    write("state", fix(TRAV)),
                ]),
            ),
        ),
    );

    // FSM: one traversal step (node fetch + Box Inter). A leaf parks the
    // triangle range in the leaf registers and enters WAIT; an internal
    // node pushes its right child and descends left.
    m.rule(
        "travStep",
        in_state(
            TRAV,
            let_a(
                "nd",
                sub("bvhMem", read("node")),
                if_else(
                    box_expr(read("curRay"), var("nd"), read("bestT")),
                    if_else(
                        gt(field(var("nd"), "cnt"), fix(0)),
                        par(vec![
                            write("lfirst", field(var("nd"), "first")),
                            write("lcnt", field(var("nd"), "cnt")),
                            write("lsent", fix(0)),
                            write("lrecv", fix(0)),
                            write("state", fix(WAIT)),
                        ]),
                        par(vec![
                            upd("stackMem", read("sp"), field(var("nd"), "right")),
                            write("sp", add(read("sp"), fix(1))),
                            write("node", field(var("nd"), "left")),
                        ]),
                    ),
                    pop_or_done(TRAV),
                ),
            ),
        ),
    );

    // FSM: issue one leaf-test request per firing.
    let req = mkstruct(vec![
        ("ox", field(read("curRay"), "ox")),
        ("oy", field(read("curRay"), "oy")),
        ("oz", field(read("curRay"), "oz")),
        ("dx", field(read("curRay"), "dx")),
        ("dy", field(read("curRay"), "dy")),
        ("dz", field(read("curRay"), "dz")),
        ("tri", add(read("lfirst"), read("lsent"))),
    ]);
    m.rule(
        "sendReq",
        in_state(
            WAIT,
            when_a(
                lt(read("lsent"), read("lcnt")),
                par(vec![
                    enq("chReq", req),
                    write("lsent", add(read("lsent"), fix(1))),
                ]),
            ),
        ),
    );

    // FSM: absorb hit records; the last one pops or finishes.
    m.rule(
        "hitResp",
        in_state(
            WAIT,
            with_first(
                "h",
                "chResp",
                par(vec![
                    if_a(
                        and(
                            gt(field(var("h"), "t"), fix(0)),
                            lt(field(var("h"), "t"), read("bestT")),
                        ),
                        par(vec![
                            write("bestT", field(var("h"), "t")),
                            write("bestShade", field(var("h"), "shade")),
                        ]),
                    ),
                    write("lrecv", add(read("lrecv"), fix(1))),
                    if_a(
                        eq(add(read("lrecv"), fix(1)), read("lcnt")),
                        pop_or_done(TRAV),
                    ),
                ]),
            ),
        ),
    );

    // FSM: emit the pixel.
    m.rule(
        "finish",
        in_state(
            DONE,
            par(vec![
                enq(
                    "chRes",
                    mkstruct(vec![
                        ("pix", field(read("curRay"), "pix")),
                        ("shade", read("bestShade")),
                    ]),
                ),
                write("state", fix(IDLE)),
            ]),
        ),
    );

    // Geom Inter + Scene Mem.
    if cfg.remote_scene {
        // Partition-B style: Scene Mem stays in SW next to the traversal;
        // a software rule fetches the triangle and ships it with the ray.
        m.fifo("chReq", cfg.depth, req_ty());
        m.channel("chReqB", cfg.depth, reqb_ty(), SW, &cfg.geom);
        m.regfile(
            "sceneMem",
            scene.len(),
            tri_ty(),
            scene.iter().map(tri_value).collect(),
        );
        let carry = |f: &str, from: Expr| (f.to_string(), field(from, f));
        let mut fields: Vec<(String, Expr)> = ["ox", "oy", "oz", "dx", "dy", "dz"]
            .iter()
            .map(|f| carry(f, var("q")))
            .collect();
        for f in [
            "v0x", "v0y", "v0z", "e1x", "e1y", "e1z", "e2x", "e2y", "e2z", "nx", "ny", "nz",
        ] {
            fields.push(carry(f, var("tr")));
        }
        m.rule(
            "leafFetch",
            with_first(
                "q",
                "chReq",
                let_a(
                    "tr",
                    sub("sceneMem", field(var("q"), "tri")),
                    enq("chReqB", Expr::MkStruct(fields)),
                ),
            ),
        );
        m.rule(
            "geomInter",
            with_first("q", "chReqB", enq("chResp", mt_expr(var("q"), var("q")))),
        );
    } else {
        // Scene Mem lives with the engine (BRAM when the engine is HW).
        m.channel("chReq", cfg.depth, req_ty(), &cfg.trav, &cfg.geom);
        m.regfile(
            "sceneMem",
            scene.len(),
            tri_ty(),
            scene.iter().map(tri_value).collect(),
        );
        m.rule(
            "geomInter",
            with_first(
                "q",
                "chReq",
                let_a(
                    "tr",
                    sub("sceneMem", field(var("q"), "tri")),
                    enq("chResp", mt_expr(var("q"), var("tr"))),
                ),
            ),
        );
    }

    // Bitmap drain (SW).
    m.rule("drain", with_first("r", "chRes", enq("bitmap", var("r"))));

    Program::with_root(m.build())
}

/// Builds and elaborates in one step.
///
/// # Errors
///
/// Propagates elaboration errors (builder bugs).
pub fn build_design(bvh: &Bvh, cfg: &RtConfig) -> Result<Design, ElabError> {
    bcl_core::elaborate(&build_tracer(bvh, cfg))
}

/// Extracts the rendered image (shade per pixel, pixel order) from the
/// bitmap sink's values.
pub fn image_of_values(values: &[Value], pixels: usize) -> Vec<i64> {
    let mut img = vec![0i64; pixels];
    for v in values {
        let pix = v
            .field("pix")
            .expect("result struct")
            .as_int()
            .expect("int") as usize;
        let shade = v
            .field("shade")
            .expect("result struct")
            .as_int()
            .expect("int");
        img[pix] = shade;
    }
    img
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bvh::build_bvh;
    use crate::geom::{box_hit, gen_rays, make_scene, mt_intersect};
    use crate::native::render;
    use bcl_core::exec::{eval, Env};
    use bcl_core::sched::{Strategy, SwOptions, SwRunner};
    use bcl_core::store::{ShadowPolicy, Store, Txn};

    /// Evaluate a closed expression (with the given env) on an empty store.
    fn eval_expr(e: &Expr, env: &mut Env) -> Value {
        let d = Design::default();
        let mut s = Store::new(&d);
        let mut txn = Txn::new(&mut s, ShadowPolicy::Partial);
        eval(&mut txn, env, e).expect("expression evaluates")
    }

    #[test]
    fn mt_expr_matches_native() {
        let scene = make_scene(8, 3);
        let rays = gen_rays(4, 4);
        for tri in &scene {
            for ray in &rays {
                let mut env = Env::new();
                // Bind a combined record holding both ray and triangle
                // fields, as the remote-request path does.
                let mut fields = vec![
                    ("ox".to_string(), Value::int(32, ray.o.x)),
                    ("oy".to_string(), Value::int(32, ray.o.y)),
                    ("oz".to_string(), Value::int(32, ray.o.z)),
                    ("dx".to_string(), Value::int(32, ray.d.x)),
                    ("dy".to_string(), Value::int(32, ray.d.y)),
                    ("dz".to_string(), Value::int(32, ray.d.z)),
                ];
                if let Value::Struct(tf) = tri_value(tri) {
                    fields.extend(tf);
                }
                env.push("q", Value::Struct(fields));
                let got = eval_expr(&mt_expr(var("q"), var("q")), &mut env);
                let (t, s) = mt_intersect(ray.o, ray.d, tri);
                assert_eq!(got.field("t").unwrap().as_int().unwrap(), t);
                assert_eq!(got.field("shade").unwrap().as_int().unwrap(), s);
            }
        }
    }

    #[test]
    fn box_expr_matches_native() {
        let scene = make_scene(16, 9);
        let bvh = build_bvh(&scene);
        let rays = gen_rays(4, 4);
        for node in &bvh.nodes {
            for ray in &rays {
                for best in [T_INF, ONE * 4] {
                    let mut env = Env::new();
                    let rv = Value::Struct(vec![
                        ("pix".into(), Value::int(32, ray.pix)),
                        ("ox".into(), Value::int(32, ray.o.x)),
                        ("oy".into(), Value::int(32, ray.o.y)),
                        ("oz".into(), Value::int(32, ray.o.z)),
                        ("dx".into(), Value::int(32, ray.d.x)),
                        ("dy".into(), Value::int(32, ray.d.y)),
                        ("dz".into(), Value::int(32, ray.d.z)),
                        ("ix".into(), Value::int(32, ray.inv.x)),
                        ("iy".into(), Value::int(32, ray.inv.y)),
                        ("iz".into(), Value::int(32, ray.inv.z)),
                    ]);
                    env.push("r", rv);
                    env.push("n", node_value(node));
                    let got = eval_expr(&box_expr(var("r"), var("n"), fix(best)), &mut env);
                    let want = box_hit(ray.o, ray.inv, &node.bb, best);
                    assert_eq!(got, Value::Bool(want));
                }
            }
        }
    }

    #[test]
    fn sw_design_renders_native_image() {
        let scene = make_scene(24, 5);
        let bvh = build_bvh(&scene);
        let (w, h) = (4, 4);
        let cfg = RtConfig::all_sw(w, h);
        let design = build_design(&bvh, &cfg).unwrap();
        let mut store = Store::new(&design);
        let src = design.prim_id("pixSrc").unwrap();
        for p in 0..(w * h) as i64 {
            store.push_source(src, Value::int(32, p));
        }
        let mut r = SwRunner::with_store(
            &design,
            store,
            SwOptions {
                strategy: Strategy::Dataflow,
                ..Default::default()
            },
        );
        r.run_until_quiescent(10_000_000).unwrap();
        let snk = design.prim_id("bitmap").unwrap();
        let got = image_of_values(r.store.sink_values(snk), w * h);
        let want = render(&bvh, &gen_rays(w, h));
        assert_eq!(
            got, want,
            "BCL tracer must match the native tracer bit-for-bit"
        );
    }

    #[test]
    fn ray_expr_matches_gen_rays() {
        let (w, h) = (8, 8);
        let rays = gen_rays(w, h);
        for ray in rays.iter().take(10) {
            let mut env = Env::new();
            env.push("p", Value::int(32, ray.pix));
            let got = eval_expr(&ray_expr(w, h), &mut env);
            assert_eq!(
                got.field("dx").unwrap().as_int().unwrap(),
                ray.d.x,
                "pix {}",
                ray.pix
            );
            assert_eq!(got.field("dy").unwrap().as_int().unwrap(), ray.d.y);
            assert_eq!(got.field("ix").unwrap().as_int().unwrap(), ray.inv.x);
            assert_eq!(got.field("oz").unwrap().as_int().unwrap(), ray.o.z);
        }
    }
}
