//! Synthetic Vorbis frame test bench.
//!
//! The paper's evaluation uses "a test bench consisting of 10000 Vorbis
//! audio frames". We have no rights-cleared Ogg bitstream (and decoding
//! one would exercise the *front end*, which the paper keeps in plain
//! C++ anyway), so the test bench synthesizes deterministic pseudo-random
//! spectral frames with audio-like decay — the back-end neither knows nor
//! cares where the spectra came from, and every partition sees the exact
//! same input stream.

use crate::kernel::{to_fix, K};

/// A tiny deterministic PRNG (xorshift*), so test benches are
/// reproducible without pulling RNG state into the design.
#[derive(Debug, Clone)]
pub struct XorShift {
    state: u64,
}

impl XorShift {
    /// Seeds the generator; a zero seed is mapped to a fixed constant.
    pub fn new(seed: u64) -> XorShift {
        XorShift {
            state: if seed == 0 { 0x853c49e6748fea9b } else { seed },
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545f4914f6cdd1d)
    }

    /// Uniform float in `[-1, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
    }
}

/// One synthetic spectral frame: `K` fixed-point lines with a 1/(1+i)
/// roll-off (energy concentrated in low frequencies, like real audio).
pub fn synth_frame(rng: &mut XorShift) -> Vec<i64> {
    (0..K)
        .map(|i| {
            let amp = 1.0 / (1.0 + i as f64 * 0.25);
            to_fix(rng.next_f64() * amp * 0.5)
        })
        .collect()
}

/// A stream of `n` frames from the given seed.
pub fn frame_stream(n: usize, seed: u64) -> Vec<Vec<i64>> {
    let mut rng = XorShift::new(seed);
    (0..n).map(|_| synth_frame(&mut rng)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::from_fix;

    #[test]
    fn deterministic_streams() {
        assert_eq!(frame_stream(5, 7), frame_stream(5, 7));
        assert_ne!(frame_stream(5, 7), frame_stream(5, 8));
    }

    #[test]
    fn frames_have_audio_shape() {
        let frames = frame_stream(20, 3);
        for f in &frames {
            assert_eq!(f.len(), K);
            for &v in f {
                let x = from_fix(v);
                assert!(x.abs() <= 0.5 + 1e-9, "bounded amplitude: {x}");
            }
        }
        // Low bins carry more average energy than high bins.
        let energy = |bin: usize| -> f64 {
            frames.iter().map(|f| from_fix(f[bin]).abs()).sum::<f64>() / frames.len() as f64
        };
        assert!(energy(0) > energy(K - 1), "spectral roll-off");
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut rng = XorShift::new(0);
        assert_ne!(rng.next_u64(), 0);
    }
}
