//! The glob-import surface, mirroring `proptest::prelude`.

pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy, Union};
pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
