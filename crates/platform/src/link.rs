//! The physical channel model.
//!
//! Stands in for the paper's experimental platform (Figure 11): a Xilinx
//! ML507 where the PPC440 (400 MHz) talks to FPGA logic (100 MHz) over
//! LocalLink with embedded HDMA engines. The paper reports a ~100
//! FPGA-cycle round-trip latency and up to 400 MB/s of streaming
//! bandwidth; the defaults here reproduce exactly those numbers
//! (50-cycle one-way latency, one 32-bit word per 100 MHz cycle).
//!
//! Time is measured in FPGA cycles throughout. The link is full duplex:
//! each direction has its own serialization resource.

use std::collections::VecDeque;

/// Direction of travel across the HW/SW boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dir {
    /// From the software partition to the hardware partition.
    SwToHw,
    /// From the hardware partition to the software partition.
    HwToSw,
}

impl Dir {
    fn idx(self) -> usize {
        match self {
            Dir::SwToHw => 0,
            Dir::HwToSw => 1,
        }
    }
}

/// Physical-channel parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkConfig {
    /// One-way message latency in FPGA cycles (default 50, i.e. a ~100
    /// cycle round trip as measured in §7).
    pub one_way_latency: u64,
    /// Serialization bandwidth in 32-bit words per FPGA cycle (default 1,
    /// i.e. 400 MB/s at 100 MHz).
    pub words_per_cycle: u64,
    /// CPU cycles the software driver spends per marshaled word
    /// (uncached bus access / memcpy into the DMA buffer).
    pub sw_word_cost: u64,
    /// Fixed CPU cycles per message on the software side (bus transaction
    /// setup — this is the §2 "overhead of a bus transaction" that burst
    /// transfer amortizes).
    pub sw_msg_overhead: u64,
    /// CPU cycles per FPGA cycle (default 4: 400 MHz / 100 MHz).
    pub cpu_per_fpga: u64,
}

impl Default for LinkConfig {
    fn default() -> Self {
        LinkConfig {
            one_way_latency: 50,
            words_per_cycle: 1,
            sw_word_cost: 8,
            sw_msg_overhead: 64,
            cpu_per_fpga: 4,
        }
    }
}

/// A message in flight: a marshaled value on one virtual channel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Index of the virtual channel (synchronizer) this belongs to.
    pub channel: usize,
    /// Marshaled payload.
    pub words: Vec<u32>,
}

#[derive(Debug, Default)]
struct Direction {
    /// When the serializer is next free (FPGA cycle).
    busy_until: u64,
    /// In-flight messages, ordered by delivery time.
    in_flight: VecDeque<(u64, Message)>,
    words_sent: u64,
    messages_sent: u64,
}

/// Cumulative traffic statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Words sent SW→HW.
    pub words_to_hw: u64,
    /// Words sent HW→SW.
    pub words_to_sw: u64,
    /// Messages sent SW→HW.
    pub msgs_to_hw: u64,
    /// Messages sent HW→SW.
    pub msgs_to_sw: u64,
}

/// The modeled physical link.
#[derive(Debug)]
pub struct Link {
    cfg: LinkConfig,
    dirs: [Direction; 2],
}

impl Link {
    /// Creates a link with the given parameters.
    pub fn new(cfg: LinkConfig) -> Link {
        Link { cfg, dirs: [Direction::default(), Direction::default()] }
    }

    /// The configuration.
    pub fn config(&self) -> &LinkConfig {
        &self.cfg
    }

    /// Enqueues a message at time `now`, returning its delivery time.
    /// Serialization occupies the direction's bandwidth back-to-back
    /// (burst behaviour: a long message is one DMA burst).
    pub fn send(&mut self, dir: Dir, msg: Message, now: u64) -> u64 {
        let d = &mut self.dirs[dir.idx()];
        let words = msg.words.len() as u64;
        let start = d.busy_until.max(now);
        let ser = words.div_ceil(self.cfg.words_per_cycle).max(1);
        d.busy_until = start + ser;
        let deliver_at = d.busy_until + self.cfg.one_way_latency;
        d.words_sent += words;
        d.messages_sent += 1;
        d.in_flight.push_back((deliver_at, msg));
        deliver_at
    }

    /// Pops every message whose delivery time is `<= now` in the given
    /// direction.
    pub fn deliveries(&mut self, dir: Dir, now: u64) -> Vec<Message> {
        let d = &mut self.dirs[dir.idx()];
        let mut out = Vec::new();
        while let Some((t, _)) = d.in_flight.front() {
            if *t <= now {
                out.push(d.in_flight.pop_front().expect("front exists").1);
            } else {
                break;
            }
        }
        out
    }

    /// Number of messages still in flight in a direction.
    pub fn in_flight(&self, dir: Dir) -> usize {
        self.dirs[dir.idx()].in_flight.len()
    }

    /// Traffic totals.
    pub fn stats(&self) -> LinkStats {
        LinkStats {
            words_to_hw: self.dirs[0].words_sent,
            words_to_sw: self.dirs[1].words_sent,
            msgs_to_hw: self.dirs[0].messages_sent,
            msgs_to_sw: self.dirs[1].messages_sent,
        }
    }

    /// CPU-cycle cost for the software side to marshal (or demarshal) a
    /// message of `words` words.
    pub fn sw_transfer_cost(&self, words: usize) -> u64 {
        self.cfg.sw_msg_overhead + self.cfg.sw_word_cost * words as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(ch: usize, n: usize) -> Message {
        Message { channel: ch, words: vec![0xaa; n] }
    }

    #[test]
    fn latency_is_config_plus_serialization() {
        let mut l = Link::new(LinkConfig::default());
        let t = l.send(Dir::SwToHw, msg(0, 1), 0);
        assert_eq!(t, 51, "1 cycle serialization + 50 latency");
        assert!(l.deliveries(Dir::SwToHw, 50).is_empty());
        assert_eq!(l.deliveries(Dir::SwToHw, 51).len(), 1);
        assert_eq!(l.in_flight(Dir::SwToHw), 0);
    }

    #[test]
    fn round_trip_is_about_100_cycles() {
        // The §7 headline: ping at t=0, echo immediately, response arrives
        // ~2 * (latency + serialization) ≈ 102 cycles later.
        let mut l = Link::new(LinkConfig::default());
        let t1 = l.send(Dir::SwToHw, msg(0, 1), 0);
        let t2 = l.send(Dir::HwToSw, msg(0, 1), t1);
        assert_eq!(t2, 102);
    }

    #[test]
    fn bandwidth_serializes_bursts() {
        let mut l = Link::new(LinkConfig::default());
        // A 128-word frame occupies the link 128 cycles.
        let t = l.send(Dir::SwToHw, msg(0, 128), 0);
        assert_eq!(t, 178);
        // The next message queues behind it.
        let t2 = l.send(Dir::SwToHw, msg(0, 128), 0);
        assert_eq!(t2, 306);
        // The opposite direction is independent (full duplex).
        let t3 = l.send(Dir::HwToSw, msg(0, 1), 0);
        assert_eq!(t3, 51);
    }

    #[test]
    fn deliveries_preserve_order() {
        let mut l = Link::new(LinkConfig::default());
        l.send(Dir::SwToHw, msg(1, 1), 0);
        l.send(Dir::SwToHw, msg(2, 1), 0);
        let d = l.deliveries(Dir::SwToHw, 1000);
        assert_eq!(d.len(), 2);
        assert_eq!(d[0].channel, 1);
        assert_eq!(d[1].channel, 2);
    }

    #[test]
    fn stats_accumulate() {
        let mut l = Link::new(LinkConfig::default());
        l.send(Dir::SwToHw, msg(0, 10), 0);
        l.send(Dir::HwToSw, msg(0, 3), 0);
        let s = l.stats();
        assert_eq!(s.words_to_hw, 10);
        assert_eq!(s.words_to_sw, 3);
        assert_eq!(s.msgs_to_hw, 1);
        assert_eq!(s.msgs_to_sw, 1);
    }

    #[test]
    fn sw_cost_scales_with_words() {
        let l = Link::new(LinkConfig::default());
        assert_eq!(l.sw_transfer_cost(0), 64);
        assert_eq!(l.sw_transfer_cost(10), 64 + 80);
    }

    #[test]
    fn sustained_streaming_hits_full_bandwidth() {
        // 400 MB/s at 100 MHz = 1 word/cycle: sending 1000 single-word
        // messages back-to-back occupies exactly 1000 cycles of link time.
        let mut l = Link::new(LinkConfig::default());
        let mut last = 0;
        for _ in 0..1000 {
            last = l.send(Dir::SwToHw, msg(0, 1), 0);
        }
        assert_eq!(last, 1000 + 50);
    }
}
