//! Criterion bench for Figure 13 (right): each ray-tracer partition
//! rendering a small image on the modeled platform.

use bcl_raytrace::bvh::build_bvh;
use bcl_raytrace::geom::{gen_rays, make_scene};
use bcl_raytrace::native::render;
use bcl_raytrace::partitions::{run_partition, RtPartition};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_partitions(c: &mut Criterion) {
    let bvh = build_bvh(&make_scene(64, 1));
    let mut g = c.benchmark_group("fig13_raytrace");
    g.sample_size(10);
    for p in RtPartition::ALL {
        g.bench_function(format!("partition_{}", p.label()), |b| {
            b.iter(|| {
                let run = run_partition(p, black_box(&bvh), 4, 4).unwrap();
                black_box(run.fpga_cycles)
            })
        });
    }
    g.bench_function("native_reference", |b| {
        let rays = gen_rays(4, 4);
        b.iter(|| black_box(render(black_box(&bvh), black_box(&rays))))
    });
    g.finish();
}

criterion_group!(benches, bench_partitions);
criterion_main!(benches);
