//! Live migration across processes: the parent runs the Vorbis decode
//! (partition E — the full back-end in hardware) to a mid-stream split
//! point, serializes the whole co-simulated system to the versioned
//! `BCKP` snapshot format, and pipes the bytes to a freshly spawned
//! child process. The child re-elaborates the same design from scratch,
//! restores the snapshot into it (the design fingerprint in the header
//! proves the two processes built interchangeable systems), and finishes
//! the decode. The parent checks that the migrated run's PCM and cycle
//! count are identical to an uninterrupted reference run.
//!
//! ```sh
//! cargo run --release --example migrate_demo
//! ```

use bcl_platform::cosim::{Cosim, RecoveryPolicy};
use bcl_platform::link::FaultConfig;
use bcl_vorbis::frames::frame_stream;
use bcl_vorbis::partitions::{make_cosim, VorbisPartition};
use std::io::{Read, Write};
use std::process::{Command, Stdio};

const SPLIT_CYCLE: u64 = 800;

fn frames() -> Vec<Vec<i64>> {
    frame_stream(3, 21)
}

/// The co-simulation both processes build — identical by construction,
/// which is exactly what the snapshot's design fingerprint certifies.
fn build() -> Result<Cosim, Box<dyn std::error::Error>> {
    Ok(make_cosim(
        VorbisPartition::E,
        &frames(),
        FaultConfig::none(),
        RecoveryPolicy::Fail,
        true,
    )?)
}

/// Runs a (fresh or resumed) co-simulation to stream completion and
/// reduces the PCM to a hash so it fits on one stdout line.
fn finish(cosim: &mut Cosim) -> Result<(u64, u64), Box<dyn std::error::Error>> {
    let want = frames().len();
    let out = cosim.run_until(|c| c.sink_count("audioDev") == want, 10_000_000)?;
    if !out.is_done() {
        return Err(format!("decode did not finish: {out:?}").into());
    }
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for x in bcl_vorbis::bcl::pcm_of_values(cosim.sink_values("audioDev")) {
        hash = (hash ^ x as u64).wrapping_mul(0x0000_0100_0000_01b3);
    }
    Ok((out.fpga_cycles(), hash))
}

/// Child half: read a snapshot from stdin, restore it into a freshly
/// elaborated system, finish the decode, report the result upstream.
fn child() -> Result<(), Box<dyn std::error::Error>> {
    let mut cosim = build()?;
    let resumed_at = {
        let mut stdin = std::io::stdin().lock();
        cosim.resume_from(&mut stdin)?;
        cosim.fpga_cycles
    };
    let (cycles, hash) = finish(&mut cosim)?;
    println!("resumed_at={resumed_at} cycles={cycles} pcm_hash={hash:016x}");
    Ok(())
}

fn parent() -> Result<(), Box<dyn std::error::Error>> {
    // The uninterrupted reference the migrated run must match exactly.
    let (ref_cycles, ref_hash) = finish(&mut build()?)?;
    println!("reference:  cycles={ref_cycles} pcm_hash={ref_hash:016x}");

    let mut cosim = build()?;
    let out = cosim.run_until(|c| c.fpga_cycles >= SPLIT_CYCLE, 10_000_000)?;
    if !out.is_done() {
        return Err(format!("never reached the split point: {out:?}").into());
    }
    let snapshot = cosim.snapshot_bytes()?;
    drop(cosim); // this process is done with the system — it lives in the bytes now
    println!(
        "parent:     decoded to cycle {}, snapshot is {} bytes",
        out.fpga_cycles(),
        snapshot.len()
    );

    let mut child = Command::new(std::env::current_exe()?)
        .arg("--child")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()?;
    child
        .stdin
        .take()
        .expect("child stdin is piped")
        .write_all(&snapshot)?;
    let mut report = String::new();
    child
        .stdout
        .take()
        .expect("child stdout is piped")
        .read_to_string(&mut report)?;
    let status = child.wait()?;
    if !status.success() {
        return Err(format!("child failed: {status}").into());
    }
    print!("child:      {report}");

    let field = |key: &str| -> Option<&str> {
        report
            .split_whitespace()
            .find_map(|kv| kv.strip_prefix(key)?.strip_prefix('='))
    };
    let cycles: u64 = field("cycles")
        .ok_or("child report missing cycles")?
        .parse()?;
    let hash = field("pcm_hash").ok_or("child report missing pcm_hash")?;
    let ok = cycles == ref_cycles && hash == format!("{ref_hash:016x}");
    println!(
        "\nmigrated run is bit- and cycle-identical: {}",
        if ok { "yes" } else { "NO!" }
    );
    if !ok {
        return Err("migration diverged from the reference run".into());
    }
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    if std::env::args().any(|a| a == "--child") {
        child()
    } else {
        parent()
    }
}
