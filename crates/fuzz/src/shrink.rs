//! Spec-level minimization of failing cases.
//!
//! The vendored proptest stand-in does not shrink, so the harness does
//! it at the [`DesignSpec`]/[`FaultPlan`] level instead, which produces
//! far more readable minima than byte-level shrinking would anyway: a
//! failing case collapses to the fewest stages, smallest item stream,
//! and quietest fault plan that still reproduces the failure.
//!
//! The algorithm is a greedy fixpoint loop: each round proposes a fixed
//! list of simplifications (drop the diamond, drop the submodule wrap,
//! drop the last stage, neutralize a transform, move a stage to
//! software, halve the item stream, clear the partition fault, zero the
//! link fault rates, route via the hub) and keeps any candidate on
//! which the predicate still fails. When a full round keeps nothing,
//! the case is minimal with respect to these moves.

use crate::gen::{DesignSpec, FaultPlan, StageSpec, Transform};

/// One shrinking candidate: a simplified `(spec, plan)` pair, or `None`
/// when the move does not apply.
type Candidate = Option<(DesignSpec, FaultPlan)>;

fn candidates(spec: &DesignSpec, plan: &FaultPlan) -> Vec<Candidate> {
    let mut out: Vec<Candidate> = Vec::new();
    let keep = |s: DesignSpec, p: FaultPlan| Some((s, p));

    // Structural moves on the design.
    if spec.diamond.is_some() {
        let mut s = spec.clone();
        s.diamond = None;
        out.push(keep(s, plan.clone()));
    }
    if spec.wrap_stage.is_some() {
        let mut s = spec.clone();
        s.wrap_stage = None;
        out.push(keep(s, plan.clone()));
    }
    if spec.stages.len() > 1 {
        for i in 0..spec.stages.len() {
            let mut s = spec.clone();
            s.stages.remove(i);
            // Stage indices shifted; drop the wrap rather than track it
            // (a separate candidate removes the wrap anyway).
            s.wrap_stage = None;
            out.push(keep(s, plan.clone()));
        }
    }
    for (i, st) in spec.stages.iter().enumerate() {
        if st.transform != Transform::AddConst(0) {
            let mut s = spec.clone();
            s.stages[i] = StageSpec {
                domain: st.domain,
                transform: Transform::AddConst(0),
            };
            out.push(keep(s, plan.clone()));
        }
        if st.domain != 0 {
            let mut s = spec.clone();
            s.stages[i].domain = 0;
            out.push(keep(s, plan.clone()));
        }
    }
    if spec.items.len() > 1 {
        let mut s = spec.clone();
        s.items.truncate(spec.items.len() / 2);
        out.push(keep(s, plan.clone()));
    }
    if spec.width != 8 {
        let mut s = spec.clone();
        s.width = 8;
        out.push(keep(s, plan.clone()));
    }
    if spec.depth != 1 {
        let mut s = spec.clone();
        s.depth = 1;
        out.push(keep(s, plan.clone()));
    }

    // Quieting moves on the fault plan.
    if plan.partition.is_some() {
        let mut p = plan.clone();
        p.partition = None;
        out.push(keep(spec.clone(), p));
    }
    if plan.drop + plan.corrupt + plan.dup + plan.reorder > 0 {
        let mut p = plan.clone();
        p.drop = 0;
        p.corrupt = 0;
        p.dup = 0;
        p.reorder = 0;
        out.push(keep(spec.clone(), p));
    }
    if plan.fabric {
        let mut p = plan.clone();
        p.fabric = false;
        out.push(keep(spec.clone(), p));
    }

    out
}

/// Greedily minimizes a failing `(spec, plan)` pair under `fails` (the
/// predicate must return `true` on the input pair, i.e. "still
/// reproduces"). Returns the smallest pair found.
pub fn shrink_case(
    spec: &DesignSpec,
    plan: &FaultPlan,
    fails: impl Fn(&DesignSpec, &FaultPlan) -> bool,
) -> (DesignSpec, FaultPlan) {
    let mut cur = (spec.clone(), plan.clone());
    loop {
        let mut progressed = false;
        for cand in candidates(&cur.0, &cur.1).into_iter().flatten() {
            if fails(&cand.0, &cand.1) {
                cur = cand;
                progressed = true;
                break;
            }
        }
        if !progressed {
            return cur;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn big_spec() -> DesignSpec {
        DesignSpec {
            width: 32,
            depth: 3,
            stages: vec![
                StageSpec {
                    domain: 1,
                    transform: Transform::MulConst(3),
                },
                StageSpec {
                    domain: 2,
                    transform: Transform::XorConst(5),
                },
                StageSpec {
                    domain: 3,
                    transform: Transform::AccAdd(2),
                },
            ],
            diamond: Some(1),
            wrap_stage: Some(0),
            items: vec![1, 2, 3, 4, 5, 6, 7, 8],
        }
    }

    #[test]
    fn shrinks_to_minimal_reproducer() {
        // Synthetic failure: "any spec with an AccAdd stage fails".
        let plan = FaultPlan {
            seed: 1,
            drop: 30,
            corrupt: 5,
            dup: 5,
            reorder: 5,
            fabric: true,
            partition: None,
        };
        let has_acc = |s: &DesignSpec, _: &FaultPlan| {
            s.stages
                .iter()
                .any(|st| matches!(st.transform, Transform::AccAdd(_)))
        };
        let spec = big_spec();
        assert!(has_acc(&spec, &plan));
        let (min_s, min_p) = shrink_case(&spec, &plan, has_acc);
        // The failing ingredient survives; everything else is gone.
        assert!(has_acc(&min_s, &min_p));
        assert_eq!(min_s.stages.len(), 1);
        assert_eq!(min_s.diamond, None);
        assert_eq!(min_s.wrap_stage, None);
        assert_eq!(min_s.items.len(), 1);
        assert_eq!(min_s.width, 8);
        assert_eq!(min_s.depth, 1);
        assert!(min_p.is_fault_free());
        assert!(!min_p.fabric);
        assert_eq!(min_s.stages[0].domain, 0);
    }

    #[test]
    fn shrink_is_identity_when_nothing_simpler_fails() {
        let spec = DesignSpec {
            width: 8,
            depth: 1,
            stages: vec![StageSpec {
                domain: 0,
                transform: Transform::AddConst(0),
            }],
            diamond: None,
            wrap_stage: None,
            items: vec![0],
        };
        let plan = FaultPlan::quiet();
        let exact = |s: &DesignSpec, p: &FaultPlan| s == &spec && p == &plan;
        let (min_s, min_p) = shrink_case(&spec, &plan, exact);
        assert_eq!(min_s, spec);
        assert_eq!(min_p, plan);
    }
}
