//! Demonstrates hardware failback: an offload accelerator dies
//! mid-stream, the cosim splices it into software (`FailoverToSoftware`),
//! then a scripted `ReviveAt` re-partitions the live state back out of
//! the fused design and the stream finishes in hardware. The demo prints
//! per-phase throughput (items drained per 1000 FPGA cycles) and guard
//! evaluations per cycle, showing throughput collapsing to CPU speed
//! while the partition is software-owned and recovering after revival —
//! with the final output bit-identical throughout.
//!
//! ```sh
//! cargo run --release --example failback_demo
//! cargo run --release --example failback_demo -- --latency
//! ```
//!
//! `--latency` runs the revive-latency sweep recorded in EXPERIMENTS.md:
//! cycles from the revival firing until the partition is running again,
//! as a function of the live-state size being shipped across the link.

use bcl_core::builder::{dsl::*, ModuleBuilder};
use bcl_core::domain::{HW, SW};
use bcl_core::partition::partition;
use bcl_core::program::Program;
use bcl_core::sched::SwOptions;
use bcl_core::types::Type;
use bcl_core::value::Value;
use bcl_platform::cosim::{Cosim, PartitionLifecycle, RecoveryPolicy};
use bcl_platform::link::{FaultConfig, LinkConfig, PartitionFault};

/// src(SW) -> inSync(depth) -> compute(HW) -> outSync(depth) -> snk(SW):
/// every item crosses the accelerator. The kernel sums 48 shifted copies
/// of the input — one rule, one hardware cycle, but ~100 weighted ALU
/// ops for the software interpreter, like the paper's IMDCT butterflies.
/// When `scratch > 0` the compute rule also journals into a
/// `scratch`-entry register file, so the partition carries that much
/// extra live state (power of two).
fn offload_design(depth: usize, scratch: usize) -> bcl_core::design::Design {
    let mut m = ModuleBuilder::new("Offload");
    m.source("src", Type::Int(32), SW);
    m.sink("snk", Type::Int(32), SW);
    m.channel("inSync", depth, Type::Int(32), SW, HW);
    m.channel("outSync", depth, Type::Int(32), HW, SW);
    m.rule("feed", with_first("x", "src", enq("inSync", var("x"))));
    let kernel = (0..48).fold(var("x"), |e, i| {
        add(e, shr(var("x"), cint(32, (i % 13) as i64)))
    });
    let forward = enq("outSync", kernel);
    let body = if scratch > 0 {
        m.regfile(
            "scratch",
            scratch,
            Type::Int(32),
            vec![Value::int(32, 0); scratch],
        );
        par(vec![
            upd(
                "scratch",
                and(var("x"), cint(32, scratch as i64 - 1)),
                var("x"),
            ),
            forward,
        ])
    } else {
        forward
    };
    m.rule("compute", with_first("x", "inSync", body));
    m.rule("drain", with_first("y", "outSync", enq("snk", var("y"))));
    bcl_core::elaborate(&Program::with_root(m.build())).unwrap()
}

/// A fast DMA driver: per-message overhead low enough that the link, not
/// the CPU driver, bounds hardware-phase throughput.
fn link_cfg() -> LinkConfig {
    LinkConfig {
        sw_msg_overhead: 8,
        sw_word_cost: 1,
        ..LinkConfig::default()
    }
}

fn lifecycle_demo() -> Result<(), Box<dyn std::error::Error>> {
    const ITEMS: usize = 2_000;
    // Past the pipeline's startup transient, so the table's first row
    // shows hardware steady state rather than the fill.
    const DIE_AT: u64 = 2_500;
    const REVIVE_AT: u64 = 6_000;

    // Deep channels so the accelerator can pipeline over the ~100-cycle
    // link round trip; with shallow channels the credit window, not the
    // compute, would bound hardware throughput.
    let design = offload_design(64, 0);
    let parts = partition(&design, SW)?;

    // The fault-free reference: the revived run must match it bit for bit.
    let clean: Vec<i64> = {
        let mut cs = Cosim::with_faults(
            &parts,
            SW,
            HW,
            link_cfg(),
            FaultConfig::none(),
            SwOptions::default(),
        )?;
        for i in 0..ITEMS as i64 {
            cs.push_source("src", Value::int(32, i));
        }
        let out = cs.run_until(|c| c.sink_count("snk") == ITEMS, 10_000_000)?;
        assert!(out.is_done(), "clean run did not converge: {out:?}");
        cs.sink_values("snk")
            .iter()
            .map(|v| v.as_int().unwrap())
            .collect()
    };

    let faults = FaultConfig::none()
        .with_partition_fault(PartitionFault::DieAt(DIE_AT))
        .with_partition_fault(PartitionFault::ReviveAt(REVIVE_AT));
    let mut cs = Cosim::with_faults(&parts, SW, HW, link_cfg(), faults, SwOptions::default())?;
    cs.set_recovery_policy(RecoveryPolicy::failover(100));
    for i in 0..ITEMS as i64 {
        cs.push_source("src", Value::int(32, i));
    }

    println!("die @ {DIE_AT}, revive @ {REVIVE_AT}, {ITEMS} items through the accelerator\n");
    println!(
        "{:<16} {:>8} {:>8} {:>12} {:>12}",
        "phase", "cycles", "items", "items/kcycle", "guards/cycle"
    );

    // Walk the run phase by phase, cutting a throughput sample at every
    // lifecycle transition of the accelerator partition.
    let mut phase = PartitionLifecycle::Running;
    let (mut cyc0, mut snk0) = (0u64, 0usize);
    let mut guards0 = cs.guard_eval_totals().0;
    let report = |name: &str, cyc0: u64, cyc1: u64, snk0: usize, snk1: usize, g0: u64, g1: u64| {
        let cycles = cyc1 - cyc0;
        if cycles == 0 {
            return;
        }
        println!(
            "{:<16} {:>8} {:>8} {:>12.1} {:>12.2}",
            name,
            cycles,
            snk1 - snk0,
            (snk1 - snk0) as f64 * 1_000.0 / cycles as f64,
            (g1 - g0) as f64 / cycles as f64,
        );
    };
    while cs.sink_count("snk") < ITEMS {
        cs.step()?;
        assert!(cs.fpga_cycles < 10_000_000, "demo did not converge");
        let now = cs
            .partition_lifecycle(HW)
            .expect("the accelerator partition is always known");
        if now != phase {
            let guards = cs.guard_eval_totals().0;
            report(
                label(phase),
                cyc0,
                cs.fpga_cycles,
                snk0,
                cs.sink_count("snk"),
                guards0,
                guards,
            );
            phase = now;
            cyc0 = cs.fpga_cycles;
            snk0 = cs.sink_count("snk");
            guards0 = guards;
        }
    }
    let guards = cs.guard_eval_totals().0;
    report(
        label(phase),
        cyc0,
        cs.fpga_cycles,
        snk0,
        cs.sink_count("snk"),
        guards0,
        guards,
    );

    let got: Vec<i64> = cs
        .sink_values("snk")
        .iter()
        .map(|v| v.as_int().unwrap())
        .collect();
    let ok = got == clean;
    println!(
        "\nfinal: {} items, bit-identical: {}, back in hardware: {}",
        cs.sink_count("snk"),
        if ok { "yes" } else { "NO!" },
        if cs.partition_lifecycle(HW) == Some(PartitionLifecycle::Running) {
            "yes"
        } else {
            "NO!"
        }
    );
    Ok(())
}

fn label(p: PartitionLifecycle) -> &'static str {
    match p {
        PartitionLifecycle::Running => "Running",
        PartitionLifecycle::Dead => "Dead",
        PartitionLifecycle::SoftwareOwned => "SoftwareOwned",
        PartitionLifecycle::Reviving => "Reviving",
    }
}

/// The EXPERIMENTS.md revive-latency sweep: kill an accelerator that
/// carries a `scratch`-entry register file, revive it, and measure the
/// cycles from the revival firing until the partition is running again.
/// The handback ships the whole live state (registers + channel FIFOs)
/// across the link at `words_per_cycle`, so the latency is the link's
/// one-way latency plus one cycle per live word.
fn latency_sweep() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{:>8} {:>14} {:>15}",
        "scratch", "revive cycle", "revive latency"
    );
    for scratch in [4usize, 64, 256, 1024] {
        let parts = partition(&offload_design(4, scratch), SW)?;
        let faults = FaultConfig::none().with_partition_fault(PartitionFault::DieAt(400));
        let mut cs = Cosim::with_faults(
            &parts,
            SW,
            HW,
            LinkConfig::default(),
            faults,
            SwOptions::default(),
        )?;
        cs.set_recovery_policy(RecoveryPolicy::failover(50));
        for i in 0..400i64 {
            cs.push_source("src", Value::int(32, i));
        }
        while cs.partition_lifecycle(HW) != Some(PartitionLifecycle::SoftwareOwned) {
            cs.step()?;
            assert!(cs.fpga_cycles < 1_000_000, "failover never completed");
        }
        let fired_at = cs.fpga_cycles;
        cs.revive(HW)?;
        while cs.partition_lifecycle(HW) != Some(PartitionLifecycle::Running) {
            cs.step()?;
            assert!(cs.fpga_cycles < 1_000_000, "revival never completed");
        }
        println!(
            "{:>8} {:>14} {:>15}",
            scratch,
            fired_at,
            cs.fpga_cycles - fired_at
        );
    }
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    if std::env::args().any(|a| a == "--latency") {
        latency_sweep()
    } else {
        lifecycle_demo()
    }
}
