//! The differential harness: one generated design, seven executor legs,
//! one verdict.
//!
//! [`run_case`] pushes a spec through the full toolchain and then runs
//! the elaborated design on every executor the workspace has:
//!
//! 1. the naive interpreter (`SwRunner` with `event_driven: false`),
//! 2. the event-driven Vm (`event_driven: true`), which must match the
//!    naive run *cycle-identically* (same `cpu_cycles`, same per-rule
//!    firing counts), not just value-identically,
//! 3. the fused single-process design (`fuse_partitioned`),
//! 4. the N-partition co-simulation under the given fault plan,
//! 5. the flat arena store (`SwOptions { flat: true }`): naive and
//!    event-driven software runs plus a flat-backed co-simulation, each
//!    of which must be bit- and cycle-identical to its tree-backed twin,
//!    and
//! 6. the closure-threaded native backend (`SwOptions { compiled: true
//!    }`): compiled naive and compiled event-driven software runs plus a
//!    compiled co-simulation, each bit- and cycle-identical to its
//!    interpreted twin, and
//! 7. the word path (`compiled: true, flat: true`): the same native
//!    closures over the flat arena, with scalar port traffic running as
//!    unboxed `u64` words — again bit- and cycle-identical.
//!
//! All output streams must equal the spec's gold model bit-for-bit. For
//! fault-free plans the co-simulation additionally runs in both
//! event-driven and naive hardware modes and the modeled FPGA cycle
//! counts must agree exactly.
//!
//! Failures come back as `Err(String)` with the pretty-printed program
//! embedded, so a failing case can be promoted into `tests/corpus/`
//! verbatim.

use crate::gen::{build_program, expected_outputs, DesignSpec, FaultPlan};
use bcl_core::domain::SW;
use bcl_core::partition::{fuse_partitioned, partition};
use bcl_core::sched::{Strategy, SwOptions, SwRunner};
use bcl_core::value::Value;
use bcl_core::{analysis, elaborate, Design};
use bcl_platform::cosim::{Cosim, HwPartitionCfg, InterHwRouting};

/// Firing budget for the pure-software runs (generated designs process
/// at most a dozen items through a handful of stages).
const SW_BUDGET: u64 = 1_000_000;

/// Cycle budget for the co-simulated runs (large enough to ride out
/// go-back-N retransmission storms and late revivals).
const COSIM_BUDGET: u64 = 4_000_000;

fn sink_ints(d: &Design, runner: &SwRunner, path: &str) -> Result<Vec<i64>, String> {
    let id = d
        .prim_id(path)
        .ok_or_else(|| format!("design lost its `{path}` sink"))?;
    runner
        .store
        .try_sink_values(id)
        .map_err(|e| e.to_string())?
        .iter()
        .map(|v| v.as_int().map_err(|e| e.to_string()))
        .collect()
}

fn run_sw(d: &Design, spec: &DesignSpec, event_driven: bool) -> Result<SwRunner, String> {
    run_sw_on(d, spec, event_driven, false, false)
}

fn run_sw_on(
    d: &Design,
    spec: &DesignSpec,
    event_driven: bool,
    flat: bool,
    compiled: bool,
) -> Result<SwRunner, String> {
    let opts = SwOptions {
        strategy: Strategy::Dataflow,
        event_driven,
        flat,
        compiled,
        ..SwOptions::default()
    };
    let mut r = SwRunner::new(d, opts);
    let src = d
        .prim_id("src")
        .ok_or_else(|| "design lost its `src` source".to_string())?;
    for &v in &spec.items {
        r.store
            .try_push_source(src, Value::int(spec.width, v))
            .map_err(|e| e.to_string())?;
    }
    let fired = r
        .run_until_quiescent(SW_BUDGET)
        .map_err(|e| format!("software run failed: {e}"))?;
    if fired >= SW_BUDGET {
        return Err(format!(
            "software run did not quiesce in {SW_BUDGET} firings"
        ));
    }
    Ok(r)
}

/// Runs one generated case through every executor; `Err` carries a
/// human-readable report including the pretty-printed program.
pub fn run_case(spec: &DesignSpec, plan: &FaultPlan) -> Result<(), String> {
    let program = build_program(spec);
    let text = bcl_frontend::pretty::pretty_program(&program);
    run_case_inner(spec, plan, &program)
        .map_err(|e| format!("{e}\nspec: {spec:?}\nplan: {plan:?}\nprogram:\n{text}"))
}

fn run_case_inner(
    spec: &DesignSpec,
    plan: &FaultPlan,
    program: &bcl_core::program::Program,
) -> Result<(), String> {
    // Front door: a generated spec is well-typed by construction, so
    // every static stage must accept it.
    bcl_frontend::typecheck::typecheck(program).map_err(|e| format!("typecheck: {e}"))?;
    let design = elaborate(program).map_err(|e| format!("elaborate: {e}"))?;
    analysis::validate(&design).map_err(|errs| {
        let msgs: Vec<String> = errs.iter().map(|e| e.to_string()).collect();
        format!("validate rejected a generated design: {}", msgs.join("; "))
    })?;

    let gold = expected_outputs(spec);

    // Executor A: naive interpreter.
    let naive = run_sw(&design, spec, false)?;
    let got_a = sink_ints(&design, &naive, "snk")?;
    if got_a != gold {
        return Err(format!(
            "naive interpreter disagrees with gold model:\n  got  {got_a:?}\n  want {gold:?}"
        ));
    }

    // Executor B: event-driven Vm — value- and cycle-identical to A.
    let event = run_sw(&design, spec, true)?;
    let got_b = sink_ints(&design, &event, "snk")?;
    if got_b != gold {
        return Err(format!(
            "event-driven Vm disagrees with gold model:\n  got  {got_b:?}\n  want {gold:?}"
        ));
    }
    let (ra, rb) = (naive.report(), event.report());
    if ra != rb {
        return Err(format!(
            "event-driven Vm is not cycle-identical to the naive interpreter:\n  \
             naive {ra:?}\n  event {rb:?}"
        ));
    }

    // Executor E (software half): the flat arena store, in both guard
    // scheduling modes. Each run must be bit- and cycle-identical to
    // its tree-backed twin — equal sink streams and equal SwReports
    // (per-rule firing counts and modeled cpu_cycles).
    for (event_driven, tree_report) in [(false, &ra), (true, &rb)] {
        let flat_run = run_sw_on(&design, spec, event_driven, true, false)?;
        let got = sink_ints(&design, &flat_run, "snk")?;
        if got != gold {
            return Err(format!(
                "flat store (event_driven={event_driven}) disagrees with gold model:\n  \
                 got  {got:?}\n  want {gold:?}"
            ));
        }
        let rf = flat_run.report();
        if rf != *tree_report {
            return Err(format!(
                "flat store (event_driven={event_driven}) is not cycle-identical to the \
                 tree store:\n  tree {tree_report:?}\n  flat {rf:?}"
            ));
        }
    }

    // Executor F (software half): the closure-threaded native backend,
    // in both guard scheduling modes. Each run must be bit- and
    // cycle-identical to its interpreted twin.
    for (event_driven, tree_report) in [(false, &ra), (true, &rb)] {
        let native_run = run_sw_on(&design, spec, event_driven, false, true)?;
        let got = sink_ints(&design, &native_run, "snk")?;
        if got != gold {
            return Err(format!(
                "compiled backend (event_driven={event_driven}) disagrees with gold model:\n  \
                 got  {got:?}\n  want {gold:?}"
            ));
        }
        let rn = native_run.report();
        if rn != *tree_report {
            return Err(format!(
                "compiled backend (event_driven={event_driven}) is not cycle-identical to \
                 the interpreter:\n  interp {tree_report:?}\n  compiled {rn:?}"
            ));
        }
        // And the word path: the same native closures over a flat
        // arena store, where scalar port traffic runs unboxed.
        let word_run = run_sw_on(&design, spec, event_driven, true, true)?;
        let got = sink_ints(&design, &word_run, "snk")?;
        if got != gold {
            return Err(format!(
                "compiled+flat backend (event_driven={event_driven}) disagrees with gold \
                 model:\n  got  {got:?}\n  want {gold:?}"
            ));
        }
        let rw = word_run.report();
        if rw != *tree_report {
            return Err(format!(
                "compiled+flat backend (event_driven={event_driven}) is not cycle-identical \
                 to the interpreter:\n  interp {tree_report:?}\n  compiled+flat {rw:?}"
            ));
        }
    }

    // Executor C: fused single-process design.
    let parts = partition(&design, SW).map_err(|e| format!("partition: {e}"))?;
    let fused = fuse_partitioned(&parts).map_err(|e| format!("fuse: {e}"))?;
    let fused_run = run_sw(&fused.design, spec, true)?;
    let got_c = sink_ints(&fused.design, &fused_run, "snk")?;
    if got_c != gold {
        return Err(format!(
            "fused design disagrees with gold model:\n  got  {got_c:?}\n  want {gold:?}"
        ));
    }

    // Executor D: N-partition co-simulation under the fault plan.
    let hw = parts.hw_domains(SW);
    let cosim_cycles_of =
        |hw_event_driven: bool, flat: bool, compiled: bool| -> Result<(Vec<i64>, u64), String> {
            let cfgs: Vec<HwPartitionCfg> = hw
                .iter()
                .enumerate()
                .map(|(i, d)| {
                    let fc = if i == 0 {
                        plan.fault_config()
                    } else {
                        plan.link_only_config()
                    };
                    HwPartitionCfg::new(d)
                        .with_faults(fc)
                        .with_event_driven(hw_event_driven)
                        .with_compiled(compiled)
                })
                .collect();
            let routing = if plan.fabric {
                InterHwRouting::fabric()
            } else {
                InterHwRouting::ViaHub
            };
            let sw_opts = SwOptions {
                flat,
                compiled,
                ..SwOptions::default()
            };
            let mut cs = Cosim::multi(&parts, SW, &cfgs, routing, sw_opts)
                .map_err(|e| format!("cosim setup: {e}"))?;
            if let Some(p) = plan.recovery() {
                cs.set_recovery_policy(p);
            }
            for &v in &spec.items {
                cs.try_push_source("src", Value::int(spec.width, v))
                    .map_err(|e| format!("cosim push: {e}"))?;
            }
            let n = gold.len();
            let out = cs
                .run_until(|c| c.sink_count("snk") == n, COSIM_BUDGET)
                .map_err(|e| format!("cosim run: {e}"))?;
            if !out.is_done() {
                return Err(format!(
                    "cosim did not deliver all {n} outputs within {COSIM_BUDGET} cycles \
                 (got {})",
                    cs.sink_count("snk")
                ));
            }
            let got: Vec<i64> = cs
                .sink_values("snk")
                .iter()
                .map(|v| v.as_int().map_err(|e| e.to_string()))
                .collect::<Result<_, _>>()?;
            Ok((got, out.fpga_cycles()))
        };

    let (got_d, cycles_event) = cosim_cycles_of(true, false, false)?;
    if got_d != gold {
        return Err(format!(
            "co-simulation disagrees with gold model:\n  got  {got_d:?}\n  want {gold:?}"
        ));
    }

    // Executor E (platform half): the same co-simulation over flat
    // arena stores on both sides of the link — same value stream, same
    // modeled FPGA time.
    let (got_flat, cycles_flat) = cosim_cycles_of(true, true, false)?;
    if got_flat != gold {
        return Err(format!(
            "flat-store co-simulation disagrees with gold model:\n  \
             got  {got_flat:?}\n  want {gold:?}"
        ));
    }
    if cycles_flat != cycles_event {
        return Err(format!(
            "flat-store co-simulation is not cycle-identical to the tree store: \
             {cycles_flat} vs {cycles_event} FPGA cycles"
        ));
    }

    // Executor F (platform half): the same co-simulation with every
    // scheduler on the native backend — same value stream, same modeled
    // FPGA time.
    let (got_native, cycles_native) = cosim_cycles_of(true, false, true)?;
    if got_native != gold {
        return Err(format!(
            "compiled co-simulation disagrees with gold model:\n  \
             got  {got_native:?}\n  want {gold:?}"
        ));
    }
    if cycles_native != cycles_event {
        return Err(format!(
            "compiled co-simulation is not cycle-identical to the interpreter: \
             {cycles_native} vs {cycles_event} FPGA cycles"
        ));
    }

    // Word path: the native backend over flat arena stores on both
    // sides of the link — unboxed port traffic, same stream, same time.
    let (got_word, cycles_word) = cosim_cycles_of(true, true, true)?;
    if got_word != gold {
        return Err(format!(
            "compiled+flat co-simulation disagrees with gold model:\n  \
             got  {got_word:?}\n  want {gold:?}"
        ));
    }
    if cycles_word != cycles_event {
        return Err(format!(
            "compiled+flat co-simulation is not cycle-identical to the interpreter: \
             {cycles_word} vs {cycles_event} FPGA cycles"
        ));
    }

    // For fault-free plans the event-driven and naive hardware
    // schedulers must also agree on modeled FPGA time exactly.
    if plan.is_fault_free() && !hw.is_empty() {
        let (got_naive_hw, cycles_naive) = cosim_cycles_of(false, false, false)?;
        if got_naive_hw != gold {
            return Err(format!(
                "naive-hardware co-simulation disagrees with gold model:\n  \
                 got  {got_naive_hw:?}\n  want {gold:?}"
            ));
        }
        if cycles_event != cycles_naive {
            return Err(format!(
                "event-driven hardware is not cycle-identical to naive hardware: \
                 {cycles_event} vs {cycles_naive} FPGA cycles"
            ));
        }
    }

    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{PartitionPlan, StageSpec, Transform};

    fn spec() -> DesignSpec {
        DesignSpec {
            width: 16,
            depth: 2,
            stages: vec![
                StageSpec {
                    domain: 1,
                    transform: Transform::AddConst(7),
                },
                StageSpec {
                    domain: 2,
                    transform: Transform::RegFileMix(4),
                },
            ],
            diamond: None,
            wrap_stage: None,
            items: vec![1, 2, 3, 2, 1],
        }
    }

    #[test]
    fn clean_case_passes() {
        run_case(&spec(), &FaultPlan::quiet()).unwrap();
    }

    #[test]
    fn faulted_case_passes() {
        let plan = FaultPlan {
            seed: 7,
            drop: 20,
            corrupt: 10,
            dup: 10,
            reorder: 10,
            fabric: true,
            partition: Some(PartitionPlan::Die {
                at: 40,
                interval: 25,
            }),
        };
        run_case(&spec(), &plan).unwrap();
    }

    #[test]
    fn all_software_case_passes() {
        let mut s = spec();
        for st in &mut s.stages {
            st.domain = 0;
        }
        run_case(&s, &FaultPlan::quiet()).unwrap();
    }
}
