//! Event-driven scheduling is an *optimization*, not a semantics change:
//! with guard-verdict caching and dirty-set invalidation switched on, both
//! schedulers must produce exactly the trace the naive
//! evaluate-every-guard reference mode produces — the same rules firing
//! in the same order, the same sink streams, the same hardware cycle
//! counts, and (for software, thanks to cost-replay on cache hits) the
//! same modeled CPU cycles. The only observable difference is the
//! `guard_evals_skipped` counter, which records the avoided work.
//!
//! CI pins `PROPTEST_SEED` so failures reproduce exactly.

use bcl_core::builder::{dsl::*, ModuleBuilder};
use bcl_core::design::Design;
use bcl_core::program::Program;
use bcl_core::sched::{HwSim, Strategy, SwOptions, SwRunner};
use bcl_core::store::Store;
use bcl_core::types::Type;
use bcl_core::value::Value;
use proptest::prelude::*;

/// A pipeline of `stages` FIFO stages plus a register-guarded marker
/// rule, so the guard population mixes FIFO occupancy guards (hot: they
/// change every firing) with a register comparison guard (cold: it
/// changes once), exercising both the invalidation and the caching side
/// of the event-driven scheduler.
fn test_design(stages: usize, depth: usize) -> Design {
    let q = |s: usize| format!("q{s}");
    let mut m = ModuleBuilder::new("EqPipe");
    m.source("src", Type::Int(32), "HW");
    m.sink("snk", Type::Int(32), "HW");
    for s in 0..stages {
        m.fifo(q(s), depth, Type::Int(32));
    }
    m.reg("count", Value::int(32, 0));
    m.rule("feed", with_first("x", "src", enq("q0", var("x"))));
    for s in 0..stages - 1 {
        m.rule(
            format!("s{s}"),
            with_first(
                "x",
                &q(s),
                enq(&q(s + 1), add(var("x"), cint(32, s as i64 + 1))),
            ),
        );
    }
    m.rule(
        "drain",
        with_first(
            "x",
            &q(stages - 1),
            par(vec![
                enq("snk", var("x")),
                write("count", add(read("count"), cint(32, 1))),
            ]),
        ),
    );
    // Fires exactly once, when the third item drains.
    m.rule(
        "mark",
        when_a(
            eq(read("count"), cint(32, 3)),
            write("count", add(read("count"), cint(32, 100))),
        ),
    );
    bcl_core::elaborate(&Program::with_root(m.build())).unwrap()
}

fn preload(design: &Design, inputs: &[i64]) -> Store {
    let mut store = Store::new(design);
    let src = design.prim_id("src").unwrap();
    for &i in inputs {
        store.push_source(src, Value::int(32, i));
    }
    store
}

fn sink_ints(design: &Design, store: &Store) -> Vec<i64> {
    let snk = design.prim_id("snk").unwrap();
    store
        .sink_values(snk)
        .iter()
        .map(|v| v.as_int().unwrap())
        .collect()
}

/// Runs the software scheduler to quiescence, recording the per-step
/// fired/quiescent outcome. Returns (trace, per-rule fired counts,
/// cpu_cycles, sink stream).
fn run_sw(
    design: &Design,
    inputs: &[i64],
    strategy: Strategy,
    event_driven: bool,
) -> (Vec<bool>, Vec<u64>, u64, Vec<i64>, u64) {
    run_sw_on(design, inputs, strategy, event_driven, false)
}

/// Like [`run_sw`], with the closure-threaded native backend toggled.
fn run_sw_on(
    design: &Design,
    inputs: &[i64],
    strategy: Strategy,
    event_driven: bool,
    compiled: bool,
) -> (Vec<bool>, Vec<u64>, u64, Vec<i64>, u64) {
    let opts = SwOptions {
        strategy,
        event_driven,
        compiled,
        ..Default::default()
    };
    let mut r = SwRunner::with_store(design, preload(design, inputs), opts);
    let mut trace = Vec::new();
    for _ in 0..100_000 {
        let fired = r.step().unwrap();
        trace.push(fired);
        if !fired {
            break;
        }
    }
    let rep = r.report();
    let out = sink_ints(design, &r.store);
    (
        trace,
        rep.fired,
        rep.cpu_cycles,
        out,
        r.cost.guard_evals_skipped,
    )
}

/// Runs the hardware simulator to quiescence, recording the per-cycle
/// firing count. Returns (trace, per-rule fired counts, cycles, peak
/// concurrency, sink stream, guard_evals, guard_evals_skipped).
#[allow(clippy::type_complexity)]
fn run_hw(
    design: &Design,
    inputs: &[i64],
    event_driven: bool,
) -> (Vec<usize>, Vec<u64>, u64, usize, Vec<i64>, u64, u64) {
    run_hw_on(design, inputs, event_driven, false)
}

/// Like [`run_hw`], with the closure-threaded native backend toggled.
#[allow(clippy::type_complexity)]
fn run_hw_on(
    design: &Design,
    inputs: &[i64],
    event_driven: bool,
    compiled: bool,
) -> (Vec<usize>, Vec<u64>, u64, usize, Vec<i64>, u64, u64) {
    let mut sim = HwSim::with_store(design, preload(design, inputs)).unwrap();
    sim.event_driven = event_driven;
    sim.compiled = compiled;
    let mut trace = Vec::new();
    for _ in 0..100_000 {
        let fired = sim.step().unwrap();
        trace.push(fired);
        if fired == 0 {
            break;
        }
    }
    let rep = sim.report();
    let out = sink_ints(design, &sim.store);
    (
        trace,
        rep.fired,
        rep.cycles,
        rep.peak_concurrency,
        out,
        rep.guard_evals,
        rep.guard_evals_skipped,
    )
}

const STRATEGIES: [Strategy; 3] = [Strategy::RoundRobin, Strategy::Priority, Strategy::Dataflow];

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn sw_event_driven_matches_naive_reference(
        stages in 2usize..5,
        depth in 1usize..4,
        strat in 0usize..3,
        inputs in proptest::collection::vec(-100i64..100, 1..12),
    ) {
        let design = test_design(stages, depth);
        let strategy = STRATEGIES[strat];
        let (t_e, fired_e, cpu_e, out_e, _skipped) =
            run_sw(&design, &inputs, strategy, true);
        let (t_n, fired_n, cpu_n, out_n, skipped_n) =
            run_sw(&design, &inputs, strategy, false);
        prop_assert_eq!(t_e, t_n, "fired traces diverge ({strategy:?})");
        prop_assert_eq!(fired_e, fired_n, "per-rule firing counts diverge");
        prop_assert_eq!(cpu_e, cpu_n, "modeled cpu_cycles diverge");
        prop_assert_eq!(out_e, out_n, "sink streams diverge");
        prop_assert_eq!(skipped_n, 0, "naive mode must never skip");
    }

    #[test]
    fn hw_event_driven_matches_naive_reference(
        stages in 2usize..5,
        depth in 1usize..4,
        inputs in proptest::collection::vec(-100i64..100, 1..12),
    ) {
        let design = test_design(stages, depth);
        let (t_e, fired_e, cyc_e, peak_e, out_e, evals_e, skipped_e) =
            run_hw(&design, &inputs, true);
        let (t_n, fired_n, cyc_n, peak_n, out_n, evals_n, skipped_n) =
            run_hw(&design, &inputs, false);
        prop_assert_eq!(t_e, t_n, "per-cycle firing traces diverge");
        prop_assert_eq!(fired_e, fired_n, "per-rule firing counts diverge");
        prop_assert_eq!(cyc_e, cyc_n, "cycle counts diverge");
        prop_assert_eq!(peak_e, peak_n, "peak concurrency diverges");
        prop_assert_eq!(out_e, out_n, "sink streams diverge");
        prop_assert_eq!(skipped_n, 0, "naive mode must never skip");
        prop_assert!(skipped_e > 0, "event-driven mode found nothing to skip");
        prop_assert_eq!(evals_e + skipped_e, evals_n,
            "evaluated + skipped must account for every naive evaluation");
    }

    #[test]
    fn sw_compiled_matches_interpreter(
        stages in 2usize..5,
        depth in 1usize..4,
        strat in 0usize..3,
        event_driven in any::<bool>(),
        inputs in proptest::collection::vec(-100i64..100, 1..12),
    ) {
        // The native backend is an optimization, not a semantics change:
        // trace, per-rule counts, modeled cpu_cycles, and sink streams
        // must all be bit-identical to the interpreter in both guard
        // scheduling modes.
        let design = test_design(stages, depth);
        let strategy = STRATEGIES[strat];
        let interp = run_sw_on(&design, &inputs, strategy, event_driven, false);
        let native = run_sw_on(&design, &inputs, strategy, event_driven, true);
        prop_assert_eq!(interp, native,
            "compiled sw run diverges ({strategy:?}, event_driven={event_driven})");
    }

    #[test]
    fn hw_compiled_matches_interpreter(
        stages in 2usize..5,
        depth in 1usize..4,
        event_driven in any::<bool>(),
        inputs in proptest::collection::vec(-100i64..100, 1..12),
    ) {
        let design = test_design(stages, depth);
        let interp = run_hw_on(&design, &inputs, event_driven, false);
        let native = run_hw_on(&design, &inputs, event_driven, true);
        prop_assert_eq!(interp, native,
            "compiled hw run diverges (event_driven={event_driven})");
    }
}

/// The quiescent case is where event-driven scheduling shines: once
/// nothing can fire and nothing is written, re-probing costs zero guard
/// evaluations in hardware (all verdicts stay cached).
#[test]
fn hw_quiescent_cycles_cost_no_guard_evals() {
    let design = test_design(3, 2);
    let mut sim = HwSim::new(&design).unwrap();
    assert_eq!(sim.step().unwrap(), 0);
    let after_first = sim.report().guard_evals;
    for _ in 0..50 {
        assert_eq!(sim.step().unwrap(), 0);
    }
    let rep = sim.report();
    assert_eq!(
        rep.guard_evals, after_first,
        "idle cycles must re-use every cached verdict"
    );
    assert!(rep.guard_evals_skipped >= 50);
}

/// Software cost-replay: cache hits charge the recorded cost delta, so
/// cpu_cycles are pinned while real guard work drops.
#[test]
fn sw_cache_hits_replay_cost_without_reevaluating() {
    // Priority probing restarts at rule 0 every step, so upstream rules
    // whose read state did not change between steps are re-probed
    // constantly — exactly what the verdict cache elides.
    let design = test_design(4, 2);
    let inputs: Vec<i64> = (0..20).collect();
    let (_, _, cpu_e, out_e, skipped) = run_sw(&design, &inputs, Strategy::Priority, true);
    let (_, _, cpu_n, out_n, _) = run_sw(&design, &inputs, Strategy::Priority, false);
    assert_eq!(cpu_e, cpu_n);
    assert_eq!(out_e, out_n);
    assert!(skipped > 0, "priority probing must hit the verdict cache");
}
