//! Static elaboration: from a modular [`Program`] to a flat [`Design`].
//!
//! Elaboration (§5) instantiates the module hierarchy starting at the root,
//! allocates every primitive state element, substitutes constructor
//! parameters, and *inlines* user-module method calls into their callers so
//! that every remaining method call targets a primitive. Method inlining
//! preserves guard semantics: an inlined body carries its `when` guards with
//! it, and by axiom A.8 a guard in an argument expression surfaces at the
//! call site.
//!
//! One deliberate deviation from the paper: our `let` bindings are strict
//! (the bound expression is evaluated before the body). The paper's lets are
//! non-strict, which yields stronger algebraic laws; operationally the two
//! differ only when an *unused* binding's guard fails, where strictness is
//! conservative (more guard failures, never fewer).

use crate::ast::{
    ActMethodDef, Action, Expr, Path, PrimId, PrimMethod, RuleDef, Target, ValMethodDef,
};
use crate::design::{Design, PrimDef};
use crate::error::ElabError;
use crate::program::{InstKind, ModuleDef, Program};
use crate::value::Value;
use std::collections::{HashMap, HashSet};

/// Elaborates a program into a flat design.
///
/// # Errors
///
/// Returns an error for unknown modules/instances/methods, arity
/// mismatches, calling an action method in expression position (or vice
/// versa), or unknown variables.
pub fn elaborate(program: &Program) -> Result<Design, ElabError> {
    program.validate()?;
    let mut el = Elaborator {
        program,
        prims: Vec::new(),
        rules: Vec::new(),
    };
    let root_def = program.module(&program.root).expect("validated");
    let root = el.elab_module(&Path::new(""), root_def, &program.root_args)?;
    Ok(Design {
        name: program.root.clone(),
        prims: el.prims,
        rules: el.rules,
        act_methods: root.act_methods.into_values().collect(),
        val_methods: root.val_methods.into_values().collect(),
    })
}

/// A fully elaborated module instance: its local bindings (for hierarchical
/// path resolution) and its resolved interface methods.
struct Instance {
    locals: HashMap<String, Binding>,
    act_methods: HashMap<String, ActMethodDef>,
    val_methods: HashMap<String, ValMethodDef>,
}

enum Binding {
    Prim(PrimId),
    Sub(Instance),
}

struct Elaborator<'p> {
    program: &'p Program,
    prims: Vec<PrimDef>,
    rules: Vec<RuleDef>,
}

impl<'p> Elaborator<'p> {
    fn elab_module(
        &mut self,
        path: &Path,
        def: &ModuleDef,
        args: &[Value],
    ) -> Result<Instance, ElabError> {
        let consts: HashMap<String, Value> = def
            .params
            .iter()
            .cloned()
            .zip(args.iter().cloned())
            .collect();

        let mut locals = HashMap::new();
        for inst in &def.insts {
            let ipath = path.join(&inst.name);
            let binding = match &inst.kind {
                InstKind::Prim(spec) => {
                    let id = PrimId(self.prims.len());
                    self.prims.push(PrimDef {
                        path: ipath,
                        spec: spec.clone(),
                    });
                    Binding::Prim(id)
                }
                InstKind::Module { def: dname, args } => {
                    let d = self.program.module(dname).expect("validated");
                    Binding::Sub(self.elab_module(&ipath, d, args)?)
                }
            };
            locals.insert(inst.name.clone(), binding);
        }

        let ctx = Ctx {
            locals: &locals,
            consts: &consts,
            module: &def.name,
        };

        for rule in &def.rules {
            let mut bound = HashSet::new();
            let body = ctx.resolve_action(&rule.body, &mut bound)?;
            self.rules.push(RuleDef {
                name: path.join(&rule.name).0,
                body,
            });
        }

        let mut act_methods = HashMap::new();
        for m in &def.act_methods {
            let mut bound: HashSet<String> = m.args.iter().cloned().collect();
            let body = ctx.resolve_action(&m.body, &mut bound)?;
            act_methods.insert(
                m.name.clone(),
                ActMethodDef {
                    name: m.name.clone(),
                    args: m.args.clone(),
                    body,
                },
            );
        }
        let mut val_methods = HashMap::new();
        for m in &def.val_methods {
            let mut bound: HashSet<String> = m.args.iter().cloned().collect();
            let body = ctx.resolve_expr(&m.body, &mut bound)?;
            val_methods.insert(
                m.name.clone(),
                ValMethodDef {
                    name: m.name.clone(),
                    args: m.args.clone(),
                    body,
                },
            );
        }

        Ok(Instance {
            locals,
            act_methods,
            val_methods,
        })
    }
}

struct Ctx<'a> {
    locals: &'a HashMap<String, Binding>,
    consts: &'a HashMap<String, Value>,
    module: &'a str,
}

impl<'a> Ctx<'a> {
    fn err(&self, msg: String) -> ElabError {
        ElabError::new(format!("in module `{}`: {msg}", self.module))
    }

    /// Walks a dotted instance path to its binding.
    fn lookup(&self, path: &Path) -> Result<&Binding, ElabError> {
        let mut comps = path.as_str().split('.');
        let first = comps
            .next()
            .filter(|c| !c.is_empty())
            .ok_or_else(|| self.err("empty instance path".to_string()))?;
        let mut binding = self
            .locals
            .get(first)
            .ok_or_else(|| self.err(format!("unknown instance `{first}`")))?;
        for comp in comps {
            match binding {
                Binding::Sub(inst) => {
                    binding = inst.locals.get(comp).ok_or_else(|| {
                        self.err(format!("unknown instance `{comp}` in `{path}`"))
                    })?;
                }
                Binding::Prim(_) => {
                    return Err(self.err(format!("`{path}` descends into a primitive")));
                }
            }
        }
        Ok(binding)
    }

    fn resolve_target_action(&self, t: &Target, args: Vec<Expr>) -> Result<Action, ElabError> {
        let (path, meth) = match t {
            Target::Named(p, m) => (p, m.as_str()),
            Target::Prim(id, m) => return Ok(Action::Call(Target::Prim(*id, *m), args)),
        };
        match self.lookup(path)? {
            Binding::Prim(id) => {
                let pm = PrimMethod::parse(meth)
                    .ok_or_else(|| self.err(format!("unknown primitive method `{meth}`")))?;
                if pm.is_value() {
                    return Err(self.err(format!(
                        "value method `{meth}` used in action position on `{path}`"
                    )));
                }
                Ok(Action::Call(Target::Prim(*id, pm), args))
            }
            Binding::Sub(inst) => {
                let m = inst.act_methods.get(meth).ok_or_else(|| {
                    self.err(format!(
                        "module instance `{path}` has no action method `{meth}`"
                    ))
                })?;
                if m.args.len() != args.len() {
                    return Err(self.err(format!(
                        "`{path}.{meth}` expects {} args, got {}",
                        m.args.len(),
                        args.len()
                    )));
                }
                // Inline: bind formals to actual argument expressions.
                // The body is closed over its formals, so no capture issues.
                let mut body = m.body.clone();
                for (formal, actual) in m.args.iter().zip(args).rev() {
                    body = Action::Let(formal.clone(), Box::new(actual), Box::new(body));
                }
                Ok(body)
            }
        }
    }

    fn resolve_target_value(&self, t: &Target, args: Vec<Expr>) -> Result<Expr, ElabError> {
        let (path, meth) = match t {
            Target::Named(p, m) => (p, m.as_str()),
            Target::Prim(id, m) => return Ok(Expr::Call(Target::Prim(*id, *m), args)),
        };
        match self.lookup(path)? {
            Binding::Prim(id) => {
                let pm = PrimMethod::parse(meth)
                    .ok_or_else(|| self.err(format!("unknown primitive method `{meth}`")))?;
                if !pm.is_value() {
                    return Err(self.err(format!(
                        "action method `{meth}` used in expression position on `{path}`"
                    )));
                }
                Ok(Expr::Call(Target::Prim(*id, pm), args))
            }
            Binding::Sub(inst) => {
                let m = inst.val_methods.get(meth).ok_or_else(|| {
                    self.err(format!(
                        "module instance `{path}` has no value method `{meth}`"
                    ))
                })?;
                if m.args.len() != args.len() {
                    return Err(self.err(format!(
                        "`{path}.{meth}` expects {} args, got {}",
                        m.args.len(),
                        args.len()
                    )));
                }
                let mut body = m.body.clone();
                for (formal, actual) in m.args.iter().zip(args).rev() {
                    body = Expr::Let(formal.clone(), Box::new(actual), Box::new(body));
                }
                Ok(body)
            }
        }
    }

    fn resolve_action(&self, a: &Action, bound: &mut HashSet<String>) -> Result<Action, ElabError> {
        Ok(match a {
            Action::NoAction => Action::NoAction,
            Action::Write(t, e) => {
                let e = self.resolve_expr(e, bound)?;
                // `r := e` is sugar for a RegWrite call.
                match self.resolve_target_action(&retarget_write(t), vec![e])? {
                    Action::Call(tgt, args) => Action::Call(tgt, args),
                    other => other,
                }
            }
            Action::If(c, th, el) => Action::If(
                Box::new(self.resolve_expr(c, bound)?),
                Box::new(self.resolve_action(th, bound)?),
                Box::new(self.resolve_action(el, bound)?),
            ),
            Action::Par(x, y) => Action::Par(
                Box::new(self.resolve_action(x, bound)?),
                Box::new(self.resolve_action(y, bound)?),
            ),
            Action::Seq(x, y) => Action::Seq(
                Box::new(self.resolve_action(x, bound)?),
                Box::new(self.resolve_action(y, bound)?),
            ),
            Action::When(g, x) => Action::When(
                Box::new(self.resolve_expr(g, bound)?),
                Box::new(self.resolve_action(x, bound)?),
            ),
            Action::Let(n, e, x) => {
                let e = self.resolve_expr(e, bound)?;
                let fresh = bound.insert(n.clone());
                let x = self.resolve_action(x, bound)?;
                if fresh {
                    bound.remove(n);
                }
                Action::Let(n.clone(), Box::new(e), Box::new(x))
            }
            Action::Loop(c, x) => Action::Loop(
                Box::new(self.resolve_expr(c, bound)?),
                Box::new(self.resolve_action(x, bound)?),
            ),
            Action::LocalGuard(x) => Action::LocalGuard(Box::new(self.resolve_action(x, bound)?)),
            Action::Call(t, args) => {
                let args = args
                    .iter()
                    .map(|e| self.resolve_expr(e, bound))
                    .collect::<Result<Vec<_>, _>>()?;
                self.resolve_target_action(t, args)?
            }
        })
    }

    fn resolve_expr(&self, e: &Expr, bound: &mut HashSet<String>) -> Result<Expr, ElabError> {
        Ok(match e {
            Expr::Const(v) => Expr::Const(v.clone()),
            Expr::Var(n) => {
                if bound.contains(n) {
                    Expr::Var(n.clone())
                } else if let Some(v) = self.consts.get(n) {
                    Expr::Const(v.clone())
                } else {
                    return Err(self.err(format!("unknown variable `{n}`")));
                }
            }
            Expr::Un(op, a) => Expr::Un(*op, Box::new(self.resolve_expr(a, bound)?)),
            Expr::Bin(op, a, b) => Expr::Bin(
                *op,
                Box::new(self.resolve_expr(a, bound)?),
                Box::new(self.resolve_expr(b, bound)?),
            ),
            Expr::Cond(c, t, f) => Expr::Cond(
                Box::new(self.resolve_expr(c, bound)?),
                Box::new(self.resolve_expr(t, bound)?),
                Box::new(self.resolve_expr(f, bound)?),
            ),
            Expr::When(v, g) => Expr::When(
                Box::new(self.resolve_expr(v, bound)?),
                Box::new(self.resolve_expr(g, bound)?),
            ),
            Expr::Let(n, v, b) => {
                let v = self.resolve_expr(v, bound)?;
                let fresh = bound.insert(n.clone());
                let b = self.resolve_expr(b, bound)?;
                if fresh {
                    bound.remove(n);
                }
                Expr::Let(n.clone(), Box::new(v), Box::new(b))
            }
            Expr::Call(t, args) => {
                let args = args
                    .iter()
                    .map(|x| self.resolve_expr(x, bound))
                    .collect::<Result<Vec<_>, _>>()?;
                self.resolve_target_value(t, args)?
            }
            Expr::Index(v, i) => Expr::Index(
                Box::new(self.resolve_expr(v, bound)?),
                Box::new(self.resolve_expr(i, bound)?),
            ),
            Expr::Field(v, f) => Expr::Field(Box::new(self.resolve_expr(v, bound)?), f.clone()),
            Expr::MkVec(es) => Expr::MkVec(
                es.iter()
                    .map(|x| self.resolve_expr(x, bound))
                    .collect::<Result<_, _>>()?,
            ),
            Expr::MkStruct(fs) => Expr::MkStruct(
                fs.iter()
                    .map(|(n, x)| Ok((n.clone(), self.resolve_expr(x, bound)?)))
                    .collect::<Result<Vec<_>, ElabError>>()?,
            ),
            Expr::UpdateIndex(v, i, x) => Expr::UpdateIndex(
                Box::new(self.resolve_expr(v, bound)?),
                Box::new(self.resolve_expr(i, bound)?),
                Box::new(self.resolve_expr(x, bound)?),
            ),
            Expr::UpdateField(v, f, x) => Expr::UpdateField(
                Box::new(self.resolve_expr(v, bound)?),
                f.clone(),
                Box::new(self.resolve_expr(x, bound)?),
            ),
        })
    }
}

/// Rewrites a `Write` target to the `_write` method form.
fn retarget_write(t: &Target) -> Target {
    match t {
        Target::Named(p, _) => Target::Named(p.clone(), "_write".to_string()),
        Target::Prim(id, _) => Target::Prim(*id, PrimMethod::RegWrite),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prim::PrimSpec;
    use crate::program::{InstDef, Program};
    use crate::types::Type;
    use crate::value::BinOp;

    /// A counter module with an `incr` action method and `value` value
    /// method, instantiated twice in a parent that wires them with a rule.
    fn two_counter_program() -> Program {
        let mut counter = ModuleDef::new("Counter");
        counter.params.push("step".into());
        counter.insts.push(InstDef {
            name: "c".into(),
            kind: InstKind::Prim(PrimSpec::Reg {
                init: Value::int(32, 0),
            }),
        });
        counter.act_methods.push(ActMethodDef {
            name: "incr".into(),
            args: vec![],
            body: Action::Write(
                Target::Named("c".into(), "_write".into()),
                Box::new(Expr::Bin(
                    BinOp::Add,
                    Box::new(Expr::Call(
                        Target::Named("c".into(), "_read".into()),
                        vec![],
                    )),
                    Box::new(Expr::Var("step".into())),
                )),
            ),
        });
        counter.val_methods.push(ValMethodDef {
            name: "value".into(),
            args: vec![],
            body: Expr::Call(Target::Named("c".into(), "_read".into()), vec![]),
        });

        let mut top = ModuleDef::new("Top");
        top.insts.push(InstDef {
            name: "a".into(),
            kind: InstKind::Module {
                def: "Counter".into(),
                args: vec![Value::int(32, 1)],
            },
        });
        top.insts.push(InstDef {
            name: "b".into(),
            kind: InstKind::Module {
                def: "Counter".into(),
                args: vec![Value::int(32, 2)],
            },
        });
        top.insts.push(InstDef {
            name: "q".into(),
            kind: InstKind::Prim(PrimSpec::Fifo {
                depth: 1,
                ty: Type::Int(32),
            }),
        });
        top.rules.push(RuleDef {
            name: "bump".into(),
            body: Action::Par(
                Box::new(Action::Call(
                    Target::Named("a".into(), "incr".into()),
                    vec![],
                )),
                Box::new(Action::Call(
                    Target::Named("b".into(), "incr".into()),
                    vec![],
                )),
            ),
        });
        top.rules.push(RuleDef {
            name: "emit".into(),
            body: Action::Call(
                Target::Named("q".into(), "enq".into()),
                vec![Expr::Call(
                    Target::Named("a".into(), "value".into()),
                    vec![],
                )],
            ),
        });

        let mut p = Program::with_root(top);
        p.add_module(counter);
        p
    }

    #[test]
    fn elaborates_hierarchy() {
        let d = elaborate(&two_counter_program()).unwrap();
        assert_eq!(d.prims.len(), 3);
        assert!(d.prim_id("a.c").is_some());
        assert!(d.prim_id("b.c").is_some());
        assert!(d.prim_id("q").is_some());
        assert_eq!(d.rules.len(), 2);
        assert_eq!(d.rules[0].name, "bump");
    }

    #[test]
    fn params_are_substituted() {
        let d = elaborate(&two_counter_program()).unwrap();
        // The inlined incr body for `a` must contain Const(1), for `b` Const(2).
        let body = format!("{:?}", d.rules[0].body);
        assert!(body.contains("val: 1"), "{body}");
        assert!(body.contains("val: 2"), "{body}");
        assert!(!body.contains("Var(\"step\")"), "{body}");
    }

    #[test]
    fn method_calls_resolve_to_prims() {
        let d = elaborate(&two_counter_program()).unwrap();
        // Every Call target in rules must be Target::Prim.
        fn check_expr(e: &Expr) {
            if let Expr::Call(t, args) = e {
                assert!(matches!(t, Target::Prim(..)), "unresolved: {t:?}");
                args.iter().for_each(check_expr);
            }
        }
        fn check(a: &Action) {
            match a {
                Action::Call(t, args) => {
                    assert!(matches!(t, Target::Prim(..)), "unresolved: {t:?}");
                    args.iter().for_each(check_expr);
                }
                Action::Par(x, y) | Action::Seq(x, y) => {
                    check(x);
                    check(y);
                }
                Action::If(_, x, y) => {
                    check(x);
                    check(y);
                }
                Action::When(_, x)
                | Action::Let(_, _, x)
                | Action::Loop(_, x)
                | Action::LocalGuard(x) => check(x),
                Action::Write(t, _) => assert!(matches!(t, Target::Prim(..))),
                Action::NoAction => {}
            }
        }
        for r in &d.rules {
            check(&r.body);
        }
    }

    #[test]
    fn unknown_instance_is_error() {
        let mut top = ModuleDef::new("Top");
        top.rules.push(RuleDef {
            name: "r".into(),
            body: Action::Call(Target::Named("ghost".into(), "enq".into()), vec![]),
        });
        let p = Program::with_root(top);
        let e = elaborate(&p).unwrap_err();
        assert!(e.message().contains("ghost"), "{e}");
    }

    #[test]
    fn unknown_method_is_error() {
        let mut p = two_counter_program();
        let top = p.modules.iter_mut().find(|m| m.name == "Top").unwrap();
        top.rules.push(RuleDef {
            name: "bad".into(),
            body: Action::Call(Target::Named("a".into(), "reset".into()), vec![]),
        });
        assert!(elaborate(&p).is_err());
    }

    #[test]
    fn value_method_in_action_position_is_error() {
        let mut top = ModuleDef::new("Top");
        top.insts.push(InstDef {
            name: "q".into(),
            kind: InstKind::Prim(PrimSpec::Fifo {
                depth: 1,
                ty: Type::Int(8),
            }),
        });
        top.rules.push(RuleDef {
            name: "bad".into(),
            body: Action::Call(Target::Named("q".into(), "first".into()), vec![]),
        });
        let p = Program::with_root(top);
        assert!(elaborate(&p).is_err());
    }

    #[test]
    fn unknown_variable_is_error() {
        let mut top = ModuleDef::new("Top");
        top.insts.push(InstDef {
            name: "r".into(),
            kind: InstKind::Prim(PrimSpec::Reg {
                init: Value::int(8, 0),
            }),
        });
        top.rules.push(RuleDef {
            name: "bad".into(),
            body: Action::Write(
                Target::Named("r".into(), "_write".into()),
                Box::new(Expr::Var("x".into())),
            ),
        });
        let p = Program::with_root(top);
        let e = elaborate(&p).unwrap_err();
        assert!(e.message().contains("unknown variable"), "{e}");
    }

    #[test]
    fn let_bound_vars_survive() {
        let mut top = ModuleDef::new("Top");
        top.insts.push(InstDef {
            name: "r".into(),
            kind: InstKind::Prim(PrimSpec::Reg {
                init: Value::int(8, 0),
            }),
        });
        top.rules.push(RuleDef {
            name: "ok".into(),
            body: Action::Let(
                "x".into(),
                Box::new(Expr::int(8, 5)),
                Box::new(Action::Write(
                    Target::Named("r".into(), "_write".into()),
                    Box::new(Expr::Var("x".into())),
                )),
            ),
        });
        let p = Program::with_root(top);
        let d = elaborate(&p).unwrap();
        assert_eq!(d.rules.len(), 1);
    }

    #[test]
    fn hierarchical_path_lookup() {
        // A rule reaching two levels deep: top -> mid -> leaf register.
        let mut leaf = ModuleDef::new("Leaf");
        leaf.insts.push(InstDef {
            name: "r".into(),
            kind: InstKind::Prim(PrimSpec::Reg {
                init: Value::int(8, 0),
            }),
        });
        let mut mid = ModuleDef::new("Mid");
        mid.insts.push(InstDef {
            name: "l".into(),
            kind: InstKind::Module {
                def: "Leaf".into(),
                args: vec![],
            },
        });
        let mut top = ModuleDef::new("Top");
        top.insts.push(InstDef {
            name: "m".into(),
            kind: InstKind::Module {
                def: "Mid".into(),
                args: vec![],
            },
        });
        top.rules.push(RuleDef {
            name: "poke".into(),
            body: Action::Write(
                Target::Named("m.l.r".into(), "_write".into()),
                Box::new(Expr::int(8, 1)),
            ),
        });
        let mut p = Program::with_root(top);
        p.add_module(mid);
        p.add_module(leaf);
        let d = elaborate(&p).unwrap();
        assert!(d.prim_id("m.l.r").is_some());
    }
}
