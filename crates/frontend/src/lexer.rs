//! Lexer for textual kernel BCL.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// Integer literal (optionally width-suffixed, e.g. `5i8`).
    Int {
        /// The value.
        value: i64,
        /// The width (default 32).
        width: u32,
    },
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `:`
    Colon,
    /// `:=`
    Assign,
    /// `.`
    Dot,
    /// `@`
    At,
    /// `=`
    Eq,
    /// `==`
    EqEq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `!`
    Bang,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `&`
    Amp,
    /// `|`
    Pipe,
    /// `^`
    Caret,
    /// `?`
    Question,
    /// `#`
    Hash,
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::Int { value, width } => write!(f, "{value}i{width}"),
            other => {
                let s = match other {
                    Tok::LParen => "(",
                    Tok::RParen => ")",
                    Tok::LBrace => "{",
                    Tok::RBrace => "}",
                    Tok::LBracket => "[",
                    Tok::RBracket => "]",
                    Tok::Comma => ",",
                    Tok::Semi => ";",
                    Tok::Colon => ":",
                    Tok::Assign => ":=",
                    Tok::Dot => ".",
                    Tok::At => "@",
                    Tok::Eq => "=",
                    Tok::EqEq => "==",
                    Tok::Ne => "!=",
                    Tok::Lt => "<",
                    Tok::Le => "<=",
                    Tok::Gt => ">",
                    Tok::Ge => ">=",
                    Tok::Shl => "<<",
                    Tok::Shr => ">>",
                    Tok::Plus => "+",
                    Tok::Minus => "-",
                    Tok::Star => "*",
                    Tok::Slash => "/",
                    Tok::Percent => "%",
                    Tok::Bang => "!",
                    Tok::AndAnd => "&&",
                    Tok::OrOr => "||",
                    Tok::Amp => "&",
                    Tok::Pipe => "|",
                    Tok::Caret => "^",
                    Tok::Question => "?",
                    Tok::Hash => "#",
                    Tok::Eof => "<eof>",
                    Tok::Ident(_) | Tok::Int { .. } => unreachable!(),
                };
                write!(f, "{s}")
            }
        }
    }
}

/// A token with its source line (1-based), for error reporting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Spanned {
    /// The token.
    pub tok: Tok,
    /// Source line.
    pub line: u32,
}

/// A lexing error with its line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Message.
    pub msg: String,
    /// Source line.
    pub line: u32,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error (line {}): {}", self.line, self.msg)
    }
}

impl std::error::Error for LexError {}

/// Tokenizes a source string. `//` comments run to end of line.
///
/// # Errors
///
/// Reports unknown characters and malformed literals with line numbers.
pub fn lex(src: &str) -> Result<Vec<Spanned>, LexError> {
    let mut out = Vec::new();
    let bytes: Vec<char> = src.chars().collect();
    let mut i = 0usize;
    let mut line = 1u32;
    let n = bytes.len();
    while i < n {
        let c = bytes[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if i + 1 < n && bytes[i + 1] == '/' => {
                while i < n && bytes[i] != '\n' {
                    i += 1;
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < n && (bytes[i].is_ascii_alphanumeric() || bytes[i] == '_') {
                    i += 1;
                }
                let s: String = bytes[start..i].iter().collect();
                out.push(Spanned {
                    tok: Tok::Ident(s),
                    line,
                });
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < n && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let value: i64 =
                    bytes[start..i]
                        .iter()
                        .collect::<String>()
                        .parse()
                        .map_err(|e| LexError {
                            msg: format!("bad integer: {e}"),
                            line,
                        })?;
                let mut width = 32u32;
                if i < n && bytes[i] == 'i' {
                    let wstart = i + 1;
                    let mut j = wstart;
                    while j < n && bytes[j].is_ascii_digit() {
                        j += 1;
                    }
                    if j > wstart {
                        width = bytes[wstart..j]
                            .iter()
                            .collect::<String>()
                            .parse()
                            .map_err(|e| LexError {
                                msg: format!("bad width: {e}"),
                                line,
                            })?;
                        i = j;
                    }
                }
                out.push(Spanned {
                    tok: Tok::Int { value, width },
                    line,
                });
            }
            _ => {
                let two: String = bytes[i..n.min(i + 2)].iter().collect();
                let (tok, len) = match two.as_str() {
                    ":=" => (Tok::Assign, 2),
                    "==" => (Tok::EqEq, 2),
                    "!=" => (Tok::Ne, 2),
                    "<=" => (Tok::Le, 2),
                    ">=" => (Tok::Ge, 2),
                    "<<" => (Tok::Shl, 2),
                    ">>" => (Tok::Shr, 2),
                    "&&" => (Tok::AndAnd, 2),
                    "||" => (Tok::OrOr, 2),
                    _ => {
                        let t = match c {
                            '(' => Tok::LParen,
                            ')' => Tok::RParen,
                            '{' => Tok::LBrace,
                            '}' => Tok::RBrace,
                            '[' => Tok::LBracket,
                            ']' => Tok::RBracket,
                            ',' => Tok::Comma,
                            ';' => Tok::Semi,
                            ':' => Tok::Colon,
                            '.' => Tok::Dot,
                            '@' => Tok::At,
                            '=' => Tok::Eq,
                            '<' => Tok::Lt,
                            '>' => Tok::Gt,
                            '+' => Tok::Plus,
                            '-' => Tok::Minus,
                            '*' => Tok::Star,
                            '/' => Tok::Slash,
                            '%' => Tok::Percent,
                            '!' => Tok::Bang,
                            '&' => Tok::Amp,
                            '|' => Tok::Pipe,
                            '^' => Tok::Caret,
                            '?' => Tok::Question,
                            '#' => Tok::Hash,
                            other => {
                                return Err(LexError {
                                    msg: format!("unexpected character `{other}`"),
                                    line,
                                });
                            }
                        };
                        (t, 1)
                    }
                };
                out.push(Spanned { tok, line });
                i += len;
            }
        }
    }
    out.push(Spanned {
        tok: Tok::Eof,
        line,
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn keywords_and_symbols() {
        assert_eq!(
            toks("rule tick: c := c + 1;"),
            vec![
                Tok::Ident("rule".into()),
                Tok::Ident("tick".into()),
                Tok::Colon,
                Tok::Ident("c".into()),
                Tok::Assign,
                Tok::Ident("c".into()),
                Tok::Plus,
                Tok::Int {
                    value: 1,
                    width: 32
                },
                Tok::Semi,
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn width_suffix() {
        assert_eq!(toks("5i8")[0], Tok::Int { value: 5, width: 8 });
        assert_eq!(
            toks("5")[0],
            Tok::Int {
                value: 5,
                width: 32
            }
        );
        // `5if` lexes as `5i...` with no digits: width stays 32, `if` not consumed.
        assert_eq!(
            toks("7 i"),
            vec![
                Tok::Int {
                    value: 7,
                    width: 32
                },
                Tok::Ident("i".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn comments_and_lines() {
        let ts = lex("a // comment\nb").unwrap();
        assert_eq!(ts[0].tok, Tok::Ident("a".into()));
        assert_eq!(ts[0].line, 1);
        assert_eq!(ts[1].tok, Tok::Ident("b".into()));
        assert_eq!(ts[1].line, 2);
    }

    #[test]
    fn two_char_operators() {
        assert_eq!(
            toks("== != <= >= && || := << >>"),
            vec![
                Tok::EqEq,
                Tok::Ne,
                Tok::Le,
                Tok::Ge,
                Tok::AndAnd,
                Tok::OrOr,
                Tok::Assign,
                Tok::Shl,
                Tok::Shr,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn unknown_char_is_error() {
        let e = lex("a $ b").unwrap_err();
        assert!(e.msg.contains('$'));
        assert_eq!(e.line, 1);
    }
}
