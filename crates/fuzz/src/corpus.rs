//! Replay of checked-in regression designs (`tests/corpus/*.bcl`).
//!
//! When the differential property in `tests/fuzz_farm.rs` finds a
//! failing case, the error report embeds the pretty-printed program;
//! the fix lands together with that program checked in under
//! `tests/corpus/`, where [`replay`] re-runs it through every executor
//! on every test run — the fuzz farm's findings become ordinary
//! deterministic regression tests. Files under `tests/corpus/invalid/`
//! go through [`must_reject`] instead: the pipeline must refuse them
//! with a typed error at some stage and must never panic.
//!
//! Replay feeds every source the same fixed stream (0..16, normalized
//! to the source's width), so corpus designs need no side-channel
//! input files.

use bcl_core::domain::SW;
use bcl_core::partition::{fuse_partitioned, partition};
use bcl_core::prim::PrimSpec;
use bcl_core::sched::{SwOptions, SwRunner};
use bcl_core::types::Type;
use bcl_core::value::Value;
use bcl_core::{analysis, elaborate, Design, PrimId};
use bcl_platform::cosim::{Cosim, HwPartitionCfg, InterHwRouting};
use std::collections::BTreeMap;

/// Items fed to every source during replay.
const FEED: i64 = 16;

/// Firing budget for software replays.
const SW_BUDGET: u64 = 1_000_000;

/// Cycle budget for the co-simulated replay.
const COSIM_BUDGET: u64 = 4_000_000;

fn source_width(d: &Design, id: PrimId) -> Result<u32, String> {
    match &d.prim(id).spec {
        PrimSpec::Source {
            ty: Type::Int(w), ..
        } => Ok(*w),
        PrimSpec::Source { ty, .. } => Err(format!(
            "corpus replay only feeds Int sources; `{}` has type {ty:?}",
            d.prim(id).path
        )),
        _ => unreachable!("sources() returned a non-source"),
    }
}

/// Runs a design on a [`SwRunner`] with preloaded sources and returns
/// the per-sink output streams, keyed by sink path.
fn run_sw(d: &Design, event_driven: bool) -> Result<BTreeMap<String, Vec<i64>>, String> {
    let mut r = SwRunner::new(
        d,
        SwOptions {
            event_driven,
            ..SwOptions::default()
        },
    );
    for id in d.sources() {
        let w = source_width(d, id)?;
        for v in 0..FEED {
            r.store
                .try_push_source(id, Value::int(w, v))
                .map_err(|e| e.to_string())?;
        }
    }
    let fired = r
        .run_until_quiescent(SW_BUDGET)
        .map_err(|e| format!("software replay failed: {e}"))?;
    if fired >= SW_BUDGET {
        return Err(format!("replay did not quiesce in {SW_BUDGET} firings"));
    }
    let mut out = BTreeMap::new();
    for id in d.sinks() {
        let vals: Vec<i64> = r
            .store
            .try_sink_values(id)
            .map_err(|e| e.to_string())?
            .iter()
            .map(|v| v.as_int().map_err(|e| e.to_string()))
            .collect::<Result<_, _>>()?;
        out.insert(d.prim(id).path.to_string(), vals);
    }
    Ok(out)
}

/// Replays one corpus design through parse → typecheck → elaborate →
/// validate and then through every executor leg of the differential
/// harness ([`crate::diff::run_case`]), requiring agreement.
pub fn replay(src: &str) -> Result<(), String> {
    let program = bcl_frontend::parser::parse(src).map_err(|e| format!("parse: {e}"))?;
    bcl_frontend::typecheck::typecheck(&program).map_err(|e| format!("typecheck: {e}"))?;
    let design = elaborate(&program).map_err(|e| format!("elaborate: {e}"))?;
    analysis::validate(&design).map_err(|errs| {
        let msgs: Vec<String> = errs.iter().map(|e| e.to_string()).collect();
        format!("validate: {}", msgs.join("; "))
    })?;

    // Executors A and B: naive and event-driven software.
    let naive = run_sw(&design, false)?;
    let event = run_sw(&design, true)?;
    if naive != event {
        return Err(format!(
            "event-driven Vm disagrees with naive interpreter:\n  naive {naive:?}\n  \
             event {event:?}"
        ));
    }

    // Executor C: fused single-process design.
    let parts = partition(&design, SW).map_err(|e| format!("partition: {e}"))?;
    let fused = fuse_partitioned(&parts).map_err(|e| format!("fuse: {e}"))?;
    let fused_out = run_sw(&fused.design, true)?;
    if fused_out != naive {
        return Err(format!(
            "fused design disagrees:\n  fused {fused_out:?}\n  naive {naive:?}"
        ));
    }

    // Executor D: fault-free N-partition co-simulation.
    let hw = parts.hw_domains(SW);
    let cfgs: Vec<HwPartitionCfg> = hw.iter().map(|d| HwPartitionCfg::new(d)).collect();
    let mut cs = Cosim::multi(
        &parts,
        SW,
        &cfgs,
        InterHwRouting::ViaHub,
        SwOptions::default(),
    )
    .map_err(|e| format!("cosim setup: {e}"))?;
    for id in design.sources() {
        let w = source_width(&design, id)?;
        let path = design.prim(id).path.to_string();
        for v in 0..FEED {
            cs.try_push_source(&path, Value::int(w, v))
                .map_err(|e| format!("cosim push: {e}"))?;
        }
    }
    let want_counts: BTreeMap<&str, usize> =
        naive.iter().map(|(k, v)| (k.as_str(), v.len())).collect();
    let out = cs
        .run_until(
            |c| want_counts.iter().all(|(path, n)| c.sink_count(path) == *n),
            COSIM_BUDGET,
        )
        .map_err(|e| format!("cosim run: {e}"))?;
    if !out.is_done() {
        return Err(format!(
            "cosim replay did not reach the software sink counts within {COSIM_BUDGET} cycles"
        ));
    }
    for (path, want) in &naive {
        let got: Vec<i64> = cs
            .sink_values(path)
            .iter()
            .map(|v| v.as_int().map_err(|e| e.to_string()))
            .collect::<Result<_, _>>()?;
        if &got != want {
            return Err(format!(
                "cosim disagrees at sink `{path}`:\n  cosim {got:?}\n  naive {want:?}"
            ));
        }
    }
    Ok(())
}

/// Replays an intentionally invalid corpus file: some pipeline stage
/// must reject it with a typed error. Returns `Err` if the whole
/// pipeline accepted it.
pub fn must_reject(src: &str) -> Result<(), String> {
    let program = match bcl_frontend::parser::parse(src) {
        Err(_) => return Ok(()),
        Ok(p) => p,
    };
    if bcl_frontend::typecheck::typecheck(&program).is_err() {
        return Ok(());
    }
    let design = match elaborate(&program) {
        Err(_) => return Ok(()),
        Ok(d) => d,
    };
    if analysis::validate(&design).is_err() {
        return Ok(());
    }
    Err("pipeline accepted a corpus file expected to be rejected".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    const SIMPLE: &str = r#"
module Top {
  source src : Int#(8) @ SW;
  sink snk : Int#(8) @ SW;
  sync q[2] : Int#(8) from SW to HW;
  sync r[2] : Int#(8) from HW to SW;
  rule feed: let x = src.first() in { q.enq(x + 1i8) | src.deq() }
  rule work: let y = q.first() in { r.enq(y * 2i8) | q.deq() }
  rule drain: let z = r.first() in { snk.enq(z) | r.deq() }
}
"#;

    #[test]
    fn replay_accepts_simple_pipeline() {
        replay(SIMPLE).unwrap();
    }

    #[test]
    fn must_reject_catches_type_error() {
        let bad = SIMPLE.replace("x + 1i8", "x + true");
        must_reject(&bad).unwrap();
    }

    #[test]
    fn must_reject_fails_on_valid_input() {
        assert!(must_reject(SIMPLE).is_err());
    }
}
