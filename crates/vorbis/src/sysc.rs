//! The SystemC-style baseline (F1 in Figure 13).
//!
//! The same back-end, written the way the paper's authors wrote their
//! SystemC comparison point: one simulation process per pipeline stage,
//! communicating through `sc_fifo`-style channels on the
//! [`bcl_eventsim`] kernel. The computation inside each process is the
//! *identical* fixed-point kernel code (so PCM output is bit-exact with
//! every other implementation); what differs is that every token movement
//! pays discrete-event simulation overhead, which is why this baseline
//! lands at roughly 3× the hand-written software.

use crate::kernel::{
    ifft_stage, imdct_post, imdct_pre, window_apply, Cplx, FixArith, K, N, STAGES,
};
use bcl_eventsim::{EventSim, FifoId, SimConfig};

/// Payload: a frame at any stage of the pipeline, as interleaved
/// fixed-point words (re/im pairs for complex stages).
type Token = Vec<i64>;

/// Extra cycles per *word* moved through a channel: a real SystemC
/// implementation transports samples through `sc_fifo<int>` one element
/// at a time, paying synchronization per element, not per frame.
pub const WORD_CHANNEL_COST: u64 = 6;

fn interleave(xs: &[Cplx<i64>]) -> Token {
    xs.iter().flat_map(|c| [c.re, c.im]).collect()
}

fn deinterleave(t: &[i64]) -> Vec<Cplx<i64>> {
    t.chunks(2).map(|p| Cplx::new(p[0], p[1])).collect()
}

/// Result of the SystemC-style run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SystemCRun {
    /// Decoded PCM stream (bit-exact with the native backend).
    pub pcm: Vec<i64>,
    /// Modeled CPU cycles (compute + event kernel overhead).
    pub cpu_cycles: u64,
    /// Process activations dispatched by the kernel.
    pub activations: u64,
}

/// Runs the frame stream through the SystemC-style model.
pub fn run_systemc_baseline(frames: &[Vec<i64>], cfg: SimConfig) -> SystemCRun {
    let mut sim: EventSim<Token> = EventSim::new(cfg);
    let ch_raw = sim.fifo(4);
    let ch_pre = sim.fifo(4);
    let mut ch_stage: Vec<FifoId> = Vec::new();
    for _ in 0..STAGES {
        ch_stage.push(sim.fifo(4));
    }
    let ch_real = sim.fifo(4);
    let ch_pcm = sim.fifo(frames.len().max(1) * 2);

    let charge_of = |a: &FixArith| a.ops;

    {
        let out = ch_pre;
        sim.process("imdct_pre", vec![ch_raw, out], move |ctx| {
            if ctx.is_empty(ch_raw) || ctx.len(out) >= 4 {
                return false;
            }
            let f = ctx.try_get(ch_raw).expect("checked");
            let mut a = FixArith::default();
            let v = imdct_pre(&mut a, &f);
            ctx.charge(charge_of(&a) + (f.len() + 2 * v.len()) as u64 * WORD_CHANNEL_COST);
            ctx.try_put(out, interleave(&v)).expect("space checked");
            true
        });
    }
    for s in 0..STAGES {
        let inp = if s == 0 { ch_pre } else { ch_stage[s - 1] };
        let out = ch_stage[s];
        sim.process(format!("ifft_stage{s}"), vec![inp, out], move |ctx| {
            if ctx.is_empty(inp) || ctx.len(out) >= 4 {
                return false;
            }
            let t = ctx.try_get(inp).expect("checked");
            let mut a = FixArith::default();
            let v = ifft_stage(&mut a, &deinterleave(&t), s);
            ctx.charge(charge_of(&a) + (t.len() + 2 * v.len()) as u64 * WORD_CHANNEL_COST);
            ctx.try_put(out, interleave(&v)).expect("space checked");
            true
        });
    }
    {
        let inp = ch_stage[STAGES - 1];
        sim.process("imdct_post", vec![inp, ch_real], move |ctx| {
            if ctx.is_empty(inp) || ctx.len(ch_real) >= 4 {
                return false;
            }
            let t = ctx.try_get(inp).expect("checked");
            let mut a = FixArith::default();
            let v = imdct_post(&mut a, &deinterleave(&t));
            ctx.charge(charge_of(&a) + (t.len() + v.len()) as u64 * WORD_CHANNEL_COST);
            ctx.try_put(ch_real, v).expect("space checked");
            true
        });
    }
    {
        let mut tail = vec![0i64; K];
        sim.process("window", vec![ch_real], move |ctx| {
            if ctx.is_empty(ch_real) {
                return false;
            }
            let cur = ctx.try_get(ch_real).expect("checked");
            assert_eq!(cur.len(), N);
            let mut a = FixArith::default();
            let (pcm, new_tail) = window_apply(&mut a, &tail, &cur);
            tail = new_tail;
            ctx.charge(charge_of(&a) + (cur.len() + pcm.len()) as u64 * WORD_CHANNEL_COST);
            ctx.try_put(ch_pcm, pcm).expect("sized for all frames");
            true
        });
    }

    for f in frames {
        sim.put(ch_raw, f.clone());
    }
    let cpu_cycles = sim.run();
    let pcm = sim.drain(ch_pcm).into_iter().flatten().collect();
    SystemCRun {
        pcm,
        cpu_cycles,
        activations: sim.stats().activations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frames::frame_stream;
    use crate::native::NativeBackend;

    #[test]
    fn matches_native_output() {
        let frames = frame_stream(4, 13);
        let expected = NativeBackend::new().run(&frames);
        let run = run_systemc_baseline(&frames, SimConfig::default());
        assert_eq!(run.pcm, expected);
    }

    #[test]
    fn event_overhead_dominates_vs_native() {
        // The F1 ≈ 3× F2 relationship of Figure 13 (within a loose band:
        // the exact ratio depends on the kernel's event cost calibration).
        let frames = frame_stream(10, 5);
        let mut native = NativeBackend::new();
        native.run(&frames);
        let f2 = native.cpu_cycles();
        let f1 = run_systemc_baseline(&frames, SimConfig::default()).cpu_cycles;
        let ratio = f1 as f64 / f2 as f64;
        assert!(ratio > 1.5, "SystemC must be much slower: ratio {ratio:.2}");
        assert!(ratio < 6.0, "...but in the same decade: ratio {ratio:.2}");
    }

    #[test]
    fn activations_scale_with_frames() {
        let r2 = run_systemc_baseline(&frame_stream(2, 1), SimConfig::default());
        let r8 = run_systemc_baseline(&frame_stream(8, 1), SimConfig::default());
        assert!(r8.activations > r2.activations);
    }
}
