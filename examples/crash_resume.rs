//! Crash-consistent autosave: a child process decodes a long Vorbis
//! stream while autosaving a `BCKP` snapshot every few hundred FPGA
//! cycles. The parent waits for the first autosave to land, then kills
//! the child with SIGKILL — no signal handler, no flushing, the worst
//! possible death. Because every autosave is written atomically (temp
//! file + fsync + rename), the snapshot on disk is always a complete,
//! CRC-verified consistent cut; the parent resumes the decode from it in
//! this process and checks the finished run is bit- and cycle-identical
//! to one that was never interrupted.
//!
//! ```sh
//! cargo run --release --example crash_resume
//! ```

use bcl_platform::cosim::RecoveryPolicy;
use bcl_platform::link::FaultConfig;
use bcl_vorbis::frames::frame_stream;
use bcl_vorbis::partitions::{
    resume_partition, run_partition, run_partition_autosaving, VorbisPartition,
};
use std::process::Command;
use std::time::{Duration, Instant};

const AUTOSAVE_INTERVAL: u64 = 200;

fn frames() -> Vec<Vec<i64>> {
    // Long enough that the child is still decoding when the kill lands.
    frame_stream(64, 21)
}

/// Child half: decode with autosave armed. This process will be killed
/// without warning; it never gets to exit cleanly.
fn child(dir: &std::path::Path) -> Result<(), Box<dyn std::error::Error>> {
    run_partition_autosaving(
        VorbisPartition::E,
        &frames(),
        FaultConfig::none(),
        RecoveryPolicy::Fail,
        AUTOSAVE_INTERVAL,
        dir,
    )?;
    Ok(())
}

fn parent() -> Result<(), Box<dyn std::error::Error>> {
    let frames = frames();
    let dir = std::env::temp_dir().join(format!("bcl_crash_resume_{}", std::process::id()));
    std::fs::create_dir_all(&dir)?;
    let snapshot = dir.join("autosave.bckp");

    // The uninterrupted reference the resumed run must match exactly.
    let reference = run_partition(VorbisPartition::E, &frames)?;
    println!(
        "reference:  {} frames in {} cycles",
        reference.frames, reference.fpga_cycles
    );

    let mut worker = Command::new(std::env::current_exe()?)
        .arg("--child")
        .arg(&dir)
        .spawn()?;
    // Kill as soon as the first complete autosave exists. If the child
    // somehow finishes first, the last autosave still resumes correctly —
    // the demo's claim doesn't depend on winning the race.
    let deadline = Instant::now() + Duration::from_secs(30);
    while !snapshot.exists() {
        if Instant::now() > deadline {
            let _ = worker.kill();
            return Err("child never produced an autosave".into());
        }
        if worker.try_wait()?.is_some() {
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    worker.kill().ok(); // SIGKILL — the child gets no chance to clean up
    worker.wait()?;
    println!(
        "parent:     killed the worker; {} on disk ({} bytes)",
        snapshot.file_name().unwrap().to_string_lossy(),
        std::fs::metadata(&snapshot)?.len()
    );

    let resumed = resume_partition(
        VorbisPartition::E,
        &frames,
        FaultConfig::none(),
        RecoveryPolicy::Fail,
        &snapshot,
    )?;
    println!(
        "resumed:    {} frames in {} cycles",
        resumed.frames, resumed.fpga_cycles
    );

    let ok = resumed.pcm == reference.pcm && resumed.fpga_cycles == reference.fpga_cycles;
    println!(
        "\nresumed run is bit- and cycle-identical: {}",
        if ok { "yes" } else { "NO!" }
    );
    std::fs::remove_dir_all(&dir).ok();
    if !ok {
        return Err("resume diverged from the reference run".into());
    }
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--child") {
        let dir = args.last().expect("child receives the autosave dir");
        child(std::path::Path::new(dir))
    } else {
        parent()
    }
}
