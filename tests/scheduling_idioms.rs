//! The paper's §6.3 "Scheduling" example, verbatim: the same frame
//! transfer written in the software idiom (`xferSW`: a dynamic-length
//! atomic loop built from `loop` + `localGuard`) and the hardware idiom
//! (`xferHW`: one word per rule firing), plus the claim that the two are
//! interchangeable — "by employing completely different schedules, we are
//! able to generate both efficient HW and SW from the same rules".

use bcl_core::builder::{dsl::*, ModuleBuilder};
use bcl_core::program::Program;
use bcl_core::sched::{HwSim, Strategy, SwOptions, SwRunner};
use bcl_core::types::Type;
use bcl_core::value::Value;
use bcl_core::{Design, Store};

const FRAME_SZ: i64 = 8;

/// Producer FIFO `p`, consumer FIFO `c`, transfer counter `cnt`.
fn base_module(name: &str) -> ModuleBuilder {
    let mut m = ModuleBuilder::new(name);
    m.source("p", Type::Int(32), "SW");
    m.sink("c", Type::Int(32), "SW");
    m.reg("cnt", Value::int(32, 0));
    m.reg("cond", Value::Bool(false));
    m
}

/// The paper's `xferSW`: one rule transfers as much of a frame as it can
/// in a single atomic step, terminating its inner loop via localGuard-
/// absorbed guard failure when the producer runs dry.
fn xfer_sw_design() -> Design {
    let mut m = base_module("XferSW");
    m.rule(
        "xferSW",
        seq(vec![
            write("cond", cbool(true)),
            loop_a(
                and(read("cond"), lt(read("cnt"), cint(32, FRAME_SZ))),
                seq(vec![
                    write("cond", cbool(false)),
                    local_guard(seq(vec![
                        write("cond", cbool(true)),
                        write("cnt", add(read("cnt"), cint(32, 1))),
                        with_first("w", "p", enq("c", var("w"))),
                    ])),
                ]),
            ),
        ]),
    );
    bcl_core::elaborate(&Program::with_root(m.build())).unwrap()
}

/// The paper's `xferHW`: one word per firing, guarded on the count.
fn xfer_hw_design() -> Design {
    let mut m = base_module("XferHW");
    m.rule(
        "xferHW",
        when_a(
            lt(read("cnt"), cint(32, FRAME_SZ)),
            with_first(
                "w",
                "p",
                par(vec![
                    enq("c", var("w")),
                    write("cnt", add(read("cnt"), cint(32, 1))),
                ]),
            ),
        ),
    );
    bcl_core::elaborate(&Program::with_root(m.build())).unwrap()
}

fn preload(d: &Design, words: i64) -> Store {
    let mut s = Store::new(d);
    let p = d.prim_id("p").unwrap();
    for i in 0..words {
        s.push_source(p, Value::int(32, 100 + i));
    }
    s
}

fn consumed(d: &Design, s: &Store) -> Vec<i64> {
    s.sink_values(d.prim_id("c").unwrap())
        .iter()
        .map(|v| v.as_int().unwrap())
        .collect()
}

#[test]
fn both_idioms_transfer_the_frame_in_software() {
    for words in [0i64, 3, 8, 12] {
        let dsw = xfer_sw_design();
        let mut sw = SwRunner::with_store(&dsw, preload(&dsw, words), SwOptions::default());
        sw.run_until_quiescent(10_000).unwrap();
        let out_sw = consumed(&dsw, &sw.store);

        let dhw = xfer_hw_design();
        let mut hw_as_sw = SwRunner::with_store(&dhw, preload(&dhw, words), SwOptions::default());
        hw_as_sw.run_until_quiescent(10_000).unwrap();
        let out_hw = consumed(&dhw, &hw_as_sw.store);

        let expect: Vec<i64> = (0..words.min(FRAME_SZ)).map(|i| 100 + i).collect();
        assert_eq!(out_sw, expect, "xferSW with {words} available");
        assert_eq!(out_hw, expect, "xferHW-as-SW with {words} available");
    }
}

#[test]
fn xfer_sw_moves_the_frame_in_one_atomic_step() {
    // "The effects of the resulting non-atomic transfer of a single frame
    // is identical, though the schedules are completely different": the
    // loop idiom finishes the whole frame in one rule firing.
    let d = xfer_sw_design();
    let mut sw = SwRunner::with_store(&d, preload(&d, FRAME_SZ), SwOptions::default());
    assert!(sw.step().unwrap(), "one firing");
    assert_eq!(consumed(&d, &sw.store).len(), FRAME_SZ as usize);
    // After the frame, the rule still fires (its loop immediately
    // terminates) but moves nothing — the scheduler's wasted work.
    let before = consumed(&d, &sw.store).len();
    sw.step().unwrap();
    assert_eq!(consumed(&d, &sw.store).len(), before);
}

#[test]
fn xfer_hw_runs_once_per_clock_cycle() {
    let d = xfer_hw_design();
    let mut hw = HwSim::with_store(&d, preload(&d, FRAME_SZ + 4)).unwrap();
    for cycle in 1..=FRAME_SZ {
        assert_eq!(hw.step().unwrap(), 1, "cycle {cycle} moves one word");
    }
    // Guard `cnt < frameSz` goes false: no further firings.
    assert_eq!(hw.step().unwrap(), 0);
    assert_eq!(consumed(&d, &hw.store).len(), FRAME_SZ as usize);
    assert_eq!(hw.cycles, FRAME_SZ as u64 + 1);
}

#[test]
fn xfer_sw_is_rejected_by_the_hardware_backend() {
    // "The sequential composition inherent in loops is not directly
    // implementable in HW."
    let d = xfer_sw_design();
    assert!(HwSim::new(&d).is_err());
    assert!(bcl_backend::emit_bsv(&d).is_err());
}

#[test]
fn dataflow_scheduler_amortizes_word_at_a_time_rules() {
    // "If the SW scheduler invokes xferHW in a loop, the overall
    // performance of the transfer will not suffer": with the dataflow
    // strategy, the word-at-a-time rule re-fires back-to-back without
    // re-probing the rest of the design between words.
    let d = xfer_hw_design();
    let mut sw = SwRunner::with_store(
        &d,
        preload(&d, FRAME_SZ),
        SwOptions {
            strategy: Strategy::Dataflow,
            ..Default::default()
        },
    );
    let fired = sw.run_until_quiescent(1_000).unwrap();
    assert_eq!(fired, FRAME_SZ as u64);
    let report = sw.report();
    let failures: u64 = report.failed.iter().sum();
    assert!(
        failures <= FRAME_SZ as u64 + 2,
        "chained schedule should waste few probes: {failures}"
    );
}
