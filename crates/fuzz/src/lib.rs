//! The differential fuzz farm (ROADMAP item 4c).
//!
//! Every equivalence guarantee the workspace ships — fault-free
//! executor agreement, failover/failback identity, checkpoint
//! round-trips — is pinned by hand-written designs (Vorbis, the ray
//! tracer, echo). The paper's claim, though, is about *arbitrary*
//! guarded-atomic-action designs. This crate closes that gap with
//! three pieces:
//!
//! * [`gen`] — proptest strategies over a structured [`gen::DesignSpec`]
//!   that expands into arbitrary well-typed kernel programs (registers,
//!   FIFOs, register files, accumulator rule pairs, fork/join diamonds,
//!   submodule value methods, multi-domain channel assignments), plus
//!   random link-fault/partition-fault/recovery-policy schedules.
//! * [`diff`] — the harness: each generated design runs through the
//!   naive interpreter, the event-driven Vm, the fused single-process
//!   design, and the N-partition co-simulation under faults; all four
//!   value streams must equal the spec's independently computed gold
//!   model, and modeled cycle counts must be identical where the
//!   comparison is meaningful (naive vs. event-driven).
//! * [`shrink`] + [`corpus`] — spec-level minimization of failing
//!   cases (the vendored proptest stub does not shrink) and replay of
//!   checked-in `tests/corpus/*.bcl` regressions through every
//!   executor.
//!
//! The static front door these tests lean on is
//! [`bcl_core::analysis::validate`]: `validate(d).is_ok()` must imply
//! the whole pipeline is panic-free on `d`.

#![warn(missing_docs)]

pub mod corpus;
pub mod diff;
pub mod gen;
pub mod shrink;

pub use diff::run_case;
pub use gen::{arb_design, arb_faults, DesignSpec, FaultPlan};
pub use shrink::shrink_case;
