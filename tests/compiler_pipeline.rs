//! The full compiler pipeline from textual BCL to a running partitioned
//! system, exercising frontend, core, platform, and backend together —
//! the "Fully Automatic" methodology of §1.

use bcl_core::domain::{HW, SW};
use bcl_core::partition::{fuse_syncs, partition};
use bcl_core::sched::SwOptions;
use bcl_core::Value;
use bcl_platform::cosim::Cosim;
use bcl_platform::link::LinkConfig;

/// A small DSP-flavored program: software scales samples, hardware
/// squares and accumulates windows of four, software collects energies.
const SRC: &str = r#"
module Energy {
  source samples : Int#(32) @ SW;
  sink energies : Int#(32) @ SW;
  sync toHw[8] : Int#(32) from SW to HW;
  sync toSw[4] : Int#(32) from HW to SW;
  reg acc = 0;
  reg n = 0;

  rule scale:
    let s = samples.first() in { toHw.enq(s * 2) | samples.deq() }

  rule accumulate:
    when (n < 4)
      let s = toHw.first() in
        { acc := acc + s * s | n := n + 1 | toHw.deq() }

  rule flush:
    when (n == 4) { toSw.enq(acc) | acc := 0 | n := 0 }

  rule collect:
    let e = toSw.first() in { energies.enq(e) | toSw.deq() }
}
"#;

fn reference_energies(samples: &[i64]) -> Vec<i64> {
    samples
        .chunks(4)
        .filter(|c| c.len() == 4)
        .map(|c| c.iter().map(|&s| (2 * s) * (2 * s)).sum())
        .collect()
}

#[test]
fn text_to_cosim_round_trip() {
    let program = bcl_frontend::parse(SRC).expect("parses");
    bcl_frontend::typecheck(&program).expect("type checks");
    let design = bcl_core::elaborate(&program).expect("elaborates");
    let parts = partition(&design, SW).expect("partitions");
    assert_eq!(parts.partitions.len(), 2);
    assert_eq!(parts.channels.len(), 2);

    let mut cs =
        Cosim::new(&parts, SW, HW, LinkConfig::default(), SwOptions::default()).expect("cosim");
    let samples: Vec<i64> = (1..=12).collect();
    for &s in &samples {
        cs.push_source("samples", Value::int(32, s));
    }
    let out = cs
        .run_until(|c| c.sink_count("energies") == 3, 100_000)
        .expect("runs");
    assert!(out.is_done());
    let got: Vec<i64> = cs
        .sink_values("energies")
        .iter()
        .map(|v| v.as_int().unwrap())
        .collect();
    assert_eq!(got, reference_energies(&samples));
}

#[test]
fn partitioned_equals_unpartitioned() {
    // The latency-insensitivity theorem, end to end from text: fusing the
    // synchronizers into FIFOs and running all-software produces the same
    // stream.
    let program = bcl_frontend::parse(SRC).expect("parses");
    let design = bcl_core::elaborate(&program).expect("elaborates");

    let run = |d: &bcl_core::Design| -> Vec<i64> {
        let parts = partition(d, SW).expect("partitions");
        let mut cs =
            Cosim::new(&parts, SW, HW, LinkConfig::default(), SwOptions::default()).expect("cosim");
        for s in 1..=20i64 {
            cs.push_source("samples", Value::int(32, s));
        }
        cs.run_until(|c| c.sink_count("energies") == 5, 200_000)
            .expect("runs");
        cs.sink_values("energies")
            .iter()
            .map(|v| v.as_int().unwrap())
            .collect()
    };

    assert_eq!(run(&design), run(&fuse_syncs(&design)));
}

#[test]
fn both_backends_emit_from_parsed_text() {
    let program = bcl_frontend::parse(SRC).expect("parses");
    let design = bcl_core::elaborate(&program).expect("elaborates");
    let parts = partition(&design, SW).expect("partitions");

    let bsv = bcl_backend::emit_bsv(parts.partition(HW).expect("hw")).expect("emits");
    assert!(bsv.contains("rule accumulate"));
    assert!(bsv.contains("rule flush"));
    assert!(
        bsv.contains("toSw_tx"),
        "split synchronizer half present: {bsv}"
    );

    let cxx = bcl_backend::emit_cxx(parts.partition(SW).expect("sw"), Default::default());
    assert!(cxx.contains("bool scale()"));
    assert!(cxx.contains("bool collect()"));
}

#[test]
fn pretty_printed_program_behaves_identically() {
    let p1 = bcl_frontend::parse(SRC).expect("parses");
    let printed = bcl_frontend::pretty_program(&p1);
    let p2 =
        bcl_frontend::parse(&printed).unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed}"));
    let d1 = bcl_core::elaborate(&p1).unwrap();
    let d2 = bcl_core::elaborate(&p2).unwrap();
    assert_eq!(d1.prims, d2.prims);

    let run = |d: &bcl_core::Design| -> Vec<i64> {
        let parts = partition(d, SW).unwrap();
        let mut cs =
            Cosim::new(&parts, SW, HW, LinkConfig::default(), SwOptions::default()).unwrap();
        for s in 1..=8i64 {
            cs.push_source("samples", Value::int(32, s));
        }
        cs.run_until(|c| c.sink_count("energies") == 2, 100_000)
            .unwrap();
        cs.sink_values("energies")
            .iter()
            .map(|v| v.as_int().unwrap())
            .collect()
    };
    assert_eq!(run(&d1), run(&d2));
}

#[test]
fn interface_only_methodology() {
    // §1's third methodology: use only the generated interface. Here the
    // "alternative implementation" is host code talking straight to the
    // partition stores through the transactor-managed FIFO halves.
    let program = bcl_frontend::parse(SRC).expect("parses");
    let design = bcl_core::elaborate(&program).expect("elaborates");
    let parts = partition(&design, SW).expect("partitions");
    let hw = parts.partition(HW).expect("hw partition");
    // The generated hardware-side interface is exactly two FIFO halves.
    assert!(hw.prim_id("toHw.rx").is_some());
    assert!(hw.prim_id("toSw.tx").is_some());
    // A hand-rolled "hardware" could be attached to those FIFOs; the
    // channel specs carry everything needed to marshal.
    let chan = parts.channels.iter().find(|c| c.name == "toHw").unwrap();
    assert_eq!(chan.ty.words(), 1);
    assert_eq!(chan.from_domain, SW);
    assert_eq!(chan.to_domain, HW);
}
