//! # bcl-suite — workspace umbrella
//!
//! Re-exports the crates of the BCL reproduction for the workspace-level
//! examples (`examples/`) and cross-crate integration tests (`tests/`).
//! See the README for the repository map and DESIGN.md for the system
//! inventory.

#![warn(missing_docs)]

pub use bcl_backend as backend;
pub use bcl_core as core;
pub use bcl_eventsim as eventsim;
pub use bcl_frontend as frontend;
pub use bcl_platform as platform;
pub use bcl_raytrace as raytrace;
pub use bcl_vorbis as vorbis;
