//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! stub supplies just enough of serde's surface for the workspace to
//! compile: the `Serialize`/`Deserialize` marker traits and the derive
//! macros (which expand to nothing). No code in this repository actually
//! serializes values yet; when it does, this stub is the place to grow a
//! real (or real-er) implementation.

#![warn(missing_docs)]

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
