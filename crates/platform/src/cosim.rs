//! HW/SW co-simulation: the full generated system of Figure 6 running on
//! the modeled platform of Figure 11.
//!
//! A [`Cosim`] couples one software partition (executed by
//! [`SwRunner`] under the CPU cost model, at 400 MHz) with one hardware
//! partition (executed cycle-accurately by [`HwSim`] at 100 MHz) through
//! the generated [`Transactor`] over a [`Link`]. Time advances in FPGA
//! cycles; the software side receives `cpu_per_fpga` CPU cycles of budget
//! per FPGA cycle, from which driver marshaling work is deducted before
//! rule execution — moving data is not free for the processor.

use crate::link::{FaultConfig, Link, LinkConfig, LinkSnapshot, LinkStats, PartitionFault};
use crate::transactor::{
    ChannelDiag, ChannelReport, Transactor, TransactorSnapshot, TransportStats,
};
use crate::PlatformError;
use bcl_core::ast::PrimId;
use bcl_core::design::Design;
use bcl_core::error::{ExecError, ExecResult};
use bcl_core::partition::{fuse_partitioned, Partitioned};
use bcl_core::prim::{PrimSpec, PrimState};
use bcl_core::sched::{HwSim, HwSnapshot, SwOptions, SwRunner, SwSnapshot};
use bcl_core::store::Store;
use bcl_core::value::Value;

/// How a co-simulation ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CosimOutcome {
    /// The completion predicate became true after this many FPGA cycles.
    Done {
        /// Total FPGA cycles elapsed.
        fpga_cycles: u64,
    },
    /// The cycle limit was reached first.
    Timeout {
        /// Total FPGA cycles elapsed.
        fpga_cycles: u64,
    },
    /// Fault injection wedged the transport: data was pending but no
    /// channel made sequence progress for the stall threshold (e.g. a
    /// direction with 100% loss). Only reported when faults are active —
    /// a perfect link that merely runs out of cycles is a [`Timeout`].
    ///
    /// [`Timeout`]: CosimOutcome::Timeout
    Stalled {
        /// Total FPGA cycles elapsed.
        fpga_cycles: u64,
        /// Per-channel sequence/credit snapshots at the moment the stall
        /// was declared.
        channels: Vec<ChannelDiag>,
    },
    /// A hardware-partition fault struck and the recovery policy gave up:
    /// either [`RecoveryPolicy::RestartFromCheckpoint`] exhausted its
    /// retry budget, or a fault fired before any checkpoint existed to
    /// recover from.
    PartitionLost {
        /// Total FPGA cycles elapsed.
        fpga_cycles: u64,
        /// Recovery attempts made before giving up.
        retries: u32,
    },
}

impl CosimOutcome {
    /// The elapsed FPGA cycles regardless of outcome.
    pub fn fpga_cycles(&self) -> u64 {
        match self {
            CosimOutcome::Done { fpga_cycles }
            | CosimOutcome::Timeout { fpga_cycles }
            | CosimOutcome::Stalled { fpga_cycles, .. }
            | CosimOutcome::PartitionLost { fpga_cycles, .. } => *fpga_cycles,
        }
    }

    /// True if the predicate was met.
    pub fn is_done(&self) -> bool {
        matches!(self, CosimOutcome::Done { .. })
    }

    /// True if the transport stall detector fired.
    pub fn is_stalled(&self) -> bool {
        matches!(self, CosimOutcome::Stalled { .. })
    }
}

/// What a [`Cosim`] does when a scripted [`PartitionFault`] wipes the
/// hardware partition mid-run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RecoveryPolicy {
    /// No recovery: the fault wipes hardware and transport state and the
    /// run is left to stall or time out. This is the pre-checkpoint
    /// behavior and the default.
    #[default]
    Fail,
    /// Auto-checkpoint every `interval` FPGA cycles; on a fault, restore
    /// the last checkpoint and replay. Because a checkpoint is a globally
    /// consistent cut and scripted faults fire at most once, the replayed
    /// run converges to the exact fault-free trajectory — same sink
    /// values, same final cycle count. Repeated faults back the
    /// checkpoint cadence off exponentially; after `max_retries`
    /// restores the run ends with [`CosimOutcome::PartitionLost`].
    RestartFromCheckpoint {
        /// FPGA cycles between automatic checkpoints.
        interval: u64,
        /// Restores allowed before declaring the partition lost.
        max_retries: u32,
    },
    /// Auto-checkpoint every `interval` cycles; on a fault, rebuild the
    /// lost hardware partition's state from the last checkpoint plus the
    /// channel traffic that was in transit at the cut, splice everything
    /// into a fused all-software design, and continue software-only —
    /// slower, but the value streams are bit-identical (the paper's
    /// semantic-interchangeability claim made operational).
    FailoverToSoftware {
        /// FPGA cycles between automatic checkpoints.
        interval: u64,
    },
}

impl RecoveryPolicy {
    /// Restart-from-checkpoint with the default retry budget (8).
    pub fn restart(interval: u64) -> RecoveryPolicy {
        RecoveryPolicy::RestartFromCheckpoint {
            interval,
            max_retries: 8,
        }
    }

    /// Failover-to-software with the given checkpoint cadence.
    pub fn failover(interval: u64) -> RecoveryPolicy {
        RecoveryPolicy::FailoverToSoftware { interval }
    }

    fn checkpoint_interval(&self) -> Option<u64> {
        match self {
            RecoveryPolicy::Fail => None,
            RecoveryPolicy::RestartFromCheckpoint { interval, .. }
            | RecoveryPolicy::FailoverToSoftware { interval } => Some(*interval),
        }
    }
}

/// A globally consistent cut of a co-simulation, captured between FPGA
/// cycles: both partitions' stores, each side's scheduler state, the
/// transactor's transport state (per-channel sequence/ACK/credit/
/// retransmission queues), the link (frames in flight *and* the fault
/// PRNG streams), and the cycle/budget counters.
///
/// The cut is consistent because the whole system advances in one
/// deterministic `step()`: nothing is in the middle of an operation at a
/// step boundary, so restoring every component to the same boundary
/// yields a state the uninterrupted system actually passes through.
/// [`Cosim::restore`] therefore guarantees that a restored run is bit-
/// and cycle-identical to one that was never interrupted.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    sw: SwSnapshot,
    hw: Option<HwSnapshot>,
    transactor: Option<TransactorSnapshot>,
    link: LinkSnapshot,
    fpga_cycles: u64,
    sw_debt: u64,
    last_progress: u64,
    last_progress_cycle: u64,
    hw_alive: bool,
}

impl Checkpoint {
    /// The FPGA cycle at which this checkpoint was captured.
    pub fn fpga_cycles(&self) -> u64 {
        self.fpga_cycles
    }
}

/// A co-simulation of a partitioned design.
#[derive(Debug)]
pub struct Cosim {
    /// The software partition's runner.
    pub sw: SwRunner,
    /// The hardware partition's simulator (absent for all-software
    /// designs).
    pub hw: Option<HwSim>,
    sw_design: Design,
    hw_design: Option<Design>,
    transactor: Option<Transactor>,
    link: Link,
    /// FPGA cycles elapsed.
    pub fpga_cycles: u64,
    /// Pending software work (driver transfers + rule overshoot) not yet
    /// paid for out of the per-cycle CPU budget.
    sw_debt: u64,
    sw_domain: String,
    hw_domain: String,
    /// FPGA cycles without transport sequence progress (while work is
    /// pending) before [`CosimOutcome::Stalled`] is declared. Only armed
    /// when the link's fault model is active.
    stall_threshold: u64,
    /// Transactor progress counter at the last observed advance.
    last_progress: u64,
    /// Cycle of the last observed advance.
    last_progress_cycle: u64,
    /// The partitioning the cosim was built from (kept for failover).
    parts: Partitioned,
    /// Software execution options (kept to rebuild the runner on failover).
    sw_opts: SwOptions,
    /// False while the hardware partition is down after a `DieAt` fault.
    hw_alive: bool,
    /// True once `FailoverToSoftware` has spliced execution into the
    /// fused all-software design.
    failed_over: bool,
    /// Active recovery policy.
    policy: RecoveryPolicy,
    /// Scripted partition faults, copied from the fault config.
    fault_schedule: Vec<PartitionFault>,
    /// Which scripted faults have already fired. Deliberately *not* part
    /// of a checkpoint: a fault is an event in the environment, so
    /// rewinding the system must not re-arm it (that way a restore
    /// replays past the fault instead of looping on it).
    fault_fired: Vec<bool>,
    /// Last automatic checkpoint taken by the recovery policy.
    last_ckpt: Option<Checkpoint>,
    /// Next FPGA cycle at which an automatic checkpoint is due.
    next_ckpt_at: u64,
    /// Restores performed so far.
    retries: u32,
    /// Faults since the last surviving checkpoint (drives backoff).
    consecutive_faults: u32,
    /// Set when recovery gives up; reported as `PartitionLost`.
    lost_at: Option<u64>,
}

/// Default stall threshold: far beyond the retransmission backoff cap
/// (~8 round trips), so a live-but-lossy link never trips it, while a
/// dead direction is reported without exhausting the cycle limit.
pub const DEFAULT_STALL_THRESHOLD: u64 = 50_000;

impl Cosim {
    /// Builds a co-simulation from a partitioned design.
    ///
    /// The design must have a `sw_domain` partition; a `hw_domain`
    /// partition and channels between the two are optional (an
    /// all-software partitioning runs without a link).
    ///
    /// # Errors
    ///
    /// Rejects designs with partitions in other domains, hardware
    /// partitions that fail the hardware legality check, or malformed
    /// channels.
    pub fn new(
        p: &Partitioned,
        sw_domain: &str,
        hw_domain: &str,
        link_cfg: LinkConfig,
        sw_opts: SwOptions,
    ) -> Result<Cosim, PlatformError> {
        Cosim::with_faults(
            p,
            sw_domain,
            hw_domain,
            link_cfg,
            FaultConfig::none(),
            sw_opts,
        )
    }

    /// Builds a co-simulation whose link injects deterministic faults.
    /// With an active fault model the transactor switches to its framed
    /// reliable transport and the stall detector is armed; with
    /// [`FaultConfig::none`] this is identical to [`Cosim::new`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`Cosim::new`].
    pub fn with_faults(
        p: &Partitioned,
        sw_domain: &str,
        hw_domain: &str,
        link_cfg: LinkConfig,
        faults: FaultConfig,
        sw_opts: SwOptions,
    ) -> Result<Cosim, PlatformError> {
        for d in p.partitions.keys() {
            if d != sw_domain && d != hw_domain {
                return Err(PlatformError::new(format!(
                    "partition `{d}` is neither `{sw_domain}` nor `{hw_domain}`; \
                     multi-accelerator topologies are not modeled"
                )));
            }
        }
        let sw_design = p.partition(sw_domain).cloned().ok_or_else(|| {
            PlatformError::new(format!(
                "malformed partitioning: no `{sw_domain}` (software) partition — \
                 the driver loop must have somewhere to run"
            ))
        })?;
        let hw_design = p.partition(hw_domain).cloned();
        let sw = SwRunner::new(&sw_design, sw_opts);
        let hw = match &hw_design {
            Some(d) => Some(HwSim::new(d).map_err(|e| PlatformError::new(e.to_string()))?),
            None => None,
        };
        let transactor = if p.channels.is_empty() {
            None
        } else {
            let hwd = hw_design
                .as_ref()
                .ok_or_else(|| PlatformError::new("channels present but no hardware partition"))?;
            Some(
                Transactor::new(&p.channels, sw_domain, &sw_design, hw_domain, hwd)
                    .map_err(|e| PlatformError::new(e.to_string()))?,
            )
        };
        let fault_schedule = faults.partition.clone();
        Ok(Cosim {
            sw,
            hw,
            sw_design,
            hw_design,
            transactor,
            link: Link::with_faults(link_cfg, faults),
            fpga_cycles: 0,
            sw_debt: 0,
            sw_domain: sw_domain.to_string(),
            hw_domain: hw_domain.to_string(),
            stall_threshold: DEFAULT_STALL_THRESHOLD,
            last_progress: 0,
            last_progress_cycle: 0,
            parts: p.clone(),
            sw_opts,
            hw_alive: true,
            failed_over: false,
            policy: RecoveryPolicy::Fail,
            fault_fired: vec![false; fault_schedule.len()],
            fault_schedule,
            last_ckpt: None,
            next_ckpt_at: 0,
            retries: 0,
            consecutive_faults: 0,
            lost_at: None,
        })
    }

    /// Selects the recovery policy for scripted partition faults. Set it
    /// before running: policies that restore need an automatic
    /// checkpoint to exist when the first fault strikes, and the first
    /// one is taken on the first step after the policy is set.
    pub fn set_recovery_policy(&mut self, policy: RecoveryPolicy) {
        self.policy = policy;
    }

    /// The active recovery policy.
    pub fn recovery_policy(&self) -> RecoveryPolicy {
        self.policy
    }

    /// True while the hardware partition is up (always true before any
    /// `DieAt` fault; false after software failover).
    pub fn hw_alive(&self) -> bool {
        self.hw_alive
    }

    /// True once `FailoverToSoftware` has taken over: the hardware
    /// partition is gone and the fused all-software design is running.
    pub fn failed_over(&self) -> bool {
        self.failed_over
    }

    /// Pending software work (driver transfers + rule overshoot) not yet
    /// paid out of the per-cycle CPU budget.
    pub fn sw_debt(&self) -> u64 {
        self.sw_debt
    }

    /// Overrides the stall threshold (FPGA cycles of no transport
    /// progress, while work is pending, before a run reports
    /// [`CosimOutcome::Stalled`]).
    pub fn set_stall_threshold(&mut self, cycles: u64) {
        self.stall_threshold = cycles.max(1);
    }

    /// The software partition's design.
    pub fn sw_design(&self) -> &Design {
        &self.sw_design
    }

    /// The hardware partition's design, if any.
    pub fn hw_design(&self) -> Option<&Design> {
        self.hw_design.as_ref()
    }

    /// The software domain name.
    pub fn sw_domain(&self) -> &str {
        &self.sw_domain
    }

    /// The hardware domain name.
    pub fn hw_domain(&self) -> &str {
        &self.hw_domain
    }

    /// Locates a primitive by path, searching both partitions. Returns
    /// the partition tag (`true` = hardware) and id.
    fn locate(&self, path: &str) -> Option<(bool, PrimId)> {
        if let Some(id) = self.sw_design.prim_id(path) {
            return Some((false, id));
        }
        if let Some(d) = &self.hw_design {
            if let Some(id) = d.prim_id(path) {
                return Some((true, id));
            }
        }
        None
    }

    /// Checks that `path` resolves to a primitive of the kind accepted by
    /// `want`, in either partition.
    fn locate_kind(
        &self,
        path: &str,
        want: &str,
        ok: impl Fn(&PrimSpec) -> bool,
    ) -> Result<(bool, PrimId), PlatformError> {
        let (in_hw, id) = self.locate(path).ok_or_else(|| {
            PlatformError::new(format!("no primitive `{path}` in either partition"))
        })?;
        let design = if in_hw {
            self.hw_design.as_ref().expect("hw prim implies hw design")
        } else {
            &self.sw_design
        };
        let spec = &design.prim(id).spec;
        if !ok(spec) {
            return Err(PlatformError::new(format!(
                "`{path}` is a {}, not a {want}",
                spec_kind(spec)
            )));
        }
        Ok((in_hw, id))
    }

    /// Pushes a value into a named `Source`, reporting failures instead
    /// of panicking.
    ///
    /// # Errors
    ///
    /// Returns an error if the path is absent from both partitions or
    /// names a primitive that is not a `Source`.
    pub fn try_push_source(&mut self, path: &str, v: Value) -> Result<(), PlatformError> {
        let (in_hw, id) =
            self.locate_kind(path, "Source", |s| matches!(s, PrimSpec::Source { .. }))?;
        if in_hw {
            self.hw
                .as_mut()
                .expect("hw prim implies hw sim")
                .store
                .push_source(id, v);
        } else {
            self.sw.store.push_source(id, v);
        }
        Ok(())
    }

    /// Reads the values a named `Sink` has consumed, reporting failures
    /// instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns an error if the path is absent from both partitions or
    /// names a primitive that is not a `Sink`.
    pub fn try_sink_values(&self, path: &str) -> Result<&[Value], PlatformError> {
        let (in_hw, id) = self.locate_kind(path, "Sink", |s| matches!(s, PrimSpec::Sink { .. }))?;
        if in_hw {
            Ok(self
                .hw
                .as_ref()
                .expect("hw prim implies hw sim")
                .store
                .sink_values(id))
        } else {
            Ok(self.sw.store.sink_values(id))
        }
    }

    /// Pushes a value into a named `Source`.
    ///
    /// # Panics
    ///
    /// Panics if the path does not name a `Source` in either partition;
    /// use [`Cosim::try_push_source`] for the non-panicking variant.
    pub fn push_source(&mut self, path: &str, v: Value) {
        self.try_push_source(path, v)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    /// Reads the values a named `Sink` has consumed.
    ///
    /// # Panics
    ///
    /// Panics if the path does not name a `Sink` in either partition;
    /// use [`Cosim::try_sink_values`] for the non-panicking variant.
    pub fn sink_values(&self, path: &str) -> &[Value] {
        self.try_sink_values(path).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Number of values consumed by a sink.
    pub fn sink_count(&self, path: &str) -> usize {
        self.sink_values(path).len()
    }

    /// Captures a globally consistent cut of the whole system at the
    /// current step boundary (see [`Checkpoint`]). Checkpoints are pure
    /// observations: taking one does not perturb execution.
    pub fn checkpoint(&self) -> Checkpoint {
        Checkpoint {
            sw: self.sw.snapshot(),
            hw: self.hw.as_ref().map(HwSim::snapshot),
            transactor: self.transactor.as_ref().map(Transactor::snapshot),
            link: self.link.snapshot(),
            fpga_cycles: self.fpga_cycles,
            sw_debt: self.sw_debt,
            last_progress: self.last_progress,
            last_progress_cycle: self.last_progress_cycle,
            hw_alive: self.hw_alive,
        }
    }

    /// Rewinds the system to a checkpoint. The restored run is bit- and
    /// cycle-identical to one that was never interrupted: stores,
    /// scheduler state, transport state, in-flight frames, the fault
    /// PRNG, and every counter resume from the same consistent cut.
    /// Scripted partition faults that already fired stay fired — a
    /// restore replays *past* a fault, it does not re-arm it.
    ///
    /// # Panics
    ///
    /// Panics if the checkpoint came from a differently shaped system
    /// (hardware/transactor presence or design topology differs).
    pub fn restore(&mut self, ckpt: &Checkpoint) {
        self.sw.restore(&ckpt.sw);
        match (&mut self.hw, &ckpt.hw) {
            (Some(hw), Some(snap)) => hw.restore(snap),
            (None, None) => {}
            _ => panic!("checkpoint topology mismatch: hardware presence differs"),
        }
        match (&mut self.transactor, &ckpt.transactor) {
            (Some(t), Some(snap)) => t.restore(snap),
            (None, None) => {}
            _ => panic!("checkpoint topology mismatch: transactor presence differs"),
        }
        self.link.restore(&ckpt.link);
        self.fpga_cycles = ckpt.fpga_cycles;
        self.sw_debt = ckpt.sw_debt;
        self.last_progress = ckpt.last_progress;
        self.last_progress_cycle = ckpt.last_progress_cycle;
        self.hw_alive = ckpt.hw_alive;
    }

    /// Recovery bookkeeping at the top of each step: takes the automatic
    /// checkpoint when one is due, then fires any scripted partition
    /// faults scheduled for the current cycle.
    fn recovery_tick(&mut self) -> ExecResult<()> {
        if self.hw.is_none() {
            // All-software from the start, or already failed over:
            // nothing left to fault.
            return Ok(());
        }
        if let Some(interval) = self.policy.checkpoint_interval() {
            if self.fpga_cycles >= self.next_ckpt_at {
                self.last_ckpt = Some(self.checkpoint());
                self.next_ckpt_at = self.fpga_cycles + interval.max(1);
                self.consecutive_faults = 0;
            }
        }
        loop {
            let due = (0..self.fault_schedule.len()).find(|&i| {
                !self.fault_fired[i] && self.fault_schedule[i].cycle() == self.fpga_cycles
            });
            let Some(i) = due else { break };
            self.fault_fired[i] = true;
            let fault = self.fault_schedule[i];
            self.apply_partition_fault(fault)?;
            if self.failed_over || self.lost_at.is_some() {
                break;
            }
        }
        Ok(())
    }

    /// Models a partition fault: wipes the hardware partition's volatile
    /// state, the transport protocol state, and the frames on the wire,
    /// then invokes the recovery policy.
    fn apply_partition_fault(&mut self, fault: PartitionFault) -> ExecResult<()> {
        let hw_design = self.hw_design.clone().expect("partition fault implies hw");
        if let Some(hw) = &mut self.hw {
            hw.reset_state(&hw_design);
        }
        if let Some(t) = &mut self.transactor {
            t.reset_transport();
        }
        self.link.clear_in_flight();
        if fault.is_fatal() {
            self.hw_alive = false;
        }
        match self.policy {
            RecoveryPolicy::Fail => Ok(()),
            RecoveryPolicy::RestartFromCheckpoint {
                interval,
                max_retries,
            } => {
                let Some(ckpt) = self.last_ckpt.clone() else {
                    self.lost_at = Some(self.fpga_cycles);
                    return Ok(());
                };
                if self.retries >= max_retries {
                    self.lost_at = Some(self.fpga_cycles);
                    return Ok(());
                }
                self.retries += 1;
                self.consecutive_faults += 1;
                self.restore(&ckpt);
                // The restored image had the partition up; rebooting from
                // it brings the hardware back even after a fatal fault.
                self.hw_alive = true;
                // Exponential backoff on the checkpoint cadence while
                // faults keep striking, so a fault storm cannot pin the
                // run in a checkpoint/restore cycle.
                let backoff = interval.max(1) << self.consecutive_faults.min(6);
                self.next_ckpt_at = self.fpga_cycles + backoff;
                Ok(())
            }
            RecoveryPolicy::FailoverToSoftware { .. } => self.failover_to_software(),
        }
    }

    /// The store holding a domain's committed state, with the design its
    /// primitive ids index into.
    fn domain_side(&self, dom: &str) -> (&Design, &Store) {
        if dom == self.sw_domain {
            (&self.sw_design, &self.sw.store)
        } else {
            (
                self.hw_design.as_ref().expect("hw domain implies design"),
                &self.hw.as_ref().expect("hw domain implies sim").store,
            )
        }
    }

    /// Rebuilds the dead hardware partition's state from the last
    /// checkpoint plus the channel traffic in transit at the cut, splices
    /// everything into the fused all-software design, and continues
    /// software-only.
    fn failover_to_software(&mut self) -> ExecResult<()> {
        let Some(ckpt) = self.last_ckpt.take() else {
            self.lost_at = Some(self.fpga_cycles);
            return Ok(());
        };
        self.restore(&ckpt);
        let fused =
            fuse_partitioned(&self.parts).map_err(|e| ExecError::Malformed(e.to_string()))?;
        let mut store = Store::new(&fused.design);

        // Non-channel primitives: copy each partition's committed state
        // straight across (both sides come from the restored cut).
        let channel_ids: std::collections::BTreeSet<usize> =
            fused.channel_fifos.iter().map(|id| id.0).collect();
        for (dom, ids) in &fused.prim_map {
            let (_, src) = self.domain_side(dom);
            for (local, fid) in ids.iter().enumerate() {
                if channel_ids.contains(&fid.0) {
                    continue;
                }
                *store.state_mut(*fid) = src.state(PrimId(local)).clone();
            }
        }

        // Channel FIFOs: rx-side items are oldest, then whatever was in
        // transit on the link at the cut, then tx-side items. The merged
        // FIFO may transiently exceed its nominal depth; that is safe
        // because synchronizer edges are latency-insensitive — `enq`
        // blocks until the backlog drains below depth.
        let in_transit = match &self.transactor {
            Some(t) => t.in_transit_values(&self.link)?,
            None => vec![Vec::new(); self.parts.channels.len()],
        };
        for (i, spec) in self.parts.channels.iter().enumerate() {
            let mut items: std::collections::VecDeque<Value> = std::collections::VecDeque::new();
            let (rx_design, rx_store) = self.domain_side(&spec.to_domain);
            let rx = rx_design.prim_id(&spec.rx_path).expect("rx half exists");
            if let PrimState::Fifo { items: q, .. } = rx_store.state(rx) {
                items.extend(q.iter().cloned());
            }
            items.extend(in_transit[i].iter().cloned());
            let (tx_design, tx_store) = self.domain_side(&spec.from_domain);
            let tx = tx_design.prim_id(&spec.tx_path).expect("tx half exists");
            if let PrimState::Fifo { items: q, .. } = tx_store.state(tx) {
                items.extend(q.iter().cloned());
            }
            if let PrimState::Fifo { items: slot, .. } = store.state_mut(fused.channel_fifos[i]) {
                *slot = items;
            }
        }

        // Swap execution onto the fused design, carrying the CPU cost
        // already accumulated so the cycle accounting stays monotonic.
        let cost = self.sw.cost;
        let mut sw = SwRunner::with_store(&fused.design, store, self.sw_opts);
        sw.cost = cost;
        self.sw = sw;
        self.sw_design = fused.design;
        self.hw = None;
        self.hw_design = None;
        self.transactor = None;
        self.link.clear_in_flight();
        self.hw_alive = false;
        self.failed_over = true;
        self.last_ckpt = None;
        Ok(())
    }

    /// Advances the system by one FPGA clock cycle.
    ///
    /// After a fatal partition fault under [`RecoveryPolicy::Fail`] the
    /// hardware side no longer executes; after the recovery policy has
    /// given up (`PartitionLost`) the step is a no-op.
    ///
    /// # Errors
    ///
    /// Propagates dynamic errors from either partition or the transactor.
    pub fn step(&mut self) -> ExecResult<()> {
        if self.lost_at.is_some() {
            return Ok(());
        }
        self.recovery_tick()?;
        if self.lost_at.is_some() {
            return Ok(());
        }
        let now = self.fpga_cycles;
        if self.hw_alive {
            if let Some(hw) = &mut self.hw {
                hw.step()?;
            }
            if let Some(t) = &mut self.transactor {
                let hw = self.hw.as_mut().expect("transactor implies hw");
                let charged = t.pump(&mut self.sw.store, &mut hw.store, &mut self.link, now)?;
                self.sw_debt += charged;
            }
        }
        // Software gets cpu_per_fpga cycles of budget; driver work
        // (sw_debt) is paid first.
        let mut budget = self.link.config().cpu_per_fpga;
        if self.sw_debt >= budget {
            self.sw_debt -= budget;
        } else {
            budget -= self.sw_debt;
            self.sw_debt = 0;
            let (spent, _quiescent) = self.sw.run_for(budget)?;
            self.sw_debt += spent.saturating_sub(budget);
        }
        self.fpga_cycles += 1;
        Ok(())
    }

    /// Runs until `done` returns true or `max_cycles` FPGA cycles elapse.
    ///
    /// All-software partitionings (no hardware, no channels) are run on a
    /// fast path: the software executes to quiescence and elapsed time is
    /// its CPU time divided by the clock ratio.
    ///
    /// # Errors
    ///
    /// Propagates dynamic errors.
    pub fn run_until(
        &mut self,
        done: impl Fn(&Cosim) -> bool,
        max_cycles: u64,
    ) -> ExecResult<CosimOutcome> {
        if self.hw.is_none() && self.transactor.is_none() && !self.failed_over {
            // Pure software: no cycle-by-cycle interleaving needed. (Not
            // taken after a failover — the splice preserved the FPGA
            // cycle count, which this path would clobber.)
            let ratio = self.link.config().cpu_per_fpga;
            loop {
                self.fpga_cycles = self.sw.cpu_cycles().div_ceil(ratio);
                if done(self) {
                    return Ok(CosimOutcome::Done {
                        fpga_cycles: self.fpga_cycles,
                    });
                }
                if self.fpga_cycles >= max_cycles {
                    return Ok(CosimOutcome::Timeout {
                        fpga_cycles: self.fpga_cycles,
                    });
                }
                if !self.sw.step()? {
                    // Quiescent but not done.
                    return Ok(CosimOutcome::Timeout {
                        fpga_cycles: self.fpga_cycles,
                    });
                }
            }
        }
        while self.fpga_cycles < max_cycles {
            if done(self) {
                return Ok(CosimOutcome::Done {
                    fpga_cycles: self.fpga_cycles,
                });
            }
            self.step()?;
            if let Some(at) = self.lost_at {
                return Ok(CosimOutcome::PartitionLost {
                    fpga_cycles: at,
                    retries: self.retries,
                });
            }
            if let Some(stalled) = self.check_stall() {
                return Ok(stalled);
            }
        }
        Ok(CosimOutcome::Timeout {
            fpga_cycles: self.fpga_cycles,
        })
    }

    /// Declares a stall when faults are active, transport work is
    /// pending, and no channel has made sequence progress for
    /// `stall_threshold` cycles. Graceful degradation: the run ends with
    /// per-channel diagnostics instead of burning the full cycle budget.
    fn check_stall(&mut self) -> Option<CosimOutcome> {
        let t = self.transactor.as_ref()?;
        if !self.link.faults_active() && self.fault_schedule.is_empty() {
            return None;
        }
        let progress = t.progress();
        let hw = self.hw.as_ref().expect("transactor implies hw");
        if progress != self.last_progress || !t.pending_work(&self.sw.store, &hw.store) {
            self.last_progress = progress;
            self.last_progress_cycle = self.fpga_cycles;
            return None;
        }
        if self.fpga_cycles - self.last_progress_cycle >= self.stall_threshold {
            return Some(CosimOutcome::Stalled {
                fpga_cycles: self.fpga_cycles,
                channels: t.diagnostics(&self.sw.store, &hw.store),
            });
        }
        None
    }

    /// Link traffic totals.
    pub fn link_stats(&self) -> LinkStats {
        self.link.stats()
    }

    /// The link's fault model.
    pub fn fault_config(&self) -> &FaultConfig {
        self.link.fault_config()
    }

    /// Transport-level statistics (CRC rejects, pure-ACK frames); all
    /// zero on a perfect link.
    pub fn transport_stats(&self) -> TransportStats {
        self.transactor
            .as_ref()
            .map(|t| t.transport_stats())
            .unwrap_or_default()
    }

    /// Per-channel transfer summaries.
    pub fn channel_report(&self) -> Vec<ChannelReport> {
        self.transactor
            .as_ref()
            .map(|t| t.report())
            .unwrap_or_default()
    }
}

/// Human-readable kind of a primitive spec, for error messages.
fn spec_kind(spec: &PrimSpec) -> &'static str {
    match spec {
        PrimSpec::Reg { .. } => "Reg",
        PrimSpec::Fifo { .. } => "Fifo",
        PrimSpec::RegFile { .. } => "RegFile",
        PrimSpec::Sync { .. } => "Sync",
        PrimSpec::Source { .. } => "Source",
        PrimSpec::Sink { .. } => "Sink",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcl_core::builder::{dsl::*, ModuleBuilder};
    use bcl_core::domain::{HW, SW};
    use bcl_core::elaborate;
    use bcl_core::partition::{fuse_syncs, partition};
    use bcl_core::program::Program;
    use bcl_core::types::Type;

    /// src(SW) -> inSync -> HW (+1000) -> outSync -> snk(SW)
    fn offload_design(hw: bool) -> bcl_core::design::Design {
        let (from, to) = if hw { (SW, HW) } else { (SW, SW) };
        let mut m = ModuleBuilder::new("Offload");
        m.source("src", Type::Int(32), SW);
        m.sink("snk", Type::Int(32), SW);
        m.channel("inSync", 4, Type::Int(32), from, to);
        m.channel("outSync", 4, Type::Int(32), to, from);
        m.rule("feed", with_first("x", "src", enq("inSync", var("x"))));
        m.rule(
            "compute",
            with_first("x", "inSync", enq("outSync", add(var("x"), cint(32, 1000)))),
        );
        m.rule("drain", with_first("y", "outSync", enq("snk", var("y"))));
        elaborate(&Program::with_root(m.build())).unwrap()
    }

    #[test]
    fn hw_offload_round_trip() {
        let d = offload_design(true);
        let p = partition(&d, SW).unwrap();
        let mut cs = Cosim::new(&p, SW, HW, LinkConfig::default(), SwOptions::default()).unwrap();
        for i in 0..5 {
            cs.push_source("src", Value::int(32, i));
        }
        let out = cs.run_until(|c| c.sink_count("snk") == 5, 100_000).unwrap();
        assert!(out.is_done(), "timed out: {out:?}");
        let vals: Vec<i64> = cs
            .sink_values("snk")
            .iter()
            .map(|v| v.as_int().unwrap())
            .collect();
        assert_eq!(vals, vec![1000, 1001, 1002, 1003, 1004]);
        // Round trip includes two link crossings: at least ~100 cycles.
        assert!(out.fpga_cycles() >= 100, "cycles = {}", out.fpga_cycles());
        let stats = cs.link_stats();
        assert_eq!(stats.msgs_to_hw, 5);
        assert_eq!(stats.msgs_to_sw, 5);
    }

    #[test]
    fn pure_sw_fast_path_matches_output() {
        let d = fuse_syncs(&offload_design(false));
        let p = partition(&d, SW).unwrap();
        let mut cs = Cosim::new(&p, SW, HW, LinkConfig::default(), SwOptions::default()).unwrap();
        assert!(cs.hw.is_none());
        for i in 0..5 {
            cs.push_source("src", Value::int(32, i));
        }
        let out = cs
            .run_until(|c| c.sink_count("snk") == 5, 1_000_000)
            .unwrap();
        assert!(out.is_done());
        let vals: Vec<i64> = cs
            .sink_values("snk")
            .iter()
            .map(|v| v.as_int().unwrap())
            .collect();
        assert_eq!(vals, vec![1000, 1001, 1002, 1003, 1004]);
        // No link traffic in pure software.
        assert_eq!(cs.link_stats().msgs_to_hw, 0);
    }

    #[test]
    fn partitioned_and_fused_agree() {
        // The LIBDN latency-insensitivity claim, end to end: identical
        // output streams regardless of the partitioning.
        let inputs: Vec<i64> = (0..8).map(|i| i * 3 - 5).collect();
        let run = |hw: bool| -> Vec<i64> {
            let d = if hw {
                offload_design(true)
            } else {
                fuse_syncs(&offload_design(false))
            };
            let p = partition(&d, SW).unwrap();
            let mut cs =
                Cosim::new(&p, SW, HW, LinkConfig::default(), SwOptions::default()).unwrap();
            for &i in &inputs {
                cs.push_source("src", Value::int(32, i));
            }
            let out = cs
                .run_until(|c| c.sink_count("snk") == inputs.len(), 1_000_000)
                .unwrap();
            assert!(out.is_done());
            cs.sink_values("snk")
                .iter()
                .map(|v| v.as_int().unwrap())
                .collect()
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn timeout_reported() {
        let d = offload_design(true);
        let p = partition(&d, SW).unwrap();
        let mut cs = Cosim::new(&p, SW, HW, LinkConfig::default(), SwOptions::default()).unwrap();
        cs.push_source("src", Value::int(32, 1));
        let out = cs.run_until(|c| c.sink_count("snk") == 99, 200).unwrap();
        assert!(!out.is_done());
        assert_eq!(out.fpga_cycles(), 200);
    }

    #[test]
    fn faulty_link_output_is_bit_identical_and_reproducible() {
        use crate::link::FaultConfig;
        let d = offload_design(true);
        let p = partition(&d, SW).unwrap();
        let run = |faults: FaultConfig| {
            let mut cs = Cosim::with_faults(
                &p,
                SW,
                HW,
                LinkConfig::default(),
                faults,
                SwOptions::default(),
            )
            .unwrap();
            for i in 0..8 {
                cs.push_source("src", Value::int(32, i));
            }
            let out = cs
                .run_until(|c| c.sink_count("snk") == 8, 5_000_000)
                .unwrap();
            assert!(out.is_done(), "did not finish: {out:?}");
            let vals: Vec<i64> = cs
                .sink_values("snk")
                .iter()
                .map(|v| v.as_int().unwrap())
                .collect();
            (
                vals,
                out.fpga_cycles(),
                cs.link_stats(),
                cs.channel_report(),
            )
        };
        let (clean, clean_cycles, ..) = run(FaultConfig::none());
        let (faulty, c1, stats, report) = run(FaultConfig::uniform(9, 0.25, 0.2, 0.15, 0.15));
        assert_eq!(faulty, clean, "reliable transport must hide the faults");
        assert!(
            stats.faults_injected() > 0,
            "faults must actually fire: {stats:?}"
        );
        assert!(
            report
                .iter()
                .any(|r| r.retransmits > 0 || r.dup_suppressed > 0),
            "recovery machinery must have engaged: {report:?}"
        );
        assert!(c1 > clean_cycles, "recovery costs cycles");
        // Determinism: the same seed reproduces the exact same run.
        let (_, c2, stats2, _) = run(FaultConfig::uniform(9, 0.25, 0.2, 0.15, 0.15));
        assert_eq!(c1, c2);
        assert_eq!(stats, stats2);
    }

    #[test]
    fn dead_direction_stalls_with_diagnostics() {
        use crate::link::FaultConfig;
        let d = offload_design(true);
        let p = partition(&d, SW).unwrap();
        // 100% loss SW→HW: requests never arrive, retransmission can
        // never succeed, and the stall detector must end the run early
        // with per-channel state — not the cycle-limit timeout.
        let faults = FaultConfig {
            drop: [1.0, 0.0],
            ..FaultConfig::uniform(3, 0.0, 0.0, 0.0, 0.0)
        };
        let mut cs = Cosim::with_faults(
            &p,
            SW,
            HW,
            LinkConfig::default(),
            faults,
            SwOptions::default(),
        )
        .unwrap();
        cs.set_stall_threshold(10_000);
        cs.push_source("src", Value::int(32, 1));
        let out = cs
            .run_until(|c| c.sink_count("snk") == 1, 100_000_000)
            .unwrap();
        match &out {
            CosimOutcome::Stalled {
                fpga_cycles,
                channels,
            } => {
                assert!(
                    *fpga_cycles < 1_000_000,
                    "stall must fire early, not at the limit"
                );
                let diag = channels
                    .iter()
                    .find(|c| c.name == "inSync")
                    .expect("inSync diagnosed");
                assert!(diag.unacked > 0, "undeliverable frame sits unacked: {diag}");
                assert!(diag.retransmits > 0, "sender kept trying: {diag}");
                assert_eq!(diag.accepted, 0, "receiver never saw it: {diag}");
            }
            other => panic!("expected a stall, got {other:?}"),
        }
    }

    #[test]
    fn sw_debt_throttles_software() {
        // With an expensive driver, completion takes more cycles.
        let d = offload_design(true);
        let p = partition(&d, SW).unwrap();
        let run = |word_cost: u64| {
            let cfg = LinkConfig {
                sw_word_cost: word_cost,
                ..Default::default()
            };
            let mut cs = Cosim::new(&p, SW, HW, cfg, SwOptions::default()).unwrap();
            for i in 0..10 {
                cs.push_source("src", Value::int(32, i));
            }
            cs.run_until(|c| c.sink_count("snk") == 10, 1_000_000)
                .unwrap()
                .fpga_cycles()
        };
        let cheap = run(1);
        let pricey = run(400);
        assert!(
            pricey > cheap,
            "driver cost must slow completion: {pricey} !> {cheap}"
        );
    }

    #[test]
    fn missing_sw_partition_is_a_malformed_error() {
        let d = offload_design(true);
        let mut p = partition(&d, SW).unwrap();
        p.partitions.remove(SW);
        let err = Cosim::new(&p, SW, HW, LinkConfig::default(), SwOptions::default())
            .expect_err("must be rejected, not silently substituted");
        let msg = err.to_string();
        assert!(
            msg.contains("malformed") && msg.contains("software"),
            "unexpected message: {msg}"
        );
    }

    #[test]
    fn try_accessors_report_errors_instead_of_panicking() {
        let d = offload_design(true);
        let p = partition(&d, SW).unwrap();
        let tx_path = p.channels[0].tx_path.clone();
        let mut cs = Cosim::new(&p, SW, HW, LinkConfig::default(), SwOptions::default()).unwrap();

        let err = cs.try_push_source("nope", Value::int(32, 1)).unwrap_err();
        assert!(err.to_string().contains("no primitive `nope`"));
        let err = cs.try_sink_values("nope").unwrap_err();
        assert!(err.to_string().contains("no primitive `nope`"));

        // Wrong kind: a channel FIFO half is not a Source, a Sink is not
        // a Source, and a Source is not a Sink.
        let err = cs.try_push_source(&tx_path, Value::int(32, 1)).unwrap_err();
        assert!(err.to_string().contains("is a Fifo, not a Source"), "{err}");
        let err = cs.try_push_source("snk", Value::int(32, 1)).unwrap_err();
        assert!(err.to_string().contains("is a Sink, not a Source"), "{err}");
        let err = cs.try_sink_values("src").unwrap_err();
        assert!(err.to_string().contains("is a Source, not a Sink"), "{err}");

        // The happy path still works through the same machinery.
        cs.try_push_source("src", Value::int(32, 7)).unwrap();
        assert!(cs.try_sink_values("snk").unwrap().is_empty());
    }

    #[test]
    fn checkpoint_restore_is_bit_and_cycle_identical() {
        let d = offload_design(true);
        let p = partition(&d, SW).unwrap();
        let mk = || {
            let mut cs =
                Cosim::new(&p, SW, HW, LinkConfig::default(), SwOptions::default()).unwrap();
            for i in 0..8 {
                cs.push_source("src", Value::int(32, i));
            }
            cs
        };
        // Uninterrupted reference run.
        let mut reference = mk();
        let ref_out = reference
            .run_until(|c| c.sink_count("snk") == 8, 1_000_000)
            .unwrap();
        assert!(ref_out.is_done());

        // Interrupted run: advance, checkpoint, wander off, restore,
        // finish. Must reproduce the exact cycle count and values.
        let mut cs = mk();
        for _ in 0..150 {
            cs.step().unwrap();
        }
        let ckpt = cs.checkpoint();
        assert_eq!(ckpt.fpga_cycles(), 150);
        for _ in 0..300 {
            cs.step().unwrap();
        }
        cs.restore(&ckpt);
        assert_eq!(cs.fpga_cycles, 150);
        let out = cs
            .run_until(|c| c.sink_count("snk") == 8, 1_000_000)
            .unwrap();
        assert!(out.is_done());
        assert_eq!(out.fpga_cycles(), ref_out.fpga_cycles());
        assert_eq!(cs.sink_values("snk"), reference.sink_values("snk"));
        assert_eq!(cs.link_stats(), reference.link_stats());
    }

    #[test]
    fn budget_accounting_survives_restore_exactly() {
        // Satellite: cpu_cycles and sw_debt must replay exactly across a
        // restore, under a driver expensive enough to keep debt nonzero.
        let d = offload_design(true);
        let p = partition(&d, SW).unwrap();
        let cfg = LinkConfig {
            sw_word_cost: 400,
            ..Default::default()
        };
        let mut cs = Cosim::new(&p, SW, HW, cfg, SwOptions::default()).unwrap();
        for i in 0..10 {
            cs.push_source("src", Value::int(32, i));
        }
        for _ in 0..300 {
            cs.step().unwrap();
        }
        let ckpt = cs.checkpoint();
        let mut trajectory = Vec::new();
        for _ in 0..200 {
            cs.step().unwrap();
            trajectory.push((cs.fpga_cycles, cs.sw_debt(), cs.sw.cpu_cycles()));
        }
        assert!(
            trajectory.iter().any(|&(_, debt, _)| debt > 0),
            "test must exercise nonzero debt"
        );
        cs.restore(&ckpt);
        let mut replay = Vec::new();
        for _ in 0..200 {
            cs.step().unwrap();
            replay.push((cs.fpga_cycles, cs.sw_debt(), cs.sw.cpu_cycles()));
        }
        assert_eq!(trajectory, replay);
    }

    #[test]
    fn die_without_recovery_stalls_with_diagnostics() {
        use crate::link::{FaultConfig, PartitionFault};
        let d = offload_design(true);
        let p = partition(&d, SW).unwrap();
        let faults = FaultConfig::none().with_partition_fault(PartitionFault::DieAt(200));
        let mut cs = Cosim::with_faults(
            &p,
            SW,
            HW,
            LinkConfig::default(),
            faults,
            SwOptions::default(),
        )
        .unwrap();
        cs.set_stall_threshold(5_000);
        for i in 0..8 {
            cs.push_source("src", Value::int(32, i));
        }
        let out = cs
            .run_until(|c| c.sink_count("snk") == 8, 10_000_000)
            .unwrap();
        assert!(out.is_stalled(), "expected a stall, got {out:?}");
        assert!(!cs.hw_alive());
        assert!(cs.sink_count("snk") < 8, "dead hardware cannot finish");
    }

    #[test]
    fn restart_from_checkpoint_is_bit_and_cycle_identical() {
        use crate::link::{FaultConfig, PartitionFault};
        let d = offload_design(true);
        let p = partition(&d, SW).unwrap();
        let run = |faults: FaultConfig, policy: RecoveryPolicy| {
            let mut cs = Cosim::with_faults(
                &p,
                SW,
                HW,
                LinkConfig::default(),
                faults,
                SwOptions::default(),
            )
            .unwrap();
            cs.set_recovery_policy(policy);
            for i in 0..8 {
                cs.push_source("src", Value::int(32, i));
            }
            let out = cs
                .run_until(|c| c.sink_count("snk") == 8, 10_000_000)
                .unwrap();
            assert!(out.is_done(), "did not finish: {out:?}");
            let vals: Vec<i64> = cs
                .sink_values("snk")
                .iter()
                .map(|v| v.as_int().unwrap())
                .collect();
            (vals, out.fpga_cycles())
        };
        let (clean, clean_cycles) = run(FaultConfig::none(), RecoveryPolicy::Fail);
        let faults = FaultConfig::none()
            .with_partition_fault(PartitionFault::ResetAt(120))
            .with_partition_fault(PartitionFault::DieAt(260));
        let (vals, cycles) = run(faults, RecoveryPolicy::restart(100));
        assert_eq!(vals, clean, "restart must hide the faults");
        assert_eq!(
            cycles, clean_cycles,
            "replay past a fired fault converges to the fault-free trajectory"
        );
    }

    #[test]
    fn failover_to_software_preserves_the_value_streams() {
        use crate::link::{FaultConfig, PartitionFault};
        let d = offload_design(true);
        let p = partition(&d, SW).unwrap();
        let clean: Vec<i64> = {
            let mut cs =
                Cosim::new(&p, SW, HW, LinkConfig::default(), SwOptions::default()).unwrap();
            for i in 0..8 {
                cs.push_source("src", Value::int(32, i));
            }
            assert!(cs
                .run_until(|c| c.sink_count("snk") == 8, 1_000_000)
                .unwrap()
                .is_done());
            cs.sink_values("snk")
                .iter()
                .map(|v| v.as_int().unwrap())
                .collect()
        };
        let faults = FaultConfig::none().with_partition_fault(PartitionFault::DieAt(180));
        let mut cs = Cosim::with_faults(
            &p,
            SW,
            HW,
            LinkConfig::default(),
            faults,
            SwOptions::default(),
        )
        .unwrap();
        cs.set_recovery_policy(RecoveryPolicy::failover(50));
        for i in 0..8 {
            cs.push_source("src", Value::int(32, i));
        }
        let out = cs
            .run_until(|c| c.sink_count("snk") == 8, 10_000_000)
            .unwrap();
        assert!(out.is_done(), "failover must finish the job: {out:?}");
        assert!(cs.failed_over());
        assert!(!cs.hw_alive());
        assert!(cs.hw.is_none(), "hardware is gone after failover");
        let vals: Vec<i64> = cs
            .sink_values("snk")
            .iter()
            .map(|v| v.as_int().unwrap())
            .collect();
        assert_eq!(vals, clean, "software takeover must not change values");
    }

    #[test]
    fn retry_exhaustion_reports_partition_lost() {
        use crate::link::{FaultConfig, PartitionFault};
        let d = offload_design(true);
        let p = partition(&d, SW).unwrap();
        let faults = FaultConfig::none().with_partition_fault(PartitionFault::DieAt(100));
        let mut cs = Cosim::with_faults(
            &p,
            SW,
            HW,
            LinkConfig::default(),
            faults,
            SwOptions::default(),
        )
        .unwrap();
        cs.set_recovery_policy(RecoveryPolicy::RestartFromCheckpoint {
            interval: 50,
            max_retries: 0,
        });
        cs.push_source("src", Value::int(32, 1));
        let out = cs
            .run_until(|c| c.sink_count("snk") == 1, 1_000_000)
            .unwrap();
        match out {
            CosimOutcome::PartitionLost {
                fpga_cycles,
                retries,
            } => {
                assert_eq!(fpga_cycles, 100);
                assert_eq!(retries, 0);
            }
            other => panic!("expected PartitionLost, got {other:?}"),
        }
    }
}
