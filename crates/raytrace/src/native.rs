//! The native software ray tracer: the golden reference every partition
//! must match bit-for-bit.
//!
//! The traversal is written to mirror the BCL finite-state machine
//! exactly — same stack discipline (push the right child, descend left),
//! same box pruning against the current best hit, same in-order leaf
//! resolution over the BVH's reordered triangle array — so the pixel
//! stream is identical regardless of where the pieces execute.

use crate::bvh::Bvh;
use crate::geom::{box_hit, mt_intersect, Ray, T_INF};

/// Per-image traversal statistics (used to reason about partition
/// economics: every leaf visit is `count` intersection tests, and in the
/// remote partitions every test is a bus crossing).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// Node visits (box tests).
    pub steps: u64,
    /// Leaf visits.
    pub leaves: u64,
    /// Individual triangle tests.
    pub tri_tests: u64,
    /// Rays that hit something.
    pub hits: u64,
}

/// Traces one ray through the BVH; returns the shade of the closest hit
/// (0 for the background).
pub fn trace_ray(bvh: &Bvh, ray: &Ray, stats: &mut TraceStats) -> i64 {
    let mut stack: Vec<i64> = Vec::with_capacity(bvh.depth + 1);
    let mut node = 0i64;
    let mut best_t = T_INF;
    let mut best_shade = 0i64;
    loop {
        stats.steps += 1;
        let nd = &bvh.nodes[node as usize];
        let mut descend = false;
        if box_hit(ray.o, ray.inv, &nd.bb, best_t) {
            if nd.is_leaf() {
                stats.leaves += 1;
                // The FSM issues the leaf's tests in index order and
                // absorbs responses in the same order.
                for i in nd.first..nd.first + nd.count {
                    stats.tri_tests += 1;
                    let (t, shade) = mt_intersect(ray.o, ray.d, &bvh.tris[i as usize]);
                    if t > 0 && t < best_t {
                        best_t = t;
                        best_shade = shade;
                    }
                }
            } else {
                stack.push(nd.right);
                node = nd.left;
                descend = true;
            }
        }
        if !descend {
            match stack.pop() {
                Some(n) => node = n,
                None => {
                    if best_t < T_INF {
                        stats.hits += 1;
                    }
                    return best_shade;
                }
            }
        }
    }
}

/// Renders the whole image (one shade value per pixel, ray order).
pub fn render(bvh: &Bvh, rays: &[Ray]) -> Vec<i64> {
    let mut stats = TraceStats::default();
    render_with_stats(bvh, rays, &mut stats)
}

/// Renders and accumulates traversal statistics.
pub fn render_with_stats(bvh: &Bvh, rays: &[Ray], stats: &mut TraceStats) -> Vec<i64> {
    rays.iter().map(|r| trace_ray(bvh, r, stats)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bvh::build_bvh;
    use crate::geom::{gen_rays, make_scene, Tri, V3};

    #[test]
    fn renders_hits_and_misses() {
        let scene = make_scene(128, 7);
        let bvh = build_bvh(&scene);
        let rays = gen_rays(16, 16);
        let mut stats = TraceStats::default();
        let img = render_with_stats(&bvh, &rays, &mut stats);
        assert_eq!(img.len(), 256);
        let hits = img.iter().filter(|&&s| s > 0).count();
        assert!(hits > 10, "scene must be visible: {hits} hits");
        assert!(hits < 256, "some background must remain: {hits} hits");
        assert!(stats.leaves > 0);
        assert!(stats.tri_tests >= stats.leaves);
    }

    #[test]
    fn bvh_matches_brute_force() {
        // The BVH must find the same closest hit as testing every
        // triangle (same fixed-point math, so exact equality).
        let scene = make_scene(64, 4);
        let bvh = build_bvh(&scene);
        let rays = gen_rays(8, 8);
        let mut stats = TraceStats::default();
        for ray in &rays {
            let accel = trace_ray(&bvh, ray, &mut stats);
            let mut best_t = T_INF;
            let mut best_shade = 0;
            for tri in &bvh.tris {
                let (t, s) = mt_intersect(ray.o, ray.d, tri);
                if t > 0 && t < best_t {
                    best_t = t;
                    best_shade = s;
                }
            }
            assert_eq!(accel, best_shade, "pixel {}", ray.pix);
        }
    }

    #[test]
    fn deterministic() {
        let scene = make_scene(32, 11);
        let bvh = build_bvh(&scene);
        let rays = gen_rays(8, 8);
        assert_eq!(render(&bvh, &rays), render(&bvh, &rays));
    }

    #[test]
    fn empty_background_without_geometry_in_view() {
        // A scene far to the side: all rays miss.
        let tri = Tri::new(
            V3::from_f64(50.0, 50.0, 5.0),
            V3::from_f64(51.0, 50.0, 5.0),
            V3::from_f64(50.0, 51.0, 5.0),
        );
        let scene = vec![tri];
        let bvh = build_bvh(&scene);
        let img = render(&bvh, &gen_rays(4, 4));
        assert!(img.iter().all(|&s| s == 0));
    }

    #[test]
    fn sliver_scene_has_depth_complexity() {
        // The benchmark scene must actually exercise multi-leaf
        // traversals (the property the partition comparison rests on).
        let scene = make_scene(96, 17);
        let bvh = build_bvh(&scene);
        let rays = gen_rays(6, 6);
        let mut stats = TraceStats::default();
        render_with_stats(&bvh, &rays, &mut stats);
        let per_ray = stats.tri_tests as f64 / rays.len() as f64;
        assert!(
            per_ray > 3.0,
            "triangle tests per ray too low: {per_ray:.2}"
        );
    }
}
