//! Criterion bench for Figure 13 (left): each Vorbis partition decoding a
//! frame stream on the modeled platform, plus the F1/F2 baselines.

use bcl_vorbis::frames::frame_stream;
use bcl_vorbis::native::NativeBackend;
use bcl_vorbis::partitions::{run_partition, VorbisPartition};
use bcl_vorbis::sysc::run_systemc_baseline;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_partitions(c: &mut Criterion) {
    let frames = frame_stream(8, 1);
    let mut g = c.benchmark_group("fig13_vorbis");
    g.sample_size(10);
    for p in VorbisPartition::ALL {
        g.bench_function(format!("partition_{}", p.label()), |b| {
            b.iter(|| {
                let run = run_partition(p, black_box(&frames)).unwrap();
                black_box(run.fpga_cycles)
            })
        });
    }
    g.bench_function("baseline_F1_systemc", |b| {
        b.iter(|| run_systemc_baseline(black_box(&frames), Default::default()).cpu_cycles)
    });
    g.bench_function("baseline_F2_native", |b| {
        b.iter(|| {
            let mut nb = NativeBackend::new();
            black_box(nb.run(black_box(&frames)).len())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_partitions);
criterion_main!(benches);
