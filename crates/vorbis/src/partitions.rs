//! The six HW/SW decompositions of the Vorbis back-end (Figure 12) and
//! the harness that measures them on the modeled platform (Figure 13,
//! left).
//!
//! | Partition | IMDCT FSMs + tables | IFFT core | Window |
//! |---|---|---|---|
//! | F (full SW) | SW | SW | SW |
//! | A | SW | SW | **HW** |
//! | B | SW | **HW** | SW |
//! | C | SW | **HW** | **HW** |
//! | D | **HW** | **HW** | SW |
//! | E (full HW back-end) | **HW** | **HW** | **HW** |
//!
//! The input stream always originates in software (the Vorbis front end
//! is plain C++ in the paper) and the PCM output is always consumed in
//! software.

use crate::bcl::{build_design, frame_value, pcm_of_values, BackendOptions, VorbisDomains};
use bcl_core::domain::{HW, SW};
use bcl_core::partition::partition;
use bcl_core::sched::{ExecBackend, Strategy, SwOptions};
use bcl_platform::cosim::{Cosim, HwPartitionCfg, InterHwRouting, RecoveryPolicy};
use bcl_platform::link::{FaultConfig, LinkConfig, LinkStats};
use bcl_platform::PlatformError;

/// Domain name of the second accelerator in multi-accelerator
/// partitions (the first uses [`HW`]).
pub const HW2: &str = "HW2";

/// The partitions evaluated in Figure 13 (left).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VorbisPartition {
    /// Window in hardware; IMDCT and IFFT in software.
    A,
    /// IFFT core in hardware.
    B,
    /// IFFT core and window in hardware, IMDCT in software.
    C,
    /// IMDCT and IFFT in hardware, window in software.
    D,
    /// Entire back-end in hardware.
    E,
    /// Entire back-end in software.
    F,
    /// IMDCT and IFFT in one accelerator, windowing in a second: the
    /// three-domain decomposition exercising the multi-accelerator
    /// co-simulation (the `chPost` stream crosses between the two
    /// hardware partitions).
    G,
}

impl VorbisPartition {
    /// All partitions, in the paper's presentation order.
    pub const ALL: [VorbisPartition; 6] = [
        VorbisPartition::A,
        VorbisPartition::B,
        VorbisPartition::C,
        VorbisPartition::D,
        VorbisPartition::E,
        VorbisPartition::F,
    ];

    /// The label used in Figure 13.
    pub fn label(&self) -> &'static str {
        match self {
            VorbisPartition::A => "A",
            VorbisPartition::B => "B",
            VorbisPartition::C => "C",
            VorbisPartition::D => "D",
            VorbisPartition::E => "E",
            VorbisPartition::F => "F",
            VorbisPartition::G => "G",
        }
    }

    /// Human-readable description of the hardware contents.
    pub fn description(&self) -> &'static str {
        match self {
            VorbisPartition::A => "window in HW",
            VorbisPartition::B => "IFFT in HW",
            VorbisPartition::C => "IFFT + window in HW",
            VorbisPartition::D => "IMDCT + IFFT in HW",
            VorbisPartition::E => "full back-end in HW",
            VorbisPartition::F => "full SW",
            VorbisPartition::G => "IMDCT + IFFT in one accelerator, window in a second",
        }
    }

    /// Domain placement for this partition.
    pub fn domains(&self) -> VorbisDomains {
        if let VorbisPartition::G = self {
            return VorbisDomains {
                imdct: HW.to_string(),
                ifft: HW.to_string(),
                window: HW2.to_string(),
            };
        }
        let pick = |hw: bool| if hw { HW.to_string() } else { SW.to_string() };
        let (imdct, ifft, window) = match self {
            VorbisPartition::A => (false, false, true),
            VorbisPartition::B => (false, true, false),
            VorbisPartition::C => (false, true, true),
            VorbisPartition::D => (true, true, false),
            VorbisPartition::E => (true, true, true),
            VorbisPartition::F => (false, false, false),
            VorbisPartition::G => unreachable!(),
        };
        VorbisDomains {
            imdct: pick(imdct),
            ifft: pick(ifft),
            window: pick(window),
        }
    }
}

/// The modeled ML507 platform configuration used for all Figure 13
/// measurements: the LocalLink defaults plus a driver that pays 32 CPU
/// cycles per marshaled word — uncached PLB accesses plus cache
/// management around the HDMA buffers, each tens of cycles on a PPC440.
pub fn ml507_link() -> LinkConfig {
    LinkConfig {
        sw_word_cost: 32,
        ..Default::default()
    }
}

/// The result of running one partition over a frame stream.
#[derive(Debug, Clone)]
pub struct VorbisRun {
    /// Partition measured.
    pub partition: VorbisPartition,
    /// End-to-end execution time in FPGA cycles (the Figure 13 metric).
    pub fpga_cycles: u64,
    /// CPU cycles consumed by the software partition (incl. driver work).
    pub sw_cpu_cycles: u64,
    /// Link traffic.
    pub link: LinkStats,
    /// Decoded PCM stream.
    pub pcm: Vec<i64>,
    /// Frames decoded.
    pub frames: usize,
    /// Hardware partitions still executing in hardware at the end of the
    /// run (partitions spliced into software by a failover don't count).
    pub hw_partitions: usize,
    /// True if a partition was failed over to software during the run.
    pub failed_over: bool,
    /// True if a software-owned partition was revived back into hardware
    /// during the run.
    pub revived: bool,
    /// Guards actually evaluated across all schedulers (cache hits are
    /// excluded; naive mode would evaluate `guard_evals +
    /// guard_evals_skipped` times).
    pub guard_evals: u64,
    /// Guard evaluations the event-driven schedulers skipped.
    pub guard_evals_skipped: u64,
}

impl VorbisRun {
    /// FPGA cycles per frame.
    pub fn cycles_per_frame(&self) -> f64 {
        self.fpga_cycles as f64 / self.frames.max(1) as f64
    }
}

/// Runs a partition over a frame stream on the modeled platform.
///
/// # Errors
///
/// Propagates elaboration/partitioning/platform errors (all of which
/// indicate internal bugs rather than user error) and simulation timeouts.
pub fn run_partition(
    which: VorbisPartition,
    frames: &[Vec<i64>],
) -> Result<VorbisRun, PlatformError> {
    run_partition_with_faults(which, frames, FaultConfig::none())
}

/// Runs a partition on a link with deterministic fault injection: the
/// transactor's reliable transport must hide the faults, so the decoded
/// PCM is bit-identical to a fault-free run (it just takes longer).
///
/// # Errors
///
/// Same conditions as [`run_partition`].
pub fn run_partition_with_faults(
    which: VorbisPartition,
    frames: &[Vec<i64>],
    faults: FaultConfig,
) -> Result<VorbisRun, PlatformError> {
    run_partition_with_recovery(which, frames, faults, RecoveryPolicy::Fail)
}

/// Runs a partition with both a fault model and a recovery policy for
/// scripted hardware-partition faults: restart-from-checkpoint replays to
/// the exact fault-free trajectory, failover-to-software finishes the
/// stream with the lost partition fused into software (any other
/// accelerators keep running in hardware). Either way the decoded PCM is
/// bit-identical to a fault-free run.
///
/// The fault model (including scripted partition faults) applies to the
/// *first* hardware partition — for the multi-accelerator partition G
/// that is the IMDCT+IFFT accelerator; the window accelerator runs on a
/// clean link. Channels between two accelerators route through the
/// software hub, as on the paper's bus-attached platform.
///
/// # Errors
///
/// Same conditions as [`run_partition`], plus partition loss when the
/// policy gives up.
pub fn run_partition_with_recovery(
    which: VorbisPartition,
    frames: &[Vec<i64>],
    faults: FaultConfig,
    policy: RecoveryPolicy,
) -> Result<VorbisRun, PlatformError> {
    run_partition_full(which, frames, faults, policy, true)
}

/// Runs a partition with every scheduler in naive (evaluate-every-guard)
/// reference mode. Cycle counts and PCM are identical to
/// [`run_partition`]; only simulator wall-clock time differs. Used as the
/// test oracle and benchmark baseline for the event-driven scheduler.
///
/// # Errors
///
/// Same conditions as [`run_partition`].
pub fn run_partition_naive(
    which: VorbisPartition,
    frames: &[Vec<i64>],
) -> Result<VorbisRun, PlatformError> {
    run_partition_full(
        which,
        frames,
        FaultConfig::none(),
        RecoveryPolicy::Fail,
        false,
    )
}

/// Runs a partition with every store backed by the bit-packed flat
/// arena ([`SwOptions::flat`]). Cycle counts and PCM are identical to
/// [`run_partition`]; only simulator wall-clock time differs.
///
/// # Errors
///
/// Same conditions as [`run_partition`].
pub fn run_partition_flat(
    which: VorbisPartition,
    frames: &[Vec<i64>],
) -> Result<VorbisRun, PlatformError> {
    run_built(
        build_cosim(which, frames, ExecBackend::Flat)?,
        which,
        frames.len(),
    )
}

/// Runs a partition with every scheduler executing through the
/// closure-threaded native backend over the bit-packed flat arena
/// ([`SwOptions::compiled`] + [`SwOptions::flat`]). Cycle counts and
/// PCM are identical to [`run_partition`]; only simulator wall-clock
/// time differs.
///
/// # Errors
///
/// Same conditions as [`run_partition`].
pub fn run_partition_compiled(
    which: VorbisPartition,
    frames: &[Vec<i64>],
) -> Result<VorbisRun, PlatformError> {
    run_built(
        build_cosim(which, frames, ExecBackend::Compiled)?,
        which,
        frames.len(),
    )
}

/// Builds the fault-free co-simulation for a partition on the given
/// executor backend, with the input frames queued but nothing run yet.
/// Together with [`run_built`] this splits a partition run into its
/// one-time construction phase (elaborate + partition + lower rules)
/// and its simulation phase, so benchmarks can time them separately.
///
/// # Errors
///
/// Same conditions as [`run_partition`].
pub fn build_cosim(
    which: VorbisPartition,
    frames: &[Vec<i64>],
    backend: ExecBackend,
) -> Result<Cosim, PlatformError> {
    make_cosim_full(
        which,
        frames,
        FaultConfig::none(),
        RecoveryPolicy::Fail,
        backend.event_driven(),
        backend.flat(),
        backend.compiled(),
    )
}

/// Runs a co-simulation built by [`build_cosim`] to stream completion —
/// the simulation phase of a partition run.
///
/// # Errors
///
/// Same conditions as [`run_partition`].
pub fn run_built(
    cosim: Cosim,
    which: VorbisPartition,
    want: usize,
) -> Result<VorbisRun, PlatformError> {
    finish_run(cosim, which, want, false)
}

/// Builds the co-simulation for a partition exactly as every run entry
/// point does, with the input frames queued. Deterministic in its
/// arguments, so two processes calling it with the same arguments get
/// interchangeable systems — the contract [`resume_partition`] and
/// [`run_partition_migrated`] rely on (the design fingerprint pins it).
pub fn make_cosim(
    which: VorbisPartition,
    frames: &[Vec<i64>],
    faults: FaultConfig,
    policy: RecoveryPolicy,
    event_driven: bool,
) -> Result<Cosim, PlatformError> {
    make_cosim_full(which, frames, faults, policy, event_driven, false, false)
}

fn make_cosim_full(
    which: VorbisPartition,
    frames: &[Vec<i64>],
    faults: FaultConfig,
    policy: RecoveryPolicy,
    event_driven: bool,
    flat: bool,
    compiled: bool,
) -> Result<Cosim, PlatformError> {
    let domains = which.domains();
    let opts = BackendOptions {
        domains: domains.clone(),
        ..Default::default()
    };
    let design = build_design(&opts).map_err(|e| PlatformError::new(e.to_string()))?;
    let parts = partition(&design, SW).map_err(|e| PlatformError::new(e.to_string()))?;
    let sw_opts = SwOptions {
        strategy: Strategy::Dataflow,
        event_driven,
        flat,
        compiled,
        ..Default::default()
    };
    let mut hw_domains: Vec<&str> = Vec::new();
    for d in [&domains.imdct, &domains.ifft, &domains.window] {
        if d != SW && !hw_domains.contains(&d.as_str()) {
            hw_domains.push(d);
        }
    }
    if hw_domains.is_empty() {
        // Keep the two-domain configuration shape for all-software runs.
        hw_domains.push(HW);
    }
    let cfgs: Vec<HwPartitionCfg> = hw_domains
        .iter()
        .enumerate()
        .map(|(i, d)| {
            let cfg = HwPartitionCfg::new(d)
                .with_link(ml507_link())
                .with_event_driven(event_driven)
                .with_compiled(compiled);
            if i == 0 {
                cfg.with_faults(faults.clone())
            } else {
                cfg
            }
        })
        .collect();
    let mut cosim = Cosim::multi(&parts, SW, &cfgs, InterHwRouting::ViaHub, sw_opts)?;
    cosim.set_recovery_policy(policy);
    for f in frames {
        cosim.push_source("src", frame_value(f));
    }
    Ok(cosim)
}

/// Runs a built co-simulation to stream completion and assembles the
/// [`VorbisRun`]. Works identically for fresh and resumed systems.
fn finish_run(
    mut cosim: Cosim,
    which: VorbisPartition,
    want: usize,
    faulty: bool,
) -> Result<VorbisRun, PlatformError> {
    // Generous bound: even the slowest partition needs < 40k cycles/frame.
    // Heavy fault injection multiplies that by retransmission rounds.
    let mut max_cycles = 40_000u64 * want as u64 + 10_000;
    if faulty {
        max_cycles = max_cycles.saturating_mul(500);
    }
    let outcome = cosim
        .run_until(|c| c.sink_count("audioDev") == want, max_cycles)
        .map_err(|e| PlatformError::new(e.to_string()))?;
    if !outcome.is_done() {
        return Err(PlatformError::new(format!(
            "partition {} did not finish ({outcome:?}) with {}/{} frames",
            which.label(),
            cosim.sink_count("audioDev"),
            want
        )));
    }
    let (guard_evals, guard_evals_skipped) = cosim.guard_eval_totals();
    Ok(VorbisRun {
        partition: which,
        fpga_cycles: outcome.fpga_cycles(),
        sw_cpu_cycles: cosim.sw.cpu_cycles(),
        link: cosim.link_stats(),
        pcm: pcm_of_values(cosim.sink_values("audioDev")),
        frames: want,
        hw_partitions: cosim.hw_partition_count(),
        failed_over: cosim.failed_over(),
        revived: cosim.revived(),
        guard_evals,
        guard_evals_skipped,
    })
}

fn run_partition_full(
    which: VorbisPartition,
    frames: &[Vec<i64>],
    faults: FaultConfig,
    policy: RecoveryPolicy,
    event_driven: bool,
) -> Result<VorbisRun, PlatformError> {
    let faulty = faults.is_active() || faults.has_partition_faults();
    let cosim = make_cosim(which, frames, faults, policy, event_driven)?;
    finish_run(cosim, which, frames.len(), faulty)
}

/// Runs a partition while autosaving crash-consistent snapshots every
/// `interval` FPGA cycles into `dir` (see
/// [`CheckpointPolicy`](bcl_platform::persist::CheckpointPolicy)). If
/// the process dies mid-decode, [`resume_partition`] picks the run back
/// up from the latest complete autosave, bit- and cycle-identically.
///
/// # Errors
///
/// Same conditions as [`run_partition_with_recovery`], plus snapshot
/// I/O failures.
pub fn run_partition_autosaving(
    which: VorbisPartition,
    frames: &[Vec<i64>],
    faults: FaultConfig,
    policy: RecoveryPolicy,
    interval: u64,
    dir: &std::path::Path,
) -> Result<VorbisRun, PlatformError> {
    let faulty = faults.is_active() || faults.has_partition_faults();
    let mut cosim = make_cosim(which, frames, faults, policy, true)?;
    cosim.set_autosave(bcl_platform::persist::CheckpointPolicy::new(interval, dir));
    finish_run(cosim, which, frames.len(), faulty)
}

/// Resumes a decode from a snapshot file written by an autosaving run
/// (or an explicit [`Cosim::write_snapshot_file`]) in a fresh process:
/// rebuilds the co-simulation from the same arguments, restores the
/// snapshot into it, and finishes the stream. The completed run is bit-
/// and cycle-identical to one that was never interrupted.
///
/// # Errors
///
/// Same conditions as [`run_partition_with_recovery`], plus every typed
/// snapshot error (corrupt bytes, wrong design, topology skew).
pub fn resume_partition(
    which: VorbisPartition,
    frames: &[Vec<i64>],
    faults: FaultConfig,
    policy: RecoveryPolicy,
    snapshot: &std::path::Path,
) -> Result<VorbisRun, PlatformError> {
    let faulty = faults.is_active() || faults.has_partition_faults();
    let mut cosim = make_cosim(which, frames, faults, policy, true)?;
    cosim
        .resume_from_file(snapshot)
        .map_err(|e| PlatformError::new(e.to_string()))?;
    finish_run(cosim, which, frames.len(), faulty)
}

/// Live migration in-process: runs a partition to `split_cycle`,
/// serializes the whole system to bytes, restores them into a *freshly
/// built* co-simulation (exactly what a new process would construct),
/// and finishes the stream there. Returns the completed run and the
/// snapshot size in bytes.
///
/// # Errors
///
/// Same conditions as [`run_partition_with_recovery`], plus every typed
/// snapshot error.
pub fn run_partition_migrated(
    which: VorbisPartition,
    frames: &[Vec<i64>],
    faults: FaultConfig,
    policy: RecoveryPolicy,
    split_cycle: u64,
) -> Result<(VorbisRun, usize), PlatformError> {
    let faulty = faults.is_active() || faults.has_partition_faults();
    let mut first = make_cosim(which, frames, faults.clone(), policy, true)?;
    let out = first
        .run_until(|c| c.fpga_cycles >= split_cycle, u64::MAX)
        .map_err(|e| PlatformError::new(e.to_string()))?;
    if !out.is_done() {
        return Err(PlatformError::new(format!(
            "partition {} never reached split cycle {split_cycle} ({out:?})",
            which.label()
        )));
    }
    let bytes = first
        .snapshot_bytes()
        .map_err(|e| PlatformError::new(e.to_string()))?;
    drop(first);
    let mut second = make_cosim(which, frames, faults, policy, true)?;
    second
        .resume_from(&mut bytes.as_slice())
        .map_err(|e| PlatformError::new(e.to_string()))?;
    let run = finish_run(second, which, frames.len(), faulty)?;
    Ok((run, bytes.len()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frames::frame_stream;
    use crate::native::NativeBackend;

    #[test]
    fn every_partition_decodes_identically() {
        let frames = frame_stream(3, 21);
        let expected = NativeBackend::new().run(&frames);
        for p in VorbisPartition::ALL {
            let run = run_partition(p, &frames).unwrap_or_else(|e| panic!("{p:?}: {e}"));
            assert_eq!(run.pcm, expected, "partition {} output mismatch", p.label());
            assert!(run.fpga_cycles > 0);
        }
    }

    #[test]
    fn partition_faults_recover_to_identical_pcm() {
        use bcl_platform::link::PartitionFault;
        let frames = frame_stream(2, 21);
        let clean = run_partition(VorbisPartition::E, &frames).unwrap();
        // Mid-decode reset, restart from checkpoint: identical PCM *and*
        // identical end-to-end time (the replay converges to the
        // fault-free trajectory).
        let restart = run_partition_with_recovery(
            VorbisPartition::E,
            &frames,
            FaultConfig::none().with_partition_fault(PartitionFault::ResetAt(5_000)),
            RecoveryPolicy::restart(2_000),
        )
        .unwrap();
        assert_eq!(restart.pcm, clean.pcm);
        assert_eq!(restart.fpga_cycles, clean.fpga_cycles);
        // Mid-decode death, software takeover: identical PCM, slower.
        let failover = run_partition_with_recovery(
            VorbisPartition::E,
            &frames,
            FaultConfig::none().with_partition_fault(PartitionFault::DieAt(5_000)),
            RecoveryPolicy::failover(2_000),
        )
        .unwrap();
        assert_eq!(failover.pcm, clean.pcm);
    }

    #[test]
    fn accelerator_death_then_revival_finishes_decode_in_hardware() {
        use bcl_platform::link::PartitionFault;
        // The full lifecycle on the all-hardware partition: the
        // accelerator dies mid-decode, software takes over, then a
        // scripted revival moves the live state back into hardware and
        // the decode finishes there — bit-identical to the clean run.
        let frames = frame_stream(2, 21);
        let clean = run_partition(VorbisPartition::E, &frames).unwrap();
        let die_at = clean.fpga_cycles / 2;
        // Well inside the software-owned phase: software decodes at a
        // fraction of hardware speed, so one clean-run-length after the
        // death it still has most of the remaining frames queued.
        let revive_at = die_at + clean.fpga_cycles;
        let run = run_partition_with_recovery(
            VorbisPartition::E,
            &frames,
            FaultConfig::none()
                .with_partition_fault(PartitionFault::DieAt(die_at))
                .with_partition_fault(PartitionFault::ReviveAt(revive_at)),
            RecoveryPolicy::failover((die_at / 4).max(1)),
        )
        .unwrap();
        assert!(run.failed_over, "the death must strike mid-decode");
        assert!(run.revived, "the revival must fire before the decode ends");
        assert_eq!(
            run.pcm, clean.pcm,
            "die → failover → revive must not change the PCM"
        );
        assert_eq!(
            run.hw_partitions, 1,
            "the decode must finish back in hardware"
        );
    }

    #[test]
    fn three_domain_partition_decodes_identically() {
        let frames = frame_stream(3, 21);
        let expected = NativeBackend::new().run(&frames);
        let run = run_partition(VorbisPartition::G, &frames).unwrap();
        assert_eq!(run.pcm, expected, "G output mismatch");
        assert_eq!(run.hw_partitions, 2, "G runs two accelerators");
        assert!(!run.failed_over);
    }

    #[test]
    fn three_domain_accelerator_death_fails_over_survivor_stays_in_hw() {
        use bcl_platform::link::PartitionFault;
        // The headline multi-accelerator scenario: the IMDCT+IFFT
        // accelerator dies mid-stream, the run completes bit-identical to
        // the fault-free decode, and the window accelerator keeps
        // executing in hardware throughout.
        let frames = frame_stream(3, 21);
        let clean = run_partition(VorbisPartition::G, &frames).unwrap();
        let die_at = clean.fpga_cycles / 2;
        let failover = run_partition_with_recovery(
            VorbisPartition::G,
            &frames,
            FaultConfig::none().with_partition_fault(PartitionFault::DieAt(die_at)),
            RecoveryPolicy::failover((die_at / 4).max(1)),
        )
        .unwrap();
        assert!(
            failover.fpga_cycles > die_at,
            "the fault must strike mid-stream"
        );
        assert_eq!(failover.pcm, clean.pcm, "death must not corrupt the PCM");
        assert!(failover.failed_over);
        assert_eq!(
            failover.hw_partitions, 1,
            "the window accelerator must survive in hardware"
        );
    }

    #[test]
    fn compiled_backend_is_cycle_identical_on_partitions() {
        let frames = frame_stream(2, 21);
        for p in [VorbisPartition::E, VorbisPartition::F] {
            let base = run_partition(p, &frames).unwrap();
            let compiled = run_partition_compiled(p, &frames).unwrap();
            assert_eq!(compiled.pcm, base.pcm, "partition {}", p.label());
            assert_eq!(
                compiled.fpga_cycles,
                base.fpga_cycles,
                "partition {}",
                p.label()
            );
            assert_eq!(
                compiled.sw_cpu_cycles,
                base.sw_cpu_cycles,
                "partition {}",
                p.label()
            );
        }
    }

    #[test]
    fn full_sw_has_no_link_traffic() {
        let frames = frame_stream(2, 3);
        let run = run_partition(VorbisPartition::F, &frames).unwrap();
        assert_eq!(run.link.msgs_to_hw, 0);
        assert_eq!(run.link.msgs_to_sw, 0);
    }

    #[test]
    fn full_hw_crosses_only_frames_and_pcm() {
        let frames = frame_stream(2, 3);
        let run = run_partition(VorbisPartition::E, &frames).unwrap();
        // chIn: K words per frame; chOut: K words per frame.
        assert_eq!(run.link.words_to_hw, (2 * crate::kernel::K) as u64);
        assert_eq!(run.link.words_to_sw, (2 * crate::kernel::K) as u64);
    }

    #[test]
    fn per_partition_traffic_matches_the_analysis() {
        // Words per frame crossing the bus, per partition (the §7.1
        // communication analysis): raw frame = 32 words, complex frame =
        // 128, real frame = 64, PCM = 32.
        let frames = frame_stream(4, 1);
        let words = |p| {
            let r = run_partition(p, &frames).unwrap();
            ((r.link.words_to_hw + r.link.words_to_sw) / 4) as usize
        };
        assert_eq!(
            words(VorbisPartition::A),
            64 + 32,
            "real frame over, PCM back"
        );
        assert_eq!(
            words(VorbisPartition::B),
            128 + 128,
            "complex frame each way"
        );
        assert_eq!(
            words(VorbisPartition::C),
            128 + 128 + 64 + 32,
            "four crossings"
        );
        assert_eq!(words(VorbisPartition::D), 32 + 64, "raw over, real back");
        assert_eq!(words(VorbisPartition::E), 32 + 32, "raw over, PCM back");
        assert_eq!(words(VorbisPartition::F), 0);
    }

    #[test]
    fn figure13_shape_holds_on_small_stream() {
        // The qualitative claims of §7.1, on a short stream:
        //  - E is the fastest;
        //  - A and C are slower than F (window/IFFT moves don't pay);
        //  - D beats F (one crossing, frame-granularity transfers).
        let frames = frame_stream(12, 77);
        let t = |p| run_partition(p, &frames).unwrap().fpga_cycles;
        let (a, c, d, e, f) = (
            t(VorbisPartition::A),
            t(VorbisPartition::C),
            t(VorbisPartition::D),
            t(VorbisPartition::E),
            t(VorbisPartition::F),
        );
        assert!(e < f, "E ({e}) must beat F ({f})");
        assert!(e < d, "E ({e}) must beat D ({d})");
        assert!(d < f, "D ({d}) must beat F ({f})");
        assert!(a > f, "A ({a}) must be slower than F ({f})");
        assert!(c > f, "C ({c}) must be slower than F ({f})");
    }
}
