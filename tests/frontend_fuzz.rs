//! Frontend robustness: arbitrary byte strings and token soups must be
//! *rejected*, never crash the lexer, parser, typechecker, elaborator,
//! or validator; and the pretty-printer must round-trip every generated
//! program (ISSUE 7 satellites b).

use bcl_core::elaborate;
use bcl_frontend::{parser, pretty, typecheck};
use bcl_fuzz::arb_design;
use bcl_fuzz::gen::build_program;
use proptest::prelude::*;

/// Runs a source string through every static stage; any stage may
/// reject it, none may panic.
fn front_door(src: &str) {
    let Ok(program) = parser::parse(src) else {
        return;
    };
    if typecheck::typecheck(&program).is_err() {
        return;
    }
    let Ok(design) = elaborate(&program) else {
        return;
    };
    let _ = bcl_core::analysis::validate(&design);
}

// ---- random inputs ------------------------------------------------------

/// A vocabulary of real tokens: soups of these reach much deeper into
/// the parser than raw bytes do.
const VOCAB: &[&str] = &[
    "module",
    "rule",
    "let",
    "in",
    "when",
    "if",
    "then",
    "else",
    "loop",
    "localGuard",
    "method",
    "action",
    "value",
    "inst",
    "reg",
    "fifo",
    "regfile",
    "sync",
    "source",
    "sink",
    "from",
    "to",
    "zero",
    "{",
    "}",
    "(",
    ")",
    "[",
    "]",
    "<",
    ">",
    "<=",
    ">=",
    "==",
    "!=",
    ":",
    ";",
    "|",
    ",",
    ".",
    ":=",
    "=",
    "+",
    "-",
    "*",
    "/",
    "%",
    "&",
    "^",
    "!",
    "?",
    "@",
    "first",
    "enq",
    "deq",
    "notEmpty",
    "notFull",
    "sub",
    "upd",
    "clear",
    "x",
    "y",
    "q",
    "r",
    "Top",
    "Int#(8)",
    "Int#(32)",
    "Bit#(4)",
    "Bool",
    "Vector#(2, Bool)",
    "0",
    "1",
    "255i8",
    "-3i16",
    "true",
    "false",
    "0x10",
    "9999999999999999999999",
    "Int#(",
    "#",
    "\"",
    "\\",
];

fn token_soup() -> impl Strategy<Value = String> {
    proptest::collection::vec(0usize..VOCAB.len(), 0..200)
        .prop_map(|idxs| idxs.iter().map(|&i| VOCAB[i]).collect::<Vec<_>>().join(" "))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// Arbitrary bytes (lossily decoded) never panic any stage.
    #[test]
    fn random_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        front_door(&String::from_utf8_lossy(&bytes));
    }

    /// Arbitrary sequences of real tokens never panic any stage.
    #[test]
    fn token_soup_never_panics(src in token_soup()) {
        front_door(&src);
    }

    /// Pretty-printing a generated program and re-parsing it yields the
    /// same elaborated design, bit for bit.
    #[test]
    fn pretty_parse_roundtrip(spec in arb_design()) {
        let program = build_program(&spec);
        let text = pretty::pretty_program(&program);
        let reparsed = parser::parse(&text)
            .map_err(|e| format!("reparse failed: {e}\n{text}"))
            .unwrap();
        typecheck::typecheck(&reparsed)
            .map_err(|e| format!("reparsed program fails typecheck: {e}\n{text}"))
            .unwrap();
        let d1 = elaborate(&program).expect("original elaborates");
        let d2 = elaborate(&reparsed)
            .map_err(|e| format!("reparsed program fails elaboration: {e}\n{text}"))
            .unwrap();
        prop_assert_eq!(d1, d2, "round trip changed the design:\n{}", text);
    }
}

// ---- deterministic hostile inputs --------------------------------------

#[test]
fn deep_paren_nesting_is_rejected_not_overflowed() {
    let mut src = String::from("module T { reg r = ");
    src.push_str(&"(".repeat(100_000));
    src.push('0');
    src.push_str(&")".repeat(100_000));
    src.push_str("; }");
    assert!(parser::parse(&src).is_err());
}

#[test]
fn deep_unary_nesting_is_rejected_not_overflowed() {
    let mut src = String::from("module T { reg r = ");
    src.push_str(&"!".repeat(100_000));
    src.push_str("true; }");
    assert!(parser::parse(&src).is_err());
}

#[test]
fn deep_action_nesting_is_rejected_not_overflowed() {
    let mut src = String::from("module T { reg r = 0; rule go: ");
    src.push_str(&"when (true) ".repeat(100_000));
    src.push_str("r := 1");
    src.push_str(" }");
    assert!(parser::parse(&src).is_err());
}

#[test]
fn negative_and_huge_sizes_are_rejected() {
    for bad in [
        "module T { fifo q[-1] : Int#(8); }",
        "module T { regfile f[99999999999] : Int#(8); }",
        "module T { sync s[-2] : Int#(8) from SW to HW; }",
        "module T { reg v = zero(Vector#(4000000000, Int#(32))); }",
        "module T { fifo q[2] : Vector#(65535, Vector#(65535, Int#(64))); }",
        "module T { source s : Int#(65) @ SW; }",
        "module T { source s : Int#(0) @ SW; }",
    ] {
        assert!(parser::parse(bad).is_err(), "accepted: {bad}");
    }
}

#[test]
fn unterminated_constructs_are_rejected() {
    for bad in [
        "module",
        "module T {",
        "module T { rule go: { r := 1 ",
        "module T { reg r = (1 + ",
        "rule orphan: r := 1",
        "module T { method value f( = 1; }",
    ] {
        assert!(parser::parse(bad).is_err(), "accepted: {bad}");
    }
}
