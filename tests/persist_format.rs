//! The durable `BCKP` snapshot format: bit-/cycle-identical resume
//! across serialization (including mid-recovery states), typed
//! rejection of wrong-design and stale snapshots, adversarial decoding
//! (random truncations, byte flips, section reorderings — proptest,
//! never a panic, on *both* shipped format versions), and format
//! stability against two committed golden fixtures: `echo_v1.bckp`
//! (tree-backed, stamped v1 — proves the v2 decoder still reads every
//! v1 file) and `echo_v2.bckp` (flat-arena-backed, stamped v2). A
//! format change requires deliberately regenerating them with
//! `cargo test -- --ignored regenerate_golden_fixture`.

use bcl_core::builder::{dsl::*, ModuleBuilder};
use bcl_core::domain::{HW, SW};
use bcl_core::partition::partition;
use bcl_core::program::Program;
use bcl_core::sched::SwOptions;
use bcl_core::types::Type;
use bcl_core::value::Value;
use bcl_platform::cosim::{Cosim, PartitionLifecycle, RecoveryPolicy};
use bcl_platform::link::{FaultConfig, LinkConfig, PartitionFault};
use bcl_platform::persist::PersistError;
use bcl_platform::{Checkpoint, FORMAT_VERSION, MIN_FORMAT_VERSION};
use proptest::prelude::*;
use std::sync::OnceLock;

const FIXTURE: &str = "tests/fixtures/echo_v1.bckp";
/// Flat-arena-backed snapshot written by the current (v2) writer: the
/// store section uses the sentinel + raw-page encoding that v1 readers
/// never produced.
const FIXTURE_V2: &str = "tests/fixtures/echo_v2.bckp";
/// Cycle at which the golden fixtures were captured (pinned: a format or
/// fingerprint change makes a fixture fail to resume, forcing a
/// deliberate regeneration).
const FIXTURE_CYCLE: u64 = 500;
const INPUTS: i64 = 40;

/// src(SW) -> toHw -> echo(HW) -> toSw -> snk(SW): the smallest design
/// whose every item must cross the hardware partition.
fn echo_design() -> bcl_core::design::Design {
    let mut m = ModuleBuilder::new("Echo");
    m.source("src", Type::Int(32), SW);
    m.sink("snk", Type::Int(32), SW);
    m.channel("toHw", 2, Type::Int(32), SW, HW);
    m.channel("toSw", 2, Type::Int(32), HW, SW);
    m.rule("feed", with_first("x", "src", enq("toHw", var("x"))));
    m.rule("echo", with_first("x", "toHw", enq("toSw", var("x"))));
    m.rule("drain", with_first("x", "toSw", enq("snk", var("x"))));
    bcl_core::elaborate(&Program::with_root(m.build())).unwrap()
}

/// A fresh echo cosim with the given die/revive schedule and failover
/// recovery, inputs already queued. Identical construction in every
/// test (and notionally in every process) — the migration contract.
fn echo_cosim(schedule: &[PartitionFault]) -> Cosim {
    echo_cosim_on(schedule, false)
}

fn echo_cosim_on(schedule: &[PartitionFault], flat: bool) -> Cosim {
    let mut faults = FaultConfig::none();
    for &f in schedule {
        faults = faults.with_partition_fault(f);
    }
    let parts = partition(&echo_design(), SW).unwrap();
    let mut cs = Cosim::with_faults(
        &parts,
        SW,
        HW,
        LinkConfig::default(),
        faults,
        SwOptions {
            flat,
            ..SwOptions::default()
        },
    )
    .unwrap();
    cs.set_recovery_policy(RecoveryPolicy::failover(100));
    for i in 0..INPUTS {
        cs.push_source("src", Value::int(32, i * 3 + 1));
    }
    cs
}

/// Die (and fail over) at 400, revive at 600 — the revive lands between
/// the cycle-500 snapshot point and completion (~700), so a resumed run
/// must still execute the failback splice.
const DIE_REVIVE: &[PartitionFault] = &[PartitionFault::DieAt(400), PartitionFault::ReviveAt(600)];

fn run_to_cycle(cs: &mut Cosim, cycle: u64) {
    let out = cs
        .run_until(|c| c.fpga_cycles >= cycle, 10_000_000)
        .unwrap();
    assert!(out.is_done(), "did not reach cycle {cycle}: {out:?}");
}

fn finish(cs: &mut Cosim) -> (Vec<i64>, u64) {
    let want = INPUTS as usize;
    let out = cs
        .run_until(|c| c.sink_count("snk") == want, 10_000_000)
        .unwrap();
    assert!(out.is_done(), "echo did not complete: {out:?}");
    let vals = cs
        .sink_values("snk")
        .iter()
        .map(|v| v.as_int().unwrap())
        .collect();
    (vals, out.fpga_cycles())
}

/// A context-rich snapshot — taken while the partition is software-
/// owned, so the file carries CONTEXT (with a SwOwned record) and
/// LASTCKPT sections on top of the checkpoint itself.
fn rich_snapshot_bytes() -> &'static [u8] {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| rich_snapshot_bytes_on(false))
}

/// Same capture point, but from a cosim whose software store is the
/// bit-packed flat arena — the snapshot carries the v2-only sentinel
/// encoding.
fn rich_snapshot_bytes_flat() -> &'static [u8] {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| rich_snapshot_bytes_on(true))
}

fn rich_snapshot_bytes_on(flat: bool) -> Vec<u8> {
    let mut cs = echo_cosim_on(DIE_REVIVE, flat);
    run_to_cycle(&mut cs, FIXTURE_CYCLE);
    assert_eq!(
        cs.partition_lifecycle(HW),
        Some(PartitionLifecycle::SoftwareOwned)
    );
    cs.snapshot_bytes().unwrap()
}

/// Resumes `bytes` into a freshly constructed echo cosim.
fn resume_fresh(bytes: &[u8]) -> Result<Cosim, PersistError> {
    resume_fresh_on(bytes, false)
}

fn resume_fresh_on(bytes: &[u8], flat: bool) -> Result<Cosim, PersistError> {
    let mut cs = echo_cosim_on(DIE_REVIVE, flat);
    cs.resume_from(&mut &bytes[..])?;
    Ok(cs)
}

/// One snapshot image per shipped format version: the committed v1
/// golden fixture and a freshly captured v2 (flat) image. The
/// adversarial decoders below must hold on both.
fn version_images() -> [&'static [u8]; 2] {
    static V1: OnceLock<Vec<u8>> = OnceLock::new();
    let v1 = V1.get_or_init(|| std::fs::read(FIXTURE).expect("missing golden fixture"));
    [v1, rich_snapshot_bytes_flat()]
}

// ---- resume identity ----------------------------------------------------

#[test]
fn serialized_resume_is_bit_and_cycle_identical_mid_run() {
    let mut original = echo_cosim(&[]);
    run_to_cycle(&mut original, 150);
    let bytes = original.snapshot_bytes().unwrap();
    let (vals_a, cycles_a) = finish(&mut original);

    let mut resumed = echo_cosim(&[]);
    resumed.resume_from(&mut &bytes[..]).unwrap();
    assert_eq!(resumed.fpga_cycles, 150);
    let (vals_b, cycles_b) = finish(&mut resumed);
    assert_eq!(vals_a, vals_b, "sink streams diverged after resume");
    assert_eq!(cycles_a, cycles_b, "cycle counts diverged after resume");
}

#[test]
fn software_owned_state_resumes_identically() {
    let mut original = echo_cosim(DIE_REVIVE);
    run_to_cycle(&mut original, 500);
    assert_eq!(
        original.partition_lifecycle(HW),
        Some(PartitionLifecycle::SoftwareOwned)
    );
    let bytes = original.snapshot_bytes().unwrap();

    let mut resumed = resume_fresh(&bytes).unwrap();
    assert_eq!(
        resumed.partition_lifecycle(HW),
        Some(PartitionLifecycle::SoftwareOwned),
        "resume lost the software-owned splice"
    );
    assert!(resumed.failed_over());

    let (vals_a, cycles_a) = finish(&mut original);
    let (vals_b, cycles_b) = finish(&mut resumed);
    assert_eq!(vals_a, vals_b);
    assert_eq!(cycles_a, cycles_b);
    assert!(
        resumed.revived(),
        "failback splice did not execute after resume"
    );
}

#[test]
fn reviving_state_resumes_identically() {
    let mut original = echo_cosim(DIE_REVIVE);
    // Just past the scripted revive: the state image is still crossing
    // the link, so the partition is held in Reviving.
    run_to_cycle(&mut original, 603);
    assert_eq!(
        original.partition_lifecycle(HW),
        Some(PartitionLifecycle::Reviving),
        "expected to catch the partition mid-revival"
    );
    let bytes = original.snapshot_bytes().unwrap();

    let mut resumed = resume_fresh(&bytes).unwrap();
    assert_eq!(
        resumed.partition_lifecycle(HW),
        Some(PartitionLifecycle::Reviving)
    );
    let (vals_a, cycles_a) = finish(&mut original);
    let (vals_b, cycles_b) = finish(&mut resumed);
    assert_eq!(vals_a, vals_b);
    assert_eq!(cycles_a, cycles_b);
}

#[test]
fn dead_state_resumes_identically() {
    // No recovery policy: the partition dies and stays Dead.
    let parts = partition(&echo_design(), SW).unwrap();
    let build = || {
        let mut cs = Cosim::with_faults(
            &parts,
            SW,
            HW,
            LinkConfig::default(),
            FaultConfig::none().with_partition_fault(PartitionFault::DieAt(100)),
            SwOptions::default(),
        )
        .unwrap();
        cs.push_source("src", Value::int(32, 9));
        cs
    };
    let mut original = build();
    for _ in 0..150 {
        original.step().unwrap();
    }
    assert_eq!(
        original.partition_lifecycle(HW),
        Some(PartitionLifecycle::Dead)
    );
    let bytes = original.snapshot_bytes().unwrap();
    let mut resumed = build();
    resumed.resume_from(&mut &bytes[..]).unwrap();
    assert_eq!(
        resumed.partition_lifecycle(HW),
        Some(PartitionLifecycle::Dead),
        "resume resurrected a dead partition"
    );
    for _ in 0..100 {
        original.step().unwrap();
        resumed.step().unwrap();
    }
    assert_eq!(original.fpga_cycles, resumed.fpga_cycles);
    assert_eq!(original.sink_count("snk"), resumed.sink_count("snk"));
}

// ---- typed rejection ----------------------------------------------------

#[test]
fn wrong_design_is_rejected_with_fingerprint_mismatch() {
    let bytes = rich_snapshot_bytes();
    // Same shape, one extra pipeline stage: a different design.
    let mut m = ModuleBuilder::new("Echo");
    m.source("src", Type::Int(32), SW);
    m.sink("snk", Type::Int(32), SW);
    m.channel("toHw", 2, Type::Int(32), SW, HW);
    m.channel("toSw", 3, Type::Int(32), HW, SW); // depth differs
    m.rule("feed", with_first("x", "src", enq("toHw", var("x"))));
    m.rule("echo", with_first("x", "toHw", enq("toSw", var("x"))));
    m.rule("drain", with_first("x", "toSw", enq("snk", var("x"))));
    let other = bcl_core::elaborate(&Program::with_root(m.build())).unwrap();
    let parts = partition(&other, SW).unwrap();
    let mut cs = Cosim::new(&parts, SW, HW, LinkConfig::default(), SwOptions::default()).unwrap();
    assert!(matches!(
        cs.resume_from(&mut &bytes[..]),
        Err(PersistError::FingerprintMismatch { .. })
    ));
}

#[test]
fn resume_into_stepped_cosim_is_rejected() {
    let bytes = rich_snapshot_bytes();
    let mut cs = echo_cosim(DIE_REVIVE);
    cs.step().unwrap();
    assert!(matches!(
        cs.resume_from(&mut &bytes[..]),
        Err(PersistError::TopologyMismatch(_))
    ));
}

// ---- adversarial decoding (satellite 1) ---------------------------------

/// Byte ranges `[start, end)` of each section (past the 24-byte
/// header), derived from the container layout.
fn section_ranges(bytes: &[u8]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut off = 24;
    while off < bytes.len() {
        let len = u64::from_le_bytes(bytes[off + 4..off + 12].try_into().unwrap()) as usize;
        let end = off + 12 + len + 4;
        out.push((off, end));
        off = end;
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Any strict prefix of a valid snapshot — of either format
    /// version — fails to decode, and never panics or over-allocates.
    #[test]
    fn truncations_are_rejected(cut in any::<u64>()) {
        for bytes in version_images() {
            let n = (cut as usize) % bytes.len();
            prop_assert!(Checkpoint::read_from(&mut &bytes[..n]).is_err());
            prop_assert!(resume_fresh(&bytes[..n]).is_err());
        }
    }

    /// Any single-byte corruption anywhere in a file of either version
    /// is rejected: every byte is covered by the magic, a CRC, or is
    /// CRC material.
    #[test]
    fn byte_flips_are_rejected((pos, mask) in (any::<u64>(), 1u8..=255)) {
        for bytes in version_images() {
            let mut bad = bytes.to_vec();
            let i = (pos as usize) % bad.len();
            bad[i] ^= mask;
            prop_assert!(Checkpoint::read_from(&mut bad.as_slice()).is_err(), "flip at {}", i);
            prop_assert!(resume_fresh(&bad).is_err());
        }
    }

    /// Swapping any two sections violates the canonical order and is
    /// rejected (index tags catch swaps of same-kind sections).
    #[test]
    fn section_reorderings_are_rejected((a, b) in (any::<u64>(), any::<u64>())) {
        for bytes in version_images() {
            let ranges = section_ranges(bytes);
            let i = (a as usize) % ranges.len();
            let j = (b as usize) % ranges.len();
            prop_assume!(i != j);
            let (i, j) = (i.min(j), i.max(j));
            let mut swapped = bytes[..ranges[i].0].to_vec();
            swapped.extend_from_slice(&bytes[ranges[j].0..ranges[j].1]);
            swapped.extend_from_slice(&bytes[ranges[i].1..ranges[j].0]);
            swapped.extend_from_slice(&bytes[ranges[i].0..ranges[i].1]);
            swapped.extend_from_slice(&bytes[ranges[j].1..]);
            prop_assert!(Checkpoint::read_from(&mut swapped.as_slice()).is_err());
            prop_assert!(resume_fresh(&swapped).is_err());
        }
    }

    /// Corruption *behind* the CRC (flip a payload byte, re-seal the
    /// section checksum) reaches the structural decoders; they must
    /// return typed errors or benign data — never panic or OOM. This is
    /// the no-length-trusted-preallocation property under fire.
    #[test]
    fn resealed_corruption_never_panics((sec, pos, mask) in (any::<u64>(), any::<u64>(), 1u8..=255)) {
        for bytes in version_images() {
            let ranges = section_ranges(bytes);
            let (start, end) = ranges[(sec as usize) % ranges.len()];
            let mut bad = bytes.to_vec();
            let body = start..end - 4;
            let i = body.start + (pos as usize) % body.len();
            bad[i] ^= mask;
            let crc = bcl_platform::wire::crc32_bytes(&bad[body.clone()]);
            bad[end - 4..end].copy_from_slice(&crc.to_le_bytes());
            // Must not panic; Ok (benign payload mutation) and Err are
            // both acceptable outcomes — on either store backend.
            let _ = Checkpoint::read_from(&mut bad.as_slice());
            let _ = resume_fresh(&bad);
            let _ = resume_fresh_on(&bad, true);
        }
    }

    /// Arbitrary garbage never panics the decoder.
    #[test]
    fn random_garbage_never_panics(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        prop_assert!(Checkpoint::read_from(&mut data.as_slice()).is_err());
    }
}

// ---- format stability (golden fixtures) ----------------------------------

fn read_fixture(path: &str) -> Vec<u8> {
    std::fs::read(path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {path} ({e}); regenerate deliberately with \
             `cargo test -- --ignored regenerate_golden_fixture`"
        )
    })
}

/// The version field (bytes 4..8 of the header) of a snapshot image.
fn version_of(bytes: &[u8]) -> u32 {
    u32::from_le_bytes(bytes[4..8].try_into().unwrap())
}

/// The committed fixtures really are cross-version evidence: the v1
/// file is stamped with the oldest supported version, the v2 file (and
/// anything the current writer emits) with the current one.
#[test]
fn fixtures_carry_their_committed_format_versions() {
    assert_eq!(version_of(&read_fixture(FIXTURE)), MIN_FORMAT_VERSION);
    assert_eq!(version_of(&read_fixture(FIXTURE_V2)), FORMAT_VERSION);
    assert_eq!(version_of(rich_snapshot_bytes()), FORMAT_VERSION);
}

/// Backward compatibility: the v2 decoder reads a file written by the
/// v1 writer, and the resumed run completes bit-for-bit.
#[test]
fn golden_v1_fixture_still_decodes_and_resumes() {
    let bytes = read_fixture(FIXTURE);
    let ckpt = Checkpoint::read_from(&mut bytes.as_slice()).expect(
        "committed v1 .bckp no longer decodes — the v1 compatibility contract is \
         broken; the reader must accept every version down to MIN_FORMAT_VERSION",
    );
    assert_eq!(ckpt.fpga_cycles(), FIXTURE_CYCLE);
    // Not just parseable: the fixture must still *resume* against the
    // current elaboration (fingerprint + topology + state layout).
    let mut resumed = resume_fresh(&bytes).expect(
        "v1 golden fixture decodes but no longer resumes — design fingerprint or \
         snapshot semantics changed; regenerate the fixture deliberately",
    );
    let (vals, _) = finish(&mut resumed);
    assert_eq!(vals.len(), INPUTS as usize);
    assert_eq!(vals[0], 1);
}

/// Current-format stability: the flat-arena v2 fixture decodes and
/// resumes into a flat-backed cosim, landing the same output stream
/// and cycle count as the v1 (tree) fixture — the two backends are
/// interchangeable down to the durable image.
#[test]
fn golden_v2_fixture_still_decodes_and_resumes() {
    let bytes = read_fixture(FIXTURE_V2);
    let ckpt = Checkpoint::read_from(&mut bytes.as_slice()).expect(
        "committed v2 .bckp no longer decodes — the on-disk format changed; \
         bump FORMAT_VERSION and regenerate the fixture deliberately",
    );
    assert_eq!(ckpt.fpga_cycles(), FIXTURE_CYCLE);
    let mut resumed = resume_fresh_on(&bytes, true).expect(
        "v2 golden fixture decodes but no longer resumes — design fingerprint or \
         flat snapshot semantics changed; regenerate the fixture deliberately",
    );
    let (vals, cycles) = finish(&mut resumed);
    assert_eq!(vals.len(), INPUTS as usize);
    assert_eq!(vals[0], 1);

    let mut tree = resume_fresh(&read_fixture(FIXTURE)).unwrap();
    let (tree_vals, tree_cycles) = finish(&mut tree);
    assert_eq!(vals, tree_vals, "flat resume diverged from tree resume");
    assert_eq!(cycles, tree_cycles, "flat resume cycle count diverged");
}

/// A snapshot captured from one store backend is rejected — with a
/// typed error, never a panic — when resumed into the other.
#[test]
fn cross_backend_resume_is_typed_topology_mismatch() {
    let flat_into_tree = resume_fresh(&read_fixture(FIXTURE_V2));
    assert!(matches!(
        flat_into_tree,
        Err(PersistError::TopologyMismatch(_))
    ));
    let tree_into_flat = resume_fresh_on(&read_fixture(FIXTURE), true);
    assert!(matches!(
        tree_into_flat,
        Err(PersistError::TopologyMismatch(_))
    ));
}

/// Deliberate regeneration of the golden fixtures after a format change:
/// `cargo test --test persist_format -- --ignored regenerate_golden_fixture`.
///
/// The current writer always stamps [`FORMAT_VERSION`]; a tree
/// snapshot's body is byte-identical to the v1 encoding, so the v1
/// fixture is the tree image with the version field patched back to 1
/// and the header CRC re-sealed.
#[test]
#[ignore]
fn regenerate_golden_fixture() {
    std::fs::create_dir_all("tests/fixtures").unwrap();
    let mut v1 = rich_snapshot_bytes().to_vec();
    v1[4..8].copy_from_slice(&MIN_FORMAT_VERSION.to_le_bytes());
    let crc = bcl_platform::wire::crc32_bytes(&v1[..20]);
    v1[20..24].copy_from_slice(&crc.to_le_bytes());
    std::fs::write(FIXTURE, v1).unwrap();
    std::fs::write(FIXTURE_V2, rich_snapshot_bytes_flat()).unwrap();
}
