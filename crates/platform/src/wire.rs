//! The reliable-transport wire format.
//!
//! When fault injection is active, every message the transactor puts on
//! the link is a *frame*:
//!
//! ```text
//! word 0   header:  [31:24] channel id   [23:12] payload words
//!                   [11:8]  flags        [7:0]   ack channel id
//! word 1   sequence number (wrapping u32; 0 = pure-ACK frame)
//! word 2   cumulative ACK value for the ack channel
//! word 3.. payload (marshaled value, exactly `Type::words()` words)
//! last     CRC32 (IEEE) over all preceding words
//! ```
//!
//! Corruption injected by the link flips bits within a single 32-bit
//! word — a burst error of at most 32 bits, which CRC32 detects with
//! certainty — so a frame that passes the checksum is trustworthy and a
//! frame that fails it is silently discarded and repaired by
//! retransmission.

/// Frame flag: the ACK fields (ack channel + ack value) are meaningful.
pub const FLAG_ACK: u32 = 1;
/// Frame flag: the frame carries a data payload with a sequence number.
pub const FLAG_DATA: u32 = 2;
/// Frame flag: the frame is a retransmission (diagnostic only).
pub const FLAG_RETRANSMIT: u32 = 4;

/// Number of non-payload words in a frame (header, seq, ack, CRC).
pub const OVERHEAD_WORDS: usize = 4;

/// A decoded frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Virtual-channel id of the payload (meaningful when `FLAG_DATA`).
    pub channel: u8,
    /// Flag bits (`FLAG_ACK` / `FLAG_DATA` / `FLAG_RETRANSMIT`).
    pub flags: u32,
    /// Virtual-channel id the ACK refers to (meaningful when `FLAG_ACK`).
    pub ack_channel: u8,
    /// Data sequence number; 0 for pure-ACK frames.
    pub seq: u32,
    /// Cumulative ACK: highest in-order sequence accepted on
    /// `ack_channel`.
    pub ack: u32,
    /// Marshaled payload words.
    pub payload: Vec<u32>,
}

impl Frame {
    /// True if the ACK fields (ack channel + cumulative ack) are
    /// meaningful.
    pub fn is_ack(&self) -> bool {
        self.flags & FLAG_ACK != 0
    }

    /// True if the frame carries a sequenced data payload.
    pub fn is_data(&self) -> bool {
        self.flags & FLAG_DATA != 0
    }

    /// True if the frame is a retransmission (diagnostic only).
    pub fn is_retransmit(&self) -> bool {
        self.flags & FLAG_RETRANSMIT != 0
    }

    /// Encodes the frame, appending the CRC.
    pub fn encode(&self) -> Vec<u32> {
        debug_assert!(
            self.payload.len() < (1 << 12),
            "payload too large for header"
        );
        let header = (self.channel as u32) << 24
            | (self.payload.len() as u32) << 12
            | (self.flags & 0xf) << 8
            | self.ack_channel as u32;
        let mut words = Vec::with_capacity(self.payload.len() + OVERHEAD_WORDS);
        words.push(header);
        words.push(self.seq);
        words.push(self.ack);
        words.extend_from_slice(&self.payload);
        words.push(crc32(&words));
        words
    }

    /// Decodes and validates a frame. Returns `None` if the frame is too
    /// short, its declared length disagrees with its actual length, or
    /// the CRC does not match — i.e. for anything a corrupted or
    /// truncated frame could look like.
    pub fn decode(words: &[u32]) -> Option<Frame> {
        if words.len() < OVERHEAD_WORDS {
            return None;
        }
        let (body, crc) = words.split_at(words.len() - 1);
        if crc32(body) != crc[0] {
            return None;
        }
        let header = body[0];
        let payload_len = ((header >> 12) & 0xfff) as usize;
        if payload_len != body.len() - 3 {
            return None;
        }
        Some(Frame {
            channel: (header >> 24) as u8,
            flags: (header >> 8) & 0xf,
            ack_channel: (header & 0xff) as u8,
            seq: body[1],
            ack: body[2],
            payload: body[3..].to_vec(),
        })
    }
}

/// IEEE CRC-32 (reflected, polynomial 0xEDB88320) over the words' LE
/// byte representation.
pub fn crc32(words: &[u32]) -> u32 {
    let mut crc: u32 = !0;
    for w in words {
        crc = crc32_step(crc, &w.to_le_bytes());
    }
    !crc
}

/// The same IEEE CRC-32 over a raw byte stream — shared by the link
/// transport (per-frame, word-granular) and the durable snapshot format
/// (per-section, byte-granular), so both layers detect any burst error
/// shorter than 32 bits with certainty.
pub fn crc32_bytes(bytes: &[u8]) -> u32 {
    !crc32_step(!0, bytes)
}

fn crc32_step(mut crc: u32, bytes: &[u8]) -> u32 {
    for b in bytes {
        crc ^= *b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xedb8_8320 & mask);
        }
    }
    crc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(payload: Vec<u32>) -> Frame {
        Frame {
            channel: 3,
            flags: FLAG_DATA | FLAG_ACK,
            ack_channel: 1,
            seq: 17,
            ack: 9,
            payload,
        }
    }

    #[test]
    fn crc32_matches_known_vector() {
        // CRC32("123456789") = 0xCBF43926; "1234" LE = word 0x34333231,
        // "5678" LE = 0x38373635 — use the byte-equivalent word stream.
        let words = [0x3433_3231, 0x3837_3635];
        let mut bytes_crc: u32 = !0;
        for b in b"12345678" {
            bytes_crc ^= *b as u32;
            for _ in 0..8 {
                let mask = (bytes_crc & 1).wrapping_neg();
                bytes_crc = (bytes_crc >> 1) ^ (0xedb8_8320 & mask);
            }
        }
        assert_eq!(crc32(&words), !bytes_crc);
    }

    #[test]
    fn crc32_bytes_matches_known_vector_and_word_form() {
        assert_eq!(crc32_bytes(b"123456789"), 0xcbf4_3926);
        let words = [0x3433_3231, 0x3837_3635];
        assert_eq!(crc32(&words), crc32_bytes(b"12345678"));
    }

    #[test]
    fn encode_decode_roundtrips() {
        for n in 0..8 {
            let f = frame((0..n).map(|i| i * 0x0101_0101).collect());
            let words = f.encode();
            assert_eq!(words.len(), f.payload.len() + OVERHEAD_WORDS);
            assert_eq!(Frame::decode(&words), Some(f));
        }
    }

    #[test]
    fn single_word_burst_errors_are_always_detected() {
        let f = frame(vec![0xdead_beef, 0x0123_4567]);
        let clean = f.encode();
        for w in 0..clean.len() {
            for flips in [0x1u32, 0x8000_0001, 0xffff_ffff, 0x0f0f_0f0f] {
                let mut bad = clean.clone();
                bad[w] ^= flips;
                assert_eq!(Frame::decode(&bad), None, "word {w} flips {flips:#x}");
            }
        }
    }

    #[test]
    fn truncated_and_padded_frames_are_rejected() {
        let f = frame(vec![1, 2, 3]);
        let words = f.encode();
        assert_eq!(Frame::decode(&words[..3]), None);
        assert_eq!(Frame::decode(&[]), None);
        let mut padded = words.clone();
        padded.push(0);
        assert_eq!(Frame::decode(&padded), None);
    }
}
