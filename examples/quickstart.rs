//! Quickstart: write a BCL design, run it as software, run it as
//! hardware, and see that the two agree — the language's core promise.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! Because the two sides are interchangeable, the co-simulator can move
//! a partition between them *at runtime*: an accelerator can die
//! mid-stream, fail over to a re-fused software design, and later be
//! revived back into hardware — all without changing a single output
//! bit. `examples/failover_demo.rs` shows the die → failover half,
//! `examples/failback_demo.rs` the full die → failover → revive arc
//! (throughput collapsing to CPU speed and recovering after the
//! handback).

use bcl_core::builder::{dsl::*, ModuleBuilder};
use bcl_core::program::Program;
use bcl_core::sched::{HwSim, SwOptions, SwRunner};
use bcl_core::types::Type;
use bcl_core::value::Value;
use bcl_core::{PrimMethod, Store};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A classic: Euclid's GCD as two guarded atomic rules, plus a stream
    // interface — pairs go in, GCDs come out.
    let mut m = ModuleBuilder::new("GcdServer");
    m.source("req", Type::vector(2, Type::Int(32)), "SW");
    m.sink("resp", Type::Int(32), "SW");
    m.reg("x", Value::int(32, 0));
    m.reg("y", Value::int(32, 0));
    m.reg("busy", Value::Bool(false));

    // Accept a request when idle.
    m.rule(
        "accept",
        when_a(
            eq(read("busy"), cbool(false)),
            with_first(
                "p",
                "req",
                par(vec![
                    write("x", index(var("p"), cint(32, 0))),
                    write("y", index(var("p"), cint(32, 1))),
                    write("busy", cbool(true)),
                ]),
            ),
        ),
    );
    // The two GCD rules (compare §4's rule style).
    let running = and(eq(read("busy"), cbool(true)), ne(read("y"), cint(32, 0)));
    m.rule(
        "swap",
        when_a(
            and(running.clone(), gt(read("x"), read("y"))),
            par(vec![write("x", read("y")), write("y", read("x"))]),
        ),
    );
    m.rule(
        "subtract",
        when_a(
            and(running, le(read("x"), read("y"))),
            write("y", sub_e(read("y"), read("x"))),
        ),
    );
    // Deliver the answer.
    m.rule(
        "deliver",
        when_a(
            and(eq(read("busy"), cbool(true)), eq(read("y"), cint(32, 0))),
            par(vec![enq("resp", read("x")), write("busy", cbool(false))]),
        ),
    );

    let design = bcl_core::elaborate(&Program::with_root(m.build()))?;
    println!(
        "design `{}`: {} primitives, {} rules\n",
        design.name,
        design.prims.len(),
        design.rules.len()
    );

    let requests = [(105i64, 45i64), (1071, 462), (17, 5), (270, 192)];
    let load = |store: &mut Store| {
        let src = design.prim_id("req").expect("req");
        for (a, b) in requests {
            store.push_source(src, Value::Vec(vec![Value::int(32, a), Value::int(32, b)]));
        }
    };

    // --- software execution -------------------------------------------
    // Both schedulers run event-driven by default: guards compile to
    // stack-machine programs once, their verdicts are cached, and only
    // rules whose read set intersects the prims written since the last
    // probe are re-evaluated. `SwOptions { event_driven: false, .. }`
    // (or `HwSim::event_driven = false`) selects the naive
    // evaluate-every-guard reference mode — same results, slower.
    let mut store = Store::new(&design);
    load(&mut store);
    let mut sw = SwRunner::with_store(&design, store, SwOptions::default());
    sw.run_until_quiescent(100_000)?;
    let snk = design.prim_id("resp").expect("resp");
    let sw_out: Vec<i64> = sw
        .store
        .sink_values(snk)
        .iter()
        .map(|v| v.as_int().unwrap())
        .collect();
    println!(
        "software schedule : {sw_out:?}  ({} CPU cycles)",
        sw.cpu_cycles()
    );

    // --- hardware execution --------------------------------------------
    let mut store = Store::new(&design);
    load(&mut store);
    let mut hw = HwSim::with_store(&design, store)?;
    hw.run_until_quiescent(1_000_000)?;
    let hw_out: Vec<i64> = hw
        .store
        .sink_values(snk)
        .iter()
        .map(|v| v.as_int().unwrap())
        .collect();
    println!(
        "hardware schedule : {hw_out:?}  ({} clock cycles)",
        hw.cycles
    );

    assert_eq!(sw_out, hw_out, "one-rule-at-a-time semantics: both agree");
    for ((a, b), g) in requests.iter().zip(&sw_out) {
        println!("  gcd({a}, {b}) = {g}");
    }

    // Peek at the register state to show it is ordinary, inspectable data.
    let x = design.prim_id("x").expect("x");
    println!(
        "\nfinal x register: {}",
        sw.store.state(x).call_value(PrimMethod::RegRead, &[])?
    );
    println!(
        "\nBecause both sides agree, a partition can move between them at\n\
         runtime: try `cargo run --release --example failback_demo` for the\n\
         die -> failover -> revive arc on a co-simulated accelerator."
    );
    Ok(())
}
