//! Wall-clock comparison of three software scheduler configurations
//! over the Figure 13 quick benchmarks:
//!
//! * **naive** — per-cycle AST interpretation of every guard;
//! * **event** — event-driven scheduler (compiled guards, verdict
//!   caching, dirty-set invalidation) on the pointer-tree store;
//! * **flat** — the same event-driven scheduler on the bit-packed
//!   arena store (slot-indexed flat values, pointer-free guard reads).
//!
//! Emits a machine-readable JSON summary.
//!
//! ```text
//! bench_summary [output.json]    # default: BENCH_pr8.json
//! ```
//!
//! Cycle counts and outputs are asserted identical across all three
//! modes for every partition — the speedups are pure simulator
//! wall-clock, not a change in what is simulated.

use bcl_raytrace::bvh::build_bvh;
use bcl_raytrace::geom::make_scene;
use bcl_raytrace::partitions::{
    run_partition as run_rt, run_partition_flat as run_rt_flat,
    run_partition_naive as run_rt_naive, RtPartition,
};
use bcl_vorbis::frames::frame_stream;
use bcl_vorbis::partitions::{
    run_partition, run_partition_flat, run_partition_naive, VorbisPartition,
};
use std::fmt::Write as _;
use std::time::Instant;

const REPS: u32 = 3;

struct Entry {
    bench: &'static str,
    partition: String,
    fpga_cycles: u64,
    naive_ns: u128,
    event_ns: u128,
    flat_ns: u128,
    guard_evals: u64,
    guard_evals_skipped: u64,
}

impl Entry {
    fn speedup(&self) -> f64 {
        self.naive_ns as f64 / self.event_ns.max(1) as f64
    }

    /// Arena store vs tree store, same (event-driven) scheduler: the
    /// pure representation win.
    fn flat_speedup(&self) -> f64 {
        self.event_ns as f64 / self.flat_ns.max(1) as f64
    }
}

/// Best-of-N wall clock for one closure.
fn time_best<T>(mut f: impl FnMut() -> T) -> (u128, T) {
    let mut best = u128::MAX;
    let mut out = None;
    for _ in 0..REPS {
        let t = Instant::now();
        let v = f();
        best = best.min(t.elapsed().as_nanos());
        out = Some(v);
    }
    (best, out.unwrap())
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_pr8.json".to_string());
    let mut entries: Vec<Entry> = Vec::new();

    let frames = frame_stream(8, 1);
    for p in VorbisPartition::ALL {
        let (naive_ns, base) = time_best(|| run_partition_naive(p, &frames).unwrap());
        let (event_ns, run) = time_best(|| run_partition(p, &frames).unwrap());
        let (flat_ns, flat) = time_best(|| run_partition_flat(p, &frames).unwrap());
        for (mode, other) in [("naive", &base), ("flat", &flat)] {
            assert_eq!(
                run.fpga_cycles,
                other.fpga_cycles,
                "vorbis {}: cycle counts diverged between event and {mode}",
                p.label()
            );
            assert_eq!(
                run.pcm,
                other.pcm,
                "vorbis {}: PCM diverged between event and {mode}",
                p.label()
            );
        }
        entries.push(Entry {
            bench: "fig13_vorbis",
            partition: p.label().to_string(),
            fpga_cycles: run.fpga_cycles,
            naive_ns,
            event_ns,
            flat_ns,
            guard_evals: run.guard_evals,
            guard_evals_skipped: run.guard_evals_skipped,
        });
    }

    let bvh = build_bvh(&make_scene(64, 1));
    for p in RtPartition::ALL {
        let (naive_ns, base) = time_best(|| run_rt_naive(p, &bvh, 4, 4).unwrap());
        let (event_ns, run) = time_best(|| run_rt(p, &bvh, 4, 4).unwrap());
        let (flat_ns, flat) = time_best(|| run_rt_flat(p, &bvh, 4, 4).unwrap());
        for (mode, other) in [("naive", &base), ("flat", &flat)] {
            assert_eq!(
                run.fpga_cycles,
                other.fpga_cycles,
                "raytrace {}: cycle counts diverged between event and {mode}",
                p.label()
            );
            assert_eq!(
                run.image,
                other.image,
                "raytrace {}: image diverged between event and {mode}",
                p.label()
            );
        }
        entries.push(Entry {
            bench: "fig13_raytrace",
            partition: p.label().to_string(),
            fpga_cycles: run.fpga_cycles,
            naive_ns,
            event_ns,
            flat_ns,
            guard_evals: run.guard_evals,
            guard_evals_skipped: run.guard_evals_skipped,
        });
    }

    let total_naive: u128 = entries.iter().map(|e| e.naive_ns).sum();
    let total_event: u128 = entries.iter().map(|e| e.event_ns).sum();
    let total_flat: u128 = entries.iter().map(|e| e.flat_ns).sum();
    let overall = total_naive as f64 / total_event.max(1) as f64;
    let overall_flat = total_event as f64 / total_flat.max(1) as f64;
    let overall_flat_vs_naive = total_naive as f64 / total_flat.max(1) as f64;

    println!(
        "{:<16} {:<4} {:>12} {:>12} {:>12} {:>8} {:>9} {:>12} {:>12}",
        "bench",
        "part",
        "naive_ms",
        "event_ms",
        "flat_ms",
        "speedup",
        "flat_gain",
        "guard_evals",
        "skipped"
    );
    for e in &entries {
        println!(
            "{:<16} {:<4} {:>12.3} {:>12.3} {:>12.3} {:>7.2}x {:>8.2}x {:>12} {:>12}",
            e.bench,
            e.partition,
            e.naive_ns as f64 / 1e6,
            e.event_ns as f64 / 1e6,
            e.flat_ns as f64 / 1e6,
            e.speedup(),
            e.flat_speedup(),
            e.guard_evals,
            e.guard_evals_skipped
        );
    }
    println!("overall event-vs-naive speedup: {overall:.2}x");
    println!("overall flat-vs-event speedup:  {overall_flat:.2}x");
    println!("overall flat-vs-naive speedup:  {overall_flat_vs_naive:.2}x");

    let mut json = String::from("{\n  \"benchmark\": \"naive_vs_event_vs_flat\",\n");
    let _ = writeln!(json, "  \"reps\": {REPS},");
    let _ = writeln!(json, "  \"overall_speedup\": {overall:.4},");
    let _ = writeln!(json, "  \"overall_flat_speedup\": {overall_flat:.4},");
    let _ = writeln!(
        json,
        "  \"overall_flat_vs_naive_speedup\": {overall_flat_vs_naive:.4},"
    );
    json.push_str("  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"bench\": \"{}\", \"partition\": \"{}\", \"fpga_cycles\": {}, \
             \"naive_ns\": {}, \"event_ns\": {}, \"flat_ns\": {}, \"speedup\": {:.4}, \
             \"flat_speedup\": {:.4}, \"guard_evals\": {}, \"guard_evals_skipped\": {}}}",
            e.bench,
            e.partition,
            e.fpga_cycles,
            e.naive_ns,
            e.event_ns,
            e.flat_ns,
            e.speedup(),
            e.flat_speedup(),
            e.guard_evals,
            e.guard_evals_skipped
        );
        json.push_str(if i + 1 < entries.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, json).unwrap_or_else(|e| panic!("write {out_path}: {e}"));
    println!("wrote {out_path}");
}
