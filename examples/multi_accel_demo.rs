//! Demonstrates the N-partition co-simulation: the three-domain Vorbis
//! decode (IMDCT+IFFT in one accelerator, windowing in a second) is run
//! with the inter-accelerator stream routed through the software hub,
//! then over a direct fabric link, and finally with the IMDCT+IFFT
//! accelerator dying mid-stream and failing over to software while the
//! window accelerator keeps running in hardware. The PCM is
//! bit-identical in all four configurations (including the all-software
//! reference).
//!
//! ```sh
//! cargo run --release --example multi_accel_demo [n_frames]
//! ```

use bcl_core::domain::SW;
use bcl_core::partition::partition;
use bcl_core::sched::{Strategy, SwOptions};
use bcl_platform::cosim::{Cosim, CosimOutcome, HwPartitionCfg, InterHwRouting, RecoveryPolicy};
use bcl_platform::link::{FaultConfig, PartitionFault};
use bcl_vorbis::bcl::{build_design, frame_value, pcm_of_values, BackendOptions};
use bcl_vorbis::frames::frame_stream;
use bcl_vorbis::native::NativeBackend;
use bcl_vorbis::partitions::{ml507_link, VorbisPartition, HW2};

struct DemoRun {
    pcm: Vec<i64>,
    fpga_cycles: u64,
    hw_partitions: usize,
    failed_over: bool,
    per_part: Vec<(String, u64, u64)>, // (domain, hw_cycles, cpu-link words)
}

fn run_g(
    frames: &[Vec<i64>],
    routing: InterHwRouting,
    faults: FaultConfig,
    policy: RecoveryPolicy,
) -> Result<DemoRun, Box<dyn std::error::Error>> {
    let opts = BackendOptions {
        domains: VorbisPartition::G.domains(),
        ..Default::default()
    };
    let design = build_design(&opts)?;
    let parts = partition(&design, SW)?;
    let cfgs = [
        HwPartitionCfg::new(bcl_core::domain::HW)
            .with_link(ml507_link())
            .with_faults(faults),
        HwPartitionCfg::new(HW2).with_link(ml507_link()),
    ];
    let sw_opts = SwOptions {
        strategy: Strategy::Dataflow,
        ..Default::default()
    };
    let mut cosim = Cosim::multi(&parts, SW, &cfgs, routing, sw_opts)?;
    cosim.set_recovery_policy(policy);
    for f in frames {
        cosim.push_source("src", frame_value(f));
    }
    let want = frames.len();
    let outcome = cosim.run_until(|c| c.sink_count("audioDev") == want, 40_000_000)?;
    if !matches!(outcome, CosimOutcome::Done { .. }) {
        return Err(format!("run did not finish: {outcome:?}").into());
    }
    let per_part = cosim
        .hw_domains()
        .iter()
        .map(|d| {
            let stats = cosim.partition_link_stats(d).unwrap_or_default();
            (
                d.to_string(),
                cosim.partition_hw_cycles(d).unwrap_or(0),
                stats.words_to_hw + stats.words_to_sw,
            )
        })
        .collect();
    Ok(DemoRun {
        pcm: pcm_of_values(cosim.sink_values("audioDev")),
        fpga_cycles: outcome.fpga_cycles(),
        hw_partitions: cosim.hw_partition_count(),
        failed_over: cosim.failed_over(),
        per_part,
    })
}

fn report(name: &str, run: &DemoRun, golden: &[i64]) {
    println!(
        "{name}: {} cycles, {} accelerator(s){}, PCM bit-identical: {}",
        run.fpga_cycles,
        run.hw_partitions,
        if run.failed_over { ", failed over" } else { "" },
        if run.pcm == golden { "yes" } else { "NO!" },
    );
    for (dom, cycles, words) in &run.per_part {
        println!("  {dom}: {cycles} hw cycles, {words} words over the CPU link");
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);
    let frames = frame_stream(n, 21);
    let golden = NativeBackend::new().run(&frames);
    println!(
        "three-domain Vorbis (partition G: {}), {n} frames\n",
        VorbisPartition::G.description()
    );

    let hub = run_g(
        &frames,
        InterHwRouting::ViaHub,
        FaultConfig::none(),
        RecoveryPolicy::Fail,
    )?;
    report("hub routing   ", &hub, &golden);

    let fabric = run_g(
        &frames,
        InterHwRouting::fabric(),
        FaultConfig::none(),
        RecoveryPolicy::Fail,
    )?;
    report("fabric routing", &fabric, &golden);
    println!(
        "  (fabric keeps the chPost stream off the CPU link: {} vs {} words)\n",
        fabric.per_part.iter().map(|p| p.2).sum::<u64>(),
        hub.per_part.iter().map(|p| p.2).sum::<u64>(),
    );

    let die_at = hub.fpga_cycles / 2;
    let failover = run_g(
        &frames,
        InterHwRouting::ViaHub,
        FaultConfig::none().with_partition_fault(PartitionFault::DieAt(die_at)),
        RecoveryPolicy::failover((die_at / 4).max(1)),
    )?;
    report(
        &format!("IMDCT+IFFT accelerator dies @ {die_at}"),
        &failover,
        &golden,
    );
    println!(
        "  the window accelerator finished the stream in hardware: {}",
        if failover.hw_partitions == 1 {
            "yes"
        } else {
            "NO!"
        }
    );
    Ok(())
}
