//! Test-runner plumbing: configuration, case outcomes, and the
//! deterministic RNG that drives generation.

use std::fmt;

/// Configuration for a `proptest!` block.
///
/// Only the fields the workspace uses are present; construct with struct
/// update syntax (`..ProptestConfig::default()`) as with real proptest.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful (non-rejected) cases required.
    pub cases: u32,
    /// Maximum number of rejected cases (via `prop_assume!`) across the
    /// whole test before it aborts.
    pub max_global_rejects: u32,
    /// Accepted for compatibility; unused by this stub.
    pub max_local_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 65536,
            max_local_rejects: 65536,
        }
    }
}

impl ProptestConfig {
    /// A default configuration with the given number of cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Default::default()
        }
    }
}

/// Why a single test case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case was vetoed by `prop_assume!`; it does not count toward
    /// the required number of cases.
    Reject(String),
    /// The case failed an assertion.
    Fail(String),
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Creates a rejection with the given reason.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            TestCaseError::Fail(m) => write!(f, "failed: {m}"),
        }
    }
}

impl std::error::Error for TestCaseError {}

/// A small, fast, deterministic RNG (SplitMix64).
///
/// Each `proptest!`-generated test seeds one of these from the test's
/// fully-qualified name, so runs are reproducible; set `PROPTEST_SEED`
/// to override the seed globally.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates an RNG from an explicit seed.
    pub fn from_seed(seed: u64) -> TestRng {
        TestRng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Creates the RNG for a named test, honoring `PROPTEST_SEED`.
    pub fn for_test(name: &str) -> TestRng {
        if let Ok(s) = std::env::var("PROPTEST_SEED") {
            if let Ok(seed) = s.trim().parse::<u64>() {
                return TestRng::from_seed(seed);
            }
        }
        // FNV-1a over the test name: stable across runs and platforms.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng::from_seed(h)
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u128) -> u128 {
        debug_assert!(n > 0);
        let wide = ((self.next_u64() as u128) << 64) | self.next_u64() as u128;
        wide % n
    }

    /// True with probability `num / den`.
    pub fn ratio(&mut self, num: u32, den: u32) -> bool {
        (self.below(den as u128) as u32) < num
    }
}
