//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this vendored crate
//! implements the subset of proptest's API that the workspace uses:
//! strategies over primitive ranges and `any`, `prop_map` /
//! `prop_flat_map` / `prop_recursive` / `boxed` combinators, tuple and
//! `Vec<BoxedStrategy>` composition, `collection::vec`, `option::of`,
//! the `prop_oneof!` / `proptest!` / `prop_assert*` / `prop_assume!`
//! macros, `ProptestConfig`, and `TestCaseError`.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case reports the case number and the
//!   failure message; values are not minimized.
//! * **Deterministic seeding.** Each `proptest!` test derives its RNG
//!   seed from the test's name (overridable via the `PROPTEST_SEED`
//!   environment variable), so CI runs are reproducible.
//! * `.proptest-regressions` files are ignored.

pub mod collection;
pub mod option;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

pub use strategy::{any, BoxedStrategy, Just, Strategy, Union};
pub use test_runner::{ProptestConfig, TestCaseError, TestRng};

/// Chooses uniformly among several strategies producing the same value
/// type. Weighted arms (`N => strat`) are not supported by this stub.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Fails the current test case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fails the current test case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!(
                            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
                            l, r
                        ),
                    ));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!(
                            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`\n{}",
                            l, r, format!($($fmt)*)
                        ),
                    ));
                }
            }
        }
    };
}

/// Rejects (skips) the current test case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                concat!("assume failed: ", stringify!($cond)).into(),
            ));
        }
    };
}

/// Declares property tests. Supports an optional leading
/// `#![proptest_config(expr)]` and any number of test functions whose
/// arguments are `pattern in strategy` pairs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!(($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Internal expansion helper for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng =
                $crate::test_runner::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            let mut accepted: u32 = 0;
            let mut rejected: u32 = 0;
            let mut case: u64 = 0;
            while accepted < config.cases {
                case += 1;
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> = {
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    (move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })()
                };
                match outcome {
                    ::std::result::Result::Ok(()) => accepted += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {
                        rejected += 1;
                        if rejected > config.max_global_rejects {
                            panic!(
                                "proptest `{}`: too many global rejects ({} > {})",
                                stringify!($name), rejected, config.max_global_rejects
                            );
                        }
                    }
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest `{}` failed at case #{case} (after {accepted} ok, {rejected} rejected):\n{}",
                            stringify!($name), msg
                        );
                    }
                }
            }
        }
        $crate::__proptest_tests!(($config) $($rest)*);
    };
}
