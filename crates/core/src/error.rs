//! Error types for elaboration, domain checking, and execution.

use std::fmt;

/// An error raised while elaborating a BCL program into a flat [`crate::design::Design`].
///
/// Elaboration errors are *static* errors: they indicate a malformed program
/// (unknown module, bad method arity, type mismatch on a primitive, ...)
/// rather than a runtime condition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ElabError {
    msg: String,
}

impl ElabError {
    /// Creates an elaboration error with the given message.
    pub fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }

    /// The human-readable message.
    pub fn message(&self) -> &str {
        &self.msg
    }
}

impl fmt::Display for ElabError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "elaboration error: {}", self.msg)
    }
}

impl std::error::Error for ElabError {}

/// An error raised by the computational-domain type checker (§4.2 of the paper).
///
/// Domain errors indicate that a rule refers to methods in more than one
/// domain, or that the inferred domain of a primitive is inconsistent across
/// its uses. Inter-domain communication is only legal through synchronizer
/// primitives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DomainError {
    msg: String,
}

impl DomainError {
    /// Creates a domain error with the given message.
    pub fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }

    /// The human-readable message.
    pub fn message(&self) -> &str {
        &self.msg
    }
}

impl fmt::Display for DomainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "domain error: {}", self.msg)
    }
}

impl std::error::Error for DomainError {}

/// The result of attempting to execute an action or evaluate an expression.
///
/// Guard failure is *not* a bug: it is the normal control-flow signal of the
/// guarded-atomic-action semantics (a `when` whose predicate is false
/// invalidates the enclosing atomic action, which is then rolled back).
/// The other variants indicate genuine dynamic errors in the program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// A `when` guard (explicit or implicit) evaluated to false; the
    /// enclosing atomic action must be abandoned and rolled back.
    GuardFail,
    /// Two parallel sub-actions updated the same state element
    /// (the paper's DOUBLE WRITE ERROR).
    DoubleWrite(String),
    /// A dynamic type error: a value of the wrong shape reached a primitive
    /// operation (should be prevented by the type checker for checked
    /// programs, but builder-constructed programs can trigger it).
    Type(String),
    /// A vector or register-file access was out of bounds.
    Bounds(String),
    /// Anything else (unknown variable, malformed design, ...).
    Malformed(String),
    /// A reliable-transport protocol violation detected by the platform's
    /// transactor (an ACK for never-sent data, a frame for an unknown
    /// channel, a payload-length mismatch on a CRC-valid frame). These
    /// indicate a transactor or wire-format bug — injected link faults are
    /// absorbed by the protocol and never surface as errors.
    Transport(String),
}

impl ExecError {
    /// True if this is the benign guard-failure signal.
    pub fn is_guard_fail(&self) -> bool {
        matches!(self, ExecError::GuardFail)
    }
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::GuardFail => write!(f, "guard failure"),
            ExecError::DoubleWrite(m) => write!(f, "double write error: {m}"),
            ExecError::Type(m) => write!(f, "type error: {m}"),
            ExecError::Bounds(m) => write!(f, "bounds error: {m}"),
            ExecError::Malformed(m) => write!(f, "malformed program: {m}"),
            ExecError::Transport(m) => write!(f, "transport protocol violation: {m}"),
        }
    }
}

impl std::error::Error for ExecError {}

/// Convenience alias for execution results.
pub type ExecResult<T> = Result<T, ExecError>;

/// A static design-validation diagnostic produced by
/// [`crate::analysis::validate`].
///
/// Validation runs on a flat, elaborated [`crate::design::Design`] and is
/// the panic-free front door of the toolchain: any design that passes
/// `validate` can be domain-inferred, partitioned, compiled, and executed
/// without panicking (execution may still return [`ExecError`]s — e.g. a
/// dynamic division by zero — but never aborts the process). Designs built
/// by hand or by a fuzzer that *fail* validation get a typed diagnostic
/// instead of an index-out-of-bounds panic deep in the pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidateError {
    /// A rule or method targets a [`crate::ast::PrimId`] that is not in
    /// the design's primitive table.
    UnknownPrim {
        /// Rule or method the dangling reference appears in.
        context: String,
        /// The out-of-range primitive index.
        id: usize,
        /// Number of primitives in the design.
        prim_count: usize,
    },
    /// A `Target::Named` survived to the flat design: the design was
    /// never elaborated (or was corrupted after elaboration).
    UnresolvedName {
        /// Rule or method the unresolved call appears in.
        context: String,
        /// The instance path of the call.
        path: String,
        /// The method name of the call.
        method: String,
    },
    /// A method call incompatible with the primitive's kind, position
    /// (value vs. action), or arity.
    BadMethod {
        /// Rule or method the call appears in.
        context: String,
        /// Path of the primitive being called.
        prim: String,
        /// The offending method.
        method: String,
        /// Why the call is rejected.
        reason: String,
    },
    /// A declared type's bit width overflows the checked bound (or a
    /// scalar is wider than the 64-bit word the runtime models).
    WidthOverflow {
        /// Path of the primitive with the oversized type.
        prim: String,
        /// Details (the type and the bound it exceeds).
        detail: String,
    },
    /// A FIFO or synchronizer with zero depth, or a register file with
    /// zero cells (its guards could never be satisfied / every access
    /// would be out of bounds).
    ZeroCapacity {
        /// Path of the degenerate primitive.
        prim: String,
        /// What is zero-sized ("fifo depth", "regfile size", ...).
        what: String,
    },
    /// A register file whose initializer has more entries than cells.
    BadInit {
        /// Path of the primitive.
        prim: String,
        /// Details of the mismatch.
        detail: String,
    },
    /// Two parallel arms of one rule definitely write the same primitive
    /// port — the paper's DOUBLE WRITE ERROR, caught statically when it
    /// is certain rather than data-dependent.
    ConflictingWrites {
        /// The rule containing the parallel double write.
        rule: String,
        /// Path of the doubly-written primitive.
        prim: String,
    },
    /// A synchronizer whose `from` and `to` domains coincide: it is not a
    /// cut point, so the channel graph it induces cannot be partitioned
    /// (same-domain channels must be plain FIFOs).
    DegenerateSync {
        /// Path of the synchronizer.
        prim: String,
        /// The coinciding domain.
        domain: String,
    },
    /// Domain inference failed (a rule spanning domains or state shared
    /// across domains) — [`DomainError`] surfaced as a validation
    /// diagnostic.
    DomainConflict {
        /// The underlying domain-inference message.
        message: String,
    },
    /// Two primitives share one hierarchical path, making path-keyed
    /// operations (cosim routing, fusion, checkpoints) ambiguous.
    DuplicatePath {
        /// The duplicated path.
        path: String,
    },
}

impl ValidateError {
    /// A short stable name for the diagnostic kind (used by tests and
    /// fuzz-failure triage).
    pub fn kind(&self) -> &'static str {
        match self {
            ValidateError::UnknownPrim { .. } => "unknown-prim",
            ValidateError::UnresolvedName { .. } => "unresolved-name",
            ValidateError::BadMethod { .. } => "bad-method",
            ValidateError::WidthOverflow { .. } => "width-overflow",
            ValidateError::ZeroCapacity { .. } => "zero-capacity",
            ValidateError::BadInit { .. } => "bad-init",
            ValidateError::ConflictingWrites { .. } => "conflicting-writes",
            ValidateError::DegenerateSync { .. } => "degenerate-sync",
            ValidateError::DomainConflict { .. } => "domain-conflict",
            ValidateError::DuplicatePath { .. } => "duplicate-path",
        }
    }
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateError::UnknownPrim {
                context,
                id,
                prim_count,
            } => write!(
                f,
                "{context}: references primitive #{id}, but the design has {prim_count}"
            ),
            ValidateError::UnresolvedName {
                context,
                path,
                method,
            } => write!(
                f,
                "{context}: unelaborated call `{path}.{method}` in a flat design"
            ),
            ValidateError::BadMethod {
                context,
                prim,
                method,
                reason,
            } => write!(f, "{context}: `{prim}.{method}`: {reason}"),
            ValidateError::WidthOverflow { prim, detail } => {
                write!(f, "primitive `{prim}`: {detail}")
            }
            ValidateError::ZeroCapacity { prim, what } => {
                write!(f, "primitive `{prim}`: zero {what}")
            }
            ValidateError::BadInit { prim, detail } => {
                write!(f, "primitive `{prim}`: {detail}")
            }
            ValidateError::ConflictingWrites { rule, prim } => write!(
                f,
                "rule `{rule}`: parallel arms both write `{prim}` (definite double write)"
            ),
            ValidateError::DegenerateSync { prim, domain } => write!(
                f,
                "synchronizer `{prim}`: both endpoints in domain `{domain}` (use a FIFO)"
            ),
            ValidateError::DomainConflict { message } => write!(f, "{message}"),
            ValidateError::DuplicatePath { path } => {
                write!(f, "duplicate primitive path `{path}`")
            }
        }
    }
}

impl std::error::Error for ValidateError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guard_fail_is_distinguished() {
        assert!(ExecError::GuardFail.is_guard_fail());
        assert!(!ExecError::DoubleWrite("r".into()).is_guard_fail());
        assert!(!ExecError::Type("t".into()).is_guard_fail());
    }

    #[test]
    fn errors_display() {
        assert_eq!(ExecError::GuardFail.to_string(), "guard failure");
        assert_eq!(
            ElabError::new("no such module `Foo`").to_string(),
            "elaboration error: no such module `Foo`"
        );
        assert_eq!(
            DomainError::new("rule spans HW and SW").to_string(),
            "domain error: rule spans HW and SW"
        );
        assert_eq!(
            ExecError::Bounds("index 9 out of 4".into()).to_string(),
            "bounds error: index 9 out of 4"
        );
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ElabError>();
        assert_send_sync::<DomainError>();
        assert_send_sync::<ExecError>();
    }
}
