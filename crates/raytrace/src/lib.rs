//! # bcl-raytrace — the ray-tracing evaluation application
//!
//! The paper's second benchmark (§7.2): "a realistic ray tracer" with a
//! bounding volume hierarchy, evaluated under four HW/SW partitions
//! (Figure 14). Scene construction and BVH building are host-side setup;
//! ray generation, BVH traversal (an explicit-stack FSM), box and
//! triangle intersection (fixed-point Möller–Trumbore), shading, and the
//! bitmap are BCL rules whose domain placement defines the partition.
//!
//! As with the Vorbis application, the native tracer ([`native`]) and
//! the BCL designs share the same fixed-point formulas, so every
//! partition renders a bit-identical image.
//!
//! ```
//! use bcl_raytrace::bvh::build_bvh;
//! use bcl_raytrace::geom::{gen_rays, make_scene};
//! use bcl_raytrace::native::render;
//! use bcl_raytrace::partitions::{run_partition, RtPartition};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let scene = make_scene(32, 7);
//! let bvh = build_bvh(&scene);
//! let golden = render(&bvh, &gen_rays(2, 2));
//! let run = run_partition(RtPartition::C, &bvh, 2, 2)?;
//! assert_eq!(run.image, golden);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod bcl;
pub mod bvh;
pub mod geom;
pub mod native;
pub mod partitions;
