//! Property: pretty-printing any (printable) program and re-parsing it
//! yields a semantically identical program — the elaborated designs are
//! structurally equal and behave the same.

use bcl_core::ast::{Action, Expr, RuleDef, Target};
use bcl_core::prim::PrimSpec;
use bcl_core::program::{InstDef, InstKind, ModuleDef, Program};
use bcl_core::types::Type;
use bcl_core::value::{BinOp, Value};
use bcl_frontend::{parse, pretty_program};
use proptest::prelude::*;

/// Instance names fixed up front so expressions can reference them.
const REGS: [&str; 2] = ["ra", "rb"];
const FIFOS: [&str; 2] = ["fa", "fb"];

fn arb_scalar_ty() -> impl Strategy<Value = Type> {
    prop_oneof![
        Just(Type::Bool),
        (1u32..=32).prop_map(Type::Int),
        (1u32..=32).prop_map(Type::Bits),
    ]
}

fn rd(r: &str) -> Expr {
    Expr::Call(Target::Named(r.into(), "_read".into()), vec![])
}
fn first(f: &str) -> Expr {
    Expr::Call(Target::Named(f.into(), "first".into()), vec![])
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (-100i64..100).prop_map(|v| Expr::Const(Value::int(32, v))),
        Just(rd(REGS[0])),
        Just(rd(REGS[1])),
        Just(first(FIFOS[0])),
    ];
    leaf.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Bin(
                BinOp::Add,
                Box::new(a),
                Box::new(b)
            )),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Bin(
                BinOp::Mul,
                Box::new(a),
                Box::new(b)
            )),
            (inner.clone(), inner.clone(), inner).prop_map(|(c, t, f)| Expr::Cond(
                Box::new(Expr::Bin(
                    BinOp::Gt,
                    Box::new(c),
                    Box::new(Expr::int(32, 0))
                )),
                Box::new(t),
                Box::new(f)
            )),
        ]
    })
}

fn arb_action() -> impl Strategy<Value = Action> {
    let leaf = prop_oneof![
        Just(Action::NoAction),
        arb_expr().prop_map(|e| Action::Write(
            Target::Named(REGS[0].into(), "_write".into()),
            Box::new(e)
        )),
        arb_expr()
            .prop_map(|e| Action::Call(Target::Named(FIFOS[1].into(), "enq".into()), vec![e])),
        Just(Action::Call(
            Target::Named(FIFOS[0].into(), "deq".into()),
            vec![]
        )),
    ];
    leaf.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Action::Par(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Action::Seq(Box::new(a), Box::new(b))),
            (arb_expr(), inner.clone()).prop_map(|(g, a)| Action::When(
                Box::new(Expr::Bin(
                    BinOp::Ne,
                    Box::new(g),
                    Box::new(Expr::int(32, 0))
                )),
                Box::new(a)
            )),
            (arb_expr(), inner.clone(), inner.clone()).prop_map(|(c, t, f)| Action::If(
                Box::new(Expr::Bin(
                    BinOp::Lt,
                    Box::new(c),
                    Box::new(Expr::int(32, 5))
                )),
                Box::new(t),
                Box::new(f)
            )),
            inner.clone().prop_map(|a| Action::LocalGuard(Box::new(a))),
        ]
    })
}

fn arb_program() -> impl Strategy<Value = Program> {
    (
        proptest::collection::vec(arb_action(), 1..4),
        arb_scalar_ty(),
        1usize..4,
    )
        .prop_map(|(bodies, fifo_ty, depth)| {
            let mut m = ModuleDef::new("Gen");
            for r in REGS {
                m.insts.push(InstDef {
                    name: r.into(),
                    kind: InstKind::Prim(PrimSpec::Reg {
                        init: Value::int(32, 0),
                    }),
                });
            }
            m.insts.push(InstDef {
                name: FIFOS[0].into(),
                kind: InstKind::Prim(PrimSpec::Fifo {
                    depth,
                    ty: Type::Int(32),
                }),
            });
            m.insts.push(InstDef {
                name: FIFOS[1].into(),
                kind: InstKind::Prim(PrimSpec::Fifo { depth, ty: fifo_ty }),
            });
            for (i, body) in bodies.into_iter().enumerate() {
                m.rules.push(RuleDef {
                    name: format!("r{i}"),
                    body,
                });
            }
            Program::with_root(m)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn pretty_then_parse_preserves_semantics(p1 in arb_program()) {
        let printed = pretty_program(&p1);
        let p2 = parse(&printed)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n--- printed ---\n{printed}"));
        let d1 = bcl_core::elaborate(&p1).unwrap();
        let d2 = bcl_core::elaborate(&p2).unwrap();
        prop_assert_eq!(&d1.prims, &d2.prims, "printed:\n{}", printed);

        // Behavioural equality: run both designs from the same seeded
        // state under the same schedule and compare outcomes — including
        // dynamic errors (a random `Par` may legitimately double-write;
        // both programs must then fail identically).
        use bcl_core::sched::{SwOptions, SwRunner};
        let run = |d: &bcl_core::Design| -> Result<bcl_core::Store, String> {
            let mut store = bcl_core::Store::new(d);
            let fa = d.prim_id("fa").unwrap();
            if let bcl_core::prim::PrimState::Fifo { items, .. } = store.state_mut(fa) {
                items.push_back(Value::int(32, 7));
            }
            let mut r = SwRunner::with_store(d, store, SwOptions::default());
            r.run_until_quiescent(200).map_err(|e| e.to_string())?;
            Ok(r.store)
        };
        prop_assert_eq!(run(&d1), run(&d2), "printed:\n{}", printed);
    }
}
