//! The robustness headline property: for any fault schedule with loss
//! rate below 1.0, a co-simulation over the faulty link produces
//! *bit-identical* output to the fault-free run — the generated reliable
//! transport completely hides drops, corruption, duplication, and
//! reordering — and the whole run is deterministic: the same seed always
//! yields the same cycle count and fault tally.
//!
//! A dead direction (100% loss) must terminate through the stall
//! detector with per-channel diagnostics, not by exhausting the cycle
//! budget.

use bcl_core::builder::{dsl::*, ModuleBuilder};
use bcl_core::domain::{HW, SW};
use bcl_core::partition::partition;
use bcl_core::program::Program;
use bcl_core::sched::SwOptions;
use bcl_core::types::Type;
use bcl_core::value::Value;
use bcl_platform::cosim::{Cosim, CosimOutcome, RecoveryPolicy};
use bcl_platform::link::{FaultConfig, LinkConfig, PartitionFault};
use bcl_vorbis::frames::frame_stream;
use bcl_vorbis::partitions::{
    run_partition, run_partition_with_faults, run_partition_with_recovery, VorbisPartition,
};
use proptest::prelude::*;

/// src(SW) -> toHw -> echo(HW) -> toSw -> snk(SW): the simplest design
/// that exercises both link directions.
fn echo_design() -> bcl_core::design::Design {
    let mut m = ModuleBuilder::new("Echo");
    m.source("src", Type::Int(32), SW);
    m.sink("snk", Type::Int(32), SW);
    m.channel("toHw", 2, Type::Int(32), SW, HW);
    m.channel("toSw", 2, Type::Int(32), HW, SW);
    m.rule("feed", with_first("x", "src", enq("toHw", var("x"))));
    m.rule("echo", with_first("x", "toHw", enq("toSw", var("x"))));
    m.rule("drain", with_first("x", "toSw", enq("snk", var("x"))));
    bcl_core::elaborate(&Program::with_root(m.build())).unwrap()
}

/// Runs the Echo cosim under `faults`, returning the sink stream and the
/// cycle count. Panics on timeout or stall — with loss < 1.0 the
/// transport must always get through.
fn run_echo(faults: FaultConfig, inputs: &[i64]) -> (Vec<i64>, u64) {
    let parts = partition(&echo_design(), SW).unwrap();
    let mut cs = Cosim::with_faults(
        &parts,
        SW,
        HW,
        LinkConfig::default(),
        faults,
        SwOptions::default(),
    )
    .unwrap();
    for &i in inputs {
        cs.push_source("src", Value::int(32, i));
    }
    let want = inputs.len();
    let out = cs
        .run_until(|c| c.sink_count("snk") == want, 10_000_000)
        .unwrap();
    assert!(out.is_done(), "echo did not complete: {out:?}");
    let vals = cs
        .sink_values("snk")
        .iter()
        .map(|v| v.as_int().unwrap())
        .collect();
    (vals, out.fpga_cycles())
}

/// Runs the Echo cosim under link faults *and* a scripted partition-fault
/// schedule, recovering with `policy`. Panics unless the run completes.
fn run_echo_recovery(
    mut faults: FaultConfig,
    schedule: &[PartitionFault],
    policy: RecoveryPolicy,
    inputs: &[i64],
) -> (Vec<i64>, u64) {
    for &f in schedule {
        faults = faults.with_partition_fault(f);
    }
    let parts = partition(&echo_design(), SW).unwrap();
    let mut cs = Cosim::with_faults(
        &parts,
        SW,
        HW,
        LinkConfig::default(),
        faults,
        SwOptions::default(),
    )
    .unwrap();
    cs.set_recovery_policy(policy);
    for &i in inputs {
        cs.push_source("src", Value::int(32, i));
    }
    let want = inputs.len();
    let out = cs
        .run_until(|c| c.sink_count("snk") == want, 10_000_000)
        .unwrap();
    assert!(out.is_done(), "echo did not recover: {out:?}");
    let vals = cs
        .sink_values("snk")
        .iter()
        .map(|v| v.as_int().unwrap())
        .collect();
    (vals, out.fpga_cycles())
}

/// A scripted partition-fault schedule: up to three resets/deaths with
/// strike cycles drawn from `cycles` (early enough to land mid-run —
/// faults scheduled after completion never fire).
fn arb_partition_schedule(
    cycles: std::ops::Range<u64>,
) -> impl Strategy<Value = Vec<PartitionFault>> {
    proptest::collection::vec((any::<bool>(), cycles), 0..=3).prop_map(|v| {
        v.into_iter()
            .map(|(fatal, cycle)| {
                if fatal {
                    PartitionFault::DieAt(cycle)
                } else {
                    PartitionFault::ResetAt(cycle)
                }
            })
            .collect()
    })
}

/// A fault schedule with every rate drawn from [0, 0.5].
fn arb_faults() -> impl Strategy<Value = FaultConfig> {
    (any::<u64>(), 0u32..=50, 0u32..=50, 0u32..=50, 0u32..=50).prop_map(
        |(seed, drop, corrupt, dup, reorder)| {
            FaultConfig::uniform(
                seed,
                drop as f64 / 100.0,
                corrupt as f64 / 100.0,
                dup as f64 / 100.0,
                reorder as f64 / 100.0,
            )
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    #[test]
    fn echo_is_bit_identical_under_any_fault_schedule(
        faults in arb_faults(),
        inputs in proptest::collection::vec(-1000i64..1000, 1..12),
    ) {
        let (clean, clean_cycles) = run_echo(FaultConfig::none(), &inputs);
        prop_assert_eq!(&clean, &inputs, "fault-free echo must be the identity");
        let (faulty, cycles_a) = run_echo(faults.clone(), &inputs);
        prop_assert_eq!(&faulty, &clean, "faults must be invisible in the output");
        // Same seed, same schedule, same cycle count — exactly.
        let (_, cycles_b) = run_echo(faults, &inputs);
        prop_assert_eq!(cycles_a, cycles_b, "fault runs must be reproducible");
        prop_assert!(cycles_a >= clean_cycles, "recovery can only add cycles");
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    #[test]
    fn echo_recovers_from_any_partition_fault_schedule(
        faults in arb_faults(),
        schedule in arb_partition_schedule(1..500u64),
        interval in 50u64..400,
        inputs in proptest::collection::vec(-1000i64..1000, 1..12),
    ) {
        // Baseline: same link faults, no partition faults. The reliable
        // transport already makes this bit-identical to the input.
        let (clean, clean_cycles) = run_echo(faults.clone(), &inputs);
        // Restart-from-checkpoint: any schedule of resets and deaths is
        // invisible in the output *and* in the cycle count — the replay
        // past each fired fault converges to the undisturbed trajectory
        // (the link fault PRNG is part of the checkpoint, so even random
        // link faults replay identically).
        let (restarted, cycles) = run_echo_recovery(
            faults.clone(),
            &schedule,
            RecoveryPolicy::restart(interval),
            &inputs,
        );
        prop_assert_eq!(&restarted, &clean, "restart leaked the faults");
        prop_assert_eq!(cycles, clean_cycles, "restart replay must be cycle-identical");
        // Software takeover: values still bit-identical (the fused design
        // is semantically interchangeable); timing may differ.
        let (failed_over, _) = run_echo_recovery(
            faults,
            &schedule,
            RecoveryPolicy::failover(interval),
            &inputs,
        );
        prop_assert_eq!(&failed_over, &clean, "failover changed the values");
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    #[test]
    fn serialized_restore_replays_the_same_fault_schedule(
        faults in arb_faults(),
        inputs in proptest::collection::vec(-1000i64..1000, 4..12),
        split in 50u64..300,
    ) {
        // The link-fault PRNG is part of the snapshot: restoring a
        // *serialized* checkpoint in a fresh co-simulation (what another
        // process would build) must replay the exact same fault schedule
        // as restoring the in-memory checkpoint — same values, same cycle
        // count, same fault tally.
        let build = || {
            let parts = partition(&echo_design(), SW).unwrap();
            let mut cs = Cosim::with_faults(
                &parts,
                SW,
                HW,
                LinkConfig::default(),
                faults.clone(),
                SwOptions::default(),
            )
            .unwrap();
            for &i in &inputs {
                cs.push_source("src", Value::int(32, i));
            }
            cs
        };
        let want = inputs.len();
        let finish = |cs: &mut Cosim| {
            let out = cs
                .run_until(|c| c.sink_count("snk") == want, 10_000_000)
                .unwrap();
            assert!(out.is_done(), "echo did not complete: {out:?}");
            let vals: Vec<i64> = cs
                .sink_values("snk")
                .iter()
                .map(|v| v.as_int().unwrap())
                .collect();
            (vals, out.fpga_cycles(), cs.link_stats())
        };

        let mut original = build();
        original
            .run_until(|c| c.fpga_cycles >= split, 10_000_000)
            .unwrap();
        let ckpt = original.checkpoint();
        let bytes = original.snapshot_bytes().unwrap();

        // Path A: in-memory restore, same process, same Cosim object.
        original.restore(&ckpt);
        let (vals_mem, cycles_mem, link_mem) = finish(&mut original);

        // Path B: deserialize into a freshly built co-simulation.
        let mut fresh = build();
        fresh.resume_from(&mut bytes.as_slice()).unwrap();
        let (vals_ser, cycles_ser, link_ser) = finish(&mut fresh);

        prop_assert_eq!(&vals_ser, &vals_mem, "values diverged across serialization");
        prop_assert_eq!(cycles_ser, cycles_mem, "cycle count diverged across serialization");
        prop_assert_eq!(link_ser, link_mem, "fault tally diverged: the PRNG did not round-trip");
    }
}

#[test]
fn no_fault_checkpoint_restore_reproduces_the_run_exactly() {
    // Acceptance criterion: a checkpoint/restore round trip with no
    // faults at all reproduces the exact fault-free cycle count.
    let inputs: Vec<i64> = (0..10).collect();
    let (clean, clean_cycles) = run_echo(FaultConfig::none(), &inputs);
    let parts = partition(&echo_design(), SW).unwrap();
    let mut cs = Cosim::with_faults(
        &parts,
        SW,
        HW,
        LinkConfig::default(),
        FaultConfig::none(),
        SwOptions::default(),
    )
    .unwrap();
    for &i in &inputs {
        cs.push_source("src", Value::int(32, i));
    }
    for _ in 0..120 {
        cs.step().unwrap();
    }
    let ckpt = cs.checkpoint();
    for _ in 0..200 {
        cs.step().unwrap(); // wander ahead, then rewind
    }
    cs.restore(&ckpt);
    let out = cs
        .run_until(|c| c.sink_count("snk") == inputs.len(), 10_000_000)
        .unwrap();
    assert!(out.is_done(), "restored echo did not complete: {out:?}");
    assert_eq!(out.fpga_cycles(), clean_cycles, "cycle count must be exact");
    let vals: Vec<i64> = cs
        .sink_values("snk")
        .iter()
        .map(|v| v.as_int().unwrap())
        .collect();
    assert_eq!(vals, clean);
}

proptest! {
    // The app smoke test is heavier, so fewer cases.
    #![proptest_config(ProptestConfig { cases: 4, ..ProptestConfig::default() })]

    #[test]
    fn vorbis_decodes_bit_identically_under_faults(faults in arb_faults()) {
        // Partition E (full back-end in HW) crosses the link once in each
        // direction per frame — every fault lands on real payload.
        let frames = frame_stream(2, 11);
        let clean = run_partition(VorbisPartition::E, &frames).unwrap();
        let faulty =
            run_partition_with_faults(VorbisPartition::E, &frames, faults.clone()).unwrap();
        prop_assert_eq!(&faulty.pcm, &clean.pcm, "PCM must be bit-identical");
        let again = run_partition_with_faults(VorbisPartition::E, &frames, faults).unwrap();
        prop_assert_eq!(faulty.fpga_cycles, again.fpga_cycles, "cycles must reproduce");
        prop_assert_eq!(faulty.link, again.link, "fault tally must reproduce");
    }
}

proptest! {
    // Heavier still: each case decodes the stream three times.
    #![proptest_config(ProptestConfig { cases: 3, ..ProptestConfig::default() })]

    #[test]
    fn vorbis_recovers_from_partition_faults(
        schedule in arb_partition_schedule(1..30_000u64),
        interval in 2_000u64..8_000,
    ) {
        let frames = frame_stream(2, 11);
        let clean = run_partition(VorbisPartition::E, &frames).unwrap();
        let faults = |s: &[PartitionFault]| {
            s.iter().fold(FaultConfig::none(), |f, &p| f.with_partition_fault(p))
        };
        let restart = run_partition_with_recovery(
            VorbisPartition::E,
            &frames,
            faults(&schedule),
            RecoveryPolicy::restart(interval),
        )
        .unwrap();
        prop_assert_eq!(&restart.pcm, &clean.pcm, "restart leaked into the PCM");
        prop_assert_eq!(restart.fpga_cycles, clean.fpga_cycles, "restart must be cycle-identical");
        let failover = run_partition_with_recovery(
            VorbisPartition::E,
            &frames,
            faults(&schedule),
            RecoveryPolicy::failover(interval),
        )
        .unwrap();
        prop_assert_eq!(&failover.pcm, &clean.pcm, "failover changed the PCM");
    }
}

#[test]
fn dead_direction_ends_in_stall_not_cycle_exhaustion() {
    // 100% HW→SW loss: results can never come back. The run must end via
    // the stall detector, long before the (enormous) cycle limit, and
    // carry per-channel diagnostics pointing at the dead channel.
    let parts = partition(&echo_design(), SW).unwrap();
    let faults = FaultConfig {
        drop: [0.0, 1.0],
        ..FaultConfig::none()
    };
    let mut cs = Cosim::with_faults(
        &parts,
        SW,
        HW,
        LinkConfig::default(),
        faults,
        SwOptions::default(),
    )
    .unwrap();
    cs.push_source("src", Value::int(32, 42));
    let out = cs
        .run_until(|c| c.sink_count("snk") == 1, u64::MAX / 2)
        .unwrap();
    match out {
        CosimOutcome::Stalled {
            fpga_cycles,
            channels,
        } => {
            assert!(
                fpga_cycles < 1_000_000,
                "stall fired at {fpga_cycles}, expected early"
            );
            let dead = channels
                .iter()
                .find(|c| c.name == "toSw")
                .expect("toSw diagnosed");
            assert_eq!(dead.accepted, 0, "nothing ever arrived: {dead}");
            assert!(dead.retransmits > 0, "the sender kept retrying: {dead}");
            assert!(dead.unacked > 0, "the frame stayed queued: {dead}");
        }
        other => panic!("expected CosimOutcome::Stalled, got {other:?}"),
    }
}

#[test]
fn scripted_single_faults_are_recovered() {
    // Each scripted fault kind, applied to the very first SW→HW frame,
    // must be invisible in the output.
    use bcl_platform::link::{Dir, FaultKind};
    let inputs: Vec<i64> = (0..6).collect();
    for kind in [
        FaultKind::Drop,
        FaultKind::Corrupt,
        FaultKind::Duplicate,
        FaultKind::Reorder,
    ] {
        let faults = FaultConfig::none().with_scripted(Dir::SwToHw, 0, kind);
        let (vals, _) = run_echo(faults, &inputs);
        assert_eq!(vals, inputs, "scripted {kind:?} leaked into the output");
    }
}
