//! Heap-traffic profile of the simulation phase, by backend.
//!
//! Counts every allocation (count and bytes) made during `run_built`
//! — construction excluded — via a counting global allocator, for the
//! event-driven Vm on the tree store, the same Vm on the flat arena,
//! and the compiled closure backend with word-level lowering. The Vm
//! legs stand in for the pre-word-lowering compiled backend too:
//! BENCH_pr9 showed boxed closures within 1% of the Vm precisely
//! because both materialized the same boxed `Value`s per rule firing
//! (EXPERIMENTS.md §P2); word-level lowering is what separates them.
//!
//! ```text
//! cargo run --release -p bcl-bench --bin alloc_traffic
//! ```
//!
//! Allocation counts are deterministic per (design, partition,
//! backend) — this is an instruction-stream property, not a timing —
//! so single runs suffice and the numbers are reproducible.

use bcl_core::sched::ExecBackend;
use bcl_raytrace::bvh::build_bvh;
use bcl_raytrace::geom::{gen_rays, make_scene};
use bcl_raytrace::partitions::{build_cosim as build_rt, run_built as run_built_rt, RtPartition};
use bcl_vorbis::frames::frame_stream;
use bcl_vorbis::partitions::{build_cosim, run_built, VorbisPartition};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, l: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(l.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(l) }
    }

    unsafe fn dealloc(&self, p: *mut u8, l: Layout) {
        unsafe { System.dealloc(p, l) }
    }

    unsafe fn realloc(&self, p: *mut u8, l: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        unsafe { System.realloc(p, l, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

const BACKENDS: [(&str, ExecBackend); 3] = [
    ("event(tree)", ExecBackend::Event),
    ("event(flat)", ExecBackend::Flat),
    ("compiled", ExecBackend::Compiled),
];

fn measured<T>(f: impl FnOnce() -> T) -> (u64, u64, T) {
    let (a0, b0) = (
        ALLOCS.load(Ordering::Relaxed),
        BYTES.load(Ordering::Relaxed),
    );
    let v = f();
    (
        ALLOCS.load(Ordering::Relaxed) - a0,
        BYTES.load(Ordering::Relaxed) - b0,
        v,
    )
}

fn main() {
    println!(
        "{:<16} {:<4} {:<12} {:>12} {:>14} {:>12}",
        "bench", "part", "backend", "allocs", "bytes", "per_fpga_cyc"
    );

    let frames = frame_stream(8, 1);
    for p in [VorbisPartition::F, VorbisPartition::E] {
        for (name, backend) in BACKENDS {
            let c = build_cosim(p, &frames, backend).unwrap();
            let (allocs, bytes, run) = measured(|| run_built(c, p, frames.len()).unwrap());
            println!(
                "{:<16} {:<4} {:<12} {:>12} {:>14} {:>12.2}",
                "fig13_vorbis",
                p.label(),
                name,
                allocs,
                bytes,
                allocs as f64 / run.fpga_cycles.max(1) as f64
            );
        }
    }

    let bvh = build_bvh(&make_scene(64, 1));
    let (w, h) = (4, 4);
    let _rays = gen_rays(w, h);
    for p in [RtPartition::A, RtPartition::C] {
        for (name, backend) in BACKENDS {
            let c = build_rt(p, &bvh, w, h, backend).unwrap();
            let (allocs, bytes, run) = measured(|| run_built_rt(c, p, w * h).unwrap());
            println!(
                "{:<16} {:<4} {:<12} {:>12} {:>14} {:>12.2}",
                "fig13_raytrace",
                p.label(),
                name,
                allocs,
                bytes,
                allocs as f64 / run.fpga_cycles.max(1) as f64
            );
        }
    }
}
