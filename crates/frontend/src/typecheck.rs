//! Structural type checking for BCL programs.
//!
//! BCL is statically typed; this pass checks what is checkable before
//! elaboration: primitive method interfaces (enqueue/write types against
//! element types), guard and condition boolean-ness, operator operand
//! shapes, vector/struct access, and submodule method arities. Method
//! formal parameters are untyped in the kernel surface syntax, so values
//! flowing through them type as "unknown" and unify with anything —
//! the checker is sound for what it reports, conservative about the rest.

use bcl_core::ast::{Action, Expr, Target};
use bcl_core::prim::PrimSpec;
use bcl_core::program::{InstKind, ModuleDef, Program};
use bcl_core::types::Type;
use bcl_core::value::BinOp;
use std::fmt;

/// A type-checking error, naming the module and rule/method.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypeError {
    /// Where the error occurred (`module.rule`).
    pub context: String,
    /// Message.
    pub msg: String,
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "type error in {}: {}", self.context, self.msg)
    }
}

impl std::error::Error for TypeError {}

type TResult<T> = Result<T, TypeError>;

/// `Some(ty)` when known, `None` for values that flowed through untyped
/// method formals.
type MaybeTy = Option<Type>;

/// Checks every module of a program.
///
/// # Errors
///
/// The first type error found, with its module/rule context.
pub fn typecheck(program: &Program) -> TResult<()> {
    for m in &program.modules {
        check_module(program, m)?;
    }
    Ok(())
}

struct Checker<'p> {
    program: &'p Program,
    module: &'p ModuleDef,
    context: String,
    vars: Vec<(String, MaybeTy)>,
}

fn check_module(program: &Program, m: &ModuleDef) -> TResult<()> {
    for r in &m.rules {
        let mut c = Checker {
            program,
            module: m,
            context: format!("{}.{}", m.name, r.name),
            vars: Vec::new(),
        };
        c.action(&r.body)?;
    }
    for meth in &m.act_methods {
        let mut c = Checker {
            program,
            module: m,
            context: format!("{}.{}", m.name, meth.name),
            vars: meth.args.iter().map(|a| (a.clone(), None)).collect(),
        };
        c.action(&meth.body)?;
    }
    for meth in &m.val_methods {
        let mut c = Checker {
            program,
            module: m,
            context: format!("{}.{}", m.name, meth.name),
            vars: meth.args.iter().map(|a| (a.clone(), None)).collect(),
        };
        c.expr(&meth.body)?;
    }
    Ok(())
}

impl<'p> Checker<'p> {
    fn err<T>(&self, msg: impl Into<String>) -> TResult<T> {
        Err(TypeError {
            context: self.context.clone(),
            msg: msg.into(),
        })
    }

    /// Resolves a dotted path to a primitive spec, following submodule
    /// instances where possible.
    fn resolve_prim(&self, path: &str) -> Option<(PrimSpec, bool)> {
        let mut module = self.module;
        let comps: Vec<&str> = path.split('.').collect();
        for (i, c) in comps.iter().enumerate() {
            let inst = module.inst(c)?;
            match &inst.kind {
                InstKind::Prim(spec) => {
                    return if i + 1 == comps.len() {
                        Some((spec.clone(), true))
                    } else {
                        None
                    };
                }
                InstKind::Module { def, .. } => {
                    module = self.program.module(def)?;
                }
            }
        }
        None
    }

    /// Resolves a submodule instance to its definition.
    fn resolve_sub(&self, path: &str) -> Option<&'p ModuleDef> {
        let mut module: &ModuleDef = self.module;
        for c in path.split('.') {
            match &module.inst(c)?.kind {
                InstKind::Module { def, .. } => {
                    module = self.program.module(def)?;
                }
                InstKind::Prim(_) => return None,
            }
        }
        // Careful: self.module borrows 'p through self.program lookups only.
        self.program.module(&module.name)
    }

    fn lookup_var(&self, n: &str) -> Option<&MaybeTy> {
        self.vars.iter().rev().find(|(k, _)| k == n).map(|(_, t)| t)
    }

    fn require_bool(&mut self, e: &Expr, what: &str) -> TResult<()> {
        match self.expr(e)? {
            Some(Type::Bool) | None => Ok(()),
            Some(other) => self.err(format!("{what} must be Bool, found {other}")),
        }
    }

    fn unify(&self, a: &MaybeTy, b: &MaybeTy) -> TResult<MaybeTy> {
        match (a, b) {
            (Some(x), Some(y)) => {
                if x == y {
                    Ok(Some(x.clone()))
                } else {
                    self.err(format!("type mismatch: {x} vs {y}"))
                }
            }
            (Some(x), None) | (None, Some(x)) => Ok(Some(x.clone())),
            (None, None) => Ok(None),
        }
    }

    fn expr(&mut self, e: &Expr) -> TResult<MaybeTy> {
        match e {
            Expr::Const(v) => Ok(Some(v.type_of())),
            Expr::Var(n) => match self.lookup_var(n) {
                Some(t) => Ok(t.clone()),
                None => self.err(format!("unbound variable `{n}` (or unknown instance)")),
            },
            Expr::Un(op, a) => {
                let ta = self.expr(a)?;
                match (op, &ta) {
                    (bcl_core::UnOp::Not, Some(Type::Bool) | None) => Ok(Some(Type::Bool)),
                    (bcl_core::UnOp::Not, Some(t)) => {
                        self.err(format!("`!` needs Bool, found {t}"))
                    }
                    (_, Some(t)) if !t.is_scalar() => {
                        self.err(format!("unary op on non-scalar {t}"))
                    }
                    _ => Ok(ta),
                }
            }
            Expr::Bin(op, a, b) => {
                let ta = self.expr(a)?;
                let tb = self.expr(b)?;
                if op.is_comparison() {
                    self.unify(&ta, &tb)?;
                    return Ok(Some(Type::Bool));
                }
                if matches!(op, BinOp::And | BinOp::Or | BinOp::Xor) {
                    // Boolean or bitwise — both sides must agree.
                    return self.unify(&ta, &tb);
                }
                for t in [&ta, &tb].into_iter().flatten() {
                    if !t.is_scalar() {
                        return self.err(format!("arithmetic on non-scalar {t}"));
                    }
                    if *t == Type::Bool {
                        return self.err("arithmetic on Bool".to_string());
                    }
                }
                self.unify(&ta, &tb)
            }
            Expr::Cond(c, t, f) => {
                self.require_bool(c, "conditional predicate")?;
                let tt = self.expr(t)?;
                let tf = self.expr(f)?;
                self.unify(&tt, &tf)
            }
            Expr::When(v, g) => {
                self.require_bool(g, "guard")?;
                self.expr(v)
            }
            Expr::Let(n, v, b) => {
                let tv = self.expr(v)?;
                self.vars.push((n.clone(), tv));
                let r = self.expr(b);
                self.vars.pop();
                r
            }
            Expr::Call(Target::Named(path, meth), args) => {
                self.call_ty(path.as_str(), meth, args, false)
            }
            Expr::Call(Target::Prim(..), _) => Ok(None),
            Expr::Index(v, i) => {
                let tv = self.expr(v)?;
                let ti = self.expr(i)?;
                if let Some(t) = &ti {
                    if !t.is_scalar() {
                        return self.err(format!("index must be scalar, found {t}"));
                    }
                }
                match tv {
                    Some(Type::Vector(_, elem)) => Ok(Some(*elem)),
                    Some(other) => self.err(format!("indexing non-vector {other}")),
                    None => Ok(None),
                }
            }
            Expr::Field(v, f) => {
                let tv = self.expr(v)?;
                match tv {
                    Some(t @ Type::Struct(_)) => match t.field(f) {
                        Some((_, ft)) => Ok(Some(ft.clone())),
                        None => self.err(format!("no field `{f}` in {t}")),
                    },
                    Some(other) => self.err(format!("field access on non-struct {other}")),
                    None => Ok(None),
                }
            }
            Expr::MkVec(es) => {
                let mut elem: MaybeTy = None;
                for e in es {
                    let te = self.expr(e)?;
                    elem = self.unify(&elem, &te)?;
                }
                match elem {
                    Some(t) => Ok(Some(Type::vector(es.len(), t))),
                    None => Ok(None),
                }
            }
            Expr::MkStruct(fs) => {
                let mut fields = Vec::new();
                let mut complete = true;
                for (n, e) in fs {
                    match self.expr(e)? {
                        Some(t) => fields.push((n.clone(), t)),
                        None => complete = false,
                    }
                }
                Ok(if complete {
                    Some(Type::Struct(fields))
                } else {
                    None
                })
            }
            Expr::UpdateIndex(v, i, x) => {
                let tv = self.expr(v)?;
                self.expr(i)?;
                let tx = self.expr(x)?;
                if let Some(Type::Vector(_, elem)) = &tv {
                    self.unify(&Some((**elem).clone()), &tx)?;
                }
                Ok(tv)
            }
            Expr::UpdateField(v, f, x) => {
                let tv = self.expr(v)?;
                let tx = self.expr(x)?;
                if let Some(t @ Type::Struct(_)) = &tv {
                    match t.field(f) {
                        Some((_, ft)) => {
                            self.unify(&Some(ft.clone()), &tx)?;
                        }
                        None => return self.err(format!("no field `{f}` in {t}")),
                    }
                }
                Ok(tv)
            }
        }
    }

    /// Types a method call; `action` selects action vs value position.
    fn call_ty(&mut self, path: &str, meth: &str, args: &[Expr], action: bool) -> TResult<MaybeTy> {
        let arg_tys: Vec<MaybeTy> = args
            .iter()
            .map(|a| self.expr(a))
            .collect::<TResult<Vec<_>>>()?;
        if let Some((spec, _)) = self.resolve_prim(path) {
            let elem = spec.value_type();
            return match (meth, action) {
                ("_read", false) => Ok(Some(elem)),
                ("_write", true) => {
                    self.expect_args(path, meth, &arg_tys, &[Some(elem)])?;
                    Ok(None)
                }
                ("enq", true) => {
                    self.expect_args(path, meth, &arg_tys, &[Some(elem)])?;
                    Ok(None)
                }
                ("deq", true) | ("clear", true) => {
                    self.expect_args(path, meth, &arg_tys, &[])?;
                    Ok(None)
                }
                ("first", false) => {
                    self.expect_args(path, meth, &arg_tys, &[])?;
                    Ok(Some(elem))
                }
                ("notEmpty", false) | ("notFull", false) => Ok(Some(Type::Bool)),
                ("sub", false) => {
                    if arg_tys.len() != 1 {
                        return self.err(format!("`{path}.sub` takes one index"));
                    }
                    Ok(Some(elem))
                }
                ("upd", true) => {
                    if arg_tys.len() != 2 {
                        return self.err(format!("`{path}.upd` takes index and value"));
                    }
                    self.unify(&arg_tys[1], &Some(elem))?;
                    Ok(None)
                }
                _ => self.err(format!(
                    "method `{meth}` not available on primitive `{path}` in this position"
                )),
            };
        }
        if let Some(sub) = self.resolve_sub(path) {
            if action {
                match sub.act_methods.iter().find(|m| m.name == meth) {
                    Some(m) if m.args.len() == args.len() => Ok(None),
                    Some(m) => self.err(format!(
                        "`{path}.{meth}` expects {} args, got {}",
                        m.args.len(),
                        args.len()
                    )),
                    None => self.err(format!("module `{path}` has no action method `{meth}`")),
                }
            } else {
                match sub.val_methods.iter().find(|m| m.name == meth) {
                    Some(m) if m.args.len() == args.len() => Ok(None),
                    Some(m) => self.err(format!(
                        "`{path}.{meth}` expects {} args, got {}",
                        m.args.len(),
                        args.len()
                    )),
                    None => self.err(format!("module `{path}` has no value method `{meth}`")),
                }
            }
        } else {
            self.err(format!("unknown instance `{path}`"))
        }
    }

    fn expect_args(
        &self,
        path: &str,
        meth: &str,
        got: &[MaybeTy],
        want: &[MaybeTy],
    ) -> TResult<()> {
        if got.len() != want.len() {
            return self.err(format!(
                "`{path}.{meth}` expects {} args, got {}",
                want.len(),
                got.len()
            ));
        }
        for (g, w) in got.iter().zip(want) {
            self.unify(g, w).map_err(|e| TypeError {
                context: e.context,
                msg: format!("in argument of `{path}.{meth}`: {}", e.msg),
            })?;
        }
        Ok(())
    }

    fn action(&mut self, a: &Action) -> TResult<()> {
        match a {
            Action::NoAction => Ok(()),
            Action::Write(Target::Named(path, _), e) => {
                let te = self.expr(e)?;
                match self.resolve_prim(path.as_str()) {
                    Some((PrimSpec::Reg { init }, _)) => {
                        self.unify(&te, &Some(init.type_of()))?;
                        Ok(())
                    }
                    Some(_) => self.err(format!("`:=` target `{path}` is not a register")),
                    None => self.err(format!("unknown register `{path}`")),
                }
            }
            Action::Write(Target::Prim(..), e) => {
                self.expr(e)?;
                Ok(())
            }
            Action::If(c, t, f) => {
                self.require_bool(c, "if condition")?;
                self.action(t)?;
                self.action(f)
            }
            Action::Par(x, y) | Action::Seq(x, y) => {
                self.action(x)?;
                self.action(y)
            }
            Action::When(g, x) => {
                self.require_bool(g, "when guard")?;
                self.action(x)
            }
            Action::Let(n, e, x) => {
                let te = self.expr(e)?;
                self.vars.push((n.clone(), te));
                let r = self.action(x);
                self.vars.pop();
                r
            }
            Action::Loop(c, x) => {
                self.require_bool(c, "loop condition")?;
                self.action(x)
            }
            Action::LocalGuard(x) => self.action(x),
            Action::Call(Target::Named(path, meth), args) => {
                self.call_ty(path.as_str(), meth, args, true)?;
                Ok(())
            }
            Action::Call(Target::Prim(..), args) => {
                for a in args {
                    self.expr(a)?;
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn check(src: &str) -> TResult<()> {
        typecheck(&parse(src).expect("parses"))
    }

    #[test]
    fn well_typed_program_passes() {
        check(
            r#"
            module Ok {
              reg a = 0;
              fifo q[2] : Int#(32);
              rule go:
                when (a < 5) { q.enq(a * 2) | a := a + 1 }
              rule take:
                let x = q.first() in { a := x | q.deq() }
            }
        "#,
        )
        .unwrap();
    }

    #[test]
    fn enq_type_mismatch_detected() {
        let e = check(
            r#"
            module Bad {
              fifo q[2] : Bool;
              rule go: q.enq(5)
            }
        "#,
        )
        .unwrap_err();
        assert!(e.msg.contains("mismatch"), "{e}");
        assert_eq!(e.context, "Bad.go");
    }

    #[test]
    fn guard_must_be_bool() {
        let e = check(
            r#"
            module Bad {
              reg a = 0;
              rule go: when (a + 1) a := 0
            }
        "#,
        )
        .unwrap_err();
        assert!(e.msg.contains("Bool"), "{e}");
    }

    #[test]
    fn register_write_type_checked() {
        let e = check(
            r#"
            module Bad {
              reg a = true;
              rule go: a := 3
            }
        "#,
        )
        .unwrap_err();
        assert!(e.msg.contains("mismatch"), "{e}");
    }

    #[test]
    fn width_mismatch_detected() {
        let e = check(
            r#"
            module Bad {
              reg a = 0i8;
              reg b = 0;
              rule go: a := b
            }
        "#,
        )
        .unwrap_err();
        assert!(e.msg.contains("Int#(8)"), "{e}");
    }

    #[test]
    fn field_and_index_checked() {
        check(
            r#"
            module Ok {
              fifo q[1] : struct { re: Int#(32), im: Int#(32) };
              reg a = 0;
              rule go: let x = q.first() in { a := x.re | q.deq() }
            }
        "#,
        )
        .unwrap();
        let e = check(
            r#"
            module Bad {
              fifo q[1] : struct { re: Int#(32) };
              reg a = 0;
              rule go: let x = q.first() in a := x.zz
            }
        "#,
        )
        .unwrap_err();
        assert!(e.msg.contains("zz"), "{e}");
    }

    #[test]
    fn submodule_method_arity_checked() {
        let e = check(
            r#"
            module Sub {
              reg t = 0;
              method action put(x): t := x
            }
            module Top {
              inst s = Sub();
              rule go: s.put(1, 2)
            }
        "#,
        )
        .unwrap_err();
        assert!(e.msg.contains("expects 1 args"), "{e}");
    }

    #[test]
    fn unknown_method_detected() {
        let e = check(
            r#"
            module Bad {
              fifo q[1] : Bool;
              rule go: q.push(true)
            }
        "#,
        )
        .unwrap_err();
        assert!(e.msg.contains("push"), "{e}");
    }

    #[test]
    fn method_formals_are_unknown_and_permissive() {
        check(
            r#"
            module Ok {
              reg a = 0;
              method action add(x): a := a + x
              method value get() = a;
            }
        "#,
        )
        .unwrap();
    }

    #[test]
    fn arithmetic_on_bool_rejected() {
        let e = check(
            r#"
            module Bad {
              reg a = true;
              reg b = 0;
              rule go: b := a + 1
            }
        "#,
        )
        .unwrap_err();
        assert!(e.msg.contains("Bool") || e.msg.contains("mismatch"), "{e}");
    }
}
