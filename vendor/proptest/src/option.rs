//! Option strategies (`proptest::option::of`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Generates `Some` from the inner strategy three times out of four,
/// `None` otherwise.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

/// Strategy returned by [`of`].
#[derive(Debug, Clone)]
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.ratio(3, 4) {
            Some(self.inner.generate(rng))
        } else {
            None
        }
    }
}
