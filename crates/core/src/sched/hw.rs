//! The synchronous hardware scheduler and cycle-accurate simulator (§6.4).
//!
//! This module stands in for the BSV compiler + Verilog + FPGA of the
//! paper. Per clock cycle it (1) evaluates every rule's lifted guard
//! against the cycle-start state, (2) greedily selects a maximal set of
//! rules that are pairwise conflict-free per the static conflict matrix
//! (the Esposito/Hoe scheduling scheme the paper cites [17, 41, 42]), and
//! (3) fires them all. Shadows are "wires": because each rule executes in
//! a single cycle, guard evaluation against cycle-start state followed by
//! a multiplexed register update is exactly what the transaction commit
//! does, at zero modeled cost.

use crate::analysis::{ConflictInfo, Sensitivity};
use crate::ast::{Action, PrimId};
use crate::codec::{self, ByteReader, ByteWriter, CodecResult};
use crate::compile::{self, eval_guard_native, run_rule_native, NativeFrame, NativeRule};
use crate::design::Design;
use crate::error::{ElabError, ExecResult};
use crate::exec::{
    eval_guard_compiled, eval_guard_ro, run_rule, run_rule_compiled, RuleOutcome, Vm,
};
use crate::store::{Cost, ShadowPolicy, Store, StoreSnapshot};
use crate::xform::{compile_design, CompileOpts, RulePlan};

/// Checks that a design is implementable in hardware: no sequential
/// composition and no dynamic loops inside rules (§6.4: "loops with
/// dynamic bounds can't be executed in a single cycle").
///
/// # Errors
///
/// Names the first offending rule.
pub fn hw_check(design: &Design) -> Result<(), ElabError> {
    for r in &design.rules {
        if r.body.has_seq_or_loop() {
            return Err(ElabError::new(format!(
                "rule `{}` uses sequential composition or a loop; not implementable in hardware",
                r.name
            )));
        }
        if contains_local_guard(&r.body) {
            return Err(ElabError::new(format!(
                "rule `{}` uses localGuard; not supported in hardware",
                r.name
            )));
        }
    }
    Ok(())
}

fn contains_local_guard(a: &Action) -> bool {
    match a {
        Action::LocalGuard(_) => true,
        Action::NoAction | Action::Write(..) | Action::Call(..) => false,
        Action::If(_, x, y) | Action::Par(x, y) | Action::Seq(x, y) => {
            contains_local_guard(x) || contains_local_guard(y)
        }
        Action::When(_, x) | Action::Let(_, _, x) | Action::Loop(_, x) => contains_local_guard(x),
    }
}

/// Per-simulation statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HwReport {
    /// Clock cycles simulated.
    pub cycles: u64,
    /// Total rule firings.
    pub total_fired: u64,
    /// Firings per rule.
    pub fired: Vec<u64>,
    /// Maximum number of rules fired in any one cycle (concurrency).
    pub peak_concurrency: usize,
    /// Guards actually evaluated (cache misses under event-driven
    /// scheduling; every guard, every cycle otherwise).
    pub guard_evals: u64,
    /// Guard evaluations skipped because the cached verdict was valid.
    pub guard_evals_skipped: u64,
}

impl HwReport {
    /// Accumulates another partition's statistics into this one (cycles
    /// and peak concurrency take the maximum, counters sum).
    pub fn merge(&mut self, other: &HwReport) {
        self.cycles = self.cycles.max(other.cycles);
        self.total_fired += other.total_fired;
        self.peak_concurrency = self.peak_concurrency.max(other.peak_concurrency);
        self.guard_evals += other.guard_evals;
        self.guard_evals_skipped += other.guard_evals_skipped;
        self.fired.extend_from_slice(&other.fired);
    }
}

/// The mutable state of a [`HwSim`]: the committed store, the cycle
/// counter, and the firing statistics. The per-cycle `CAN_FIRE` scratch
/// is recomputed every step and needs no snapshot. Restoring makes the
/// simulator bit- and cycle-identical to the capture instant.
#[derive(Debug, Clone)]
pub struct HwSnapshot {
    store: StoreSnapshot,
    cycles: u64,
    fired: Vec<u64>,
    total_fired: u64,
    peak: usize,
}

impl HwSnapshot {
    /// The captured store, for shape validation against a design.
    pub fn store(&self) -> &StoreSnapshot {
        &self.store
    }

    /// Number of rules the capturing simulator had.
    pub fn rule_count(&self) -> usize {
        self.fired.len()
    }

    /// Appends this snapshot's stable binary encoding.
    pub fn encode(&self, w: &mut ByteWriter) {
        self.store.encode(w);
        w.u64(self.cycles);
        codec::encode_u64s(w, &self.fired);
        w.u64(self.total_fired);
        w.usize(self.peak);
    }

    /// Decodes a snapshot previously written by [`HwSnapshot::encode`].
    pub fn decode(r: &mut ByteReader<'_>) -> CodecResult<HwSnapshot> {
        Ok(HwSnapshot {
            store: StoreSnapshot::decode(r)?,
            cycles: r.u64()?,
            fired: codec::decode_u64s(r)?,
            total_fired: r.u64()?,
            peak: r.usize()?,
        })
    }
}

/// Cycle-accurate simulator of one (hardware) partition.
#[derive(Debug)]
pub struct HwSim {
    plans: Vec<RulePlan>,
    conflicts: ConflictInfo,
    sens: Sensitivity,
    /// The committed design state.
    pub store: Store,
    /// Clock cycles elapsed.
    pub cycles: u64,
    /// Event-driven scheduling: cache guard verdicts and re-evaluate only
    /// rules whose read set intersects the prims written since the last
    /// evaluation. `false` falls back to the naive evaluate-everything
    /// reference mode (identical observable behavior, used as a test
    /// oracle and benchmark baseline).
    pub event_driven: bool,
    /// Execute guards and bodies through the closure-threaded native
    /// backend ([`crate::compile`]) instead of the stack-machine [`Vm`].
    /// Observable behavior (firings, cycles, state) is bit-identical;
    /// only wall-clock time changes. Set after construction, like
    /// `event_driven`.
    pub compiled: bool,
    fired: Vec<u64>,
    total_fired: u64,
    peak: usize,
    scratch_ready: Vec<bool>,
    verdicts: Vec<Option<bool>>,
    dirty_scratch: Vec<PrimId>,
    vm: Vm,
    guard_evals: u64,
    guard_evals_skipped: u64,
    natives: Vec<NativeRule>,
    frame: NativeFrame,
}

impl HwSim {
    /// Builds a simulator for a design with a fresh store.
    ///
    /// # Errors
    ///
    /// Fails [`hw_check`] for software-only constructs.
    pub fn new(design: &Design) -> Result<HwSim, ElabError> {
        HwSim::with_store(design, Store::new(design))
    }

    /// Builds a simulator over an existing store.
    ///
    /// # Errors
    ///
    /// Fails [`hw_check`] for software-only constructs.
    pub fn with_store(design: &Design, store: Store) -> Result<HwSim, ElabError> {
        hw_check(design)?;
        // Always lift in hardware: guards become the rule's CAN_FIRE
        // signal. Never sequentialize: parallel composition is free.
        let plans = compile_design(
            design,
            CompileOpts {
                lift: true,
                sequentialize: false,
            },
        );
        let n = plans.len();
        let sens = Sensitivity::of_plans(&plans, store.len());
        // Lowering is a cheap one-time pass; build the native rules
        // unconditionally so `compiled` can be flipped after construction.
        let natives = compile::compile_plans(&plans, design);
        Ok(HwSim {
            plans,
            conflicts: ConflictInfo::of_design(design),
            sens,
            store,
            cycles: 0,
            event_driven: true,
            compiled: false,
            fired: vec![0; n],
            total_fired: 0,
            peak: 0,
            scratch_ready: vec![false; n],
            verdicts: vec![None; n],
            dirty_scratch: Vec::new(),
            vm: Vm::default(),
            guard_evals: 0,
            guard_evals_skipped: 0,
            natives,
            frame: NativeFrame::new(),
        })
    }

    /// The number of rules.
    pub fn rule_count(&self) -> usize {
        self.plans.len()
    }

    /// Simulates one clock cycle; returns the number of rules fired.
    ///
    /// # Errors
    ///
    /// Propagates dynamic errors (double write, unsound designs).
    pub fn step(&mut self) -> ExecResult<usize> {
        let n = self.plans.len();
        let mut ignored = Cost::default();
        if self.event_driven {
            // Invalidate cached verdicts of rules that read a prim written
            // since their last evaluation.
            self.store.drain_sched_dirty(&mut self.dirty_scratch);
            for id in self.dirty_scratch.drain(..) {
                for &r in &self.sens.readers_of[id.0] {
                    self.verdicts[r] = None;
                }
            }
            // CAN_FIRE: cached verdict where still valid, fresh (compiled)
            // evaluation otherwise.
            for i in 0..n {
                self.scratch_ready[i] = match &self.plans[i].guard {
                    None => true,
                    Some(g) => {
                        if let Some(v) = self.verdicts[i] {
                            self.guard_evals_skipped += 1;
                            v
                        } else {
                            let v = if self.compiled {
                                match &self.natives[i].guard {
                                    Some(cg) => eval_guard_native(
                                        &mut self.frame,
                                        &self.store,
                                        cg,
                                        &mut ignored,
                                    )?,
                                    None => eval_guard_ro(&mut self.store, g, &mut ignored)?,
                                }
                            } else {
                                match &self.plans[i].guard_prog {
                                    Some(p) => eval_guard_compiled(
                                        &mut self.vm,
                                        &self.store,
                                        p,
                                        &mut ignored,
                                    )?,
                                    None => eval_guard_ro(&mut self.store, g, &mut ignored)?,
                                }
                            };
                            self.guard_evals += 1;
                            self.verdicts[i] = Some(v);
                            v
                        }
                    }
                };
            }
        } else {
            // Naive reference mode: evaluate every guard against
            // cycle-start state, every cycle.
            for i in 0..n {
                self.scratch_ready[i] = match &self.plans[i].guard {
                    Some(g) => {
                        self.guard_evals += 1;
                        if self.compiled {
                            match &self.natives[i].guard {
                                Some(cg) => eval_guard_native(
                                    &mut self.frame,
                                    &self.store,
                                    cg,
                                    &mut ignored,
                                )?,
                                None => eval_guard_ro(&mut self.store, g, &mut ignored)?,
                            }
                        } else {
                            eval_guard_ro(&mut self.store, g, &mut ignored)?
                        }
                    }
                    None => true,
                };
            }
        }
        // WILL_FIRE: greedy maximal conflict-free subset in urgency
        // (definition) order.
        let mut selected: Vec<usize> = Vec::new();
        for i in 0..n {
            if self.scratch_ready[i] && selected.iter().all(|&j| !self.conflicts.conflicts(i, j)) {
                selected.push(i);
            }
        }
        // Fire. The selected set is pairwise conflict-free, so sequential
        // application equals concurrent application; each rule's shadow is
        // wires (zero software cost — we discard the counters).
        let mut fired_now = 0;
        for &i in &selected {
            let plan = &self.plans[i];
            let (out, _c) = if self.compiled {
                match &self.natives[i].body {
                    Some(cb) => run_rule_native(
                        &mut self.frame,
                        &mut self.store,
                        cb,
                        ShadowPolicy::Partial,
                    )?,
                    None => run_rule(&mut self.store, &plan.body, ShadowPolicy::Partial)?,
                }
            } else {
                match (&plan.body_prog, self.event_driven) {
                    (Some(p), true) => {
                        run_rule_compiled(&mut self.vm, &mut self.store, p, ShadowPolicy::Partial)?
                    }
                    _ => run_rule(&mut self.store, &plan.body, ShadowPolicy::Partial)?,
                }
            };
            if out == RuleOutcome::Fired {
                self.fired[i] += 1;
                self.total_fired += 1;
                fired_now += 1;
            }
            // A residual-guard failure (rare: rules the lifter could not
            // fully analyze) simply means the rule does not fire this
            // cycle — same as CAN_FIRE low.
        }
        self.cycles += 1;
        self.peak = self.peak.max(fired_now);
        Ok(fired_now)
    }

    /// Runs until a cycle fires nothing, or `max_cycles` elapse. Returns
    /// the number of cycles simulated by this call.
    ///
    /// # Errors
    ///
    /// Propagates dynamic errors.
    pub fn run_until_quiescent(&mut self, max_cycles: u64) -> ExecResult<u64> {
        let start = self.cycles;
        while self.cycles - start < max_cycles {
            if self.step()? == 0 {
                break;
            }
        }
        Ok(self.cycles - start)
    }

    /// Captures the simulator's complete mutable state for a later
    /// [`HwSim::restore`]. Takes `&mut self` because the snapshot is
    /// incremental: only prims written since the previous snapshot are
    /// copied; clean ones share the previous snapshot's `Arc`s.
    pub fn snapshot(&mut self) -> HwSnapshot {
        HwSnapshot {
            store: self.store.snapshot_cow(),
            cycles: self.cycles,
            fired: self.fired.clone(),
            total_fired: self.total_fired,
            peak: self.peak,
        }
    }

    /// Rewinds the simulator to a previously captured snapshot.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot came from a simulator of a different design.
    pub fn restore(&mut self, snap: &HwSnapshot) {
        assert_eq!(
            self.fired.len(),
            snap.fired.len(),
            "snapshot from a different design"
        );
        self.store.restore_cow(&snap.store);
        self.cycles = snap.cycles;
        self.fired.clone_from(&snap.fired);
        self.total_fired = snap.total_fired;
        self.peak = snap.peak;
        // restore_cow marks the whole store sched-dirty, so every cached
        // verdict is invalidated on the next step; clearing here just keeps
        // the cache honest if introspected before then.
        self.verdicts.fill(None);
    }

    /// Wipes the committed state back to power-on values, as a partition
    /// reset does. The cycle counter and cumulative statistics are kept:
    /// they model the observer's clock, not the partition's state.
    pub fn reset_state(&mut self, design: &Design) {
        self.store = Store::new_like(design, self.store.is_flat());
        self.verdicts.fill(None);
    }

    /// A snapshot of simulation statistics.
    pub fn report(&self) -> HwReport {
        HwReport {
            cycles: self.cycles,
            total_fired: self.total_fired,
            fired: self.fired.clone(),
            peak_concurrency: self.peak,
            guard_evals: self.guard_evals,
            guard_evals_skipped: self.guard_evals_skipped,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Expr, Path, PrimId, PrimMethod, RuleDef, Target};
    use crate::design::PrimDef;
    use crate::prim::PrimSpec;
    use crate::types::Type;
    use crate::value::{BinOp, Value};

    /// A 3-stage elastic pipeline: src -> q0 -> q1 -> sink, each stage a
    /// rule. In hardware all three stages must fire in the same cycle once
    /// the pipeline is full.
    fn pipeline3() -> Design {
        let src = PrimId(0);
        let q0 = PrimId(1);
        let q1 = PrimId(2);
        let snk = PrimId(3);
        let stage = |from: PrimId, to: PrimId, scale: i64| {
            Action::Par(
                Box::new(Action::Call(
                    Target::Prim(to, PrimMethod::Enq),
                    vec![Expr::Bin(
                        BinOp::Mul,
                        Box::new(Expr::Call(Target::Prim(from, PrimMethod::First), vec![])),
                        Box::new(Expr::int(32, scale)),
                    )],
                )),
                Box::new(Action::Call(Target::Prim(from, PrimMethod::Deq), vec![])),
            )
        };
        Design {
            name: "pipe3".into(),
            prims: vec![
                PrimDef {
                    path: Path::new("src"),
                    spec: PrimSpec::Source {
                        ty: Type::Int(32),
                        domain: "HW".into(),
                    },
                },
                PrimDef {
                    path: Path::new("q0"),
                    spec: PrimSpec::Fifo {
                        depth: 2,
                        ty: Type::Int(32),
                    },
                },
                PrimDef {
                    path: Path::new("q1"),
                    spec: PrimSpec::Fifo {
                        depth: 2,
                        ty: Type::Int(32),
                    },
                },
                PrimDef {
                    path: Path::new("snk"),
                    spec: PrimSpec::Sink {
                        ty: Type::Int(32),
                        domain: "HW".into(),
                    },
                },
            ],
            rules: vec![
                RuleDef {
                    name: "s0".into(),
                    body: stage(src, q0, 2),
                },
                RuleDef {
                    name: "s1".into(),
                    body: stage(q0, q1, 3),
                },
                RuleDef {
                    name: "s2".into(),
                    body: stage(q1, snk, 1),
                },
            ],
            ..Default::default()
        }
    }

    #[test]
    fn pipeline_achieves_full_concurrency() {
        let d = pipeline3();
        let mut store = Store::new(&d);
        let n = 20;
        for i in 0..n {
            store.push_source(PrimId(0), Value::int(32, i));
        }
        let mut sim = HwSim::with_store(&d, store).unwrap();
        sim.run_until_quiescent(1000).unwrap();
        let rep = sim.report();
        assert_eq!(rep.peak_concurrency, 3, "all three stages in one cycle");
        // Throughput ~1 item/cycle: n items need about n + pipeline depth.
        assert!(rep.cycles <= (n as u64) + 5, "cycles = {}", rep.cycles);
        let out: Vec<i64> = sim
            .store
            .sink_values(PrimId(3))
            .iter()
            .map(|v| v.as_int().unwrap())
            .collect();
        assert_eq!(out.len(), n as usize);
        assert_eq!(out[0], 0);
        assert_eq!(out[5], 30, "5 * 2 * 3");
    }

    #[test]
    fn compiled_backend_is_cycle_identical() {
        for event_driven in [false, true] {
            let mut runs = Vec::new();
            for compiled in [false, true] {
                let d = pipeline3();
                let mut store = Store::new(&d);
                for i in 0..20 {
                    store.push_source(PrimId(0), Value::int(32, i));
                }
                let mut sim = HwSim::with_store(&d, store).unwrap();
                sim.event_driven = event_driven;
                sim.compiled = compiled;
                sim.run_until_quiescent(1000).unwrap();
                runs.push((sim.store.sink_values(PrimId(3)).to_vec(), sim.report()));
            }
            assert_eq!(runs[0], runs[1], "event_driven={event_driven}");
        }
    }

    #[test]
    fn quiescent_when_empty() {
        let d = pipeline3();
        let mut sim = HwSim::new(&d).unwrap();
        assert_eq!(sim.step().unwrap(), 0);
        let ran = sim.run_until_quiescent(100).unwrap();
        assert_eq!(ran, 1, "one empty probe cycle then stop");
    }

    #[test]
    fn conflicting_rules_serialize_across_cycles() {
        // Two rules both enq the same FIFO: only one per cycle may fire.
        let q = PrimId(0);
        let d = Design {
            name: "conflict".into(),
            prims: vec![PrimDef {
                path: Path::new("q"),
                spec: PrimSpec::Fifo {
                    depth: 8,
                    ty: Type::Int(32),
                },
            }],
            rules: vec![
                RuleDef {
                    name: "a".into(),
                    body: Action::Call(Target::Prim(q, PrimMethod::Enq), vec![Expr::int(32, 1)]),
                },
                RuleDef {
                    name: "b".into(),
                    body: Action::Call(Target::Prim(q, PrimMethod::Enq), vec![Expr::int(32, 2)]),
                },
            ],
            ..Default::default()
        };
        let mut sim = HwSim::new(&d).unwrap();
        assert_eq!(sim.step().unwrap(), 1, "only one enq per cycle");
        assert_eq!(sim.step().unwrap(), 1);
        let rep = sim.report();
        assert_eq!(rep.peak_concurrency, 1);
        // Urgency order: rule `a` always wins while ready.
        assert!(rep.fired[0] >= rep.fired[1]);
    }

    #[test]
    fn seq_rules_rejected() {
        let q = PrimId(0);
        let d = Design {
            name: "bad".into(),
            prims: vec![PrimDef {
                path: Path::new("q"),
                spec: PrimSpec::Fifo {
                    depth: 1,
                    ty: Type::Int(8),
                },
            }],
            rules: vec![RuleDef {
                name: "seq".into(),
                body: Action::Seq(
                    Box::new(Action::Call(
                        Target::Prim(q, PrimMethod::Enq),
                        vec![Expr::int(8, 1)],
                    )),
                    Box::new(Action::Call(Target::Prim(q, PrimMethod::Deq), vec![])),
                ),
            }],
            ..Default::default()
        };
        assert!(HwSim::new(&d).is_err());
    }

    #[test]
    fn hw_and_sw_agree_on_pipeline_output() {
        use crate::sched::{Strategy, SwOptions, SwRunner};
        let d = pipeline3();
        let mut hw_store = Store::new(&d);
        let mut sw_store = Store::new(&d);
        for i in 0..10 {
            hw_store.push_source(PrimId(0), Value::int(32, i));
            sw_store.push_source(PrimId(0), Value::int(32, i));
        }
        let mut hw = HwSim::with_store(&d, hw_store).unwrap();
        hw.run_until_quiescent(1000).unwrap();
        let mut sw = SwRunner::with_store(
            &d,
            sw_store,
            SwOptions {
                strategy: Strategy::Dataflow,
                ..Default::default()
            },
        );
        sw.run_until_quiescent(10_000).unwrap();
        assert_eq!(
            hw.store.sink_values(PrimId(3)),
            sw.store.sink_values(PrimId(3)),
            "one-rule-at-a-time semantics: HW and SW must agree"
        );
    }
}
