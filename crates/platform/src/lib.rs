//! # bcl-platform — the HW/SW communication substrate and co-simulation
//!
//! This crate is the "supported platform" layer of the paper (§4.4, §7):
//! the low-level machinery the BCL compiler generates *around* the
//! partitions so that they compose into a working system.
//!
//! * [`link`] models the physical channel of the ML507 platform
//!   (LocalLink + HDMA: ~100-cycle round trip, 400 MB/s, 4:1 CPU:FPGA
//!   clock ratio).
//! * [`transactor`] implements the generated interface logic of Figure 6:
//!   marshaling/demarshaling to 32-bit words, round-robin arbitration of
//!   the shared link among virtual channels, and credit-based flow control
//!   that rules out deadlock and head-of-line blocking.
//! * [`cosim`] couples a software partition (cost-modeled interpreter) and
//!   a hardware partition (cycle-accurate rule simulator) on a common
//!   FPGA-cycle timeline — the moral equivalent of running the generated
//!   system on the board. It can checkpoint the whole system on a
//!   consistent cut, restore it bit- and cycle-identically, and recover
//!   from scripted hardware-partition faults by restarting from the last
//!   checkpoint or failing over to an all-software fused design
//!   ([`cosim::RecoveryPolicy`]) — and later revive a failed-over
//!   partition back into hardware ([`link::PartitionFault::ReviveAt`] /
//!   [`cosim::Cosim::revive`]), completing the
//!   Running → Dead → SoftwareOwned → Reviving → Running lifecycle
//!   ([`cosim::PartitionLifecycle`]).
//! * [`persist`] makes checkpoints durable: a versioned, CRC-protected
//!   on-disk snapshot format (`BCKP`), crash-consistent autosave
//!   ([`persist::CheckpointPolicy`]), and cross-process live migration
//!   ([`cosim::Cosim::resume_from_file`]) — a run killed at any instant
//!   resumes bit- and cycle-identically in a fresh process.
//!
//! ```
//! use bcl_core::builder::{dsl::*, ModuleBuilder};
//! use bcl_core::domain::{HW, SW};
//! use bcl_core::program::Program;
//! use bcl_core::types::Type;
//! use bcl_core::value::Value;
//! use bcl_platform::cosim::Cosim;
//! use bcl_platform::link::LinkConfig;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut m = ModuleBuilder::new("Echo");
//! m.source("src", Type::Int(32), SW);
//! m.sink("snk", Type::Int(32), SW);
//! m.sync("toHw", 2, Type::Int(32), SW, HW);
//! m.sync("toSw", 2, Type::Int(32), HW, SW);
//! m.rule("feed", with_first("x", "src", enq("toHw", var("x"))));
//! m.rule("echo", with_first("x", "toHw", enq("toSw", var("x"))));
//! m.rule("drain", with_first("x", "toSw", enq("snk", var("x"))));
//! let design = bcl_core::elaborate(&Program::with_root(m.build()))?;
//! let parts = bcl_core::partition::partition(&design, SW)?;
//! let mut cosim = Cosim::new(&parts, SW, HW, LinkConfig::default(), Default::default())?;
//! cosim.push_source("src", Value::int(32, 7));
//! let outcome = cosim.run_until(|c| c.sink_count("snk") == 1, 10_000)?;
//! assert!(outcome.is_done());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod cosim;
pub mod link;
pub mod persist;
pub mod transactor;
pub mod wire;

pub use cosim::{Checkpoint, Cosim, CosimOutcome, PartitionLifecycle, RecoveryPolicy};
pub use link::{
    Dir, FaultConfig, FaultKind, Link, LinkConfig, LinkSnapshot, LinkStats, Message,
    PartitionFault, ScriptedFault,
};
pub use persist::{CheckpointPolicy, PersistError, FORMAT_VERSION, MAGIC, MIN_FORMAT_VERSION};
pub use transactor::{ChannelDiag, ChannelReport, Transactor, TransactorSnapshot, TransportStats};

use std::fmt;

/// Errors raised while assembling a platform (bad partition topology,
/// missing channel endpoints, illegal hardware designs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlatformError {
    msg: String,
}

impl PlatformError {
    /// Creates an error with the given message.
    pub fn new(msg: impl Into<String>) -> Self {
        PlatformError { msg: msg.into() }
    }

    /// The human-readable message.
    pub fn message(&self) -> &str {
        &self.msg
    }
}

impl fmt::Display for PlatformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "platform error: {}", self.msg)
    }
}

impl std::error::Error for PlatformError {}
