//! Generated transactors: mapping synchronizers onto the physical link
//! (§4.4, Figure 6).
//!
//! Each synchronizer of the partitioned design becomes a *virtual channel*
//! (an LIBDN FIFO). The transactor marshals values into 32-bit words,
//! arbitrates the single physical link among all channels (round-robin at
//! message granularity), and enforces credit-based flow control: a message
//! is sent only when the receive-side FIFO is guaranteed to have space for
//! it on arrival. Credits are what rule out deadlock and head-of-line
//! blocking — a stalled consumer can never wedge the shared link for other
//! channels.

use crate::link::{Dir, Link, Message};
use bcl_core::ast::{PrimId, PrimMethod};
use bcl_core::error::{ExecError, ExecResult};
use bcl_core::partition::ChannelSpec;
use bcl_core::prim::PrimState;
use bcl_core::store::Store;
use bcl_core::types::Type;
use bcl_core::value::Value;

/// Runtime state of one virtual channel.
#[derive(Debug)]
struct ChannelRt {
    name: String,
    ty: Type,
    depth: usize,
    dir: Dir,
    /// Transmit FIFO in the producer partition's store.
    tx: PrimId,
    /// Receive FIFO in the consumer partition's store.
    rx: PrimId,
    /// Messages sent but not yet delivered into `rx`.
    in_flight: usize,
    sent: u64,
}

/// Per-channel traffic summary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelReport {
    /// Synchronizer path.
    pub name: String,
    /// Messages transferred.
    pub messages: u64,
    /// Words per message.
    pub words_per_msg: usize,
}

/// Moves values between a software-partition store and a
/// hardware-partition store across a [`Link`].
#[derive(Debug)]
pub struct Transactor {
    channels: Vec<ChannelRt>,
    rr: usize,
}

impl Transactor {
    /// Builds a transactor from channel specs, resolving the tx/rx FIFO
    /// paths in the two partition designs.
    ///
    /// # Errors
    ///
    /// Returns an error if a channel references a domain other than the
    /// two given, or a FIFO path missing from its partition.
    pub fn new(
        specs: &[ChannelSpec],
        sw_domain: &str,
        sw_design: &bcl_core::design::Design,
        hw_domain: &str,
        hw_design: &bcl_core::design::Design,
    ) -> Result<Transactor, ExecError> {
        let mut channels = Vec::with_capacity(specs.len());
        for c in specs {
            let (dir, tx_design, rx_design) = if c.from_domain == sw_domain && c.to_domain == hw_domain
            {
                (Dir::SwToHw, sw_design, hw_design)
            } else if c.from_domain == hw_domain && c.to_domain == sw_domain {
                (Dir::HwToSw, hw_design, sw_design)
            } else {
                return Err(ExecError::Malformed(format!(
                    "channel `{}` spans `{}`->`{}`, expected `{sw_domain}`/`{hw_domain}`",
                    c.name, c.from_domain, c.to_domain
                )));
            };
            let tx = tx_design.prim_id(&c.tx_path).ok_or_else(|| {
                ExecError::Malformed(format!("missing tx fifo `{}`", c.tx_path))
            })?;
            let rx = rx_design.prim_id(&c.rx_path).ok_or_else(|| {
                ExecError::Malformed(format!("missing rx fifo `{}`", c.rx_path))
            })?;
            channels.push(ChannelRt {
                name: c.name.clone(),
                ty: c.ty.clone(),
                depth: c.depth,
                dir,
                tx,
                rx,
                in_flight: 0,
                sent: 0,
            });
        }
        Ok(Transactor { channels, rr: 0 })
    }

    /// The number of virtual channels.
    pub fn channel_count(&self) -> usize {
        self.channels.len()
    }

    fn fifo_len(store: &Store, id: PrimId) -> usize {
        match store.state(id) {
            PrimState::Fifo { items, .. } => items.len(),
            _ => 0,
        }
    }

    /// One pump iteration, at FPGA-cycle `now`: deliver arrived messages
    /// into receive FIFOs, then arbitrate pending transmit FIFOs onto the
    /// link. Returns the CPU cycles of software driver work performed
    /// (marshaling on SW→HW sends, demarshaling on HW→SW deliveries).
    ///
    /// # Errors
    ///
    /// Propagates marshaling errors (which indicate a malformed design —
    /// credits make FIFO overflows impossible).
    pub fn pump(
        &mut self,
        sw_store: &mut Store,
        hw_store: &mut Store,
        link: &mut Link,
        now: u64,
    ) -> ExecResult<u64> {
        let mut sw_cycles = 0u64;

        // Phase 1: deliveries.
        for dir in [Dir::SwToHw, Dir::HwToSw] {
            for msg in link.deliveries(dir, now) {
                let ch = &mut self.channels[msg.channel];
                let v = Value::from_words(&ch.ty, &msg.words)?;
                let rx_store: &mut Store = match dir {
                    Dir::SwToHw => hw_store,
                    Dir::HwToSw => sw_store,
                };
                rx_store.state_mut(ch.rx).call_action(PrimMethod::Enq, &[v]).map_err(|e| {
                    ExecError::Malformed(format!(
                        "rx fifo `{}` overflow despite credits: {e}",
                        ch.name
                    ))
                })?;
                ch.in_flight -= 1;
                if dir == Dir::HwToSw {
                    sw_cycles += link.sw_transfer_cost(msg.words.len());
                }
            }
        }

        // Phase 2: arbitration — round-robin over channels, draining each
        // transmit FIFO as far as credits allow. Bandwidth is enforced by
        // the link's serialization model; credits bound in-flight data per
        // channel so one blocked consumer cannot monopolize buffering.
        let n = self.channels.len();
        for k in 0..n {
            let i = (self.rr + k) % n;
            let ch = &mut self.channels[i];
            loop {
                let (tx_store, rx_store): (&mut Store, &Store) = match ch.dir {
                    Dir::SwToHw => (sw_store, hw_store),
                    Dir::HwToSw => (hw_store, sw_store),
                };
                let credits_used = Self::fifo_len(rx_store, ch.rx) + ch.in_flight;
                if credits_used >= ch.depth {
                    break;
                }
                let v = match tx_store.state(ch.tx) {
                    PrimState::Fifo { items, .. } => match items.front() {
                        Some(v) => v.clone(),
                        None => break,
                    },
                    _ => break,
                };
                tx_store.state_mut(ch.tx).call_action(PrimMethod::Deq, &[])?;
                let words = v.to_words();
                if ch.dir == Dir::SwToHw {
                    sw_cycles += link.sw_transfer_cost(words.len());
                }
                link.send(ch.dir, Message { channel: i, words }, now);
                ch.in_flight += 1;
                ch.sent += 1;
            }
        }
        if n > 0 {
            self.rr = (self.rr + 1) % n;
        }
        Ok(sw_cycles)
    }

    /// True when nothing is buffered or in flight on any channel
    /// (transmit FIFOs may still be refilled by rules).
    pub fn idle(&self, sw_store: &Store, hw_store: &Store) -> bool {
        self.channels.iter().all(|ch| {
            let tx_store = match ch.dir {
                Dir::SwToHw => sw_store,
                Dir::HwToSw => hw_store,
            };
            ch.in_flight == 0 && Self::fifo_len(tx_store, ch.tx) == 0
        })
    }

    /// Per-channel summaries.
    pub fn report(&self) -> Vec<ChannelReport> {
        self.channels
            .iter()
            .map(|c| ChannelReport {
                name: c.name.clone(),
                messages: c.sent,
                words_per_msg: c.ty.words(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkConfig;
    use bcl_core::ast::Path;
    use bcl_core::design::{Design, PrimDef};
    use bcl_core::prim::PrimSpec;

    /// Two stores with one channel SW->HW: sw has `c.tx`, hw has `c.rx`.
    fn setup(depth: usize) -> (Design, Design, Vec<ChannelSpec>) {
        let sw = Design {
            name: "sw".into(),
            prims: vec![PrimDef {
                path: Path::new("c.tx"),
                spec: PrimSpec::Fifo { depth, ty: Type::Int(32) },
            }],
            ..Default::default()
        };
        let hw = Design {
            name: "hw".into(),
            prims: vec![PrimDef {
                path: Path::new("c.rx"),
                spec: PrimSpec::Fifo { depth, ty: Type::Int(32) },
            }],
            ..Default::default()
        };
        let specs = vec![ChannelSpec {
            name: "c".into(),
            ty: Type::Int(32),
            depth,
            from_domain: "SW".into(),
            to_domain: "HW".into(),
            tx_path: "c.tx".into(),
            rx_path: "c.rx".into(),
        }];
        (sw, hw, specs)
    }

    #[test]
    fn value_crosses_the_link() {
        let (swd, hwd, specs) = setup(2);
        let mut t = Transactor::new(&specs, "SW", &swd, "HW", &hwd).unwrap();
        let mut sw = Store::new(&swd);
        let mut hw = Store::new(&hwd);
        let mut link = Link::new(LinkConfig::default());
        let tx = swd.prim_id("c.tx").unwrap();
        let rx = hwd.prim_id("c.rx").unwrap();
        sw.state_mut(tx).call_action(PrimMethod::Enq, &[Value::int(32, -7)]).unwrap();

        let sw_cost = t.pump(&mut sw, &mut hw, &mut link, 0).unwrap();
        assert!(sw_cost > 0, "driver pays marshaling cost");
        assert!(!t.idle(&sw, &hw), "message in flight");
        // Before latency elapses, nothing arrives.
        t.pump(&mut sw, &mut hw, &mut link, 10).unwrap();
        assert_eq!(Transactor::fifo_len(&hw, rx), 0);
        // After latency, the value lands in the rx fifo.
        t.pump(&mut sw, &mut hw, &mut link, 60).unwrap();
        assert_eq!(
            hw.state(rx).call_value(PrimMethod::First, &[]).unwrap(),
            Value::int(32, -7)
        );
        assert!(t.idle(&sw, &hw));
    }

    #[test]
    fn credits_bound_in_flight_data() {
        let (swd, hwd, specs) = setup(2);
        let mut t = Transactor::new(&specs, "SW", &swd, "HW", &hwd).unwrap();
        let mut sw = Store::new(&swd);
        let mut hw = Store::new(&hwd);
        let mut link = Link::new(LinkConfig::default());
        let tx = swd.prim_id("c.tx").unwrap();
        // Fill tx beyond the channel depth over several pumps: the
        // transactor may only keep `depth` messages un-consumed.
        sw.state_mut(tx).call_action(PrimMethod::Enq, &[Value::int(32, 1)]).unwrap();
        sw.state_mut(tx).call_action(PrimMethod::Enq, &[Value::int(32, 2)]).unwrap();
        t.pump(&mut sw, &mut hw, &mut link, 0).unwrap();
        assert_eq!(link.in_flight(Dir::SwToHw), 2, "two credits, two sends");
        // Refill tx; no credits left, so nothing more is sent even after
        // delivery (the rx fifo is still full).
        sw.state_mut(tx).call_action(PrimMethod::Enq, &[Value::int(32, 3)]).unwrap();
        t.pump(&mut sw, &mut hw, &mut link, 200).unwrap();
        assert_eq!(Transactor::fifo_len(&sw, tx), 1, "third message held back");
        // Consumer drains one: a credit frees and the send proceeds.
        let rx = hwd.prim_id("c.rx").unwrap();
        hw.state_mut(rx).call_action(PrimMethod::Deq, &[]).unwrap();
        t.pump(&mut sw, &mut hw, &mut link, 201).unwrap();
        assert_eq!(Transactor::fifo_len(&sw, tx), 0);
    }

    #[test]
    fn unknown_domain_is_error() {
        let (swd, hwd, mut specs) = setup(1);
        specs[0].to_domain = "DSP".into();
        assert!(Transactor::new(&specs, "SW", &swd, "HW", &hwd).is_err());
    }

    #[test]
    fn aggregate_values_marshal_across() {
        // A vector of complex fixed-point values survives the crossing.
        let ty = Type::vector(4, Type::complex(Type::fixpt()));
        let swd = Design {
            name: "sw".into(),
            prims: vec![PrimDef {
                path: Path::new("c.tx"),
                spec: PrimSpec::Fifo { depth: 1, ty: ty.clone() },
            }],
            ..Default::default()
        };
        let hwd = Design {
            name: "hw".into(),
            prims: vec![PrimDef {
                path: Path::new("c.rx"),
                spec: PrimSpec::Fifo { depth: 1, ty: ty.clone() },
            }],
            ..Default::default()
        };
        let specs = vec![ChannelSpec {
            name: "c".into(),
            ty: ty.clone(),
            depth: 1,
            from_domain: "SW".into(),
            to_domain: "HW".into(),
            tx_path: "c.tx".into(),
            rx_path: "c.rx".into(),
        }];
        let mut t = Transactor::new(&specs, "SW", &swd, "HW", &hwd).unwrap();
        let mut sw = Store::new(&swd);
        let mut hw = Store::new(&hwd);
        let mut link = Link::new(LinkConfig::default());
        let frame = Value::Vec(
            (0..4)
                .map(|i| Value::complex(Value::int(32, i), Value::int(32, -i)))
                .collect(),
        );
        let tx = swd.prim_id("c.tx").unwrap();
        let rx = hwd.prim_id("c.rx").unwrap();
        sw.state_mut(tx).call_action(PrimMethod::Enq, &[frame.clone()]).unwrap();
        t.pump(&mut sw, &mut hw, &mut link, 0).unwrap();
        t.pump(&mut sw, &mut hw, &mut link, 1000).unwrap();
        assert_eq!(hw.state(rx).call_value(PrimMethod::First, &[]).unwrap(), frame);
        assert_eq!(link.stats().words_to_hw, ty.words() as u64);
    }
}
