//! Generated transactors: mapping synchronizers onto the physical link
//! (§4.4, Figure 6).
//!
//! Each synchronizer of the partitioned design becomes a *virtual channel*
//! (an LIBDN FIFO). The transactor marshals values into 32-bit words,
//! arbitrates the single physical link among all channels (round-robin at
//! message granularity), and enforces credit-based flow control: a message
//! is sent only when the receive-side FIFO is guaranteed to have space for
//! it on arrival. Credits are what rule out deadlock and head-of-line
//! blocking — a stalled consumer can never wedge the shared link for other
//! channels.
//!
//! ## Reliable transport
//!
//! On a perfect link (the default, [`crate::link::FaultConfig::none`])
//! the transactor
//! sends bare marshaled payloads, exactly like the paper's platform — the
//! fast path adds zero overhead. When the link is constructed with an
//! active fault model, every message instead becomes a framed,
//! CRC32-protected transfer (see [`crate::wire`]) and the transactor runs
//! a go-back-N reliable-delivery protocol per channel:
//!
//! * data frames carry per-channel sequence numbers; the receiver accepts
//!   only the next in-order sequence, suppresses duplicates, and discards
//!   reordered/overtaking frames (they will be retransmitted in order);
//! * cumulative ACKs piggyback on reverse-direction data frames, with
//!   pure-ACK frames generated after a short delay when no reverse
//!   traffic is available to carry them;
//! * unacknowledged frames sit in a per-channel retransmission queue; a
//!   retransmit timer with exponential backoff resends the whole window
//!   (go-back-N) when the cumulative ACK stops advancing;
//! * a credit is reserved when a sequence number is first transmitted and
//!   recovered only when that sequence is *accepted* — retransmissions
//!   reuse the reserved credit, so flow control stays deadlock-free under
//!   arbitrary loss.
//!
//! The net effect is the paper's latency-insensitivity story extended to
//! an unreliable physical channel: for any fault schedule with loss rate
//! below 1.0, applications observe exactly the same value streams as on
//! a perfect link.

use crate::link::{Dir, Link, Message};
use crate::wire::{Frame, FLAG_ACK, FLAG_DATA, FLAG_RETRANSMIT};
use bcl_core::ast::PrimId;
#[cfg(test)]
use bcl_core::ast::PrimMethod;
use bcl_core::codec::{ByteReader, ByteWriter, CodecResult};
use bcl_core::error::{ExecError, ExecResult};
use bcl_core::partition::ChannelSpec;
use bcl_core::prim::PrimSpec;
use bcl_core::store::Store;
use bcl_core::types::Type;
use bcl_core::value::Value;
use std::collections::VecDeque;

/// FPGA cycles a receiver waits for piggyback opportunities before
/// generating a pure-ACK frame.
const ACK_DELAY: u64 = 8;

/// Cap on exponential backoff, as a multiple of the base retransmission
/// timeout. Kept small so that even long runs of lost retransmissions
/// keep probing the link every few round trips — the stall detector, not
/// the backoff, is what gives up.
const RTO_MAX_MULT: u64 = 8;

/// Runtime state of one virtual channel.
#[derive(Debug)]
struct ChannelRt {
    name: String,
    ty: Type,
    depth: usize,
    dir: Dir,
    /// Transmit FIFO in the producer partition's store.
    tx: PrimId,
    /// Receive FIFO in the consumer partition's store.
    rx: PrimId,
    /// Credits in use: sequence numbers sent but not yet accepted by the
    /// receiver. Retransmissions do not change this — their credit stays
    /// reserved from the first transmission until acceptance.
    in_flight: usize,
    /// Data messages handed to the link for the first time.
    sent: u64,

    // ---- reliable-transport state (used only when faults are active) ----
    /// Next fresh sequence number to assign (sequence numbers start at 1;
    /// 0 means "nothing yet" in ACK space).
    next_seq: u32,
    /// Sender side: highest cumulative ACK received.
    acked: u32,
    /// Receiver side: highest in-order sequence accepted.
    accepted: u32,
    /// Receiver side: an ACK (or re-ACK) should be conveyed to the sender.
    ack_dirty: bool,
    /// When an ACK for this channel last left the receiver.
    last_ack_tx: u64,
    /// Retransmission queue: (seq, marshaled payload) for every
    /// unacknowledged data frame, oldest first.
    unacked: VecDeque<(u32, Vec<u32>)>,
    /// When the oldest unacknowledged frame was last (re)transmitted.
    oldest_sent_at: u64,
    /// Current retransmission timeout (doubles on each expiry, capped).
    rto: u64,
    /// Frames retransmitted.
    retransmits: u64,
    /// Messages accepted into the receive FIFO.
    delivered: u64,
    /// Duplicate data frames suppressed by the receiver.
    dup_suppressed: u64,
    /// Out-of-order (overtaking) data frames discarded by the receiver.
    out_of_order_dropped: u64,
    /// ACKs (piggybacked or pure) sent for this channel's data.
    acks_sent: u64,
}

/// Per-channel traffic summary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelReport {
    /// Synchronizer path.
    pub name: String,
    /// Messages transferred (first transmissions, not retransmits).
    pub messages: u64,
    /// Words per message.
    pub words_per_msg: usize,
    /// Messages accepted into the receive FIFO.
    pub delivered: u64,
    /// Data frames retransmitted.
    pub retransmits: u64,
    /// Duplicate data frames suppressed on receive.
    pub dup_suppressed: u64,
    /// Reordered/overtaking data frames discarded on receive.
    pub out_of_order_dropped: u64,
    /// ACKs sent (piggybacked or pure) for this channel's data.
    pub acks_sent: u64,
}

/// Transport-level statistics not attributable to a single channel.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// Frames discarded for CRC mismatch, SW→HW.
    pub crc_rejects_to_hw: u64,
    /// Frames discarded for CRC mismatch, HW→SW.
    pub crc_rejects_to_sw: u64,
    /// Pure-ACK frames sent SW→HW.
    pub ack_frames_to_hw: u64,
    /// Pure-ACK frames sent HW→SW.
    pub ack_frames_to_sw: u64,
}

impl TransportStats {
    /// Accumulates another transactor's counters into this one; the
    /// multi-partition cosim sums per-partition transports.
    pub fn merge(&mut self, other: &TransportStats) {
        self.crc_rejects_to_hw += other.crc_rejects_to_hw;
        self.crc_rejects_to_sw += other.crc_rejects_to_sw;
        self.ack_frames_to_hw += other.ack_frames_to_hw;
        self.ack_frames_to_sw += other.ack_frames_to_sw;
    }
}

/// A per-channel snapshot of sequence/credit state, produced when a
/// co-simulation stalls (see [`crate::cosim::CosimOutcome::Stalled`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelDiag {
    /// Synchronizer path.
    pub name: String,
    /// Data direction.
    pub dir: Dir,
    /// Next fresh sequence number the sender would assign.
    pub next_seq: u32,
    /// Highest cumulative ACK the sender has seen.
    pub acked: u32,
    /// Highest in-order sequence the receiver has accepted.
    pub accepted: u32,
    /// Credits in use (sequences sent, not yet accepted).
    pub in_flight: usize,
    /// Frames sitting in the retransmission queue.
    pub unacked: usize,
    /// Credit limit (channel depth).
    pub depth: usize,
    /// Values waiting in the transmit FIFO.
    pub tx_backlog: usize,
    /// Values waiting in the receive FIFO.
    pub rx_occupancy: usize,
    /// Frames retransmitted so far.
    pub retransmits: u64,
}

impl std::fmt::Display for ChannelDiag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "channel `{}` ({:?}): seq {}/ack {}/accepted {}, {} in flight, \
             {} unacked, {}/{} credits, tx backlog {}, rx occupancy {}, {} retransmits",
            self.name,
            self.dir,
            self.next_seq,
            self.acked,
            self.accepted,
            self.in_flight,
            self.unacked,
            self.in_flight + self.rx_occupancy,
            self.depth,
            self.tx_backlog,
            self.rx_occupancy,
            self.retransmits,
        )
    }
}

/// The mutable transport state of one channel, as captured by
/// [`Transactor::snapshot`].
#[derive(Debug, Clone)]
struct ChannelSnap {
    in_flight: usize,
    sent: u64,
    next_seq: u32,
    acked: u32,
    accepted: u32,
    ack_dirty: bool,
    last_ack_tx: u64,
    unacked: VecDeque<(u32, Vec<u32>)>,
    oldest_sent_at: u64,
    rto: u64,
    retransmits: u64,
    delivered: u64,
    dup_suppressed: u64,
    out_of_order_dropped: u64,
    acks_sent: u64,
}

/// Everything mutable in a [`Transactor`]: per-channel sequence, ACK,
/// credit, and retransmission state, the arbitration cursors, the
/// transport statistics, and the progress counter. Restoring makes the
/// transport resume bit-identically from the capture instant.
#[derive(Debug, Clone)]
pub struct TransactorSnapshot {
    channels: Vec<ChannelSnap>,
    rr: usize,
    ack_rr: usize,
    stats: TransportStats,
    progress: u64,
}

impl ChannelSnap {
    fn encode(&self, w: &mut ByteWriter) {
        w.usize(self.in_flight);
        w.u64(self.sent);
        w.u32(self.next_seq);
        w.u32(self.acked);
        w.u32(self.accepted);
        w.bool(self.ack_dirty);
        w.u64(self.last_ack_tx);
        w.u64(self.unacked.len() as u64);
        for (seq, words) in &self.unacked {
            w.u32(*seq);
            w.u64(words.len() as u64);
            for word in words {
                w.u32(*word);
            }
        }
        w.u64(self.oldest_sent_at);
        w.u64(self.rto);
        w.u64(self.retransmits);
        w.u64(self.delivered);
        w.u64(self.dup_suppressed);
        w.u64(self.out_of_order_dropped);
        w.u64(self.acks_sent);
    }

    fn decode(r: &mut ByteReader<'_>) -> CodecResult<ChannelSnap> {
        let in_flight = r.usize()?;
        let sent = r.u64()?;
        let next_seq = r.u32()?;
        let acked = r.u32()?;
        let accepted = r.u32()?;
        let ack_dirty = r.bool()?;
        let last_ack_tx = r.u64()?;
        let n = r.seq_len(12)?;
        let mut unacked = VecDeque::with_capacity(n);
        for _ in 0..n {
            let seq = r.u32()?;
            let m = r.seq_len(4)?;
            let mut words = Vec::with_capacity(m);
            for _ in 0..m {
                words.push(r.u32()?);
            }
            unacked.push_back((seq, words));
        }
        Ok(ChannelSnap {
            in_flight,
            sent,
            next_seq,
            acked,
            accepted,
            ack_dirty,
            last_ack_tx,
            unacked,
            oldest_sent_at: r.u64()?,
            rto: r.u64()?,
            retransmits: r.u64()?,
            delivered: r.u64()?,
            dup_suppressed: r.u64()?,
            out_of_order_dropped: r.u64()?,
            acks_sent: r.u64()?,
        })
    }
}

impl TransactorSnapshot {
    /// Number of channels the capturing transactor had, for shape
    /// validation without panicking.
    pub fn channel_count(&self) -> usize {
        self.channels.len()
    }

    /// Appends this snapshot's stable binary encoding.
    pub fn encode(&self, w: &mut ByteWriter) {
        w.u64(self.channels.len() as u64);
        for ch in &self.channels {
            ch.encode(w);
        }
        w.usize(self.rr);
        w.usize(self.ack_rr);
        w.u64(self.stats.crc_rejects_to_hw);
        w.u64(self.stats.crc_rejects_to_sw);
        w.u64(self.stats.ack_frames_to_hw);
        w.u64(self.stats.ack_frames_to_sw);
        w.u64(self.progress);
    }

    /// Decodes a snapshot written by [`TransactorSnapshot::encode`].
    pub fn decode(r: &mut ByteReader<'_>) -> CodecResult<TransactorSnapshot> {
        // A channel record is at least its fixed-size fields long.
        let n = r.seq_len(85)?;
        let mut channels = Vec::with_capacity(n);
        for _ in 0..n {
            channels.push(ChannelSnap::decode(r)?);
        }
        Ok(TransactorSnapshot {
            channels,
            rr: r.usize()?,
            ack_rr: r.usize()?,
            stats: TransportStats {
                crc_rejects_to_hw: r.u64()?,
                crc_rejects_to_sw: r.u64()?,
                ack_frames_to_hw: r.u64()?,
                ack_frames_to_sw: r.u64()?,
            },
            progress: r.u64()?,
        })
    }
}

/// Moves values between a software-partition store and a
/// hardware-partition store across a [`Link`].
#[derive(Debug)]
pub struct Transactor {
    channels: Vec<ChannelRt>,
    rr: usize,
    /// Rotates piggyback ACK selection among channels.
    ack_rr: usize,
    stats: TransportStats,
    /// Monotonic counter bumped whenever any channel makes sequence
    /// progress (a frame accepted or a cumulative ACK advanced). The
    /// cosim's stall detector watches this.
    progress: u64,
}

impl Transactor {
    /// Builds a transactor from channel specs, resolving the tx/rx FIFO
    /// paths in the two partition designs.
    ///
    /// # Errors
    ///
    /// Returns an error if a channel references a domain other than the
    /// two given, a path missing from its partition, or a path that
    /// resolves to a primitive that is not a FIFO (the transactor can
    /// only pump FIFOs; anything else indicates a malformed partitioning).
    pub fn new(
        specs: &[ChannelSpec],
        sw_domain: &str,
        sw_design: &bcl_core::design::Design,
        hw_domain: &str,
        hw_design: &bcl_core::design::Design,
    ) -> Result<Transactor, ExecError> {
        if specs.len() > 256 {
            return Err(ExecError::Malformed(format!(
                "{} channels exceed the 8-bit channel-id space of the wire format",
                specs.len()
            )));
        }
        let mut channels = Vec::with_capacity(specs.len());
        for c in specs {
            let (dir, tx_design, rx_design) =
                if c.from_domain == sw_domain && c.to_domain == hw_domain {
                    (Dir::SwToHw, sw_design, hw_design)
                } else if c.from_domain == hw_domain && c.to_domain == sw_domain {
                    (Dir::HwToSw, hw_design, sw_design)
                } else {
                    return Err(ExecError::Malformed(format!(
                        "channel `{}` spans `{}`->`{}`, expected `{sw_domain}`/`{hw_domain}`",
                        c.name, c.from_domain, c.to_domain
                    )));
                };
            let tx = tx_design
                .prim_id(&c.tx_path)
                .ok_or_else(|| ExecError::Malformed(format!("missing tx fifo `{}`", c.tx_path)))?;
            let rx = rx_design
                .prim_id(&c.rx_path)
                .ok_or_else(|| ExecError::Malformed(format!("missing rx fifo `{}`", c.rx_path)))?;
            for (what, design, id, path) in [
                ("tx", tx_design, tx, &c.tx_path),
                ("rx", rx_design, rx, &c.rx_path),
            ] {
                if !matches!(design.prim(id).spec, PrimSpec::Fifo { .. }) {
                    return Err(ExecError::Malformed(format!(
                        "channel `{}` {what} path `{path}` is not a FIFO",
                        c.name
                    )));
                }
            }
            if c.ty.words() >= (1 << 12) {
                return Err(ExecError::Malformed(format!(
                    "channel `{}` payload of {} words exceeds the wire format's 12-bit length field",
                    c.name,
                    c.ty.words()
                )));
            }
            channels.push(ChannelRt {
                name: c.name.clone(),
                ty: c.ty.clone(),
                depth: c.depth,
                dir,
                tx,
                rx,
                in_flight: 0,
                sent: 0,
                next_seq: 1,
                acked: 0,
                accepted: 0,
                ack_dirty: false,
                last_ack_tx: 0,
                unacked: VecDeque::new(),
                oldest_sent_at: 0,
                rto: 0,
                retransmits: 0,
                delivered: 0,
                dup_suppressed: 0,
                out_of_order_dropped: 0,
                acks_sent: 0,
            });
        }
        Ok(Transactor {
            channels,
            rr: 0,
            ack_rr: 0,
            stats: TransportStats::default(),
            progress: 0,
        })
    }

    /// The number of virtual channels.
    pub fn channel_count(&self) -> usize {
        self.channels.len()
    }

    /// Monotonic sequence-progress counter (accepted frames + cumulative
    /// ACK advances); flat while the transport is wedged.
    pub fn progress(&self) -> u64 {
        self.progress
    }

    /// Transport-level statistics (CRC rejects, pure-ACK frames).
    pub fn transport_stats(&self) -> TransportStats {
        self.stats
    }

    fn fifo_len(store: &Store, id: PrimId) -> usize {
        store.fifo_len(id)
    }

    /// Wraps a receive-side enqueue error the way the credit protocol
    /// expects: a short word stream is a marshaling error and propagates
    /// as-is (exactly like the old decode-then-enqueue path), anything
    /// else means the FIFO was full despite the credit accounting.
    fn wrap_rx_err(name: &str, e: ExecError) -> ExecError {
        match e {
            ExecError::Type(msg) if msg.starts_with("word stream too short") => {
                ExecError::Type(msg)
            }
            e => ExecError::Malformed(format!("rx fifo `{name}` overflow despite credits: {e}")),
        }
    }

    /// Base retransmission timeout for the link: a round trip plus ACK
    /// delay and serialization slack.
    fn rto_base(link: &Link) -> u64 {
        2 * link.config().one_way_latency + 2 * ACK_DELAY + 32
    }

    /// One pump iteration, at FPGA-cycle `now`: deliver arrived messages
    /// into receive FIFOs, then arbitrate pending transmit FIFOs onto the
    /// link. Returns the CPU cycles of software driver work performed
    /// (marshaling on SW→HW sends, demarshaling on HW→SW deliveries).
    ///
    /// On a fault-free link this is the zero-overhead fast path of the
    /// paper's platform; with faults active it runs the reliable
    /// transport documented at module level.
    ///
    /// # Errors
    ///
    /// Propagates marshaling errors and transport-protocol violations
    /// (both indicate a malformed design or a transactor bug — injected
    /// faults never surface as errors; they are absorbed by the
    /// protocol).
    pub fn pump(
        &mut self,
        sw_store: &mut Store,
        hw_store: &mut Store,
        link: &mut Link,
        now: u64,
    ) -> ExecResult<u64> {
        if link.faults_active() {
            self.pump_reliable(sw_store, hw_store, link, now)
        } else {
            self.pump_express(sw_store, hw_store, link, now)
        }
    }

    /// The original perfect-link pump: bare payloads, omniscient credit
    /// bookkeeping, no framing overhead.
    fn pump_express(
        &mut self,
        sw_store: &mut Store,
        hw_store: &mut Store,
        link: &mut Link,
        now: u64,
    ) -> ExecResult<u64> {
        let mut sw_cycles = 0u64;

        // Phase 1: deliveries.
        for dir in [Dir::SwToHw, Dir::HwToSw] {
            for msg in link.deliveries(dir, now) {
                let ch = &mut self.channels[msg.channel];
                let rx_store: &mut Store = match dir {
                    Dir::SwToHw => hw_store,
                    Dir::HwToSw => sw_store,
                };
                rx_store
                    .enq_wire(ch.rx, &ch.ty, &msg.words)
                    .map_err(|e| Self::wrap_rx_err(&ch.name, e))?;
                ch.in_flight -= 1;
                ch.delivered += 1;
                self.progress += 1;
                if dir == Dir::HwToSw {
                    sw_cycles += link.sw_transfer_cost(msg.words.len());
                }
            }
        }

        // Phase 2: arbitration — round-robin over channels, draining each
        // transmit FIFO as far as credits allow. Bandwidth is enforced by
        // the link's serialization model; credits bound in-flight data per
        // channel so one blocked consumer cannot monopolize buffering.
        let n = self.channels.len();
        for k in 0..n {
            let i = (self.rr + k) % n;
            let ch = &mut self.channels[i];
            loop {
                let (tx_store, rx_store): (&mut Store, &Store) = match ch.dir {
                    Dir::SwToHw => (sw_store, hw_store),
                    Dir::HwToSw => (hw_store, sw_store),
                };
                let credits_used = Self::fifo_len(rx_store, ch.rx) + ch.in_flight;
                if credits_used >= ch.depth {
                    break;
                }
                let words = match tx_store.fifo_front_wire(ch.tx) {
                    Some(w) => w,
                    None => break,
                };
                tx_store.fifo_deq(ch.tx)?;
                if ch.dir == Dir::SwToHw {
                    sw_cycles += link.sw_transfer_cost(words.len());
                }
                link.send(ch.dir, Message { channel: i, words }, now);
                ch.in_flight += 1;
                ch.sent += 1;
            }
        }
        if n > 0 {
            self.rr = (self.rr + 1) % n;
        }
        Ok(sw_cycles)
    }

    /// The reliable pump: framed, CRC-checked, sequence-numbered,
    /// ACK-driven go-back-N transfer.
    fn pump_reliable(
        &mut self,
        sw_store: &mut Store,
        hw_store: &mut Store,
        link: &mut Link,
        now: u64,
    ) -> ExecResult<u64> {
        let mut sw_cycles = 0u64;
        let rto_base = Self::rto_base(link);

        // Phase 1: receive — CRC-validate, process ACKs, accept in-order
        // data, suppress duplicates, discard overtakers.
        for dir in [Dir::SwToHw, Dir::HwToSw] {
            for msg in link.deliveries(dir, now) {
                let frame = match Frame::decode(&msg.words) {
                    Some(f) => f,
                    None => {
                        match dir {
                            Dir::SwToHw => self.stats.crc_rejects_to_hw += 1,
                            Dir::HwToSw => self.stats.crc_rejects_to_sw += 1,
                        }
                        continue;
                    }
                };
                if frame.is_ack() {
                    self.process_ack(&frame, dir, now, rto_base)?;
                }
                if frame.is_data() {
                    sw_cycles += self.process_data(&frame, dir, sw_store, hw_store, link)?;
                }
            }
        }

        // Phase 2: retransmission timers — go-back-N resend of the whole
        // unacknowledged window, with exponential backoff.
        let n = self.channels.len();
        for i in 0..n {
            let ch = &mut self.channels[i];
            if ch.unacked.is_empty() {
                continue;
            }
            let rto = if ch.rto == 0 { rto_base } else { ch.rto };
            if now < ch.oldest_sent_at.saturating_add(rto) {
                continue;
            }
            let frames: Vec<(u32, Vec<u32>)> = ch.unacked.iter().cloned().collect();
            let dir = ch.dir;
            ch.retransmits += frames.len() as u64;
            ch.oldest_sent_at = now;
            ch.rto = (rto * 2).min(rto_base * RTO_MAX_MULT);
            for (seq, payload) in frames {
                if dir == Dir::SwToHw {
                    sw_cycles += link.sw_transfer_cost(payload.len());
                }
                let frame = Frame {
                    channel: i as u8,
                    flags: FLAG_DATA | FLAG_RETRANSMIT,
                    ack_channel: 0,
                    seq,
                    ack: 0,
                    payload,
                };
                link.send(
                    dir,
                    Message {
                        channel: i,
                        words: frame.encode(),
                    },
                    now,
                );
            }
        }

        // Phase 3: arbitration of fresh data, round-robin under credits.
        // A credit is consumed per fresh sequence number; retransmissions
        // above reuse theirs, so loss can never leak credits.
        for k in 0..n {
            let i = (self.rr + k) % n;
            loop {
                let ch = &self.channels[i];
                let (tx_store, rx_store): (&mut Store, &Store) = match ch.dir {
                    Dir::SwToHw => (sw_store, hw_store),
                    Dir::HwToSw => (hw_store, sw_store),
                };
                let credits_used = Self::fifo_len(rx_store, ch.rx) + ch.in_flight;
                if credits_used >= ch.depth {
                    break;
                }
                let payload = match tx_store.fifo_front_wire(ch.tx) {
                    Some(w) => w,
                    None => break,
                };
                tx_store.fifo_deq(ch.tx)?;
                let dir = ch.dir;
                if dir == Dir::SwToHw {
                    sw_cycles += link.sw_transfer_cost(payload.len());
                }
                let (ack_channel, ack) = self.take_piggyback_ack(dir, now);
                let ch = &mut self.channels[i];
                let seq = ch.next_seq;
                ch.next_seq = ch.next_seq.wrapping_add(1);
                let flags = FLAG_DATA | if ack_channel.is_some() { FLAG_ACK } else { 0 };
                let frame = Frame {
                    channel: i as u8,
                    flags,
                    ack_channel: ack_channel.unwrap_or(0),
                    seq,
                    ack,
                    payload: payload.clone(),
                };
                if ch.unacked.is_empty() {
                    ch.oldest_sent_at = now;
                    ch.rto = rto_base;
                }
                ch.unacked.push_back((seq, payload));
                ch.in_flight += 1;
                ch.sent += 1;
                link.send(
                    dir,
                    Message {
                        channel: i,
                        words: frame.encode(),
                    },
                    now,
                );
            }
        }
        if n > 0 {
            self.rr = (self.rr + 1) % n;
        }

        // Phase 4: pure-ACK frames for receivers whose ACKs found no
        // piggyback ride within ACK_DELAY cycles.
        for i in 0..n {
            let ch = &self.channels[i];
            if !ch.ack_dirty || now < ch.last_ack_tx.saturating_add(ACK_DELAY) {
                continue;
            }
            let ack_dir = ch.dir.opposite();
            let ch = &mut self.channels[i];
            ch.ack_dirty = false;
            ch.last_ack_tx = now;
            ch.acks_sent += 1;
            let frame = Frame {
                channel: i as u8,
                flags: FLAG_ACK,
                ack_channel: i as u8,
                seq: 0,
                ack: ch.accepted,
                payload: Vec::new(),
            };
            match ack_dir {
                Dir::SwToHw => {
                    // The SW driver pays the per-message setup cost to
                    // emit an ACK frame.
                    sw_cycles += link.sw_transfer_cost(0);
                    self.stats.ack_frames_to_hw += 1;
                }
                Dir::HwToSw => self.stats.ack_frames_to_sw += 1,
            }
            link.send(
                ack_dir,
                Message {
                    channel: i,
                    words: frame.encode(),
                },
                now,
            );
        }

        Ok(sw_cycles)
    }

    /// Applies a cumulative ACK carried by a frame arriving in `dir`.
    fn process_ack(&mut self, frame: &Frame, dir: Dir, now: u64, rto_base: u64) -> ExecResult<()> {
        let idx = frame.ack_channel as usize;
        let ch = self
            .channels
            .get_mut(idx)
            .ok_or_else(|| ExecError::Transport(format!("ACK for unknown channel {idx}")))?;
        // The ACK travels against the channel's data direction.
        if ch.dir == dir {
            return Err(ExecError::Transport(format!(
                "ACK for channel `{}` arrived in its own data direction",
                ch.name
            )));
        }
        let a = frame.ack;
        if a.wrapping_sub(ch.acked) > u32::MAX / 2 {
            // Stale (older) cumulative ACK — e.g. a reordered or
            // duplicated ACK frame; ignore.
            return Ok(());
        }
        if a >= ch.next_seq {
            return Err(ExecError::Transport(format!(
                "ACK {a} for channel `{}` exceeds last sent sequence {}",
                ch.name,
                ch.next_seq.wrapping_sub(1)
            )));
        }
        if a != ch.acked {
            ch.acked = a;
            while ch.unacked.front().is_some_and(|(s, _)| *s <= a) {
                ch.unacked.pop_front();
            }
            // Progress: restart the timer for the remaining window and
            // reset backoff.
            ch.oldest_sent_at = now;
            ch.rto = rto_base;
            self.progress += 1;
        }
        Ok(())
    }

    /// Accepts, suppresses, or discards a data frame arriving in `dir`.
    /// Returns SW driver cycles charged.
    fn process_data(
        &mut self,
        frame: &Frame,
        dir: Dir,
        sw_store: &mut Store,
        hw_store: &mut Store,
        link: &Link,
    ) -> ExecResult<u64> {
        let idx = frame.channel as usize;
        let ch = self
            .channels
            .get_mut(idx)
            .ok_or_else(|| ExecError::Transport(format!("data frame for unknown channel {idx}")))?;
        if ch.dir != dir {
            return Err(ExecError::Transport(format!(
                "data frame for channel `{}` arrived against its direction",
                ch.name
            )));
        }
        let seq = frame.seq;
        if seq != ch.accepted.wrapping_add(1) {
            // Duplicate (already accepted) or overtaker (a gap precedes
            // it). Either way it is not enqueued, and the receiver
            // re-ACKs so a sender whose ACKs were lost can resynchronize.
            if ch.accepted.wrapping_sub(seq) < u32::MAX / 2 {
                ch.dup_suppressed += 1;
            } else {
                ch.out_of_order_dropped += 1;
            }
            ch.ack_dirty = true;
            return Ok(0);
        }
        if frame.payload.len() != ch.ty.words() {
            return Err(ExecError::Transport(format!(
                "channel `{}` payload of {} words, expected {}",
                ch.name,
                frame.payload.len(),
                ch.ty.words()
            )));
        }
        let rx_store: &mut Store = match dir {
            Dir::SwToHw => hw_store,
            Dir::HwToSw => sw_store,
        };
        rx_store
            .enq_wire(ch.rx, &ch.ty, &frame.payload)
            .map_err(|e| Self::wrap_rx_err(&ch.name, e))?;
        ch.accepted = seq;
        ch.in_flight -= 1;
        ch.delivered += 1;
        ch.ack_dirty = true;
        self.progress += 1;
        if dir == Dir::HwToSw {
            Ok(link.sw_transfer_cost(frame.payload.len()))
        } else {
            Ok(0)
        }
    }

    /// Picks one channel with a pending ACK whose ACK direction is
    /// `dir`, marks it conveyed, and returns its (channel id, cumulative
    /// ACK). Rotates so no channel's ACKs are starved.
    fn take_piggyback_ack(&mut self, dir: Dir, now: u64) -> (Option<u8>, u32) {
        let n = self.channels.len();
        for k in 0..n {
            let i = (self.ack_rr + k) % n;
            let ch = &mut self.channels[i];
            if ch.ack_dirty && ch.dir == dir.opposite() {
                ch.ack_dirty = false;
                ch.last_ack_tx = now;
                ch.acks_sent += 1;
                self.ack_rr = (i + 1) % n;
                return (Some(i as u8), ch.accepted);
            }
        }
        (None, 0)
    }

    /// True when nothing is buffered, in flight, or awaiting
    /// acknowledgment on any channel (transmit FIFOs may still be
    /// refilled by rules).
    pub fn idle(&self, sw_store: &Store, hw_store: &Store) -> bool {
        self.channels.iter().all(|ch| {
            let tx_store = match ch.dir {
                Dir::SwToHw => sw_store,
                Dir::HwToSw => hw_store,
            };
            ch.in_flight == 0 && ch.unacked.is_empty() && Self::fifo_len(tx_store, ch.tx) == 0
        })
    }

    /// True while the transport holds obligations that should eventually
    /// produce sequence progress: backlogged transmit FIFOs, reserved
    /// credits, or unacknowledged frames. The stall detector only arms
    /// itself while this holds.
    pub fn pending_work(&self, sw_store: &Store, hw_store: &Store) -> bool {
        self.channels.iter().any(|ch| {
            let tx_store = match ch.dir {
                Dir::SwToHw => sw_store,
                Dir::HwToSw => hw_store,
            };
            ch.in_flight > 0 || !ch.unacked.is_empty() || Self::fifo_len(tx_store, ch.tx) > 0
        })
    }

    /// Captures the transactor's complete mutable state for a later
    /// [`Transactor::restore`].
    pub fn snapshot(&self) -> TransactorSnapshot {
        TransactorSnapshot {
            channels: self
                .channels
                .iter()
                .map(|ch| ChannelSnap {
                    in_flight: ch.in_flight,
                    sent: ch.sent,
                    next_seq: ch.next_seq,
                    acked: ch.acked,
                    accepted: ch.accepted,
                    ack_dirty: ch.ack_dirty,
                    last_ack_tx: ch.last_ack_tx,
                    unacked: ch.unacked.clone(),
                    oldest_sent_at: ch.oldest_sent_at,
                    rto: ch.rto,
                    retransmits: ch.retransmits,
                    delivered: ch.delivered,
                    dup_suppressed: ch.dup_suppressed,
                    out_of_order_dropped: ch.out_of_order_dropped,
                    acks_sent: ch.acks_sent,
                })
                .collect(),
            rr: self.rr,
            ack_rr: self.ack_rr,
            stats: self.stats,
            progress: self.progress,
        }
    }

    /// Rewinds the transport to a previously captured snapshot.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot came from a transactor with a different
    /// channel table.
    pub fn restore(&mut self, snap: &TransactorSnapshot) {
        assert_eq!(
            self.channels.len(),
            snap.channels.len(),
            "snapshot from a different channel table"
        );
        for (ch, s) in self.channels.iter_mut().zip(&snap.channels) {
            ch.in_flight = s.in_flight;
            ch.sent = s.sent;
            ch.next_seq = s.next_seq;
            ch.acked = s.acked;
            ch.accepted = s.accepted;
            ch.ack_dirty = s.ack_dirty;
            ch.last_ack_tx = s.last_ack_tx;
            ch.unacked.clone_from(&s.unacked);
            ch.oldest_sent_at = s.oldest_sent_at;
            ch.rto = s.rto;
            ch.retransmits = s.retransmits;
            ch.delivered = s.delivered;
            ch.dup_suppressed = s.dup_suppressed;
            ch.out_of_order_dropped = s.out_of_order_dropped;
            ch.acks_sent = s.acks_sent;
        }
        self.rr = snap.rr;
        self.ack_rr = snap.ack_rr;
        self.stats = snap.stats;
        self.progress = snap.progress;
    }

    /// Wipes all per-channel transport state back to power-on, as a
    /// partition reset does to the generated interface logic on both
    /// sides of the severed link: sequence numbers, ACK state, reserved
    /// credits, and retransmission queues are all lost. The cumulative
    /// statistics and progress counter survive — they belong to the
    /// observer, not the hardware.
    pub fn reset_transport(&mut self) {
        for ch in &mut self.channels {
            ch.in_flight = 0;
            ch.next_seq = 1;
            ch.acked = 0;
            ch.accepted = 0;
            ch.ack_dirty = false;
            ch.last_ack_tx = 0;
            ch.unacked.clear();
            ch.oldest_sent_at = 0;
            ch.rto = 0;
        }
        self.rr = 0;
        self.ack_rr = 0;
    }

    /// For the software-failover path: per channel (index-aligned with
    /// the channel table), the values that were sent but not yet accepted
    /// by the receiver at this instant, oldest first. On a reliable
    /// (faulty) link these are decoded from the retransmission queues,
    /// counting only sequences beyond the receiver's cumulative accept
    /// point (an un-ACKed but already-delivered frame must not be counted
    /// twice). On a perfect link they are read off the wire directly.
    ///
    /// # Errors
    ///
    /// Propagates demarshaling errors (indicates a corrupted queue, which
    /// the CRC layer rules out).
    pub fn in_transit_values(&self, link: &Link) -> ExecResult<Vec<Vec<Value>>> {
        let mut out: Vec<Vec<Value>> = self.channels.iter().map(|_| Vec::new()).collect();
        if link.faults_active() {
            for (i, ch) in self.channels.iter().enumerate() {
                for (seq, payload) in &ch.unacked {
                    let ahead = seq.wrapping_sub(ch.accepted);
                    if ahead == 0 || ahead > u32::MAX / 2 {
                        continue; // already accepted, ACK still in flight
                    }
                    out[i].push(Value::from_words(&ch.ty, payload)?);
                }
            }
        } else {
            for dir in [Dir::SwToHw, Dir::HwToSw] {
                for msg in link.in_flight_messages(dir) {
                    let Some(ch) = self.channels.get(msg.channel) else {
                        continue;
                    };
                    if ch.dir != dir {
                        continue;
                    }
                    out[msg.channel].push(Value::from_words(&ch.ty, &msg.words)?);
                }
            }
        }
        Ok(out)
    }

    /// Per-channel summaries.
    pub fn report(&self) -> Vec<ChannelReport> {
        self.channels
            .iter()
            .map(|c| ChannelReport {
                name: c.name.clone(),
                messages: c.sent,
                words_per_msg: c.ty.words(),
                delivered: c.delivered,
                retransmits: c.retransmits,
                dup_suppressed: c.dup_suppressed,
                out_of_order_dropped: c.out_of_order_dropped,
                acks_sent: c.acks_sent,
            })
            .collect()
    }

    /// Per-channel sequence/credit snapshots for stall diagnostics.
    pub fn diagnostics(&self, sw_store: &Store, hw_store: &Store) -> Vec<ChannelDiag> {
        self.channels
            .iter()
            .map(|ch| {
                let (tx_store, rx_store) = match ch.dir {
                    Dir::SwToHw => (sw_store, hw_store),
                    Dir::HwToSw => (hw_store, sw_store),
                };
                ChannelDiag {
                    name: ch.name.clone(),
                    dir: ch.dir,
                    next_seq: ch.next_seq,
                    acked: ch.acked,
                    accepted: ch.accepted,
                    in_flight: ch.in_flight,
                    unacked: ch.unacked.len(),
                    depth: ch.depth,
                    tx_backlog: Self::fifo_len(tx_store, ch.tx),
                    rx_occupancy: Self::fifo_len(rx_store, ch.rx),
                    retransmits: ch.retransmits,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkConfig;
    use bcl_core::ast::Path;
    use bcl_core::design::{Design, PrimDef};
    use bcl_core::prim::PrimSpec;

    /// Two stores with one channel SW->HW: sw has `c.tx`, hw has `c.rx`.
    fn setup(depth: usize) -> (Design, Design, Vec<ChannelSpec>) {
        let sw = Design {
            name: "sw".into(),
            prims: vec![PrimDef {
                path: Path::new("c.tx"),
                spec: PrimSpec::Fifo {
                    depth,
                    ty: Type::Int(32),
                },
            }],
            ..Default::default()
        };
        let hw = Design {
            name: "hw".into(),
            prims: vec![PrimDef {
                path: Path::new("c.rx"),
                spec: PrimSpec::Fifo {
                    depth,
                    ty: Type::Int(32),
                },
            }],
            ..Default::default()
        };
        let specs = vec![ChannelSpec {
            name: "c".into(),
            ty: Type::Int(32),
            depth,
            from_domain: "SW".into(),
            to_domain: "HW".into(),
            tx_path: "c.tx".into(),
            rx_path: "c.rx".into(),
        }];
        (sw, hw, specs)
    }

    #[test]
    fn value_crosses_the_link() {
        let (swd, hwd, specs) = setup(2);
        let mut t = Transactor::new(&specs, "SW", &swd, "HW", &hwd).unwrap();
        let mut sw = Store::new(&swd);
        let mut hw = Store::new(&hwd);
        let mut link = Link::new(LinkConfig::default());
        let tx = swd.prim_id("c.tx").unwrap();
        let rx = hwd.prim_id("c.rx").unwrap();
        sw.state_mut(tx)
            .call_action(PrimMethod::Enq, &[Value::int(32, -7)])
            .unwrap();

        let sw_cost = t.pump(&mut sw, &mut hw, &mut link, 0).unwrap();
        assert!(sw_cost > 0, "driver pays marshaling cost");
        assert!(!t.idle(&sw, &hw), "message in flight");
        // Before latency elapses, nothing arrives.
        t.pump(&mut sw, &mut hw, &mut link, 10).unwrap();
        assert_eq!(Transactor::fifo_len(&hw, rx), 0);
        // After latency, the value lands in the rx fifo.
        t.pump(&mut sw, &mut hw, &mut link, 60).unwrap();
        assert_eq!(
            hw.state(rx).call_value(PrimMethod::First, &[]).unwrap(),
            Value::int(32, -7)
        );
        assert!(t.idle(&sw, &hw));
    }

    #[test]
    fn credits_bound_in_flight_data() {
        let (swd, hwd, specs) = setup(2);
        let mut t = Transactor::new(&specs, "SW", &swd, "HW", &hwd).unwrap();
        let mut sw = Store::new(&swd);
        let mut hw = Store::new(&hwd);
        let mut link = Link::new(LinkConfig::default());
        let tx = swd.prim_id("c.tx").unwrap();
        // Fill tx beyond the channel depth over several pumps: the
        // transactor may only keep `depth` messages un-consumed.
        sw.state_mut(tx)
            .call_action(PrimMethod::Enq, &[Value::int(32, 1)])
            .unwrap();
        sw.state_mut(tx)
            .call_action(PrimMethod::Enq, &[Value::int(32, 2)])
            .unwrap();
        t.pump(&mut sw, &mut hw, &mut link, 0).unwrap();
        assert_eq!(link.in_flight(Dir::SwToHw), 2, "two credits, two sends");
        // Refill tx; no credits left, so nothing more is sent even after
        // delivery (the rx fifo is still full).
        sw.state_mut(tx)
            .call_action(PrimMethod::Enq, &[Value::int(32, 3)])
            .unwrap();
        t.pump(&mut sw, &mut hw, &mut link, 200).unwrap();
        assert_eq!(Transactor::fifo_len(&sw, tx), 1, "third message held back");
        // Consumer drains one: a credit frees and the send proceeds.
        let rx = hwd.prim_id("c.rx").unwrap();
        hw.state_mut(rx).call_action(PrimMethod::Deq, &[]).unwrap();
        t.pump(&mut sw, &mut hw, &mut link, 201).unwrap();
        assert_eq!(Transactor::fifo_len(&sw, tx), 0);
    }

    #[test]
    fn stalled_consumer_does_not_block_other_channels() {
        // Head-of-line blocking regression: channel `a`'s consumer never
        // drains its rx FIFO, exhausting `a`'s credits. Channel `b` shares
        // the link and must keep streaming at full rate regardless.
        let mk = |n: &str, depth| PrimDef {
            path: Path::new(n),
            spec: PrimSpec::Fifo {
                depth,
                ty: Type::Int(32),
            },
        };
        let swd = Design {
            name: "sw".into(),
            prims: vec![mk("a.tx", 8), mk("b.tx", 8)],
            ..Default::default()
        };
        let hwd = Design {
            name: "hw".into(),
            prims: vec![mk("a.rx", 2), mk("b.rx", 2)],
            ..Default::default()
        };
        let spec = |n: &str| ChannelSpec {
            name: n.into(),
            ty: Type::Int(32),
            depth: 2,
            from_domain: "SW".into(),
            to_domain: "HW".into(),
            tx_path: format!("{n}.tx"),
            rx_path: format!("{n}.rx"),
        };
        let specs = vec![spec("a"), spec("b")];
        let mut t = Transactor::new(&specs, "SW", &swd, "HW", &hwd).unwrap();
        let mut sw = Store::new(&swd);
        let mut hw = Store::new(&hwd);
        let mut link = Link::new(LinkConfig::default());
        let a_tx = swd.prim_id("a.tx").unwrap();
        let b_tx = swd.prim_id("b.tx").unwrap();
        let b_rx = hwd.prim_id("b.rx").unwrap();
        let mut b_received = 0u64;
        let mut b_fed = 0u64;
        for now in 0..4000u64 {
            // `a` is kept saturated; its consumer never deqs.
            while Transactor::fifo_len(&sw, a_tx) < 8 {
                sw.state_mut(a_tx)
                    .call_action(PrimMethod::Enq, &[Value::int(32, -1)])
                    .unwrap();
            }
            if Transactor::fifo_len(&sw, b_tx) < 8 {
                sw.state_mut(b_tx)
                    .call_action(PrimMethod::Enq, &[Value::int(32, b_fed as i64)])
                    .unwrap();
                b_fed += 1;
            }
            t.pump(&mut sw, &mut hw, &mut link, now).unwrap();
            // `b`'s consumer drains eagerly.
            while Transactor::fifo_len(&hw, b_rx) > 0 {
                assert_eq!(
                    hw.state(b_rx).call_value(PrimMethod::First, &[]).unwrap(),
                    Value::int(32, b_received as i64),
                    "b's stream must arrive intact and in order"
                );
                hw.state_mut(b_rx)
                    .call_action(PrimMethod::Deq, &[])
                    .unwrap();
                b_received += 1;
            }
        }
        // `a` froze after its 2 credits were spent...
        let a = &t.report()[0];
        assert_eq!(a.messages, 2, "a stopped at its credit limit");
        // ...while `b` kept flowing at its full credit-limited rate
        // (depth 2 per ~51-cycle round trip ≈ 150 messages in 4000
        // cycles), unaffected by `a`'s stall.
        assert!(b_received > 100, "b made only {b_received} deliveries");
    }

    #[test]
    fn in_transit_values_reads_the_wire_on_a_perfect_link() {
        let (swd, hwd, specs) = setup(4);
        let mut t = Transactor::new(&specs, "SW", &swd, "HW", &hwd).unwrap();
        let mut sw = Store::new(&swd);
        let mut hw = Store::new(&hwd);
        let mut link = Link::new(LinkConfig::default());
        let tx = swd.prim_id("c.tx").unwrap();
        for v in [10, 20] {
            sw.state_mut(tx)
                .call_action(PrimMethod::Enq, &[Value::int(32, v)])
                .unwrap();
        }
        t.pump(&mut sw, &mut hw, &mut link, 0).unwrap();
        let vals = t.in_transit_values(&link).unwrap();
        assert_eq!(vals.len(), 1);
        assert_eq!(vals[0], vec![Value::int(32, 10), Value::int(32, 20)]);
        // After delivery nothing is in transit.
        t.pump(&mut sw, &mut hw, &mut link, 1000).unwrap();
        assert!(t.in_transit_values(&link).unwrap()[0].is_empty());
    }

    #[test]
    fn snapshot_restore_resumes_reliable_transport_exactly() {
        use crate::link::FaultConfig;
        let (swd, hwd, specs) = setup(4);
        let mut t = Transactor::new(&specs, "SW", &swd, "HW", &hwd).unwrap();
        let mut sw = Store::new(&swd);
        let mut hw = Store::new(&hwd);
        let mut link = Link::with_faults(
            LinkConfig::default(),
            FaultConfig::uniform(3, 0.25, 0.1, 0.1, 0.1),
        );
        let tx = swd.prim_id("c.tx").unwrap();
        let rx = hwd.prim_id("c.rx").unwrap();
        let mut fed = 0i64;
        for now in 0..400u64 {
            if Transactor::fifo_len(&sw, tx) < 4 {
                sw.state_mut(tx)
                    .call_action(PrimMethod::Enq, &[Value::int(32, fed)])
                    .unwrap();
                fed += 1;
            }
            t.pump(&mut sw, &mut hw, &mut link, now).unwrap();
        }
        let (snap_t, snap_l) = (t.snapshot(), link.snapshot());
        let (snap_sw, snap_hw) = (sw.snapshot(), hw.snapshot());
        let run = |t: &mut Transactor, link: &mut Link, sw: &mut Store, hw: &mut Store| {
            let mut got = Vec::new();
            for now in 400..2000u64 {
                t.pump(sw, hw, link, now).unwrap();
                while Transactor::fifo_len(hw, rx) > 0 {
                    got.push(hw.state(rx).call_value(PrimMethod::First, &[]).unwrap());
                    hw.state_mut(rx).call_action(PrimMethod::Deq, &[]).unwrap();
                }
            }
            (got, t.progress(), t.transport_stats())
        };
        let first = run(&mut t, &mut link, &mut sw, &mut hw);
        t.restore(&snap_t);
        link.restore(&snap_l);
        sw.restore(&snap_sw);
        hw.restore(&snap_hw);
        let second = run(&mut t, &mut link, &mut sw, &mut hw);
        assert_eq!(first, second, "restored transport must replay exactly");
    }

    #[test]
    fn reset_transport_wipes_protocol_state_keeps_stats() {
        let (swd, hwd, specs) = setup(2);
        let mut t = Transactor::new(&specs, "SW", &swd, "HW", &hwd).unwrap();
        let mut sw = Store::new(&swd);
        let mut hw = Store::new(&hwd);
        let mut link = Link::new(LinkConfig::default());
        let tx = swd.prim_id("c.tx").unwrap();
        sw.state_mut(tx)
            .call_action(PrimMethod::Enq, &[Value::int(32, 1)])
            .unwrap();
        t.pump(&mut sw, &mut hw, &mut link, 0).unwrap();
        assert!(t.pending_work(&sw, &hw), "a credit is reserved");
        let delivered_before = t.report()[0].messages;
        t.reset_transport();
        assert!(!t.pending_work(&sw, &hw), "reserved credits wiped");
        assert_eq!(t.report()[0].messages, delivered_before, "stats survive");
        let d = t.diagnostics(&sw, &hw);
        assert_eq!((d[0].next_seq, d[0].acked, d[0].accepted), (1, 0, 0));
    }

    #[test]
    fn unknown_domain_is_error() {
        let (swd, hwd, mut specs) = setup(1);
        specs[0].to_domain = "DSP".into();
        assert!(Transactor::new(&specs, "SW", &swd, "HW", &hwd).is_err());
    }

    #[test]
    fn non_fifo_endpoint_is_error() {
        // A channel whose tx path resolves to a register must be rejected
        // at construction, not silently treated as an empty FIFO.
        let sw = Design {
            name: "sw".into(),
            prims: vec![PrimDef {
                path: Path::new("c.tx"),
                spec: PrimSpec::Reg {
                    init: Value::int(32, 0),
                },
            }],
            ..Default::default()
        };
        let hw = Design {
            name: "hw".into(),
            prims: vec![PrimDef {
                path: Path::new("c.rx"),
                spec: PrimSpec::Fifo {
                    depth: 2,
                    ty: Type::Int(32),
                },
            }],
            ..Default::default()
        };
        let specs = vec![ChannelSpec {
            name: "c".into(),
            ty: Type::Int(32),
            depth: 2,
            from_domain: "SW".into(),
            to_domain: "HW".into(),
            tx_path: "c.tx".into(),
            rx_path: "c.rx".into(),
        }];
        let err = Transactor::new(&specs, "SW", &sw, "HW", &hw).unwrap_err();
        assert!(
            matches!(&err, ExecError::Malformed(m) if m.contains("not a FIFO")),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn aggregate_values_marshal_across() {
        // A vector of complex fixed-point values survives the crossing.
        let ty = Type::vector(4, Type::complex(Type::fixpt()));
        let swd = Design {
            name: "sw".into(),
            prims: vec![PrimDef {
                path: Path::new("c.tx"),
                spec: PrimSpec::Fifo {
                    depth: 1,
                    ty: ty.clone(),
                },
            }],
            ..Default::default()
        };
        let hwd = Design {
            name: "hw".into(),
            prims: vec![PrimDef {
                path: Path::new("c.rx"),
                spec: PrimSpec::Fifo {
                    depth: 1,
                    ty: ty.clone(),
                },
            }],
            ..Default::default()
        };
        let specs = vec![ChannelSpec {
            name: "c".into(),
            ty: ty.clone(),
            depth: 1,
            from_domain: "SW".into(),
            to_domain: "HW".into(),
            tx_path: "c.tx".into(),
            rx_path: "c.rx".into(),
        }];
        let mut t = Transactor::new(&specs, "SW", &swd, "HW", &hwd).unwrap();
        let mut sw = Store::new(&swd);
        let mut hw = Store::new(&hwd);
        let mut link = Link::new(LinkConfig::default());
        let frame = Value::Vec(
            (0..4)
                .map(|i| Value::complex(Value::int(32, i), Value::int(32, -i)))
                .collect(),
        );
        let tx = swd.prim_id("c.tx").unwrap();
        let rx = hwd.prim_id("c.rx").unwrap();
        sw.state_mut(tx)
            .call_action(PrimMethod::Enq, std::slice::from_ref(&frame))
            .unwrap();
        t.pump(&mut sw, &mut hw, &mut link, 0).unwrap();
        t.pump(&mut sw, &mut hw, &mut link, 1000).unwrap();
        assert_eq!(
            hw.state(rx).call_value(PrimMethod::First, &[]).unwrap(),
            frame
        );
        assert_eq!(link.stats().words_to_hw, ty.words() as u64);
    }
}
