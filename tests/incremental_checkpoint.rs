//! Incremental (dirty-set) checkpointing: the cost of a checkpoint is
//! proportional to the words *written* since the previous one, not to
//! total state size. A large read-only table must be deep-copied exactly
//! once; an idle system checkpoints for free; restores stay bit- and
//! cycle-identical.

use bcl_core::builder::{dsl::*, ModuleBuilder};
use bcl_core::design::Design;
use bcl_core::domain::{HW, SW};
use bcl_core::partition::partition;
use bcl_core::program::Program;
use bcl_core::sched::SwOptions;
use bcl_core::types::Type;
use bcl_core::value::Value;
use bcl_platform::cosim::{Cosim, HwPartitionCfg, InterHwRouting};

const TABLE_WORDS: usize = 4096;

/// src(SW) → scale (HW, reads a large constant table) → snk(SW). The
/// table dwarfs the rest of the state, so checkpoint cost is dominated
/// by whether it gets re-copied.
fn table_design() -> Design {
    let mut m = ModuleBuilder::new("Tbl");
    m.source("src", Type::Int(32), SW);
    m.sink("snk", Type::Int(32), SW);
    m.channel("cin", 2, Type::Int(32), SW, HW);
    m.channel("cout", 2, Type::Int(32), HW, SW);
    m.regfile(
        "table",
        TABLE_WORDS,
        Type::Int(32),
        (0..TABLE_WORDS as i64)
            .map(|i| Value::int(32, i * 3))
            .collect(),
    );
    m.rule("feed", with_first("x", "src", enq("cin", var("x"))));
    m.rule(
        "scale",
        with_first("x", "cin", enq("cout", sub("table", var("x")))),
    );
    m.rule("drain", with_first("x", "cout", enq("snk", var("x"))));
    bcl_core::elaborate(&Program::with_root(m.build())).unwrap()
}

fn cosim_on(flat: bool) -> Cosim {
    let design = table_design();
    let parts = partition(&design, SW).unwrap();
    let cfgs = [HwPartitionCfg::new(HW)];
    Cosim::multi(
        &parts,
        SW,
        &cfgs,
        InterHwRouting::ViaHub,
        SwOptions {
            flat,
            ..SwOptions::default()
        },
    )
    .unwrap()
}

#[test]
fn checkpoint_cost_tracks_dirty_words_not_state_size() {
    checkpoint_cost_tracks_dirty_words(false);
}

/// On the flat backend the same property must hold at arena-page
/// granularity: a dirty page costs `PAGE_WORDS` 64-bit words, and the
/// untouched table pages (the bulk of the arena) are never re-copied.
#[test]
fn flat_checkpoint_cost_tracks_dirty_pages_not_state_size() {
    checkpoint_cost_tracks_dirty_words(true);
}

fn checkpoint_cost_tracks_dirty_words(flat: bool) {
    let mut cs = cosim_on(flat);
    for i in 0..8 {
        cs.push_source("src", Value::int(32, i));
    }

    // Even the first checkpoint is proportional to the dirty set: the
    // copy-on-write mirror is seeded at store construction, so only the
    // prims written since then (the pushed inputs) are deep-copied — the
    // untouched table is shared, never duplicated.
    let c0 = cs.checkpoint();
    let full = cs.checkpoint_copied_words();
    assert!(full > 0, "pushed inputs must be copied");
    assert!(
        full < TABLE_WORDS as u64 / 4,
        "first checkpoint copied {full} words — it must not deep-copy \
         the untouched {TABLE_WORDS}-word table"
    );

    // A checkpoint with no intervening execution copies nothing.
    let _c1 = cs.checkpoint();
    assert_eq!(
        cs.checkpoint_copied_words(),
        full,
        "idle checkpoint must copy zero words"
    );

    // A short burst of execution dirties a handful of FIFO/register
    // words — but never the read-only table, so the delta is a sliver
    // of the state size.
    cs.run_until(|c| c.sink_count("snk") >= 2, 1_000_000)
        .unwrap();
    let _c2 = cs.checkpoint();
    let delta = cs.checkpoint_copied_words() - full;
    assert!(delta > 0, "execution dirtied state; delta must be nonzero");
    assert!(
        delta < TABLE_WORDS as u64 / 4,
        "incremental checkpoint copied {delta} words — not proportional \
         to the dirty set (table is {TABLE_WORDS} words)"
    );

    // And the cheap checkpoints are still complete: restoring the first
    // one replays to the exact same output stream.
    let direct: Vec<Value> = {
        cs.run_until(|c| c.sink_count("snk") >= 8, 1_000_000)
            .unwrap();
        cs.sink_values("snk").to_vec()
    };
    cs.restore(&c0);
    cs.run_until(|c| c.sink_count("snk") >= 8, 1_000_000)
        .unwrap();
    assert_eq!(cs.sink_values("snk").to_vec(), direct);
}

#[test]
fn repeated_checkpoints_amortize_to_the_write_rate() {
    repeated_checkpoints_amortize(false);
}

#[test]
fn flat_repeated_checkpoints_amortize_to_the_write_rate() {
    repeated_checkpoints_amortize(true);
}

fn repeated_checkpoints_amortize(flat: bool) {
    let mut cs = cosim_on(flat);
    for i in 0..16 {
        cs.push_source("src", Value::int(32, i));
    }
    let _ = cs.checkpoint();
    let baseline = cs.checkpoint_copied_words();
    // Checkpoint every few sinks: each increment must stay far below a
    // full-state copy (the naive scheme would pay `total_words` per
    // checkpoint, table included).
    let mut last = baseline;
    for want in 1..=4 {
        cs.run_until(|c| c.sink_count("snk") >= want * 2, 1_000_000)
            .unwrap();
        let _ = cs.checkpoint();
        let now = cs.checkpoint_copied_words();
        let delta = now - last;
        assert!(
            delta < TABLE_WORDS as u64 / 4,
            "checkpoint {want} copied {delta} words"
        );
        last = now;
    }
}
