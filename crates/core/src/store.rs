//! Program state and the light-weight transactional run-time (§6.1–6.2).
//!
//! A [`Store`] holds the committed state of every primitive. A [`Txn`] is a
//! change-log shadow layered over the store: rule execution populates the
//! log, a successful rule commits it, and a guard failure rolls it back by
//! discarding it. Parallel action composition forks sibling frames that are
//! merged with double-write detection, and `localGuard` uses a frame whose
//! failure is absorbed instead of propagated — exactly the C++ scheme the
//! paper describes (shadows for rules are persistent/reused; shadows for
//! parallel actions are created dynamically).

use crate::ast::{PrimId, PrimMethod};
use crate::codec::{ByteReader, ByteWriter, CodecError, CodecResult};
use crate::design::Design;
use crate::error::{ExecError, ExecResult};
use crate::flat::{self, FlatKind, FlatPrim, FlatStore};
use crate::prim::PrimState;
use crate::types::Type;
use crate::value::{copy_bits, get_bits, put_bits, wire_to_flat, Value};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;

pub use crate::flat::PAGE_WORDS;

/// A set of dirty slots touched since some epoch, with O(1) dedup'd
/// marking and O(dirty) drain. The store keeps two independent trackers:
/// one drained by the event-driven schedulers each step (indexed by
/// primitive), one drained by incremental checkpoints at each cut
/// (indexed by primitive on the tree backend; by arena page, then dyn,
/// then spill slot on the flat backend).
#[derive(Debug, Clone)]
struct DirtyTracker {
    flags: Vec<bool>,
    list: Vec<usize>,
}

impl DirtyTracker {
    fn clean(n: usize) -> DirtyTracker {
        DirtyTracker {
            flags: vec![false; n],
            list: Vec::new(),
        }
    }

    fn all(n: usize) -> DirtyTracker {
        DirtyTracker {
            flags: vec![true; n],
            list: (0..n).collect(),
        }
    }

    fn mark(&mut self, i: usize) {
        if !self.flags[i] {
            self.flags[i] = true;
            self.list.push(i);
        }
    }

    fn mark_all(&mut self) {
        self.list.clear();
        self.flags.iter_mut().for_each(|f| *f = true);
        self.list.extend(0..self.flags.len());
    }

    fn drain_into(&mut self, out: &mut Vec<usize>) {
        for i in &self.list {
            self.flags[*i] = false;
        }
        out.append(&mut self.list);
    }
}

/// Marks every checkpoint page overlapping `words` arena words from
/// `start` dirty.
fn mark_span(t: &mut DirtyTracker, start: usize, words: usize) {
    if words == 0 {
        return;
    }
    for pg in (start / PAGE_WORDS)..=((start + words - 1) / PAGE_WORDS) {
        t.mark(pg);
    }
}

/// An incremental checkpoint of a store: one shared handle per primitive.
/// Taking a snapshot deep-copies only the primitives dirtied since the
/// previous cut (see [`Store::snapshot_cow`]); the rest alias the copies
/// already made at earlier cuts, so checkpoint cost is proportional to
/// the dirty words, not the total state.
#[derive(Debug, Clone)]
pub struct StoreSnapshot {
    inner: SnapInner,
}

/// Backend-specific snapshot payload.
#[derive(Debug, Clone)]
enum SnapInner {
    /// One shared handle per primitive (the tree store's unit of copy).
    Tree(Vec<Arc<PrimState>>),
    /// Shared arena pages plus boxed sidecars (the flat store's units).
    Flat(FlatSnap),
}

/// Flat-store snapshot: fixed-size arena pages, the boxed dyn states,
/// and the FIFO spill sidecars, each shared copy-on-write.
#[derive(Debug, Clone)]
struct FlatSnap {
    /// Codec kind tag per primitive, for shape validation.
    kinds: Arc<Vec<u8>>,
    pages: Vec<Arc<Vec<u64>>>,
    dyns: Vec<Arc<PrimState>>,
    spills: Vec<Arc<VecDeque<Value>>>,
}

/// Sentinel prim count marking a flat-encoded snapshot. A tree snapshot's
/// count is a real primitive count and can never reach this value.
const FLAT_SNAP_SENTINEL: u64 = u64::MAX;

impl StoreSnapshot {
    /// The number of primitives captured.
    pub fn len(&self) -> usize {
        match &self.inner {
            SnapInner::Tree(states) => states.len(),
            SnapInner::Flat(fs) => fs.kinds.len(),
        }
    }

    /// True if the snapshot has no state.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True if this snapshot was captured from an arena-flattened store.
    pub fn is_flat(&self) -> bool {
        matches!(self.inner, SnapInner::Flat(_))
    }

    /// Borrows a primitive's captured state.
    ///
    /// # Panics
    ///
    /// Panics on a flat snapshot, whose unit of capture is the arena
    /// page, not the primitive; restore through [`Store::restore_cow`]
    /// instead.
    pub fn state(&self, id: PrimId) -> &PrimState {
        match &self.inner {
            SnapInner::Tree(states) => &states[id.0],
            SnapInner::Flat(_) => panic!("per-primitive state access on a flat snapshot"),
        }
    }

    /// True if this snapshot has the same backend and shape as `store`,
    /// i.e. [`Store::restore_cow`] would not panic. Used to validate
    /// decoded checkpoints against a live topology without panicking.
    pub fn shape_matches(&self, store: &Store) -> bool {
        match (&self.inner, &store.backend) {
            (SnapInner::Tree(states), Backend::Tree { states: live, .. }) => {
                states.len() == live.len()
            }
            (SnapInner::Flat(fs), Backend::Flat(f)) => {
                *fs.kinds == f.meta.kind_tags
                    && fs.pages.len() == f.meta.n_pages
                    && fs.dyns.len() == f.meta.n_dyns
                    && fs.spills.len() == f.meta.n_spills
            }
            _ => false,
        }
    }

    /// Appends this snapshot's stable binary encoding. A tree snapshot is
    /// a count followed by each primitive's self-describing state, in
    /// slot order — byte-identical to the v1 format. A flat snapshot is
    /// a sentinel (`u64::MAX`) count followed by kind tags, raw arena
    /// pages, dyn states, and spill queues. Slot order is the design's
    /// elaboration order, which is deterministic for a given source
    /// program — that is what makes the encoding comparable across
    /// processes.
    pub fn encode(&self, w: &mut ByteWriter) {
        match &self.inner {
            SnapInner::Tree(states) => {
                w.u64(states.len() as u64);
                for st in states {
                    st.encode(w);
                }
            }
            SnapInner::Flat(fs) => {
                w.u64(FLAT_SNAP_SENTINEL);
                w.u64(fs.kinds.len() as u64);
                for t in fs.kinds.iter() {
                    w.u8(*t);
                }
                w.u64(fs.pages.len() as u64);
                for pg in &fs.pages {
                    for word in pg.iter() {
                        w.u64(*word);
                    }
                }
                w.u64(fs.dyns.len() as u64);
                for st in &fs.dyns {
                    st.encode(w);
                }
                w.u64(fs.spills.len() as u64);
                for sp in &fs.spills {
                    w.u64(sp.len() as u64);
                    for v in sp.iter() {
                        v.encode(w);
                    }
                }
            }
        }
    }

    /// Decodes a snapshot previously written by [`StoreSnapshot::encode`]
    /// — either encoding, from either format version.
    pub fn decode(r: &mut ByteReader<'_>) -> CodecResult<StoreSnapshot> {
        let n = r.u64()?;
        if n != FLAT_SNAP_SENTINEL {
            if n > r.remaining() as u64 {
                return Err(CodecError::Truncated);
            }
            let mut states = Vec::with_capacity(n as usize);
            for _ in 0..n {
                states.push(Arc::new(PrimState::decode(r)?));
            }
            return Ok(StoreSnapshot {
                inner: SnapInner::Tree(states),
            });
        }
        let nk = r.seq_len(1)?;
        let mut kinds = Vec::with_capacity(nk);
        for _ in 0..nk {
            let t = r.u8()?;
            if t > 4 {
                return Err(CodecError::Malformed("snapshot kind tag out of range"));
            }
            kinds.push(t);
        }
        let np = r.seq_len(PAGE_WORDS * 8)?;
        let mut pages = Vec::with_capacity(np);
        for _ in 0..np {
            let mut pg = vec![0u64; PAGE_WORDS];
            for word in pg.iter_mut() {
                *word = r.u64()?;
            }
            pages.push(Arc::new(pg));
        }
        let nd = r.seq_len(1)?;
        let mut dyns = Vec::with_capacity(nd);
        for _ in 0..nd {
            dyns.push(Arc::new(PrimState::decode(r)?));
        }
        let ns = r.seq_len(1)?;
        let mut spills = Vec::with_capacity(ns);
        for _ in 0..ns {
            let len = r.seq_len(1)?;
            let mut sp = VecDeque::with_capacity(len);
            for _ in 0..len {
                sp.push_back(Value::decode(r)?);
            }
            spills.push(Arc::new(sp));
        }
        Ok(StoreSnapshot {
            inner: SnapInner::Flat(FlatSnap {
                kinds: Arc::new(kinds),
                pages,
                dyns,
                spills,
            }),
        })
    }

    /// The kind name of each captured primitive, for shape validation
    /// against a design without panicking.
    pub fn kind_names(&self) -> impl Iterator<Item = &'static str> + '_ {
        (0..self.len()).map(move |i| match &self.inner {
            SnapInner::Tree(states) => states[i].kind_name(),
            SnapInner::Flat(fs) => flat::kind_name_of_tag(fs.kinds[i]),
        })
    }
}

/// Committed state of every primitive in a design.
///
/// The store also tracks which primitives have been mutated — every
/// mutation funnels through [`Store::state_mut`] or
/// [`Store::push_source`] — feeding two consumers: the event-driven
/// schedulers (which re-evaluate only guards whose read set intersects
/// the dirty set) and incremental checkpoints (which copy only the delta
/// since the last cut). Equality compares the committed state only, not
/// the bookkeeping.
#[derive(Debug, Clone)]
pub struct Store {
    backend: Backend,
    /// Primitives mutated since the scheduler last drained.
    sched_dirty: DirtyTracker,
    /// Checkpoint slots (tree: primitives; flat: pages, then dyns, then
    /// spills) mutated since the last incremental snapshot.
    ckpt_dirty: DirtyTracker,
    /// Total words deep-copied by incremental snapshots so far.
    ckpt_copied_words: u64,
}

/// The two state representations a [`Store`] can run on. The tree
/// backend is the reference oracle; the flat backend is the optimized
/// arena representation, proven equivalent by the differential fuzz farm.
#[derive(Debug, Clone)]
enum Backend {
    /// Boxed [`PrimState`] per primitive, mutated by tree walks.
    Tree {
        states: Vec<PrimState>,
        /// Copy-on-write mirror of `states` as of the last incremental
        /// snapshot; entries not ckpt-dirty are bit-identical to `states`.
        mirror: Vec<Arc<PrimState>>,
    },
    /// Bit-packed contiguous arena (see [`crate::flat`]).
    Flat(FlatStore),
}

impl PartialEq for Store {
    fn eq(&self, other: &Store) -> bool {
        match (&self.backend, &other.backend) {
            (Backend::Tree { states: a, .. }, Backend::Tree { states: b, .. }) => a == b,
            // Compare logically across representations: decode every
            // primitive. (A raw arena compare would be wrong — a dequeue
            // leaves stale bits in vacated ring slots.)
            _ => {
                self.len() == other.len()
                    && (0..self.len())
                        .all(|i| self.get_state(PrimId(i)) == other.get_state(PrimId(i)))
            }
        }
    }
}

impl Store {
    /// Creates the initial tree-backed store for a design (every
    /// primitive at reset). All primitives start scheduler-dirty (no
    /// guard verdict can be assumed) and checkpoint-clean (the mirror
    /// equals the reset state).
    pub fn new(design: &Design) -> Store {
        Store::new_like(design, false)
    }

    /// Creates the initial arena-flattened store for a design.
    pub fn new_flat(design: &Design) -> Store {
        Store::new_like(design, true)
    }

    /// Creates the initial store on the requested backend.
    pub fn new_like(design: &Design, flat: bool) -> Store {
        let n = design.prims.len();
        if flat {
            let f = FlatStore::new(design);
            let ckpt_slots = f.meta.n_pages + f.meta.n_dyns + f.meta.n_spills;
            Store {
                backend: Backend::Flat(f),
                sched_dirty: DirtyTracker::all(n),
                ckpt_dirty: DirtyTracker::clean(ckpt_slots),
                ckpt_copied_words: 0,
            }
        } else {
            let states: Vec<PrimState> = design
                .prims
                .iter()
                .map(|p| p.spec.initial_state())
                .collect();
            let mirror = states.iter().map(|s| Arc::new(s.clone())).collect();
            Store {
                backend: Backend::Tree { states, mirror },
                sched_dirty: DirtyTracker::all(n),
                ckpt_dirty: DirtyTracker::clean(n),
                ckpt_copied_words: 0,
            }
        }
    }

    /// True if this store runs on the arena-flattened backend.
    pub fn is_flat(&self) -> bool {
        matches!(self.backend, Backend::Flat(_))
    }

    /// The flat backend, for shadow-entry helpers that are only ever
    /// reached with a flat base.
    fn flat(&self) -> &FlatStore {
        match &self.backend {
            Backend::Flat(f) => f,
            Backend::Tree { .. } => unreachable!("flat shadow entry over a tree store"),
        }
    }

    /// The number of primitives.
    pub fn len(&self) -> usize {
        match &self.backend {
            Backend::Tree { states, .. } => states.len(),
            Backend::Flat(f) => f.meta.prims.len(),
        }
    }

    /// True if the design has no state.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Borrows a primitive's committed state.
    ///
    /// # Panics
    ///
    /// Panics on a flat store, which has no boxed per-primitive state to
    /// borrow; use [`Store::get_state`] / [`Store::call_value_at`].
    pub fn state(&self, id: PrimId) -> &PrimState {
        match &self.backend {
            Backend::Tree { states, .. } => &states[id.0],
            Backend::Flat(_) => panic!("tree state access on a flat store (use get_state)"),
        }
    }

    /// Invokes a value method directly against the committed state, on
    /// either backend. Charges nothing; callers meter their own reads.
    /// This is the scheduler's guard-probe hot path: on the flat backend
    /// it is pointer-free integer reads over the arena.
    pub fn call_value_at(&self, id: PrimId, m: PrimMethod, args: &[Value]) -> ExecResult<Value> {
        match &self.backend {
            Backend::Tree { states, .. } => states[id.0].call_value(m, args),
            Backend::Flat(f) => {
                let p = &f.meta.prims[id.0];
                match p.kind {
                    FlatKind::Reg => flat::reg_call_value(p, f.block(p), m),
                    FlatKind::Fifo { spill, .. } => {
                        flat::fifo_call_value(p, f.block(p), &f.spills[spill], m)
                    }
                    FlatKind::RegFile { .. } => {
                        flat::regfile_call_value(p, flat::Cells::Whole(f.block(p)), m, args)
                    }
                    FlatKind::Dyn { idx } => f.dyns[idx].call_value(m, args),
                }
            }
        }
    }

    /// Invokes an action method directly against the committed state, on
    /// either backend — the unshadowed analogue of
    /// `state_mut(id).call_action(..)`, with identical marking: the
    /// primitive is conservatively dirtied before the action runs, even
    /// if the action then fails its guard.
    pub fn call_action_at(&mut self, id: PrimId, m: PrimMethod, args: &[Value]) -> ExecResult<()> {
        self.sched_dirty.mark(id.0);
        match &mut self.backend {
            Backend::Tree { states, .. } => {
                self.ckpt_dirty.mark(id.0);
                states[id.0].call_action(m, args)
            }
            Backend::Flat(f) => {
                let meta = Arc::clone(&f.meta);
                let p = &meta.prims[id.0];
                match p.kind {
                    FlatKind::Reg => {
                        mark_span(&mut self.ckpt_dirty, p.start, p.words);
                        let block = &mut f.arena[p.start..p.start + p.words];
                        flat::reg_call_action(p, block, m, args)
                    }
                    FlatKind::Fifo { spill, .. } => {
                        mark_span(&mut self.ckpt_dirty, p.start, p.words);
                        self.ckpt_dirty.mark(meta.n_pages + meta.n_dyns + spill);
                        let block = &mut f.arena[p.start..p.start + p.words];
                        flat::fifo_call_action(p, block, &mut f.spills[spill], m, args)
                    }
                    FlatKind::RegFile { .. } => {
                        let block = &mut f.arena[p.start..p.start + p.words];
                        let ckpt = &mut self.ckpt_dirty;
                        flat::regfile_call_action_whole(p, block, m, args, |cell| {
                            mark_span(ckpt, p.start + cell * p.lane, p.lane);
                        })
                    }
                    FlatKind::Dyn { idx } => {
                        self.ckpt_dirty.mark(meta.n_pages + idx);
                        f.dyns[idx].call_action(m, args)
                    }
                }
            }
        }
    }

    /// Word-level value read against the committed state of a flat store
    /// (ROADMAP "Word-level lowering"): returns `width` bits starting at
    /// bit `off` of the addressed element, as a masked `u64`, without
    /// materializing a [`Value`]. Supported combinations:
    ///
    /// - `Reg` / [`PrimMethod::RegRead`] — `cell` ignored;
    /// - `Fifo` / [`PrimMethod::First`] (guard-fails when empty),
    ///   [`PrimMethod::NotEmpty`] and [`PrimMethod::NotFull`] (0/1,
    ///   `cell`/`off`/`width` ignored);
    /// - `RegFile` / [`PrimMethod::Sub`] — `cell` is the cell index.
    ///
    /// Charges nothing; ports meter their own reads, exactly like
    /// [`Store::call_value_at`]. The compiled backend only emits this for
    /// leaf spans of width ≤ 64 whose offsets were resolved at lower
    /// time; the bits are identical to packing the boxed read's result.
    ///
    /// ```
    /// use bcl_core::ast::{PrimId, PrimMethod};
    /// use bcl_core::design::{Design, PrimDef};
    /// use bcl_core::prim::PrimSpec;
    /// use bcl_core::store::Store;
    /// use bcl_core::value::Value;
    ///
    /// let design = Design {
    ///     name: "t".into(),
    ///     prims: vec![PrimDef {
    ///         path: "a".into(),
    ///         spec: PrimSpec::Reg { init: Value::int(32, -2) },
    ///     }],
    ///     ..Default::default()
    /// };
    /// let s = Store::new_flat(&design);
    /// // The packed two's-complement bits of -2 in 32 bits.
    /// let w = s.call_value_word_at(PrimId(0), PrimMethod::RegRead, 0, 0, 32).unwrap();
    /// assert_eq!(w, 0xFFFF_FFFE);
    /// ```
    ///
    /// # Errors
    ///
    /// [`ExecError::GuardFail`] for `first` on an empty FIFO,
    /// [`ExecError::Bounds`] for an out-of-range register-file cell (same
    /// text as the boxed `sub`), and [`ExecError::Type`] on a tree-backed
    /// store or an unsupported method/kind combination.
    pub fn call_value_word_at(
        &self,
        id: PrimId,
        m: PrimMethod,
        cell: usize,
        off: u32,
        width: u32,
    ) -> ExecResult<u64> {
        let Backend::Flat(f) = &self.backend else {
            return Err(ExecError::Type(
                "word-level access on a tree-backed store".into(),
            ));
        };
        let p = &f.meta.prims[id.0];
        match (p.kind, m) {
            (FlatKind::Reg, PrimMethod::RegRead) => Ok(get_bits(f.block(p), off as usize, width)),
            (FlatKind::Fifo { spill, .. }, PrimMethod::First) => {
                flat::fifo_first_word(p, f.block(p), &f.spills[spill], off, width)
            }
            (FlatKind::Fifo { cap, spill }, PrimMethod::NotEmpty) => {
                let total = flat::fifo_geom(f.block(p)).1 + f.spills[spill].len();
                let _ = cap;
                Ok((total > 0) as u64)
            }
            (FlatKind::Fifo { cap, spill }, PrimMethod::NotFull) => {
                let total = flat::fifo_geom(f.block(p)).1 + f.spills[spill].len();
                Ok((total < cap) as u64)
            }
            (FlatKind::RegFile { size }, PrimMethod::Sub) => {
                if cell >= size {
                    return Err(ExecError::Bounds(format!("sub {cell} out of {size}")));
                }
                Ok(get_bits(
                    f.block(p),
                    cell * p.lane * 64 + off as usize,
                    width,
                ))
            }
            _ => Err(ExecError::Type(format!(
                "word-level {} not supported on {}",
                m.name(),
                p.kind_name
            ))),
        }
    }

    /// Word-level action against the committed state of a flat store: the
    /// writing counterpart of [`Store::call_value_word_at`]. `w` holds the
    /// element's packed bits (the lowering only emits this when the element
    /// type fits one word, so the boxed path's width check is statically
    /// true). Supported: `Reg`/[`PrimMethod::RegWrite`],
    /// `Fifo`/[`PrimMethod::Enq`], `RegFile`/[`PrimMethod::Upd`].
    ///
    /// `cell` is signed because the register-file index error order is part
    /// of the contract: dirtiness is marked and (in a transaction) the
    /// shadow is priced *before* a negative or out-of-range index errors,
    /// exactly like the boxed `upd`.
    ///
    /// ```
    /// use bcl_core::ast::{PrimId, PrimMethod};
    /// use bcl_core::design::{Design, PrimDef};
    /// use bcl_core::prim::PrimSpec;
    /// use bcl_core::store::Store;
    /// use bcl_core::value::Value;
    ///
    /// let design = Design {
    ///     name: "t".into(),
    ///     prims: vec![PrimDef {
    ///         path: "a".into(),
    ///         spec: PrimSpec::Reg { init: Value::int(16, 0) },
    ///     }],
    ///     ..Default::default()
    /// };
    /// let mut s = Store::new_flat(&design);
    /// s.call_action_word_at(PrimId(0), PrimMethod::RegWrite, 0, 0x7FFF).unwrap();
    /// assert_eq!(
    ///     s.call_value_at(PrimId(0), PrimMethod::RegRead, &[]).unwrap(),
    ///     Value::int(16, 32767),
    /// );
    /// ```
    ///
    /// # Errors
    ///
    /// [`ExecError::GuardFail`] for `enq` on a full FIFO,
    /// [`ExecError::Bounds`] for a negative or out-of-range `upd` index
    /// (same text and order as the boxed path), and [`ExecError::Type`]
    /// on a tree store or unsupported combination.
    pub fn call_action_word_at(
        &mut self,
        id: PrimId,
        m: PrimMethod,
        cell: i64,
        w: u64,
    ) -> ExecResult<()> {
        self.sched_dirty.mark(id.0);
        let Backend::Flat(f) = &mut self.backend else {
            return Err(ExecError::Type(
                "word-level access on a tree-backed store".into(),
            ));
        };
        let meta = Arc::clone(&f.meta);
        let p = &meta.prims[id.0];
        match (p.kind, m) {
            (FlatKind::Reg, PrimMethod::RegWrite) => {
                mark_span(&mut self.ckpt_dirty, p.start, p.words);
                put_bits(
                    &mut f.arena[p.start..p.start + p.words],
                    0,
                    p.layout.width,
                    w,
                );
                Ok(())
            }
            (FlatKind::Fifo { spill, .. }, PrimMethod::Enq) => {
                mark_span(&mut self.ckpt_dirty, p.start, p.words);
                self.ckpt_dirty.mark(meta.n_pages + meta.n_dyns + spill);
                let spill_len = f.spills[spill].len();
                let block = &mut f.arena[p.start..p.start + p.words];
                flat::fifo_enq_word(p, block, spill_len, w)
            }
            (FlatKind::RegFile { size }, PrimMethod::Upd) => {
                let cell = usize::try_from(cell)
                    .map_err(|_| ExecError::Bounds(format!("negative index {cell}")))?;
                if cell >= size {
                    return Err(ExecError::Bounds(format!("upd {cell} out of {size}")));
                }
                let at = p.start + cell * p.lane;
                mark_span(&mut self.ckpt_dirty, at, p.lane);
                put_bits(&mut f.arena[at..at + p.lane], 0, p.layout.width, w);
                Ok(())
            }
            _ => Err(ExecError::Type(format!(
                "word-level {} not supported on {}",
                m.name(),
                p.kind_name
            ))),
        }
    }

    /// Packed-aggregate value read: copies `width` bits starting at bit
    /// `off` of the addressed element into `dst` at `dst_bit`, without
    /// decoding. Same method/kind coverage as [`Store::call_value_word_at`]
    /// minus the occupancy probes.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn call_value_packed_at(
        &self,
        id: PrimId,
        m: PrimMethod,
        cell: usize,
        off: u32,
        width: u32,
        dst: &mut [u64],
        dst_bit: usize,
    ) -> ExecResult<()> {
        let Backend::Flat(f) = &self.backend else {
            return Err(ExecError::Type(
                "word-level access on a tree-backed store".into(),
            ));
        };
        let p = &f.meta.prims[id.0];
        match (p.kind, m) {
            (FlatKind::Reg, PrimMethod::RegRead) => {
                copy_bits(f.block(p), off as usize, dst, dst_bit, width);
                Ok(())
            }
            (FlatKind::Fifo { spill, .. }, PrimMethod::First) => {
                flat::fifo_first_packed(p, f.block(p), &f.spills[spill], off, width, dst, dst_bit)
            }
            (FlatKind::RegFile { size }, PrimMethod::Sub) => {
                if cell >= size {
                    return Err(ExecError::Bounds(format!("sub {cell} out of {size}")));
                }
                copy_bits(
                    f.block(p),
                    cell * p.lane * 64 + off as usize,
                    dst,
                    dst_bit,
                    width,
                );
                Ok(())
            }
            _ => Err(ExecError::Type(format!(
                "word-level {} not supported on {}",
                m.name(),
                p.kind_name
            ))),
        }
    }

    /// Packed-aggregate action: writes the element's `p.layout.width`
    /// packed bits from `src[src_bit..]`. Same coverage, marking, and
    /// error order as [`Store::call_action_word_at`].
    pub(crate) fn call_action_packed_at(
        &mut self,
        id: PrimId,
        m: PrimMethod,
        cell: i64,
        src: &[u64],
        src_bit: usize,
    ) -> ExecResult<()> {
        self.sched_dirty.mark(id.0);
        let Backend::Flat(f) = &mut self.backend else {
            return Err(ExecError::Type(
                "word-level access on a tree-backed store".into(),
            ));
        };
        let meta = Arc::clone(&f.meta);
        let p = &meta.prims[id.0];
        match (p.kind, m) {
            (FlatKind::Reg, PrimMethod::RegWrite) => {
                mark_span(&mut self.ckpt_dirty, p.start, p.words);
                copy_bits(
                    src,
                    src_bit,
                    &mut f.arena[p.start..p.start + p.words],
                    0,
                    p.layout.width,
                );
                Ok(())
            }
            (FlatKind::Fifo { spill, .. }, PrimMethod::Enq) => {
                mark_span(&mut self.ckpt_dirty, p.start, p.words);
                self.ckpt_dirty.mark(meta.n_pages + meta.n_dyns + spill);
                let spill_len = f.spills[spill].len();
                let block = &mut f.arena[p.start..p.start + p.words];
                flat::fifo_enq_packed(p, block, spill_len, src, src_bit)
            }
            (FlatKind::RegFile { size }, PrimMethod::Upd) => {
                let cell = usize::try_from(cell)
                    .map_err(|_| ExecError::Bounds(format!("negative index {cell}")))?;
                if cell >= size {
                    return Err(ExecError::Bounds(format!("upd {cell} out of {size}")));
                }
                let at = p.start + cell * p.lane;
                mark_span(&mut self.ckpt_dirty, at, p.lane);
                copy_bits(
                    src,
                    src_bit,
                    &mut f.arena[at..at + p.lane],
                    0,
                    p.layout.width,
                );
                Ok(())
            }
            _ => Err(ExecError::Type(format!(
                "word-level {} not supported on {}",
                m.name(),
                p.kind_name
            ))),
        }
    }

    /// Decodes a primitive's full committed state (owned), on either
    /// backend.
    pub fn get_state(&self, id: PrimId) -> PrimState {
        match &self.backend {
            Backend::Tree { states, .. } => states[id.0].clone(),
            Backend::Flat(f) => f.get_state(id),
        }
    }

    /// Replaces a primitive's committed state wholesale (checkpoint
    /// rehydration and partition splicing). The primitive is marked
    /// dirty for both consumers, like any other mutation.
    ///
    /// # Panics
    ///
    /// On a flat store, panics if the state's kind or shape does not
    /// match the compiled slot (a tree store accepts anything). A FIFO
    /// spliced above its capacity overflows into the spill sidecar.
    pub fn set_state(&mut self, id: PrimId, st: PrimState) {
        self.sched_dirty.mark(id.0);
        match &mut self.backend {
            Backend::Tree { states, .. } => {
                self.ckpt_dirty.mark(id.0);
                states[id.0] = st;
            }
            Backend::Flat(f) => {
                let meta = Arc::clone(&f.meta);
                let p = &meta.prims[id.0];
                let write_lane = |arena: &mut [u64], at: usize, v: &Value| {
                    let wrote = v.write_flat(&mut arena[at..at + p.lane], 0);
                    assert_eq!(
                        wrote, p.layout.width as usize,
                        "set_state value shape mismatch on primitive #{}",
                        id.0
                    );
                };
                match (p.kind, st) {
                    (FlatKind::Reg, PrimState::Reg(v)) => {
                        mark_span(&mut self.ckpt_dirty, p.start, p.words);
                        write_lane(&mut f.arena, p.start, &v);
                    }
                    (FlatKind::Fifo { cap, spill }, PrimState::Fifo { items, .. }) => {
                        mark_span(&mut self.ckpt_dirty, p.start, p.words);
                        self.ckpt_dirty.mark(meta.n_pages + meta.n_dyns + spill);
                        let n = items.len().min(cap);
                        let mut items = items;
                        let overflow = items.split_off(n);
                        for (i, v) in items.iter().enumerate() {
                            write_lane(&mut f.arena, p.start + 2 + i * p.lane, v);
                        }
                        f.arena[p.start] = 0;
                        f.arena[p.start + 1] = n as u64;
                        f.spills[spill] = overflow;
                    }
                    (FlatKind::RegFile { size }, PrimState::RegFile(cells)) => {
                        assert_eq!(
                            cells.len(),
                            size,
                            "set_state register file size mismatch on primitive #{}",
                            id.0
                        );
                        mark_span(&mut self.ckpt_dirty, p.start, p.words);
                        for (i, v) in cells.iter().enumerate() {
                            write_lane(&mut f.arena, p.start + i * p.lane, v);
                        }
                    }
                    (FlatKind::Dyn { idx }, st) => {
                        assert_eq!(
                            st.kind_name(),
                            p.kind_name,
                            "set_state kind mismatch on primitive #{}",
                            id.0
                        );
                        self.ckpt_dirty.mark(meta.n_pages + idx);
                        f.dyns[idx] = st;
                    }
                    (_, other) => panic!(
                        "set_state kind mismatch on primitive #{}: {} slot given {}",
                        id.0,
                        p.kind_name,
                        other.kind_name()
                    ),
                }
            }
        }
    }

    /// Current occupancy of a FIFO primitive (ring plus spill on the
    /// flat backend); 0 for any other primitive kind.
    pub fn fifo_len(&self, id: PrimId) -> usize {
        match &self.backend {
            Backend::Tree { states, .. } => match &states[id.0] {
                PrimState::Fifo { items, .. } => items.len(),
                _ => 0,
            },
            Backend::Flat(f) => {
                let p = &f.meta.prims[id.0];
                match p.kind {
                    FlatKind::Fifo { spill, .. } => {
                        flat::fifo_geom(f.block(p)).1 + f.spills[spill].len()
                    }
                    _ => 0,
                }
            }
        }
    }

    /// The front value of a FIFO primitive in transactor wire format
    /// (32-bit words), or `None` if the FIFO is empty or the primitive
    /// is not a FIFO. On the flat backend the words are copied straight
    /// out of the arena without materializing a [`Value`].
    pub fn fifo_front_wire(&self, id: PrimId) -> Option<Vec<u32>> {
        match &self.backend {
            Backend::Tree { states, .. } => match &states[id.0] {
                PrimState::Fifo { items, .. } => items.front().map(|v| v.to_words()),
                _ => None,
            },
            Backend::Flat(f) => {
                let p = &f.meta.prims[id.0];
                match p.kind {
                    FlatKind::Fifo { spill, .. } => {
                        flat::fifo_front_wire(p, f.block(p), &f.spills[spill])
                    }
                    _ => None,
                }
            }
        }
    }

    /// Dequeues the front of a FIFO primitive.
    ///
    /// # Errors
    ///
    /// [`ExecError::GuardFail`] if the FIFO is empty, like `deq`.
    pub fn fifo_deq(&mut self, id: PrimId) -> ExecResult<()> {
        self.call_action_at(id, PrimMethod::Deq, &[])
    }

    /// Enqueues a value given in transactor wire format onto a FIFO
    /// primitive — the receive half of transactor marshaling. On the
    /// flat backend the words are written straight into the arena slot
    /// without materializing a [`Value`].
    ///
    /// # Errors
    ///
    /// [`ExecError::Type`] if the word stream is shorter than `ty`
    /// requires (checked before any state is touched, exactly like the
    /// tree path's decode-then-enqueue), [`ExecError::GuardFail`] if
    /// the FIFO is full.
    pub fn enq_wire(&mut self, id: PrimId, ty: &Type, wire: &[u32]) -> ExecResult<()> {
        if let Backend::Flat(f) = &mut self.backend {
            let meta = Arc::clone(&f.meta);
            if let Some(p) = meta.prims.get(id.0) {
                if let FlatKind::Fifo { cap, spill } = p.kind {
                    let need = ty.width() as usize;
                    let avail = wire.len() * 32;
                    if avail < need {
                        return Err(ExecError::Type(format!(
                            "word stream too short: need {need} bits, have {avail}"
                        )));
                    }
                    self.sched_dirty.mark(id.0);
                    mark_span(&mut self.ckpt_dirty, p.start, p.words);
                    self.ckpt_dirty.mark(meta.n_pages + meta.n_dyns + spill);
                    let (head, len) = flat::fifo_geom(&f.arena[p.start..p.start + p.words]);
                    if len + f.spills[spill].len() >= cap {
                        return Err(ExecError::GuardFail);
                    }
                    let slot = (head + len) % cap;
                    let at = p.start + 2 + slot * p.lane;
                    wire_to_flat(p.layout.width, wire, &mut f.arena[at..at + p.lane])?;
                    f.arena[p.start + 1] = (len + 1) as u64;
                    return Ok(());
                }
            }
        }
        let v = Value::from_words(ty, wire)?;
        self.call_action_at(id, PrimMethod::Enq, &[v])
    }

    /// Applies a committed shadow entry to the store. Tree shadows (and
    /// dyn shadows on the flat backend) replace the whole state; flat
    /// word logs copy back exactly the words they cover — for a sparse
    /// register-file log that is Θ(touched cells), which is what keeps
    /// incremental checkpoints proportional to the words written.
    fn apply_shadow(&mut self, id: PrimId, e: ShadowEntry) {
        match e {
            ShadowEntry::Tree(st) => self.set_state(id, st),
            ShadowEntry::Reg(lane) => {
                self.sched_dirty.mark(id.0);
                let Backend::Flat(f) = &mut self.backend else {
                    unreachable!("flat shadow entry over a tree store");
                };
                let meta = Arc::clone(&f.meta);
                let p = &meta.prims[id.0];
                mark_span(&mut self.ckpt_dirty, p.start, p.words);
                f.arena[p.start..p.start + p.words].copy_from_slice(&lane);
            }
            ShadowEntry::Fifo { words, spill } => {
                self.sched_dirty.mark(id.0);
                let Backend::Flat(f) = &mut self.backend else {
                    unreachable!("flat shadow entry over a tree store");
                };
                let meta = Arc::clone(&f.meta);
                let p = &meta.prims[id.0];
                let FlatKind::Fifo { spill: si, .. } = p.kind else {
                    unreachable!("fifo shadow on a non-fifo");
                };
                mark_span(&mut self.ckpt_dirty, p.start, p.words);
                self.ckpt_dirty.mark(meta.n_pages + meta.n_dyns + si);
                f.arena[p.start..p.start + p.words].copy_from_slice(&words);
                f.spills[si] = spill;
            }
            ShadowEntry::Cells(map) => {
                self.sched_dirty.mark(id.0);
                let Backend::Flat(f) = &mut self.backend else {
                    unreachable!("flat shadow entry over a tree store");
                };
                let meta = Arc::clone(&f.meta);
                let p = &meta.prims[id.0];
                for (cell, lane) in map {
                    let at = p.start + cell * p.lane;
                    mark_span(&mut self.ckpt_dirty, at, p.lane);
                    f.arena[at..at + p.lane].copy_from_slice(&lane);
                }
            }
        }
    }

    /// Mutably borrows a primitive's committed state (used by test
    /// benches, not by rule execution). The primitive is conservatively
    /// marked dirty.
    ///
    /// # Panics
    ///
    /// Panics on a flat store, which has no boxed per-primitive state to
    /// borrow; use [`Store::call_action_at`] / [`Store::set_state`].
    pub fn state_mut(&mut self, id: PrimId) -> &mut PrimState {
        self.sched_dirty.mark(id.0);
        match &mut self.backend {
            Backend::Tree { states, .. } => {
                self.ckpt_dirty.mark(id.0);
                &mut states[id.0]
            }
            Backend::Flat(_) => panic!("tree state access on a flat store (use set_state)"),
        }
    }

    /// Pushes a value into a `Source` primitive (test-bench input).
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a `Source`.
    pub fn push_source(&mut self, id: PrimId, v: Value) {
        self.try_push_source(id, v)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    /// Non-panicking [`Store::push_source`].
    ///
    /// # Errors
    ///
    /// [`ExecError::Type`] when `id` is out of range or not a `Source`.
    pub fn try_push_source(&mut self, id: PrimId, v: Value) -> ExecResult<()> {
        match &mut self.backend {
            Backend::Tree { states, .. } => match states.get_mut(id.0) {
                Some(PrimState::Source { queue }) => {
                    queue.push_back(v);
                    self.sched_dirty.mark(id.0);
                    self.ckpt_dirty.mark(id.0);
                    Ok(())
                }
                Some(other) => Err(ExecError::Type(format!(
                    "push_source on {}",
                    other.kind_name()
                ))),
                None => Err(ExecError::Type(format!(
                    "push_source on unknown primitive #{}",
                    id.0
                ))),
            },
            Backend::Flat(f) => {
                let meta = Arc::clone(&f.meta);
                let Some(p) = meta.prims.get(id.0) else {
                    return Err(ExecError::Type(format!(
                        "push_source on unknown primitive #{}",
                        id.0
                    )));
                };
                let FlatKind::Dyn { idx } = p.kind else {
                    return Err(ExecError::Type(format!("push_source on {}", p.kind_name)));
                };
                match &mut f.dyns[idx] {
                    PrimState::Source { queue } => {
                        queue.push_back(v);
                        self.sched_dirty.mark(id.0);
                        self.ckpt_dirty.mark(meta.n_pages + idx);
                        Ok(())
                    }
                    other => Err(ExecError::Type(format!(
                        "push_source on {}",
                        other.kind_name()
                    ))),
                }
            }
        }
    }

    /// Number of values still pending in a `Source`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a `Source`.
    pub fn source_pending(&self, id: PrimId) -> usize {
        self.try_source_pending(id)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Non-panicking [`Store::source_pending`].
    ///
    /// # Errors
    ///
    /// [`ExecError::Type`] when `id` is out of range or not a `Source`.
    pub fn try_source_pending(&self, id: PrimId) -> ExecResult<usize> {
        match self.dyn_state(id, "source_pending")? {
            PrimState::Source { queue } => Ok(queue.len()),
            other => Err(ExecError::Type(format!(
                "source_pending on {}",
                other.kind_name()
            ))),
        }
    }

    /// Resolves a primitive to its boxed state on either backend, for
    /// the source/sink test-bench accessors: the tree backend boxes
    /// everything, the flat backend boxes exactly its dyns. A flat arena
    /// primitive produces the same kind-mismatch error the tree would.
    fn dyn_state(&self, id: PrimId, what: &str) -> ExecResult<&PrimState> {
        match &self.backend {
            Backend::Tree { states, .. } => states
                .get(id.0)
                .ok_or_else(|| ExecError::Type(format!("{what} on unknown primitive #{}", id.0))),
            Backend::Flat(f) => {
                let Some(p) = f.meta.prims.get(id.0) else {
                    return Err(ExecError::Type(format!(
                        "{what} on unknown primitive #{}",
                        id.0
                    )));
                };
                match p.kind {
                    FlatKind::Dyn { idx } => Ok(&f.dyns[idx]),
                    _ => Err(ExecError::Type(format!("{what} on {}", p.kind_name))),
                }
            }
        }
    }

    /// The values a `Sink` has consumed so far.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a `Sink`.
    pub fn sink_values(&self, id: PrimId) -> &[Value] {
        self.try_sink_values(id).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Non-panicking [`Store::sink_values`].
    ///
    /// # Errors
    ///
    /// [`ExecError::Type`] when `id` is out of range or not a `Sink`.
    pub fn try_sink_values(&self, id: PrimId) -> ExecResult<&[Value]> {
        match self.dyn_state(id, "sink_values")? {
            PrimState::Sink { consumed } => Ok(consumed),
            other => Err(ExecError::Type(format!(
                "sink_values on {}",
                other.kind_name()
            ))),
        }
    }

    /// Total words currently held by all primitives (used by the
    /// full-shadow ablation to price a whole-state copy). Identical
    /// across backends for well-typed state.
    pub fn total_words(&self) -> u64 {
        match &self.backend {
            Backend::Tree { states, .. } => states.iter().map(PrimState::size_words).sum(),
            Backend::Flat(f) => f.total_words(),
        }
    }

    /// Captures a deep copy of every primitive's committed state —
    /// register contents, FIFO occupancy, register files, and the
    /// source/sink queues. This is the state half of a checkpoint; pair
    /// it with [`Store::restore`] to rewind a run.
    pub fn snapshot(&self) -> Store {
        self.clone()
    }

    /// Restores every primitive to a previously captured snapshot.
    /// After this call the store is bit-identical to the moment
    /// [`Store::snapshot`] was taken. Everything is marked dirty: guard
    /// caches must be invalidated and the checkpoint mirror is stale.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot was taken from a different design
    /// (primitive count mismatch).
    pub fn restore(&mut self, snap: &Store) {
        assert_eq!(self.len(), snap.len(), "snapshot from a different design");
        match (&mut self.backend, &snap.backend) {
            (Backend::Tree { states, .. }, Backend::Tree { states: from, .. }) => {
                states.clone_from(from);
            }
            (Backend::Flat(f), Backend::Flat(from)) => {
                f.arena.clone_from(&from.arena);
                f.dyns.clone_from(&from.dyns);
                f.spills.clone_from(&from.spills);
            }
            _ => panic!("snapshot from a different store backend"),
        }
        self.sched_dirty.mark_all();
        self.ckpt_dirty.mark_all();
    }

    /// Captures an incremental snapshot: deep-copies only the primitives
    /// mutated since the previous `snapshot_cow` (or since creation), and
    /// aliases the rest from the copy-on-write mirror. The returned
    /// snapshot is immutable and cheap to clone.
    pub fn snapshot_cow(&mut self) -> StoreSnapshot {
        let mut dirty = Vec::new();
        self.ckpt_dirty.drain_into(&mut dirty);
        match &mut self.backend {
            Backend::Tree { states, mirror } => {
                for i in dirty {
                    let st = &states[i];
                    self.ckpt_copied_words += st.size_words();
                    mirror[i] = Arc::new(st.clone());
                }
                StoreSnapshot {
                    inner: SnapInner::Tree(mirror.clone()),
                }
            }
            Backend::Flat(f) => {
                let meta = Arc::clone(&f.meta);
                for i in dirty {
                    if i < meta.n_pages {
                        // Dirty arena pages copy by fixed-size memcpy, so
                        // copied words are counted in 64-bit arena words
                        // (pages × PAGE_WORDS), proportional to the words
                        // actually written between cuts — not the total
                        // state and not the tree's per-value unit.
                        self.ckpt_copied_words += PAGE_WORDS as u64;
                        f.page_mirror[i] =
                            Arc::new(f.arena[i * PAGE_WORDS..(i + 1) * PAGE_WORDS].to_vec());
                    } else if i < meta.n_pages + meta.n_dyns {
                        let d = i - meta.n_pages;
                        self.ckpt_copied_words += f.dyns[d].size_words();
                        f.dyn_mirror[d] = Arc::new(f.dyns[d].clone());
                    } else {
                        let s = i - meta.n_pages - meta.n_dyns;
                        self.ckpt_copied_words += f.spills[s]
                            .iter()
                            .map(|v| v.type_of().words() as u64)
                            .sum::<u64>();
                        f.spill_mirror[s] = Arc::new(f.spills[s].clone());
                    }
                }
                StoreSnapshot {
                    inner: SnapInner::Flat(FlatSnap {
                        kinds: Arc::new(meta.kind_tags.clone()),
                        pages: f.page_mirror.clone(),
                        dyns: f.dyn_mirror.clone(),
                        spills: f.spill_mirror.clone(),
                    }),
                }
            }
        }
    }

    /// Restores every primitive from an incremental snapshot. After this
    /// call the store is bit-identical to the moment the snapshot was
    /// taken; the mirror re-aliases the snapshot so the next
    /// `snapshot_cow` again copies only what changes from here on.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot was taken from a different design
    /// (primitive count mismatch).
    pub fn restore_cow(&mut self, snap: &StoreSnapshot) {
        assert_eq!(self.len(), snap.len(), "snapshot from a different design");
        match (&mut self.backend, &snap.inner) {
            (Backend::Tree { states, mirror }, SnapInner::Tree(from)) => {
                for (st, arc) in states.iter_mut().zip(from) {
                    st.clone_from(arc);
                }
                mirror.clone_from(from);
                self.ckpt_dirty = DirtyTracker::clean(states.len());
            }
            (Backend::Flat(f), SnapInner::Flat(fs)) => {
                assert_eq!(
                    fs.pages.len(),
                    f.meta.n_pages,
                    "snapshot from a different design"
                );
                assert_eq!(
                    fs.dyns.len(),
                    f.meta.n_dyns,
                    "snapshot from a different design"
                );
                assert_eq!(
                    fs.spills.len(),
                    f.meta.n_spills,
                    "snapshot from a different design"
                );
                for (i, pg) in fs.pages.iter().enumerate() {
                    f.arena[i * PAGE_WORDS..(i + 1) * PAGE_WORDS].copy_from_slice(pg);
                }
                for (d, arc) in f.dyns.iter_mut().zip(&fs.dyns) {
                    d.clone_from(arc);
                }
                for (s, arc) in f.spills.iter_mut().zip(&fs.spills) {
                    s.clone_from(arc);
                }
                f.page_mirror.clone_from(&fs.pages);
                f.dyn_mirror.clone_from(&fs.dyns);
                f.spill_mirror.clone_from(&fs.spills);
                self.ckpt_dirty =
                    DirtyTracker::clean(f.meta.n_pages + f.meta.n_dyns + f.meta.n_spills);
            }
            _ => panic!("snapshot from a different store backend"),
        }
        // Guard caches were built against the pre-restore state.
        self.sched_dirty.mark_all();
    }

    /// Moves the primitives dirtied since the last drain into `out`
    /// (appended; `out` is not cleared). Used by the event-driven
    /// schedulers to invalidate cached guard verdicts.
    pub fn drain_sched_dirty(&mut self, out: &mut Vec<PrimId>) {
        for i in &self.sched_dirty.list {
            self.sched_dirty.flags[*i] = false;
        }
        out.extend(self.sched_dirty.list.drain(..).map(PrimId));
    }

    /// Total words deep-copied by incremental snapshots over this store's
    /// lifetime — the measurable cost of checkpointing, proportional to
    /// the state actually dirtied between cuts.
    pub fn ckpt_copied_words(&self) -> u64 {
        self.ckpt_copied_words
    }
}

/// Shadow allocation policy (§6.3 "Partial Shadowing" ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShadowPolicy {
    /// Clone a primitive into the log only when it is first written
    /// (what the optimized compiler does).
    #[default]
    Partial,
    /// Price a full copy of all state at transaction start (what a naive
    /// transactional implementation does). Functionally identical; only the
    /// metered cost differs.
    Full,
    /// No shadowing at all: writes go straight to the committed store.
    /// Only legal for rules whose guards were fully lifted (§6.3 "perform
    /// the computation in situ to avoid the cost of commit entirely") —
    /// parallel composition and `localGuard` are rejected under this
    /// policy, and a guard failure mid-rule is a compiler bug.
    InPlace,
}

/// Execution cost counters. These are the quantities the generated C++
/// would spend real time on; the software cost model converts them to CPU
/// cycles (see [`crate::sched::CostModel`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Cost {
    /// Weighted ALU operations executed.
    pub ops: u64,
    /// Primitive value-method invocations.
    pub reads: u64,
    /// Primitive action-method invocations.
    pub writes: u64,
    /// Words copied into shadows (clone-on-write or full-copy).
    pub shadow_words: u64,
    /// Words copied at commit.
    pub commit_words: u64,
    /// Transactions rolled back (guard failures after partial execution).
    pub rollbacks: u64,
    /// Guard expressions evaluated by the scheduler.
    pub guard_evals: u64,
    /// Guard evaluations skipped because the cached verdict was still
    /// valid (no primitive in the guard's read set was dirtied). Carries
    /// no cycle weight — it measures work avoided, not work done.
    pub guard_evals_skipped: u64,
    /// Transactions that required try/catch-style setup (not guard-lifted).
    pub txn_setups: u64,
    /// Transactions executed on the lifted, in-place fast path.
    pub inplace_runs: u64,
}

impl Cost {
    /// Appends the counters' stable binary encoding (ten `u64`s in
    /// declaration order).
    pub fn encode(&self, w: &mut ByteWriter) {
        for v in [
            self.ops,
            self.reads,
            self.writes,
            self.shadow_words,
            self.commit_words,
            self.rollbacks,
            self.guard_evals,
            self.guard_evals_skipped,
            self.txn_setups,
            self.inplace_runs,
        ] {
            w.u64(v);
        }
    }

    /// Decodes counters previously written by [`Cost::encode`].
    pub fn decode(r: &mut ByteReader<'_>) -> CodecResult<Cost> {
        Ok(Cost {
            ops: r.u64()?,
            reads: r.u64()?,
            writes: r.u64()?,
            shadow_words: r.u64()?,
            commit_words: r.u64()?,
            rollbacks: r.u64()?,
            guard_evals: r.u64()?,
            guard_evals_skipped: r.u64()?,
            txn_setups: r.u64()?,
            inplace_runs: r.u64()?,
        })
    }

    /// Adds another counter set into this one.
    pub fn add(&mut self, other: &Cost) {
        self.ops += other.ops;
        self.reads += other.reads;
        self.writes += other.writes;
        self.shadow_words += other.shadow_words;
        self.commit_words += other.commit_words;
        self.rollbacks += other.rollbacks;
        self.guard_evals += other.guard_evals;
        self.guard_evals_skipped += other.guard_evals_skipped;
        self.txn_setups += other.txn_setups;
        self.inplace_runs += other.inplace_runs;
    }
}

/// One primitive's shadow in a transaction frame. On the tree backend a
/// shadow is a whole cloned [`PrimState`]; on the flat backend it is a
/// small word log — a copied register lane, a copied FIFO ring block, or
/// a sparse per-cell map for register files (only the touched cells are
/// ever copied). Boxed flat primitives (sources/sinks) shadow as tree
/// states on either backend.
#[derive(Debug, Clone)]
enum ShadowEntry {
    /// Whole cloned state.
    Tree(PrimState),
    /// Copied register lane (bit-packed 64-bit words).
    Reg(Vec<u64>),
    /// Copied FIFO ring block (`[head, len, slots..]`) plus spill.
    Fifo {
        words: Vec<u64>,
        spill: VecDeque<Value>,
    },
    /// Sparse register-file word log: touched cell index → copied lane.
    /// Reads of untouched cells fall through to the base arena.
    Cells(HashMap<usize, Vec<u64>>),
}

/// Builds the first-touch shadow of a primitive from the base store.
fn make_shadow(base: &Store, id: PrimId) -> ShadowEntry {
    match &base.backend {
        Backend::Tree { states, .. } => ShadowEntry::Tree(states[id.0].clone()),
        Backend::Flat(f) => {
            let p = &f.meta.prims[id.0];
            match p.kind {
                FlatKind::Reg => ShadowEntry::Reg(f.block(p).to_vec()),
                FlatKind::Fifo { spill, .. } => ShadowEntry::Fifo {
                    words: f.block(p).to_vec(),
                    spill: f.spills[spill].clone(),
                },
                FlatKind::RegFile { .. } => ShadowEntry::Cells(HashMap::new()),
                FlatKind::Dyn { idx } => ShadowEntry::Tree(f.dyns[idx].clone()),
            }
        }
    }
}

/// The metered size of a shadowed primitive in words — the same quantity
/// [`PrimState::size_words`] reports for the equivalent tree state, so
/// shadow and commit costs are cycle-identical across backends. (A sparse
/// cell log still prices the whole register file: the cost model meters
/// what the generated C++ would copy for that primitive, not the log's
/// physical size.)
fn shadow_size_words(base: &Store, id: PrimId, e: &ShadowEntry) -> u64 {
    fn flat_prim(base: &Store, id: PrimId) -> &FlatPrim {
        &base.flat().meta.prims[id.0]
    }
    match e {
        ShadowEntry::Tree(st) => st.size_words(),
        ShadowEntry::Reg(_) => flat_prim(base, id).ty.words() as u64,
        ShadowEntry::Fifo { words, spill } => {
            let p = flat_prim(base, id);
            let len = words[1] as usize + spill.len();
            (len as u64 * p.ty.words() as u64).max(1)
        }
        ShadowEntry::Cells(_) => {
            let p = flat_prim(base, id);
            let FlatKind::RegFile { size } = p.kind else {
                unreachable!("cell log on a non-regfile");
            };
            (size as u64 * p.ty.words() as u64).max(1)
        }
    }
}

/// Invokes a value method against a shadow entry (reads fall through to
/// the base arena for cells the log has not touched).
fn shadow_call_value(
    base: &Store,
    id: PrimId,
    e: &ShadowEntry,
    m: PrimMethod,
    args: &[Value],
) -> ExecResult<Value> {
    match e {
        ShadowEntry::Tree(st) => st.call_value(m, args),
        ShadowEntry::Reg(lane) => flat::reg_call_value(&base.flat().meta.prims[id.0], lane, m),
        ShadowEntry::Fifo { words, spill } => {
            flat::fifo_call_value(&base.flat().meta.prims[id.0], words, spill, m)
        }
        ShadowEntry::Cells(map) => {
            let f = base.flat();
            let p = &f.meta.prims[id.0];
            flat::regfile_call_value(
                p,
                flat::Cells::Sparse {
                    map,
                    base: f.block(p),
                },
                m,
                args,
            )
        }
    }
}

/// Invokes an action method against a shadow entry. Register-file writes
/// copy only the touched cell out of the base arena into the log.
fn shadow_call_action(
    base: &Store,
    id: PrimId,
    e: &mut ShadowEntry,
    m: PrimMethod,
    args: &[Value],
) -> ExecResult<()> {
    match e {
        ShadowEntry::Tree(st) => st.call_action(m, args),
        ShadowEntry::Reg(lane) => {
            flat::reg_call_action(&base.flat().meta.prims[id.0], lane, m, args)
        }
        ShadowEntry::Fifo { words, spill } => {
            flat::fifo_call_action(&base.flat().meta.prims[id.0], words, spill, m, args)
        }
        ShadowEntry::Cells(map) => {
            let f = base.flat();
            let p = &f.meta.prims[id.0];
            flat::regfile_call_action_sparse(p, map, f.block(p), m, args)
        }
    }
}

/// Word-level value read against a shadow entry: the unboxed counterpart
/// of [`shadow_call_value`]. Only reachable for flat-kind shadows — the
/// lowering declines word paths for `Dyn` primitives, so a `Tree` entry
/// here is a compiler bug, not a runtime condition.
fn shadow_value_word(
    base: &Store,
    id: PrimId,
    e: &ShadowEntry,
    m: PrimMethod,
    cell: usize,
    off: u32,
    width: u32,
) -> ExecResult<u64> {
    let p = &base.flat().meta.prims[id.0];
    match (e, m) {
        (ShadowEntry::Reg(lane), PrimMethod::RegRead) => Ok(get_bits(lane, off as usize, width)),
        (ShadowEntry::Fifo { words, spill }, PrimMethod::First) => {
            flat::fifo_first_word(p, words, spill, off, width)
        }
        (ShadowEntry::Fifo { words, spill }, PrimMethod::NotEmpty) => {
            Ok((flat::fifo_geom(words).1 + spill.len() > 0) as u64)
        }
        (ShadowEntry::Fifo { words, spill }, PrimMethod::NotFull) => {
            let FlatKind::Fifo { cap, .. } = p.kind else {
                unreachable!("fifo shadow on a non-fifo");
            };
            Ok((flat::fifo_geom(words).1 + spill.len() < cap) as u64)
        }
        (ShadowEntry::Cells(map), PrimMethod::Sub) => {
            let FlatKind::RegFile { size } = p.kind else {
                unreachable!("cell log on a non-regfile");
            };
            if cell >= size {
                return Err(ExecError::Bounds(format!("sub {cell} out of {size}")));
            }
            match map.get(&cell) {
                Some(lane) => Ok(get_bits(lane, off as usize, width)),
                None => Ok(get_bits(
                    base.flat().block(p),
                    cell * p.lane * 64 + off as usize,
                    width,
                )),
            }
        }
        _ => unreachable!("word-level read on a boxed shadow"),
    }
}

/// Packed-aggregate value read against a shadow entry (copies bits
/// instead of returning one word).
#[allow(clippy::too_many_arguments)]
fn shadow_value_packed(
    base: &Store,
    id: PrimId,
    e: &ShadowEntry,
    m: PrimMethod,
    cell: usize,
    off: u32,
    width: u32,
    dst: &mut [u64],
    dst_bit: usize,
) -> ExecResult<()> {
    let p = &base.flat().meta.prims[id.0];
    match (e, m) {
        (ShadowEntry::Reg(lane), PrimMethod::RegRead) => {
            copy_bits(lane, off as usize, dst, dst_bit, width);
            Ok(())
        }
        (ShadowEntry::Fifo { words, spill }, PrimMethod::First) => {
            flat::fifo_first_packed(p, words, spill, off, width, dst, dst_bit)
        }
        (ShadowEntry::Cells(map), PrimMethod::Sub) => {
            let FlatKind::RegFile { size } = p.kind else {
                unreachable!("cell log on a non-regfile");
            };
            if cell >= size {
                return Err(ExecError::Bounds(format!("sub {cell} out of {size}")));
            }
            match map.get(&cell) {
                Some(lane) => copy_bits(lane, off as usize, dst, dst_bit, width),
                None => copy_bits(
                    base.flat().block(p),
                    cell * p.lane * 64 + off as usize,
                    dst,
                    dst_bit,
                    width,
                ),
            }
            Ok(())
        }
        _ => unreachable!("word-level read on a boxed shadow"),
    }
}

/// Word-level action against a shadow entry: the unboxed counterpart of
/// [`shadow_call_action`], with the same error order as the boxed path
/// (register-file bounds checks fire after the shadow exists and before
/// the touched cell is copied into the log).
fn shadow_word_action(
    base: &Store,
    id: PrimId,
    e: &mut ShadowEntry,
    m: PrimMethod,
    cell: i64,
    w: u64,
) -> ExecResult<()> {
    let p = &base.flat().meta.prims[id.0];
    match (e, m) {
        (ShadowEntry::Reg(lane), PrimMethod::RegWrite) => {
            put_bits(lane, 0, p.layout.width, w);
            Ok(())
        }
        (ShadowEntry::Fifo { words, spill }, PrimMethod::Enq) => {
            flat::fifo_enq_word(p, words, spill.len(), w)
        }
        (ShadowEntry::Cells(map), PrimMethod::Upd) => {
            let FlatKind::RegFile { size } = p.kind else {
                unreachable!("cell log on a non-regfile");
            };
            let cell = usize::try_from(cell)
                .map_err(|_| ExecError::Bounds(format!("negative index {cell}")))?;
            if cell >= size {
                return Err(ExecError::Bounds(format!("upd {cell} out of {size}")));
            }
            let f = base.flat();
            let lane = map
                .entry(cell)
                .or_insert_with(|| f.block(p)[cell * p.lane..(cell + 1) * p.lane].to_vec());
            put_bits(lane, 0, p.layout.width, w);
            Ok(())
        }
        _ => unreachable!("word-level action on a boxed shadow"),
    }
}

/// Packed-aggregate action against a shadow entry.
fn shadow_packed_action(
    base: &Store,
    id: PrimId,
    e: &mut ShadowEntry,
    m: PrimMethod,
    cell: i64,
    src: &[u64],
    src_bit: usize,
) -> ExecResult<()> {
    let p = &base.flat().meta.prims[id.0];
    match (e, m) {
        (ShadowEntry::Reg(lane), PrimMethod::RegWrite) => {
            copy_bits(src, src_bit, lane, 0, p.layout.width);
            Ok(())
        }
        (ShadowEntry::Fifo { words, spill }, PrimMethod::Enq) => {
            flat::fifo_enq_packed(p, words, spill.len(), src, src_bit)
        }
        (ShadowEntry::Cells(map), PrimMethod::Upd) => {
            let FlatKind::RegFile { size } = p.kind else {
                unreachable!("cell log on a non-regfile");
            };
            let cell = usize::try_from(cell)
                .map_err(|_| ExecError::Bounds(format!("negative index {cell}")))?;
            if cell >= size {
                return Err(ExecError::Bounds(format!("upd {cell} out of {size}")));
            }
            let f = base.flat();
            let lane = map
                .entry(cell)
                .or_insert_with(|| f.block(p)[cell * p.lane..(cell + 1) * p.lane].to_vec());
            copy_bits(src, src_bit, lane, 0, p.layout.width);
            Ok(())
        }
        _ => unreachable!("word-level action on a boxed shadow"),
    }
}

/// One shadow frame: the cloned states and the set of primitives mutated
/// through this frame.
#[derive(Debug, Default)]
struct Frame {
    entries: HashMap<PrimId, ShadowEntry>,
    written: HashSet<PrimId>,
}

/// A transaction: a stack of shadow frames over a base store.
///
/// Reads search the frame stack top-down and fall through to the base;
/// writes clone the primitive into the top frame on first touch.
#[derive(Debug)]
pub struct Txn<'s> {
    base: &'s mut Store,
    frames: Vec<Frame>,
    /// Frames of in-flight compiled parallel branches: [`Txn::par_mid`]
    /// stashes the first branch's frame here so the second branch cannot
    /// observe its writes; [`Txn::par_end`] pops it for the merge. A
    /// stack, so nested `Par` compiles too.
    par_stash: Vec<Frame>,
    /// Cost counters for this transaction.
    pub cost: Cost,
    /// Shadow pricing policy.
    pub policy: ShadowPolicy,
    /// Safety bound on `loop` iterations.
    pub max_loop_iters: u64,
}

impl<'s> Txn<'s> {
    /// Opens a transaction with a single root frame.
    pub fn new(base: &'s mut Store, policy: ShadowPolicy) -> Txn<'s> {
        let mut cost = Cost::default();
        if policy == ShadowPolicy::Full {
            cost.shadow_words = base.total_words();
        }
        Txn {
            base,
            frames: vec![Frame::default()],
            par_stash: Vec::new(),
            cost,
            policy,
            max_loop_iters: 1_000_000,
        }
    }

    /// Looks up the innermost shadow entry for a primitive, if any.
    fn view_entry(&self, id: PrimId) -> Option<&ShadowEntry> {
        self.frames.iter().rev().find_map(|f| f.entries.get(&id))
    }

    /// Invokes a value method through the log: the frame stack is
    /// searched top-down, and a miss reads the committed store directly.
    pub fn call_value(&mut self, id: PrimId, m: PrimMethod, args: &[Value]) -> ExecResult<Value> {
        self.cost.reads += 1;
        match self.view_entry(id) {
            Some(e) => shadow_call_value(self.base, id, e, m, args),
            None => self.base.call_value_at(id, m, args),
        }
    }

    /// Invokes an action method, shadowing the primitive into the top
    /// frame on first write (partial shadowing — on the flat backend the
    /// shadow is a word log, not a cloned tree). Under
    /// [`ShadowPolicy::InPlace`] the write goes straight to the committed
    /// store.
    pub fn call_action(&mut self, id: PrimId, m: PrimMethod, args: &[Value]) -> ExecResult<()> {
        self.cost.writes += 1;
        if self.policy == ShadowPolicy::InPlace {
            return self.base.call_action_at(id, m, args);
        }
        self.ensure_shadow_entry(id);
        let frame = self.frames.last_mut().expect("root frame missing");
        let entry = frame.entries.get_mut(&id).expect("just inserted");
        shadow_call_action(self.base, id, entry, m, args)?;
        frame.written.insert(id);
        Ok(())
    }

    /// Ensures the top frame holds a shadow entry for `id`: clones the
    /// nearest lower-frame shadow if one exists (it carries that frame's
    /// occupancy), else shadows the committed state. First touch under
    /// [`ShadowPolicy::Partial`] prices the shadow into
    /// `cost.shadow_words` — this happens *before* any action-level error
    /// (e.g. a bad register-file index), which is why the word-level
    /// entry points below share this helper with [`Txn::call_action`].
    fn ensure_shadow_entry(&mut self, id: PrimId) {
        let top = self.frames.len() - 1;
        if !self.frames[top].entries.contains_key(&id) {
            let entry = self.frames[..top]
                .iter()
                .rev()
                .find_map(|f| f.entries.get(&id).cloned())
                .unwrap_or_else(|| make_shadow(self.base, id));
            if self.policy == ShadowPolicy::Partial {
                self.cost.shadow_words += shadow_size_words(self.base, id, &entry);
            }
            self.frames[top].entries.insert(id, entry);
        }
    }

    /// Word-level [`Txn::call_value`]: charges one read, then reads the
    /// packed span through the frame stack without materializing a
    /// [`Value`]. Coverage mirrors [`Store::call_value_word_at`].
    pub(crate) fn call_value_word(
        &mut self,
        id: PrimId,
        m: PrimMethod,
        cell: usize,
        off: u32,
        width: u32,
    ) -> ExecResult<u64> {
        self.cost.reads += 1;
        self.peek_value_word(id, m, cell, off, width)
    }

    /// Uncharged shadow-aware word read: used for availability probes
    /// that precede a separately-charged access (e.g. checking a FIFO is
    /// non-empty before charging its `first`), where the boxed path also
    /// charges nothing.
    pub(crate) fn peek_value_word(
        &self,
        id: PrimId,
        m: PrimMethod,
        cell: usize,
        off: u32,
        width: u32,
    ) -> ExecResult<u64> {
        match self.view_entry(id) {
            Some(e) => shadow_value_word(self.base, id, e, m, cell, off, width),
            None => self.base.call_value_word_at(id, m, cell, off, width),
        }
    }

    /// Uncharged shadow-aware packed read (the aggregate counterpart of
    /// [`Txn::peek_value_word`]); the caller meters the access.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn peek_value_packed(
        &self,
        id: PrimId,
        m: PrimMethod,
        cell: usize,
        off: u32,
        width: u32,
        dst: &mut [u64],
        dst_bit: usize,
    ) -> ExecResult<()> {
        match self.view_entry(id) {
            Some(e) => shadow_value_packed(self.base, id, e, m, cell, off, width, dst, dst_bit),
            None => self
                .base
                .call_value_packed_at(id, m, cell, off, width, dst, dst_bit),
        }
    }

    /// Word-level [`Txn::call_action`]: same charge (one write), same
    /// first-touch shadow creation and pricing, same error order — only
    /// the payload is an unboxed word instead of a [`Value`].
    pub(crate) fn call_action_word(
        &mut self,
        id: PrimId,
        m: PrimMethod,
        cell: i64,
        w: u64,
    ) -> ExecResult<()> {
        self.cost.writes += 1;
        if self.policy == ShadowPolicy::InPlace {
            return self.base.call_action_word_at(id, m, cell, w);
        }
        self.ensure_shadow_entry(id);
        let frame = self.frames.last_mut().expect("root frame missing");
        let entry = frame.entries.get_mut(&id).expect("just inserted");
        shadow_word_action(self.base, id, entry, m, cell, w)?;
        frame.written.insert(id);
        Ok(())
    }

    /// Packed-aggregate [`Txn::call_action`]: writes the element's packed
    /// bits from `src[src_bit..]` with boxed-identical metering.
    pub(crate) fn call_action_packed(
        &mut self,
        id: PrimId,
        m: PrimMethod,
        cell: i64,
        src: &[u64],
        src_bit: usize,
    ) -> ExecResult<()> {
        self.cost.writes += 1;
        if self.policy == ShadowPolicy::InPlace {
            return self.base.call_action_packed_at(id, m, cell, src, src_bit);
        }
        self.ensure_shadow_entry(id);
        let frame = self.frames.last_mut().expect("root frame missing");
        let entry = frame.entries.get_mut(&id).expect("just inserted");
        shadow_packed_action(self.base, id, entry, m, cell, src, src_bit)?;
        frame.written.insert(id);
        Ok(())
    }

    /// Pushes a fresh frame (for parallel branches and `localGuard`).
    pub fn push_frame(&mut self) {
        self.frames.push(Frame::default());
    }

    /// Pops the top frame, discarding its effects (branch rollback).
    pub fn pop_discard(&mut self) {
        self.frames.pop().expect("frame underflow");
        self.cost.rollbacks += 1;
    }

    /// Pops the top frame and returns it for later merging.
    fn pop_frame(&mut self) -> Frame {
        self.frames.pop().expect("frame underflow")
    }

    /// Pops the top frame and merges it into the new top (used by
    /// `localGuard` success and parallel-branch merge).
    pub fn pop_merge(&mut self) -> ExecResult<()> {
        let f = self.pop_frame();
        let top = self.frames.last_mut().expect("root frame missing");
        for (id, st) in f.entries {
            // Only propagate written entries; pure clones are dropped.
            if f.written.contains(&id) {
                top.entries.insert(id, st);
                top.written.insert(id);
            }
        }
        Ok(())
    }

    /// Runs two closures as parallel branches: both observe the state as of
    /// now, neither observes the other, and their write sets must be
    /// disjoint (the DOUBLE WRITE ERROR of §6.1).
    ///
    /// # Errors
    ///
    /// Propagates guard failures and other errors from either branch;
    /// returns `DoubleWrite` if both branches mutate the same primitive.
    pub fn run_par<F, G>(&mut self, f: F, g: G) -> ExecResult<()>
    where
        F: FnOnce(&mut Txn<'s>) -> ExecResult<()>,
        G: FnOnce(&mut Txn<'s>) -> ExecResult<()>,
    {
        self.run_par_ctx(&mut (), |t, _| f(t), |t, _| g(t))
    }

    /// [`Txn::run_par`] with a caller context threaded through both
    /// branches sequentially. The branches still run against isolated
    /// frames; only the context is shared, letting the interpreter reuse
    /// one environment instead of cloning it per branch.
    pub fn run_par_ctx<C, F, G>(&mut self, ctx: &mut C, f: F, g: G) -> ExecResult<()>
    where
        F: FnOnce(&mut Txn<'s>, &mut C) -> ExecResult<()>,
        G: FnOnce(&mut Txn<'s>, &mut C) -> ExecResult<()>,
    {
        if self.policy == ShadowPolicy::InPlace {
            return Err(ExecError::Malformed(
                "parallel composition reached an in-place (guard-lifted) execution".into(),
            ));
        }
        self.push_frame();
        match f(self, ctx) {
            Ok(()) => {}
            Err(e) => {
                self.frames.pop();
                return Err(e);
            }
        }
        let fa = self.pop_frame();
        self.push_frame();
        match g(self, ctx) {
            Ok(()) => {}
            Err(e) => {
                self.frames.pop();
                return Err(e);
            }
        }
        let fb = self.pop_frame();
        if let Some(id) = fa.written.intersection(&fb.written).min() {
            return Err(ExecError::DoubleWrite(format!("primitive #{}", id.0)));
        }
        let top = self.frames.last_mut().expect("root frame missing");
        for frame in [fa, fb] {
            for (id, st) in frame.entries {
                if frame.written.contains(&id) {
                    top.entries.insert(id, st);
                    top.written.insert(id);
                }
            }
        }
        Ok(())
    }

    /// Compiled-execution counterpart of [`Txn::run_par`], step one of
    /// three: opens the isolation frame for the first branch. The VM
    /// emits `par_start` / `par_mid` / `par_end` around the two branches
    /// of a compiled `Par`; together they perform exactly the frame
    /// discipline of [`Txn::run_par_ctx`], so modeled costs and outcomes
    /// are identical to the interpreter's.
    ///
    /// # Errors
    ///
    /// Rejects parallel composition under [`ShadowPolicy::InPlace`],
    /// like the interpreter.
    pub fn par_start(&mut self) -> ExecResult<()> {
        if self.policy == ShadowPolicy::InPlace {
            return Err(ExecError::Malformed(
                "parallel composition reached an in-place (guard-lifted) execution".into(),
            ));
        }
        self.push_frame();
        Ok(())
    }

    /// Between compiled parallel branches: stashes the first branch's
    /// frame (so the second observes only entry state) and opens the
    /// second branch's frame.
    pub fn par_mid(&mut self) {
        let fa = self.pop_frame();
        self.par_stash.push(fa);
        self.push_frame();
    }

    /// After the second compiled branch: the double-write check and
    /// merge of [`Txn::run_par`].
    ///
    /// # Errors
    ///
    /// `DoubleWrite` if both branches mutated the same primitive.
    pub fn par_end(&mut self) -> ExecResult<()> {
        let fb = self.pop_frame();
        let fa = self.par_stash.pop().expect("par_end without par_mid");
        if let Some(id) = fa.written.intersection(&fb.written).min() {
            return Err(ExecError::DoubleWrite(format!("primitive #{}", id.0)));
        }
        let top = self.frames.last_mut().expect("root frame missing");
        for frame in [fa, fb] {
            for (id, st) in frame.entries {
                if frame.written.contains(&id) {
                    top.entries.insert(id, st);
                    top.written.insert(id);
                }
            }
        }
        Ok(())
    }

    /// Commits the root frame into the base store. Consumes the transaction.
    ///
    /// # Panics
    ///
    /// Panics if branch frames are still open.
    pub fn commit(mut self) -> Cost {
        assert_eq!(self.frames.len(), 1, "unbalanced frames at commit");
        assert!(self.par_stash.is_empty(), "unbalanced par frames at commit");
        let root = self.frames.pop().expect("root");
        for (id, e) in root.entries {
            if root.written.contains(&id) {
                self.cost.commit_words += shadow_size_words(self.base, id, &e);
                self.base.apply_shadow(id, e);
            }
        }
        self.cost
    }

    /// Abandons the transaction (rule guard failure), leaving the base
    /// store untouched.
    pub fn rollback(mut self) -> Cost {
        self.cost.rollbacks += 1;
        self.frames.clear();
        self.par_stash.clear();
        self.cost
    }

    /// Direct, unshadowed action call against the base store — the §6.3
    /// fast path for rules whose guards were fully lifted. Only safe when
    /// the transformation has proven the body cannot fail past this point.
    pub fn call_action_inplace(
        store: &mut Store,
        id: PrimId,
        m: PrimMethod,
        args: &[Value],
        cost: &mut Cost,
    ) -> ExecResult<()> {
        cost.writes += 1;
        store.call_action_at(id, m, args)
    }

    /// Read-only value-method call against a store (scheduler guard
    /// evaluation and in-place execution).
    pub fn call_value_ro(
        store: &Store,
        id: PrimId,
        m: PrimMethod,
        args: &[Value],
        cost: &mut Cost,
    ) -> ExecResult<Value> {
        cost.reads += 1;
        store.call_value_at(id, m, args)
    }

    /// Number of open frames (for tests).
    pub fn depth(&self) -> usize {
        self.frames.len()
    }

    /// True if the top frame has recorded a write to `id` (or any lower
    /// frame has).
    pub fn has_written(&self, id: PrimId) -> bool {
        self.frames.iter().any(|f| f.written.contains(&id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::PrimDef;
    use crate::prim::PrimSpec;
    use crate::types::Type;

    fn design2() -> Design {
        Design {
            name: "t".into(),
            prims: vec![
                PrimDef {
                    path: "a".into(),
                    spec: PrimSpec::Reg {
                        init: Value::int(8, 1),
                    },
                },
                PrimDef {
                    path: "b".into(),
                    spec: PrimSpec::Reg {
                        init: Value::int(8, 2),
                    },
                },
                PrimDef {
                    path: "q".into(),
                    spec: PrimSpec::Fifo {
                        depth: 1,
                        ty: Type::Int(8),
                    },
                },
            ],
            ..Default::default()
        }
    }

    const A: PrimId = PrimId(0);
    const B: PrimId = PrimId(1);
    const Q: PrimId = PrimId(2);

    #[test]
    fn commit_applies_writes() {
        let d = design2();
        let mut s = Store::new(&d);
        let mut t = Txn::new(&mut s, ShadowPolicy::Partial);
        t.call_action(A, PrimMethod::RegWrite, &[Value::int(8, 9)])
            .unwrap();
        assert_eq!(
            t.call_value(A, PrimMethod::RegRead, &[]).unwrap(),
            Value::int(8, 9)
        );
        let cost = t.commit();
        assert!(cost.commit_words >= 1);
        assert_eq!(
            s.state(A).call_value(PrimMethod::RegRead, &[]).unwrap(),
            Value::int(8, 9)
        );
    }

    #[test]
    fn snapshot_restore_round_trips_all_state() {
        let d = design2();
        let mut s = Store::new(&d);
        s.state_mut(A)
            .call_action(PrimMethod::RegWrite, &[Value::int(8, 7)])
            .unwrap();
        s.state_mut(Q)
            .call_action(PrimMethod::Enq, &[Value::int(8, 5)])
            .unwrap();
        let snap = s.snapshot();
        // Mutate everything, then rewind.
        s.state_mut(A)
            .call_action(PrimMethod::RegWrite, &[Value::int(8, 1)])
            .unwrap();
        s.state_mut(Q).call_action(PrimMethod::Deq, &[]).unwrap();
        assert_ne!(s, snap);
        s.restore(&snap);
        assert_eq!(s, snap);
        assert_eq!(
            s.state(A).call_value(PrimMethod::RegRead, &[]).unwrap(),
            Value::int(8, 7)
        );
        assert_eq!(
            s.state(Q).call_value(PrimMethod::First, &[]).unwrap(),
            Value::int(8, 5)
        );
    }

    #[test]
    fn rollback_discards_writes() {
        let d = design2();
        let mut s = Store::new(&d);
        let mut t = Txn::new(&mut s, ShadowPolicy::Partial);
        t.call_action(A, PrimMethod::RegWrite, &[Value::int(8, 9)])
            .unwrap();
        let cost = t.rollback();
        assert_eq!(cost.rollbacks, 1);
        assert_eq!(
            s.state(A).call_value(PrimMethod::RegRead, &[]).unwrap(),
            Value::int(8, 1)
        );
    }

    #[test]
    fn parallel_swap_semantics() {
        // a := b | b := a must swap, both reading pre-state.
        let d = design2();
        let mut s = Store::new(&d);
        let mut t = Txn::new(&mut s, ShadowPolicy::Partial);
        t.run_par(
            |t| {
                let vb = t.call_value(B, PrimMethod::RegRead, &[])?;
                t.call_action(A, PrimMethod::RegWrite, &[vb])
            },
            |t| {
                let va = t.call_value(A, PrimMethod::RegRead, &[])?;
                t.call_action(B, PrimMethod::RegWrite, &[va])
            },
        )
        .unwrap();
        t.commit();
        assert_eq!(
            s.state(A).call_value(PrimMethod::RegRead, &[]).unwrap(),
            Value::int(8, 2)
        );
        assert_eq!(
            s.state(B).call_value(PrimMethod::RegRead, &[]).unwrap(),
            Value::int(8, 1)
        );
    }

    #[test]
    fn double_write_detected() {
        let d = design2();
        let mut s = Store::new(&d);
        let mut t = Txn::new(&mut s, ShadowPolicy::Partial);
        let r = t.run_par(
            |t| t.call_action(A, PrimMethod::RegWrite, &[Value::int(8, 3)]),
            |t| t.call_action(A, PrimMethod::RegWrite, &[Value::int(8, 4)]),
        );
        assert!(matches!(r, Err(ExecError::DoubleWrite(_))));
    }

    #[test]
    fn parallel_double_deq_is_double_write() {
        // The paper's example: two parallel branches both dequeue the same
        // FIFO — a dynamic error.
        let d = design2();
        let mut s = Store::new(&d);
        s.state_mut(Q)
            .call_action(PrimMethod::Enq, &[Value::int(8, 7)])
            .unwrap();
        let mut t = Txn::new(&mut s, ShadowPolicy::Partial);
        let r = t.run_par(
            |t| t.call_action(Q, PrimMethod::Deq, &[]),
            |t| t.call_action(Q, PrimMethod::Deq, &[]),
        );
        assert!(matches!(r, Err(ExecError::DoubleWrite(_))));
    }

    #[test]
    fn seq_observes_prior_writes() {
        let d = design2();
        let mut s = Store::new(&d);
        let mut t = Txn::new(&mut s, ShadowPolicy::Partial);
        t.call_action(A, PrimMethod::RegWrite, &[Value::int(8, 5)])
            .unwrap();
        let v = t.call_value(A, PrimMethod::RegRead, &[]).unwrap();
        t.call_action(B, PrimMethod::RegWrite, &[v]).unwrap();
        t.commit();
        assert_eq!(
            s.state(B).call_value(PrimMethod::RegRead, &[]).unwrap(),
            Value::int(8, 5)
        );
    }

    #[test]
    fn local_guard_frame_discard() {
        let d = design2();
        let mut s = Store::new(&d);
        let mut t = Txn::new(&mut s, ShadowPolicy::Partial);
        t.push_frame();
        t.call_action(A, PrimMethod::RegWrite, &[Value::int(8, 9)])
            .unwrap();
        t.pop_discard(); // as if the guarded body failed
        assert_eq!(
            t.call_value(A, PrimMethod::RegRead, &[]).unwrap(),
            Value::int(8, 1)
        );
        t.push_frame();
        t.call_action(A, PrimMethod::RegWrite, &[Value::int(8, 7)])
            .unwrap();
        t.pop_merge().unwrap();
        t.commit();
        assert_eq!(
            s.state(A).call_value(PrimMethod::RegRead, &[]).unwrap(),
            Value::int(8, 7)
        );
    }

    #[test]
    fn full_shadow_policy_prices_whole_store() {
        let d = design2();
        let mut s = Store::new(&d);
        let t = Txn::new(&mut s, ShadowPolicy::Full);
        assert!(t.cost.shadow_words >= 3);
    }

    #[test]
    fn partial_shadow_prices_only_touched() {
        let d = design2();
        let mut s = Store::new(&d);
        let mut t = Txn::new(&mut s, ShadowPolicy::Partial);
        assert_eq!(t.cost.shadow_words, 0);
        t.call_action(A, PrimMethod::RegWrite, &[Value::int(8, 0)])
            .unwrap();
        assert_eq!(t.cost.shadow_words, 1);
        // second write to same prim: no new shadow
        t.call_action(A, PrimMethod::RegWrite, &[Value::int(8, 1)])
            .unwrap();
        assert_eq!(t.cost.shadow_words, 1);
    }

    #[test]
    fn cow_snapshot_copies_only_dirty_words() {
        let d = design2();
        let mut s = Store::new(&d);
        // First cut: nothing mutated since creation, so nothing copied.
        let snap0 = s.snapshot_cow();
        assert_eq!(s.ckpt_copied_words(), 0);
        // Dirty one register, checkpoint: only that register is copied.
        s.state_mut(A)
            .call_action(PrimMethod::RegWrite, &[Value::int(8, 9)])
            .unwrap();
        let snap1 = s.snapshot_cow();
        assert_eq!(s.ckpt_copied_words(), 1);
        // Idle cut: still nothing new to copy.
        let _snap2 = s.snapshot_cow();
        assert_eq!(s.ckpt_copied_words(), 1);
        // Restores are exact.
        s.state_mut(A)
            .call_action(PrimMethod::RegWrite, &[Value::int(8, 3)])
            .unwrap();
        s.restore_cow(&snap1);
        assert_eq!(
            s.state(A).call_value(PrimMethod::RegRead, &[]).unwrap(),
            Value::int(8, 9)
        );
        s.restore_cow(&snap0);
        assert_eq!(
            s.state(A).call_value(PrimMethod::RegRead, &[]).unwrap(),
            Value::int(8, 1)
        );
    }

    #[test]
    fn sched_dirty_drains_once_and_remarks() {
        let d = design2();
        let mut s = Store::new(&d);
        let mut dirty = Vec::new();
        // A fresh store is conservatively all-dirty.
        s.drain_sched_dirty(&mut dirty);
        assert_eq!(dirty.len(), 3);
        dirty.clear();
        s.drain_sched_dirty(&mut dirty);
        assert!(dirty.is_empty());
        // Double-touching a primitive marks it once.
        s.state_mut(B);
        s.state_mut(B);
        s.drain_sched_dirty(&mut dirty);
        assert_eq!(dirty, vec![B]);
    }

    #[test]
    fn txn_commit_marks_written_prims_sched_dirty() {
        let d = design2();
        let mut s = Store::new(&d);
        s.drain_sched_dirty(&mut Vec::new());
        let mut t = Txn::new(&mut s, ShadowPolicy::Partial);
        t.call_value(B, PrimMethod::RegRead, &[]).unwrap();
        t.call_action(A, PrimMethod::RegWrite, &[Value::int(8, 9)])
            .unwrap();
        t.commit();
        let mut dirty = Vec::new();
        s.drain_sched_dirty(&mut dirty);
        // Only the written primitive is dirty; the read one is not.
        assert_eq!(dirty, vec![A]);
    }

    #[test]
    fn source_sink_roundtrip() {
        let d = Design {
            name: "io".into(),
            prims: vec![
                PrimDef {
                    path: "in".into(),
                    spec: PrimSpec::Source {
                        ty: Type::Int(8),
                        domain: "SW".into(),
                    },
                },
                PrimDef {
                    path: "out".into(),
                    spec: PrimSpec::Sink {
                        ty: Type::Int(8),
                        domain: "SW".into(),
                    },
                },
            ],
            ..Default::default()
        };
        let mut s = Store::new(&d);
        s.push_source(PrimId(0), Value::int(8, 42));
        assert_eq!(s.source_pending(PrimId(0)), 1);
        let mut t = Txn::new(&mut s, ShadowPolicy::Partial);
        let v = t.call_value(PrimId(0), PrimMethod::First, &[]).unwrap();
        t.call_action(PrimId(0), PrimMethod::Deq, &[]).unwrap();
        t.call_action(PrimId(1), PrimMethod::Enq, &[v]).unwrap();
        t.commit();
        assert_eq!(s.source_pending(PrimId(0)), 0);
        assert_eq!(s.sink_values(PrimId(1)), &[Value::int(8, 42)]);
    }

    // ---- flat backend ---------------------------------------------------

    fn design_rf() -> Design {
        let mut d = design2();
        d.prims.push(PrimDef {
            path: "rf".into(),
            spec: PrimSpec::RegFile {
                size: 8,
                ty: Type::Int(32),
                init: vec![Value::int(32, 1), Value::int(32, 2), Value::int(32, 3)],
            },
        });
        d
    }

    const RF: PrimId = PrimId(3);

    /// Runs an identical transaction script on a store and reports the
    /// cost plus the decoded final states.
    fn scripted_txn(s: &mut Store) -> (Cost, Vec<PrimState>) {
        let mut t = Txn::new(s, ShadowPolicy::Partial);
        t.call_action(A, PrimMethod::RegWrite, &[Value::int(8, 9)])
            .unwrap();
        assert_eq!(
            t.call_value(A, PrimMethod::RegRead, &[]).unwrap(),
            Value::int(8, 9)
        );
        t.call_action(Q, PrimMethod::Enq, &[Value::int(8, 5)])
            .unwrap();
        // Depth-1 FIFO: a second enqueue through the shadow guard-fails.
        assert_eq!(
            t.call_action(Q, PrimMethod::Enq, &[Value::int(8, 6)]),
            Err(ExecError::GuardFail)
        );
        t.call_action(
            RF,
            PrimMethod::Upd,
            &[Value::int(32, 2), Value::int(32, 42)],
        )
        .unwrap();
        assert_eq!(
            t.call_value(RF, PrimMethod::Sub, &[Value::int(32, 2)])
                .unwrap(),
            Value::int(32, 42)
        );
        // Untouched cell reads fall through to the committed base.
        assert_eq!(
            t.call_value(RF, PrimMethod::Sub, &[Value::int(32, 0)])
                .unwrap(),
            Value::int(32, 1)
        );
        let cost = t.commit();
        let states = (0..s.len()).map(|i| s.get_state(PrimId(i))).collect();
        (cost, states)
    }

    #[test]
    fn flat_backend_matches_tree_costs_and_state() {
        let d = design_rf();
        let mut tree = Store::new(&d);
        let mut flat = Store::new_flat(&d);
        assert!(flat.is_flat() && !tree.is_flat());
        let (ct, st) = scripted_txn(&mut tree);
        let (cf, sf) = scripted_txn(&mut flat);
        assert_eq!(ct, cf, "flat txn cost must be cycle-identical to tree");
        assert_eq!(st, sf, "flat state must decode bit-identical to tree");
        assert_eq!(tree, flat);
        assert_eq!(tree.total_words(), flat.total_words());
        // Same guard-probe answers straight off the committed stores.
        for id in [A, B, Q] {
            for m in [PrimMethod::RegRead, PrimMethod::NotEmpty, PrimMethod::First] {
                assert_eq!(
                    tree.call_value_at(id, m, &[]),
                    flat.call_value_at(id, m, &[])
                );
            }
        }
    }

    #[test]
    fn flat_error_texts_match_tree() {
        let d = design_rf();
        let mut tree = Store::new(&d);
        let mut flat = Store::new_flat(&d);
        let probes: &[(PrimId, PrimMethod, Vec<Value>)] = &[
            (Q, PrimMethod::Deq, vec![]),
            (A, PrimMethod::Enq, vec![Value::int(8, 1)]),
            (RF, PrimMethod::Upd, vec![]),
            (RF, PrimMethod::Upd, vec![Value::int(32, 9)]),
            (
                RF,
                PrimMethod::Upd,
                vec![Value::int(32, 99), Value::int(32, 0)],
            ),
            (A, PrimMethod::RegWrite, vec![]),
        ];
        for (id, m, args) in probes {
            assert_eq!(
                tree.call_action_at(*id, *m, args),
                flat.call_action_at(*id, *m, args),
                "action {m:?} on #{id:?}"
            );
        }
        assert_eq!(
            tree.call_value_at(RF, PrimMethod::Sub, &[Value::int(32, 99)]),
            flat.call_value_at(RF, PrimMethod::Sub, &[Value::int(32, 99)])
        );
        assert_eq!(
            tree.call_value_at(A, PrimMethod::First, &[]),
            flat.call_value_at(A, PrimMethod::First, &[])
        );
        assert_eq!(
            tree.try_push_source(A, Value::int(8, 0)),
            flat.try_push_source(A, Value::int(8, 0))
        );
        assert_eq!(
            tree.try_source_pending(PrimId(99)).unwrap_err(),
            flat.try_source_pending(PrimId(99)).unwrap_err()
        );
    }

    #[test]
    fn flat_cow_copies_dirty_pages_only() {
        let d = design_rf();
        let mut s = Store::new_flat(&d);
        let snap0 = s.snapshot_cow();
        assert_eq!(s.ckpt_copied_words(), 0);
        s.call_action_at(A, PrimMethod::RegWrite, &[Value::int(8, 9)])
            .unwrap();
        let snap1 = s.snapshot_cow();
        // One small register dirties exactly one arena page.
        assert_eq!(s.ckpt_copied_words(), PAGE_WORDS as u64);
        let _ = s.snapshot_cow();
        assert_eq!(s.ckpt_copied_words(), PAGE_WORDS as u64);
        s.call_action_at(A, PrimMethod::RegWrite, &[Value::int(8, 3)])
            .unwrap();
        s.restore_cow(&snap1);
        assert_eq!(s.get_state(A), PrimState::Reg(Value::int(8, 9)));
        s.restore_cow(&snap0);
        assert_eq!(s.get_state(A), PrimState::Reg(Value::int(8, 1)));
    }

    #[test]
    fn flat_snapshot_encodes_and_decodes() {
        let d = design_rf();
        let mut s = Store::new_flat(&d);
        s.call_action_at(Q, PrimMethod::Enq, &[Value::int(8, 5)])
            .unwrap();
        s.call_action_at(
            RF,
            PrimMethod::Upd,
            &[Value::int(32, 1), Value::int(32, -7)],
        )
        .unwrap();
        let snap = s.snapshot_cow();
        assert!(snap.is_flat());
        let mut w = ByteWriter::new();
        snap.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let back = StoreSnapshot::decode(&mut r).unwrap();
        assert!(back.is_flat() && back.shape_matches(&s));
        assert_eq!(
            snap.kind_names().collect::<Vec<_>>(),
            back.kind_names().collect::<Vec<_>>()
        );
        // Mutate, then rewind through the decoded bytes.
        s.call_action_at(Q, PrimMethod::Deq, &[]).unwrap();
        s.restore_cow(&back);
        assert_eq!(s.fifo_len(Q), 1);
        assert_eq!(
            s.call_value_at(RF, PrimMethod::Sub, &[Value::int(32, 1)])
                .unwrap(),
            Value::int(32, -7)
        );
        // A tree snapshot of the same design does not shape-match.
        let tree_snap = Store::new(&d).snapshot_cow();
        assert!(!tree_snap.shape_matches(&s));
        assert!(tree_snap.shape_matches(&Store::new(&d)));
    }

    #[test]
    fn flat_set_state_spills_fifo_overflow() {
        let d = design2();
        let mut s = Store::new_flat(&d);
        let items: VecDeque<Value> = (1..=3).map(|i| Value::int(8, i)).collect();
        s.set_state(
            Q,
            PrimState::Fifo {
                depth: 1,
                items: items.clone(),
            },
        );
        assert_eq!(s.fifo_len(Q), 3);
        assert_eq!(s.get_state(Q), PrimState::Fifo { depth: 1, items });
        // Full (ring + spill): enq guard-fails, like an overfull tree FIFO.
        assert_eq!(
            s.call_action_at(Q, PrimMethod::Enq, &[Value::int(8, 9)]),
            Err(ExecError::GuardFail)
        );
        // Dequeue drains in order through the spill refill.
        for i in 1..=3 {
            assert_eq!(
                s.call_value_at(Q, PrimMethod::First, &[]).unwrap(),
                Value::int(8, i)
            );
            s.fifo_deq(Q).unwrap();
        }
        assert_eq!(s.fifo_len(Q), 0);
    }

    #[test]
    fn flat_wire_fifo_api_matches_tree() {
        let d = design2();
        let mut tree = Store::new(&d);
        let mut flat = Store::new_flat(&d);
        let ty = Type::Int(8);
        let wire = Value::int(8, -3).to_words();
        tree.enq_wire(Q, &ty, &wire).unwrap();
        flat.enq_wire(Q, &ty, &wire).unwrap();
        assert_eq!(tree.fifo_len(Q), 1);
        assert_eq!(flat.fifo_len(Q), 1);
        assert_eq!(tree.fifo_front_wire(Q), flat.fifo_front_wire(Q));
        assert_eq!(flat.fifo_front_wire(Q).unwrap(), wire);
        // Full FIFO: both refuse with a guard failure.
        assert_eq!(tree.enq_wire(Q, &ty, &wire), Err(ExecError::GuardFail));
        assert_eq!(flat.enq_wire(Q, &ty, &wire), Err(ExecError::GuardFail));
        // Short streams: byte-identical error, state untouched.
        let short = tree.enq_wire(Q, &Type::Int(64), &wire).unwrap_err();
        assert_eq!(short, flat.enq_wire(Q, &Type::Int(64), &wire).unwrap_err());
        assert_eq!(
            short,
            ExecError::Type("word stream too short: need 64 bits, have 32".into())
        );
        tree.fifo_deq(Q).unwrap();
        flat.fifo_deq(Q).unwrap();
        assert_eq!(tree.fifo_front_wire(Q), None);
        assert_eq!(flat.fifo_front_wire(Q), None);
        assert_eq!(flat.fifo_deq(Q), Err(ExecError::GuardFail));
        // Non-FIFO primitives answer the probes benignly.
        assert_eq!(flat.fifo_len(A), 0);
        assert_eq!(flat.fifo_front_wire(A), None);
    }

    #[test]
    fn flat_source_sink_roundtrip() {
        let d = Design {
            name: "io".into(),
            prims: vec![
                PrimDef {
                    path: "in".into(),
                    spec: PrimSpec::Source {
                        ty: Type::Int(8),
                        domain: "SW".into(),
                    },
                },
                PrimDef {
                    path: "out".into(),
                    spec: PrimSpec::Sink {
                        ty: Type::Int(8),
                        domain: "SW".into(),
                    },
                },
            ],
            ..Default::default()
        };
        let mut s = Store::new_flat(&d);
        s.push_source(PrimId(0), Value::int(8, 42));
        assert_eq!(s.source_pending(PrimId(0)), 1);
        let mut t = Txn::new(&mut s, ShadowPolicy::Partial);
        let v = t.call_value(PrimId(0), PrimMethod::First, &[]).unwrap();
        t.call_action(PrimId(0), PrimMethod::Deq, &[]).unwrap();
        t.call_action(PrimId(1), PrimMethod::Enq, &[v]).unwrap();
        t.commit();
        assert_eq!(s.source_pending(PrimId(0)), 0);
        assert_eq!(s.sink_values(PrimId(1)), &[Value::int(8, 42)]);
    }

    #[test]
    fn flat_regfile_checkpoint_is_theta_k() {
        // A register file far larger than one checkpoint page: k cell
        // writes through a committed transaction must copy Θ(k) pages,
        // not the whole table.
        let table = 4096usize;
        let d = Design {
            name: "big".into(),
            prims: vec![PrimDef {
                path: "rf".into(),
                spec: PrimSpec::RegFile {
                    size: table,
                    ty: Type::Bits(64),
                    init: vec![],
                },
            }],
            ..Default::default()
        };
        let mut s = Store::new_flat(&d);
        let _ = s.snapshot_cow();
        assert_eq!(s.ckpt_copied_words(), 0);
        let mut t = Txn::new(&mut s, ShadowPolicy::Partial);
        for i in 0..4u64 {
            t.call_action(
                PrimId(0),
                PrimMethod::Upd,
                &[Value::bits(64, i * 577), Value::bits(64, i + 1)],
            )
            .unwrap();
        }
        t.commit();
        let _ = s.snapshot_cow();
        // 4 touched cells, each one 64-bit lane → at most 4 pages copied
        // (exactly 4 here since the cells are spread > PAGE_WORDS apart).
        assert_eq!(s.ckpt_copied_words(), 4 * PAGE_WORDS as u64);
        for i in 0..4u64 {
            assert_eq!(
                s.call_value_at(PrimId(0), PrimMethod::Sub, &[Value::bits(64, i * 577)])
                    .unwrap(),
                Value::bits(64, i + 1)
            );
        }
    }
}
