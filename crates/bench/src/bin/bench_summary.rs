//! Wall-clock comparison of four software scheduler configurations
//! over the Figure 13 quick benchmarks:
//!
//! * **naive** — per-cycle AST interpretation of every guard;
//! * **event** — event-driven scheduler (compiled guards, verdict
//!   caching, dirty-set invalidation) on the pointer-tree store;
//! * **flat** — the same event-driven scheduler on the bit-packed
//!   arena store (slot-indexed flat values, pointer-free guard reads);
//! * **compiled** — the event-driven scheduler driving closure-threaded
//!   native rules (no stack machine, no opcode dispatch) over the arena;
//!   with word-level lowering, single-word leaf values travel as bare
//!   `u64`s through the port API instead of boxed `Value`s.
//!
//! Every leg is timed in **two phases** via the suites' public
//! `build_cosim`/`run_built` split: the one-time construction phase
//! (elaborate + partition + lower rules + build the platform) and the
//! simulation phase (stream the workload to completion). On the quick
//! benches construction is a large, backend-independent constant — over
//! half the end-to-end time (see EXPERIMENTS.md §P2) — so the `*_run_ns`
//! fields are what actually compare executor backends, while the plain
//! `*_ns` fields stay end-to-end for continuity with BENCH_pr8.
//!
//! Each suite also times its hand-written native decoder (the paper's
//! F2 baseline) so the JSON records how much interpretation overhead
//! the compiled backend leaves on the table (simulation phase vs F2 —
//! the native decoders have no construction phase to exclude).
//!
//! Emits a machine-readable JSON summary.
//!
//! ```text
//! bench_summary [output.json]    # default: BENCH_pr10.json
//! ```
//!
//! Cycle counts and outputs are asserted identical across all four
//! modes for every partition — the speedups are pure simulator
//! wall-clock, not a change in what is simulated. Any partition whose
//! arena store runs *slower* than the tree store (`flat_speedup < 1`)
//! is flagged loudly on stdout and collected in the JSON
//! `flat_regressions` array (see EXPERIMENTS.md §P1 for the analysis);
//! likewise any partition whose compiled closures run slower than the
//! stack-machine Vm (`compiled_speedup < 1`) lands in
//! `compiled_regressions` (see EXPERIMENTS.md §P3).

use bcl_core::sched::ExecBackend;
use bcl_raytrace::bvh::build_bvh;
use bcl_raytrace::geom::{gen_rays, make_scene};
use bcl_raytrace::native::render;
use bcl_raytrace::partitions::{build_cosim as build_rt, run_built as run_built_rt, RtPartition};
use bcl_vorbis::frames::frame_stream;
use bcl_vorbis::native::NativeBackend;
use bcl_vorbis::partitions::{build_cosim, run_built, VorbisPartition};
use std::fmt::Write as _;
use std::time::Instant;

const REPS: u32 = 5;

const BACKENDS: [(&str, ExecBackend); 4] = [
    ("naive", ExecBackend::Naive),
    ("event", ExecBackend::Event),
    ("flat", ExecBackend::Flat),
    ("compiled", ExecBackend::Compiled),
];

/// Best-of-N total and simulation-phase wall clock for one leg.
struct Leg {
    total_ns: u128,
    run_ns: u128,
}

struct Entry {
    bench: &'static str,
    partition: String,
    fpga_cycles: u64,
    naive: Leg,
    event: Leg,
    flat: Leg,
    compiled: Leg,
    /// Wall clock of the suite's hand-written native decoder (F2).
    native_ns: u128,
    guard_evals: u64,
    guard_evals_skipped: u64,
}

impl Entry {
    fn speedup(&self) -> f64 {
        self.naive.total_ns as f64 / self.event.total_ns.max(1) as f64
    }

    /// Arena store vs tree store, same (event-driven) scheduler,
    /// end-to-end: the pure representation win.
    fn flat_speedup(&self) -> f64 {
        self.event.total_ns as f64 / self.flat.total_ns.max(1) as f64
    }

    /// Closure-threaded native rules vs the stack-machine Vm, same
    /// (event-driven) scheduler, end-to-end.
    fn compiled_speedup(&self) -> f64 {
        self.event.total_ns as f64 / self.compiled.total_ns.max(1) as f64
    }

    /// The same comparison over the simulation phase only — the number
    /// that isolates the executor from the shared construction constant.
    fn compiled_run_speedup(&self) -> f64 {
        self.event.run_ns as f64 / self.compiled.run_ns.max(1) as f64
    }

    fn flat_run_speedup(&self) -> f64 {
        self.event.run_ns as f64 / self.flat.run_ns.max(1) as f64
    }

    /// How many times slower the compiled simulator's simulation phase
    /// still is than the suite's hand-written native decoder (lower is
    /// better; 1.0 would mean zero interpretation overhead left).
    fn compiled_vs_native(&self) -> f64 {
        self.compiled.run_ns as f64 / self.native_ns.max(1) as f64
    }
}

/// One timed rep of one leg: `build` is timed as construction, `run` as
/// simulation; the total is their sum within the rep. The caller
/// interleaves reps across backends (all four legs inside each rep, not
/// all reps of one leg back to back) so that machine-load drift — which
/// swings far more than the effects being measured — lands on every
/// backend equally, and takes the per-leg best across reps.
fn time_rep<C, T>(leg: &mut Leg, mut build: impl FnMut() -> C, mut run: impl FnMut(C) -> T) -> T {
    let t0 = Instant::now();
    let c = build();
    let t1 = Instant::now();
    let v = run(c);
    let run_ns = t1.elapsed().as_nanos();
    leg.total_ns = leg.total_ns.min(t0.elapsed().as_nanos());
    leg.run_ns = leg.run_ns.min(run_ns);
    v
}

impl Leg {
    fn unmeasured() -> Leg {
        Leg {
            total_ns: u128::MAX,
            run_ns: u128::MAX,
        }
    }
}

/// Best-of-N wall clock for one closure (used for the F2 natives).
fn time_best<T>(mut f: impl FnMut() -> T) -> (u128, T) {
    let mut best = u128::MAX;
    let mut out = None;
    for _ in 0..REPS {
        let t = Instant::now();
        let v = f();
        best = best.min(t.elapsed().as_nanos());
        out = Some(v);
    }
    (best, out.unwrap())
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_pr10.json".to_string());
    let mut entries: Vec<Entry> = Vec::new();

    let frames = frame_stream(8, 1);
    let (vorbis_native_ns, _) = time_best(|| NativeBackend::new().run(&frames));
    for p in VorbisPartition::ALL {
        let mut legs: Vec<Leg> = BACKENDS.iter().map(|_| Leg::unmeasured()).collect();
        let mut runs = Vec::new();
        for rep in 0..REPS {
            for (i, (name, backend)) in BACKENDS.into_iter().enumerate() {
                let run = time_rep(
                    &mut legs[i],
                    || build_cosim(p, &frames, backend).unwrap(),
                    |c| run_built(c, p, frames.len()).unwrap(),
                );
                if rep == 0 {
                    runs.push((name, run));
                }
            }
        }
        let event = &runs[1].1;
        for (mode, other) in [&runs[0], &runs[2], &runs[3]] {
            assert_eq!(
                event.fpga_cycles,
                other.fpga_cycles,
                "vorbis {}: cycle counts diverged between event and {mode}",
                p.label()
            );
            assert_eq!(
                event.pcm,
                other.pcm,
                "vorbis {}: PCM diverged between event and {mode}",
                p.label()
            );
        }
        assert_eq!(
            event.sw_cpu_cycles,
            runs[3].1.sw_cpu_cycles,
            "vorbis {}: CPU cycles diverged between event and compiled",
            p.label()
        );
        let guard_evals = event.guard_evals;
        let guard_evals_skipped = event.guard_evals_skipped;
        let fpga_cycles = event.fpga_cycles;
        let mut it = legs.into_iter();
        entries.push(Entry {
            bench: "fig13_vorbis",
            partition: p.label().to_string(),
            fpga_cycles,
            naive: it.next().unwrap(),
            event: it.next().unwrap(),
            flat: it.next().unwrap(),
            compiled: it.next().unwrap(),
            native_ns: vorbis_native_ns,
            guard_evals,
            guard_evals_skipped,
        });
    }

    let bvh = build_bvh(&make_scene(64, 1));
    let (w, h) = (4, 4);
    let rays = gen_rays(w, h);
    let (rt_native_ns, _) = time_best(|| render(&bvh, &rays));
    for p in RtPartition::ALL {
        let mut legs: Vec<Leg> = BACKENDS.iter().map(|_| Leg::unmeasured()).collect();
        let mut runs = Vec::new();
        for rep in 0..REPS {
            for (i, (name, backend)) in BACKENDS.into_iter().enumerate() {
                let run = time_rep(
                    &mut legs[i],
                    || build_rt(p, &bvh, w, h, backend).unwrap(),
                    |c| run_built_rt(c, p, w * h).unwrap(),
                );
                if rep == 0 {
                    runs.push((name, run));
                }
            }
        }
        let event = &runs[1].1;
        for (mode, other) in [&runs[0], &runs[2], &runs[3]] {
            assert_eq!(
                event.fpga_cycles,
                other.fpga_cycles,
                "raytrace {}: cycle counts diverged between event and {mode}",
                p.label()
            );
            assert_eq!(
                event.image,
                other.image,
                "raytrace {}: image diverged between event and {mode}",
                p.label()
            );
        }
        assert_eq!(
            event.sw_cpu_cycles,
            runs[3].1.sw_cpu_cycles,
            "raytrace {}: CPU cycles diverged between event and compiled",
            p.label()
        );
        let guard_evals = event.guard_evals;
        let guard_evals_skipped = event.guard_evals_skipped;
        let fpga_cycles = event.fpga_cycles;
        let mut it = legs.into_iter();
        entries.push(Entry {
            bench: "fig13_raytrace",
            partition: p.label().to_string(),
            fpga_cycles,
            naive: it.next().unwrap(),
            event: it.next().unwrap(),
            flat: it.next().unwrap(),
            compiled: it.next().unwrap(),
            native_ns: rt_native_ns,
            guard_evals,
            guard_evals_skipped,
        });
    }

    let sum = |f: fn(&Entry) -> u128| entries.iter().map(f).sum::<u128>();
    let total_naive = sum(|e| e.naive.total_ns);
    let total_event = sum(|e| e.event.total_ns);
    let total_flat = sum(|e| e.flat.total_ns);
    let total_compiled = sum(|e| e.compiled.total_ns);
    let run_naive = sum(|e| e.naive.run_ns);
    let run_event = sum(|e| e.event.run_ns);
    let run_flat = sum(|e| e.flat.run_ns);
    let run_compiled = sum(|e| e.compiled.run_ns);
    let overall = total_naive as f64 / total_event.max(1) as f64;
    let overall_flat = total_event as f64 / total_flat.max(1) as f64;
    let overall_flat_vs_naive = total_naive as f64 / total_flat.max(1) as f64;
    let overall_compiled = total_event as f64 / total_compiled.max(1) as f64;
    let overall_compiled_vs_naive = total_naive as f64 / total_compiled.max(1) as f64;
    let overall_run = run_naive as f64 / run_event.max(1) as f64;
    let overall_run_flat = run_event as f64 / run_flat.max(1) as f64;
    let overall_run_compiled = run_event as f64 / run_compiled.max(1) as f64;

    println!(
        "{:<16} {:<4} {:>11} {:>11} {:>11} {:>11} {:>8} {:>9} {:>9} {:>9} {:>9}",
        "bench",
        "part",
        "naive_ms",
        "event_ms",
        "flat_ms",
        "compiled",
        "speedup",
        "flat_gain",
        "cmp_gain",
        "cmp_run",
        "vs_F2"
    );
    for e in &entries {
        println!(
            "{:<16} {:<4} {:>11.3} {:>11.3} {:>11.3} {:>11.3} {:>7.2}x {:>8.2}x {:>8.2}x {:>8.2}x {:>8.1}x",
            e.bench,
            e.partition,
            e.naive.total_ns as f64 / 1e6,
            e.event.total_ns as f64 / 1e6,
            e.flat.total_ns as f64 / 1e6,
            e.compiled.total_ns as f64 / 1e6,
            e.speedup(),
            e.flat_speedup(),
            e.compiled_speedup(),
            e.compiled_run_speedup(),
            e.compiled_vs_native()
        );
    }
    println!("overall event-vs-naive speedup:    {overall:.2}x  (sim phase {overall_run:.2}x)");
    println!(
        "overall flat-vs-event speedup:     {overall_flat:.2}x  (sim phase {overall_run_flat:.2}x)"
    );
    println!("overall flat-vs-naive speedup:     {overall_flat_vs_naive:.2}x");
    println!(
        "overall compiled-vs-event speedup: {overall_compiled:.2}x  (sim phase {overall_run_compiled:.2}x)"
    );
    println!("overall compiled-vs-naive speedup: {overall_compiled_vs_naive:.2}x");

    // A flat_speedup below 1.0 means the arena store made that partition
    // *slower* — worth shouting about, not letting scroll by.
    let flat_regressions: Vec<&Entry> = entries.iter().filter(|e| e.flat_speedup() < 1.0).collect();
    for e in &flat_regressions {
        println!(
            "WARNING: flat-store regression: {} {} runs {:.1}% slower on the arena store \
             (flat_speedup {:.4}) — read-dominated workload, see EXPERIMENTS.md P1",
            e.bench,
            e.partition,
            (1.0 / e.flat_speedup() - 1.0) * 100.0,
            e.flat_speedup()
        );
    }

    // Same treatment for the compiled backend: a compiled_speedup below
    // 1.0 means closure threading (plus word-level lowering) lost to the
    // stack-machine Vm on that partition.
    let compiled_regressions: Vec<&Entry> = entries
        .iter()
        .filter(|e| e.compiled_speedup() < 1.0)
        .collect();
    for e in &compiled_regressions {
        println!(
            "WARNING: compiled-backend regression: {} {} runs {:.1}% slower compiled than the \
             event Vm (compiled_speedup {:.4}) — see EXPERIMENTS.md P3",
            e.bench,
            e.partition,
            (1.0 / e.compiled_speedup() - 1.0) * 100.0,
            e.compiled_speedup()
        );
    }

    let mut json = String::from("{\n  \"benchmark\": \"naive_vs_event_vs_flat_vs_compiled\",\n");
    let _ = writeln!(json, "  \"reps\": {REPS},");
    let _ = writeln!(json, "  \"overall_speedup\": {overall:.4},");
    let _ = writeln!(json, "  \"overall_flat_speedup\": {overall_flat:.4},");
    let _ = writeln!(
        json,
        "  \"overall_flat_vs_naive_speedup\": {overall_flat_vs_naive:.4},"
    );
    let _ = writeln!(
        json,
        "  \"overall_compiled_speedup\": {overall_compiled:.4},"
    );
    let _ = writeln!(
        json,
        "  \"overall_compiled_vs_naive_speedup\": {overall_compiled_vs_naive:.4},"
    );
    let _ = writeln!(json, "  \"overall_run_speedup\": {overall_run:.4},");
    let _ = writeln!(
        json,
        "  \"overall_flat_run_speedup\": {overall_run_flat:.4},"
    );
    let _ = writeln!(
        json,
        "  \"overall_compiled_run_speedup\": {overall_run_compiled:.4},"
    );
    let _ = writeln!(json, "  \"vorbis_native_ns\": {vorbis_native_ns},");
    let _ = writeln!(json, "  \"raytrace_native_ns\": {rt_native_ns},");
    json.push_str("  \"flat_regressions\": [");
    for (i, e) in flat_regressions.iter().enumerate() {
        if i > 0 {
            json.push_str(", ");
        }
        let _ = write!(json, "\"{} {}\"", e.bench, e.partition);
    }
    json.push_str("],\n");
    json.push_str("  \"compiled_regressions\": [");
    for (i, e) in compiled_regressions.iter().enumerate() {
        if i > 0 {
            json.push_str(", ");
        }
        let _ = write!(json, "\"{} {}\"", e.bench, e.partition);
    }
    json.push_str("],\n");
    json.push_str("  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"bench\": \"{}\", \"partition\": \"{}\", \"fpga_cycles\": {}, \
             \"naive_ns\": {}, \"event_ns\": {}, \"flat_ns\": {}, \"compiled_ns\": {}, \
             \"naive_run_ns\": {}, \"event_run_ns\": {}, \"flat_run_ns\": {}, \
             \"compiled_run_ns\": {}, \
             \"speedup\": {:.4}, \"flat_speedup\": {:.4}, \"compiled_speedup\": {:.4}, \
             \"flat_run_speedup\": {:.4}, \"compiled_run_speedup\": {:.4}, \
             \"compiled_vs_native_ratio\": {:.4}, \"guard_evals\": {}, \
             \"guard_evals_skipped\": {}}}",
            e.bench,
            e.partition,
            e.fpga_cycles,
            e.naive.total_ns,
            e.event.total_ns,
            e.flat.total_ns,
            e.compiled.total_ns,
            e.naive.run_ns,
            e.event.run_ns,
            e.flat.run_ns,
            e.compiled.run_ns,
            e.speedup(),
            e.flat_speedup(),
            e.compiled_speedup(),
            e.flat_run_speedup(),
            e.compiled_run_speedup(),
            e.compiled_vs_native(),
            e.guard_evals,
            e.guard_evals_skipped
        );
        json.push_str(if i + 1 < entries.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, json).unwrap_or_else(|e| panic!("write {out_path}: {e}"));
    println!("wrote {out_path}");
}
