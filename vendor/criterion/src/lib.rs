//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset of criterion's API the workspace benches use
//! (`benchmark_group`, `sample_size`, `bench_function`, `iter`,
//! `criterion_group!`, `criterion_main!`) with a simple wall-clock
//! harness: each benchmark runs a short warmup, then `sample_size`
//! timed samples, and prints the median per-iteration time. No HTML
//! reports, no statistics beyond min/median/max.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        println!("\ngroup: {name}");
        BenchmarkGroup {
            _c: self,
            sample_size: 20,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: impl Display, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&name.to_string(), 20, f);
    }
}

/// A group of benchmarks sharing settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    _c: &'c mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, name: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&name.to_string(), self.sample_size, f);
        self
    }

    /// Ends the group (stats were printed as benchmarks ran).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; calls the measured routine.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Times `f`, which is invoked repeatedly; one sample is recorded
    /// per `iter` call.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters_per_sample {
            std::hint::black_box(f());
        }
        let elapsed = start.elapsed() / self.iters_per_sample as u32;
        self.samples.push(elapsed);
    }
}

fn run_one<F>(name: &str, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Warmup + calibration: aim for samples of at least ~1ms so that
    // fast routines are not dominated by timer resolution.
    let mut b = Bencher {
        samples: Vec::new(),
        iters_per_sample: 1,
    };
    f(&mut b);
    if let Some(first) = b.samples.first().copied() {
        if first < Duration::from_millis(1) {
            let per_iter = first.max(Duration::from_nanos(20));
            b.iters_per_sample =
                (Duration::from_millis(1).as_nanos() / per_iter.as_nanos().max(1)) as u64 + 1;
        }
    }
    b.samples.clear();
    for _ in 0..sample_size {
        f(&mut b);
    }
    b.samples.sort();
    let median = b
        .samples
        .get(b.samples.len() / 2)
        .copied()
        .unwrap_or_default();
    let lo = b.samples.first().copied().unwrap_or_default();
    let hi = b.samples.last().copied().unwrap_or_default();
    println!("  {name:40} median {median:>12?}   [{lo:?} .. {hi:?}]");
}

/// Declares a function that runs each listed benchmark with a fresh
/// [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` for a bench binary built with `harness = false`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
