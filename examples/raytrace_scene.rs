//! Render a scene with the BVH ray tracer under any HW/SW partition and
//! display it as ASCII art, verified against the native tracer.
//!
//! ```sh
//! cargo run --release --example raytrace_scene [A|B|C|D] [size]
//! ```

use bcl_raytrace::bvh::build_bvh;
use bcl_raytrace::geom::{gen_rays, make_scene, ONE};
use bcl_raytrace::native::{render_with_stats, TraceStats};
use bcl_raytrace::partitions::{run_partition, RtPartition};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let which = match args.first().map(|s| s.as_str()) {
        Some("A") => RtPartition::A,
        Some("B") => RtPartition::B,
        Some("D") => RtPartition::D,
        _ => RtPartition::C,
    };
    let size: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(16);

    println!(
        "tracing a 256-primitive scene at {size}x{size} under partition {} ({})\n",
        which.label(),
        which.description()
    );
    let scene = make_scene(256, 7);
    let bvh = build_bvh(&scene);

    let run = run_partition(which, &bvh, size, size)?;
    println!(
        "  execution time : {} FPGA cycles ({:.0} per ray)",
        run.fpga_cycles,
        run.cycles_per_ray()
    );
    println!(
        "  bus traffic    : {} words to HW, {} words to SW",
        run.link.words_to_hw, run.link.words_to_sw
    );

    // Golden check + traversal statistics from the native tracer.
    let mut stats = TraceStats::default();
    let golden = render_with_stats(&bvh, &gen_rays(size, size), &mut stats);
    assert_eq!(run.image, golden, "partitioned render must be bit-exact");
    println!(
        "  traversal      : {:.1} node steps, {:.1} triangle tests per ray",
        stats.steps as f64 / (size * size) as f64,
        stats.tri_tests as f64 / (size * size) as f64
    );
    println!("  golden check   : image bit-exact with the native tracer\n");

    // ASCII shading.
    let ramp: &[u8] = b" .:-=+*#%@";
    for y in 0..size {
        let mut line = String::new();
        for x in 0..size {
            let s = run.image[y * size + x];
            let idx = ((s * (ramp.len() as i64 - 1)) / ONE).clamp(0, ramp.len() as i64 - 1);
            line.push(ramp[idx as usize] as char);
            line.push(ramp[idx as usize] as char);
        }
        println!("  {line}");
    }
    Ok(())
}
