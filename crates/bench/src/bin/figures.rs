//! Regenerates every figure and table of the paper's evaluation.
//!
//! ```text
//! figures [--full|--medium] [fig13-vorbis | fig13-raytrace | platform | partitions | codegen | ablation | all]
//! ```
//!
//! `--full` uses the paper's workload sizes (10000 Vorbis frames, 1024
//! primitives with a 32×32 image; expect ~40 minutes), `--medium` runs
//! 2000 frames and the 1024-primitive scene at 16×16 (~8 minutes), and
//! the default is a quick scaled-down run. All three have identical
//! qualitative shape.

use bcl_bench::{
    ablation_grid, bar_chart, measure_round_trip, measure_stream_bandwidth, vorbis_baseline_rows,
    vorbis_partition_rows, Row, QUICK_FRAMES,
};
use bcl_raytrace::bvh::build_bvh;
use bcl_raytrace::geom::make_scene;
use bcl_raytrace::partitions::{run_partition as run_rt, RtPartition};

fn fig13_vorbis(frames: usize) {
    println!("== Figure 13 (left): Ogg Vorbis execution time, {frames} frames ==\n");
    let runs = vorbis_partition_rows(frames, 2012);
    let (f1, f2) = vorbis_baseline_rows(frames, 2012);
    let mut rows: Vec<Row> = runs
        .iter()
        .map(|(p, r)| Row {
            label: p.label().to_string(),
            desc: p.description().to_string(),
            cycles: r.fpga_cycles,
        })
        .collect();
    rows.push(Row {
        label: "F1".into(),
        desc: "hand-coded SystemC (event-driven)".into(),
        cycles: f1,
    });
    rows.push(Row {
        label: "F2".into(),
        desc: "hand-coded C++ (native)".into(),
        cycles: f2,
    });
    println!("{}", bar_chart("execution time (FPGA cycles)", &rows));
    println!("link traffic per partition:");
    for (p, r) in &runs {
        println!(
            "  {}: {:>8} words to HW, {:>8} words to SW ({} + {} messages)",
            p.label(),
            r.link.words_to_hw,
            r.link.words_to_sw,
            r.link.msgs_to_hw,
            r.link.msgs_to_sw
        );
    }
    println!("guard scheduling (event-driven) per partition:");
    for (p, r) in &runs {
        println!(
            "  {}: {:>9} evaluated, {:>9} skipped ({:.1}% avoided)",
            p.label(),
            r.guard_evals,
            r.guard_evals_skipped,
            skip_pct(r.guard_evals, r.guard_evals_skipped),
        );
    }
    let f = runs
        .iter()
        .find(|(p, _)| *p == bcl_vorbis::partitions::VorbisPartition::F);
    let e = runs
        .iter()
        .find(|(p, _)| *p == bcl_vorbis::partitions::VorbisPartition::E);
    if let (Some((_, f)), Some((_, e))) = (f, e) {
        println!(
            "\nshape checks: E/F speedup = {:.2}x, F1/F2 = {:.2}x",
            f.fpga_cycles as f64 / e.fpga_cycles as f64,
            f1 as f64 / f2 as f64
        );
    }
    println!();
}

fn fig13_raytrace(scale: Scale) {
    let (tris, w, h) = match scale {
        Scale::Full => (1024, 32, 32),
        Scale::Medium => (1024, 16, 16),
        Scale::Quick => (128, 8, 8),
    };
    println!(
        "== Figure 13 (right): RayTrace execution time, {tris} primitives, {w}x{h} image ==\n"
    );
    let bvh = build_bvh(&make_scene(tris, 2012));
    let runs: Vec<_> = RtPartition::ALL
        .iter()
        .map(|&p| {
            let r = run_rt(p, &bvh, w, h).unwrap_or_else(|e| panic!("{p:?}: {e}"));
            (p, r)
        })
        .collect();
    let rows: Vec<Row> = runs
        .iter()
        .map(|(p, r)| Row {
            label: p.label().to_string(),
            desc: format!("{} ({:.0} cyc/ray)", p.description(), r.cycles_per_ray()),
            cycles: r.fpga_cycles,
        })
        .collect();
    println!("{}", bar_chart("execution time (FPGA cycles)", &rows));
    println!("guard scheduling (event-driven) per partition:");
    for (p, r) in &runs {
        println!(
            "  {}: {:>9} evaluated, {:>9} skipped ({:.1}% avoided)",
            p.label(),
            r.guard_evals,
            r.guard_evals_skipped,
            skip_pct(r.guard_evals, r.guard_evals_skipped),
        );
    }
    println!();
}

/// Share of guard evaluations the event-driven scheduler avoided.
fn skip_pct(evals: u64, skipped: u64) -> f64 {
    100.0 * skipped as f64 / (evals + skipped).max(1) as f64
}

fn platform() {
    println!("== Platform microbenchmarks (§7 experimental setup) ==\n");
    let rt = measure_round_trip();
    println!("  synchronizer round-trip latency : {rt} FPGA cycles (paper: ~100)");
    let bw = measure_stream_bandwidth(4000);
    println!(
        "  sustained stream bandwidth      : {bw:.2} bytes/FPGA-cycle = {:.0} MB/s @ 100 MHz (paper: up to 400 MB/s)",
        bw * 100.0
    );
    println!();
}

fn partitions() {
    println!("== Figure 12: Vorbis partitions ==\n");
    for p in bcl_vorbis::partitions::VorbisPartition::ALL {
        let d = p.domains();
        println!(
            "  {}: IMDCT={}, IFFT={}, Window={}  -- {}",
            p.label(),
            d.imdct,
            d.ifft,
            d.window,
            p.description()
        );
    }
    println!("\n== Figure 14: RayTrace partitions ==\n");
    for p in RtPartition::ALL {
        let c = p.config(32, 32);
        println!(
            "  {}: Trav={}, Geom={}, SceneMem={}  -- {}",
            p.label(),
            c.trav,
            c.geom,
            if c.remote_scene {
                "SW (shipped)"
            } else {
                c.geom.as_str()
            },
            p.description()
        );
    }
    println!();
}

fn codegen() {
    println!("== Figures 9/10: generated C++ for `Rule foo {{a := 1; f.enq(a); a := 0}}` ==\n");
    use bcl_core::builder::{dsl::*, ModuleBuilder};
    use bcl_core::program::Program;
    let mut m = ModuleBuilder::new("Demo");
    m.reg("a", bcl_core::Value::int(32, 0));
    m.fifo("f", 2, bcl_core::Type::Int(32));
    m.rule(
        "foo",
        seq(vec![
            write("a", cint(32, 1)),
            enq("f", read("a")),
            write("a", cint(32, 0)),
        ]),
    );
    let d = bcl_core::elaborate(&Program::with_root(m.build())).expect("elaborates");
    let pick = |code: &str| {
        code.lines()
            .skip_while(|l| !l.contains("rule foo"))
            .take_while(|l| !l.trim().is_empty())
            .map(|l| format!("  {l}"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    let unopt = bcl_backend::emit_cxx(&d, bcl_backend::CxxOptions { lift: false });
    println!(
        "--- Figure 9 (without inlining/lifting) ---\n{}\n",
        pick(&unopt)
    );
    let opt = bcl_backend::emit_cxx(&d, bcl_backend::CxxOptions { lift: true });
    println!(
        "--- Figure 10 (with inlining/lifting) ---\n{}\n",
        pick(&opt)
    );
}

fn ablation(frames: usize) {
    println!("== Ablations: §6.3 software optimizations (all-SW Vorbis, {frames} frames) ==\n");
    let rows = ablation_grid(frames, 7);
    let base = rows[0].cpu_cycles as f64;
    println!(
        "  {:<24} {:>14} {:>9} {:>10} {:>9}",
        "configuration", "CPU cycles", "rel.", "rollbacks", "in-place"
    );
    for r in &rows {
        println!(
            "  {:<24} {:>14} {:>8.2}x {:>10} {:>9}",
            r.name,
            r.cpu_cycles,
            r.cpu_cycles as f64 / base,
            r.rollbacks,
            r.inplace
        );
    }
    println!();
}

#[derive(Clone, Copy, PartialEq)]
enum Scale {
    Quick,
    Medium,
    Full,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = if args.iter().any(|a| a == "--full") {
        Scale::Full
    } else if args.iter().any(|a| a == "--medium") {
        Scale::Medium
    } else {
        Scale::Quick
    };
    let frames = match scale {
        Scale::Full => 10_000,
        Scale::Medium => 2_000,
        Scale::Quick => QUICK_FRAMES,
    };
    let what: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|s| s.as_str())
        .collect();
    let what = if what.is_empty() { vec!["all"] } else { what };
    for w in what {
        match w {
            "fig13-vorbis" => fig13_vorbis(frames),
            "fig13-raytrace" => fig13_raytrace(scale),
            "platform" => platform(),
            "partitions" => partitions(),
            "codegen" => codegen(),
            "ablation" => ablation(frames.min(100)),
            "all" => {
                platform();
                partitions();
                codegen();
                ablation(frames.min(100));
                fig13_vorbis(frames);
                fig13_raytrace(scale);
            }
            other => {
                eprintln!("unknown figure `{other}`");
                eprintln!("usage: figures [--full|--medium] [fig13-vorbis|fig13-raytrace|platform|partitions|codegen|ablation|all]");
                std::process::exit(2);
            }
        }
    }
}
