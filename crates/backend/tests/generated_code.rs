//! Validates the generated C++ with a real compiler: the paper's claim is
//! that the compiler emits a *working* software implementation, so the
//! emitted text must at least be legal C++.

use bcl_core::builder::{dsl::*, ModuleBuilder};
use bcl_core::program::Program;
use bcl_core::types::Type;
use bcl_core::value::Value;
use std::process::Command;

fn gpp_available() -> bool {
    Command::new("g++").arg("--version").output().is_ok()
}

fn check_compiles(code: &str, tag: &str) {
    if !gpp_available() {
        eprintln!("skipping: g++ not available");
        return;
    }
    let dir = std::env::temp_dir().join(format!("bcl_cxx_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("gen.cpp");
    std::fs::write(&path, format!("{code}\nint main() {{ return 0; }}\n")).unwrap();
    let out = Command::new("g++")
        .args(["-std=c++17", "-fsyntax-only", "-Wall"])
        .arg(&path)
        .output()
        .expect("g++ runs");
    assert!(
        out.status.success(),
        "generated C++ does not compile:\n{}\n--- code ---\n{code}",
        String::from_utf8_lossy(&out.stderr)
    );
    let _ = std::fs::remove_dir_all(&dir);
}

fn sample_design() -> bcl_core::Design {
    let mut m = ModuleBuilder::new("Sample");
    m.reg("a", Value::int(32, 0));
    m.reg("flag", Value::Bool(false));
    m.fifo("f", 2, Type::Int(32));
    m.fifo("v", 2, Type::vector(4, Type::complex(Type::fixpt())));
    m.regfile("t", 8, Type::Int(32), vec![Value::int(32, 7)]);
    m.rule(
        "foo",
        seq(vec![
            write("a", cint(32, 1)),
            enq("f", read("a")),
            write("a", cint(32, 0)),
        ]),
    );
    m.rule(
        "vecwork",
        with_first(
            "x",
            "v",
            enq(
                "v",
                mkvec(
                    (0..4)
                        .map(|i| {
                            cplx(
                                fixmul(
                                    field(index(var("x"), cint(32, i)), "re"),
                                    cfix(0.5, 24),
                                    24,
                                ),
                                field(index(var("x"), cint(32, i)), "im"),
                            )
                        })
                        .collect(),
                ),
            ),
        ),
    );
    m.rule(
        "cond",
        if_else(
            gt(read("a"), cint(32, 5)),
            par(vec![
                write("flag", cbool(true)),
                upd("t", cint(32, 0), read("a")),
            ]),
            write("flag", cbool(false)),
        ),
    );
    m.rule(
        "guarded",
        when_a(
            eq(read("flag"), cbool(false)),
            local_guard(enq("f", sub("t", cint(32, 0)))),
        ),
    );
    bcl_core::elaborate(&Program::with_root(m.build())).unwrap()
}

#[test]
fn optimized_cxx_compiles() {
    let code = bcl_backend::emit_cxx(&sample_design(), bcl_backend::CxxOptions { lift: true });
    check_compiles(&code, "opt");
}

#[test]
fn unoptimized_cxx_compiles() {
    let code = bcl_backend::emit_cxx(&sample_design(), bcl_backend::CxxOptions { lift: false });
    check_compiles(&code, "unopt");
}
