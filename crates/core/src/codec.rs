//! Bounds-checked binary encoding for durable snapshots.
//!
//! Snapshot types across the workspace serialize themselves through the
//! [`ByteWriter`] / [`ByteReader`] pair defined here. The decoder side is
//! deliberately paranoid — it is fed bytes that may have been truncated,
//! bit-flipped, or crafted, and the contract is that *no* input can make
//! it panic or allocate unboundedly:
//!
//! * every read is bounds-checked against the remaining input
//!   ([`CodecError::Truncated`] instead of a slice panic);
//! * declared element counts are validated against the bytes actually
//!   remaining before any allocation ([`ByteReader::seq_len`]), so a
//!   length field of `u64::MAX` cannot trigger an OOM preallocation;
//! * recursive values carry an explicit depth cap
//!   ([`MAX_VALUE_DEPTH`]), so a crafted deeply-nested `Vec`-of-`Vec`
//!   cannot overflow the decoder's stack.
//!
//! All integers are little-endian. Variable-length sequences are
//! `u64`-count-prefixed; strings are `u64`-length-prefixed UTF-8.

use crate::prim::PrimState;
use crate::value::Value;
use std::collections::VecDeque;
use std::fmt;

/// Maximum nesting depth accepted when decoding a [`Value`]. Real
/// designs nest a handful of levels (vectors of structs of scalars); the
/// cap exists to keep crafted input from exhausting the decoder's stack.
pub const MAX_VALUE_DEPTH: usize = 64;

/// A typed decoding failure. Encoding is infallible; decoding never
/// panics and reports one of these instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The input ended before a field could be read in full.
    Truncated,
    /// The input is structurally invalid: an unknown tag, an impossible
    /// count, a non-boolean flag byte, invalid UTF-8, or nesting beyond
    /// [`MAX_VALUE_DEPTH`].
    Malformed(&'static str),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "input truncated"),
            CodecError::Malformed(what) => write!(f, "malformed input: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Result alias for decoding.
pub type CodecResult<T> = Result<T, CodecError>;

/// An append-only little-endian byte sink.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> ByteWriter {
        ByteWriter::default()
    }

    /// Consumes the writer, returning the accumulated bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `i64` as its two's-complement bits.
    pub fn i64(&mut self, v: i64) {
        self.u64(v as u64);
    }

    /// Appends a `usize` widened to `u64`.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Appends an `f64` as its IEEE-754 bit pattern.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Appends a boolean as one byte (0 or 1).
    pub fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    /// Appends raw bytes with no length prefix.
    pub fn bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }

    /// Appends a `u64`-length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }
}

/// A bounds-checked little-endian byte cursor over borrowed input.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> ByteReader<'a> {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True once every byte has been consumed.
    pub fn is_at_end(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// Consumes exactly `n` bytes.
    pub fn bytes(&mut self, n: usize) -> CodecResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(CodecError::Truncated);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> CodecResult<u8> {
        Ok(self.bytes(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> CodecResult<u32> {
        let b = self.bytes(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> CodecResult<u64> {
        let b = self.bytes(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads an `i64` from its two's-complement bits.
    pub fn i64(&mut self) -> CodecResult<i64> {
        Ok(self.u64()? as i64)
    }

    /// Reads a `u64` and narrows it to `usize`.
    pub fn usize(&mut self) -> CodecResult<usize> {
        usize::try_from(self.u64()?).map_err(|_| CodecError::Malformed("count exceeds usize"))
    }

    /// Reads an `f64` from its IEEE-754 bit pattern.
    pub fn f64(&mut self) -> CodecResult<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a boolean byte; anything but 0 or 1 is malformed.
    pub fn bool(&mut self) -> CodecResult<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(CodecError::Malformed("boolean byte not 0 or 1")),
        }
    }

    /// Reads a sequence count and validates it against the bytes
    /// actually remaining: a sequence of `n` elements each at least
    /// `min_elem_bytes` long cannot be encoded in fewer than
    /// `n * min_elem_bytes` bytes, so any larger declared count is a
    /// truncation (or a crafted length) and is rejected *before* any
    /// allocation. This is what makes `Vec::with_capacity` on the
    /// returned count safe.
    pub fn seq_len(&mut self, min_elem_bytes: usize) -> CodecResult<usize> {
        let n = self.u64()?;
        let cap = (self.remaining() / min_elem_bytes.max(1)) as u64;
        if n > cap {
            return Err(CodecError::Truncated);
        }
        Ok(n as usize)
    }

    /// Reads a `u64`-length-prefixed UTF-8 string.
    pub fn str(&mut self) -> CodecResult<String> {
        let n = self.seq_len(1)?;
        let bytes = self.bytes(n)?;
        std::str::from_utf8(bytes)
            .map(str::to_owned)
            .map_err(|_| CodecError::Malformed("string is not UTF-8"))
    }

    /// Succeeds only if every input byte has been consumed.
    pub fn finish(&self) -> CodecResult<()> {
        if self.is_at_end() {
            Ok(())
        } else {
            Err(CodecError::Malformed("trailing bytes after value"))
        }
    }
}

// Value tags. The encoding is self-describing: the decoder needs no
// `Type` to reconstruct a value, which is what lets snapshot files be
// validated without re-elaborating the design first.
const VAL_BOOL_FALSE: u8 = 0;
const VAL_BOOL_TRUE: u8 = 1;
const VAL_BITS: u8 = 2;
const VAL_INT: u8 = 3;
const VAL_VEC: u8 = 4;
const VAL_STRUCT: u8 = 5;

impl Value {
    /// Appends this value's self-describing encoding.
    pub fn encode(&self, w: &mut ByteWriter) {
        match self {
            Value::Bool(false) => w.u8(VAL_BOOL_FALSE),
            Value::Bool(true) => w.u8(VAL_BOOL_TRUE),
            Value::Bits { width, bits } => {
                w.u8(VAL_BITS);
                w.u32(*width);
                w.u64(*bits);
            }
            Value::Int { width, val } => {
                w.u8(VAL_INT);
                w.u32(*width);
                w.i64(*val);
            }
            Value::Vec(vs) => {
                w.u8(VAL_VEC);
                w.u64(vs.len() as u64);
                for v in vs {
                    v.encode(w);
                }
            }
            Value::Struct(fs) => {
                w.u8(VAL_STRUCT);
                w.u64(fs.len() as u64);
                for (name, v) in fs {
                    w.str(name);
                    v.encode(w);
                }
            }
        }
    }

    /// Decodes one self-describing value. Decoded scalars are
    /// re-canonicalized through [`Value::bits`] / [`Value::int`], so a
    /// decoded value always re-encodes to identical bytes.
    pub fn decode(r: &mut ByteReader<'_>) -> CodecResult<Value> {
        Value::decode_at(r, 0)
    }

    fn decode_at(r: &mut ByteReader<'_>, depth: usize) -> CodecResult<Value> {
        if depth > MAX_VALUE_DEPTH {
            return Err(CodecError::Malformed("value nesting too deep"));
        }
        match r.u8()? {
            VAL_BOOL_FALSE => Ok(Value::Bool(false)),
            VAL_BOOL_TRUE => Ok(Value::Bool(true)),
            VAL_BITS => {
                let width = r.u32()?;
                Ok(Value::bits(width, r.u64()?))
            }
            VAL_INT => {
                let width = r.u32()?;
                Ok(Value::int(width, r.i64()?))
            }
            VAL_VEC => {
                // Every element is at least one tag byte.
                let n = r.seq_len(1)?;
                let mut vs = Vec::with_capacity(n);
                for _ in 0..n {
                    vs.push(Value::decode_at(r, depth + 1)?);
                }
                Ok(Value::Vec(vs))
            }
            VAL_STRUCT => {
                // Every field is at least a length prefix plus a tag.
                let n = r.seq_len(9)?;
                let mut fs = Vec::with_capacity(n);
                for _ in 0..n {
                    let name = r.str()?;
                    fs.push((name, Value::decode_at(r, depth + 1)?));
                }
                Ok(Value::Struct(fs))
            }
            _ => Err(CodecError::Malformed("unknown value tag")),
        }
    }
}

const PRIM_REG: u8 = 0;
const PRIM_FIFO: u8 = 1;
const PRIM_REGFILE: u8 = 2;
const PRIM_SOURCE: u8 = 3;
const PRIM_SINK: u8 = 4;

fn encode_values<'v>(w: &mut ByteWriter, vals: impl ExactSizeIterator<Item = &'v Value>) {
    w.u64(vals.len() as u64);
    for v in vals {
        v.encode(w);
    }
}

fn decode_values(r: &mut ByteReader<'_>) -> CodecResult<Vec<Value>> {
    let n = r.seq_len(1)?;
    let mut vs = Vec::with_capacity(n);
    for _ in 0..n {
        vs.push(Value::decode(r)?);
    }
    Ok(vs)
}

impl PrimState {
    /// Appends this primitive state's self-describing encoding.
    pub fn encode(&self, w: &mut ByteWriter) {
        match self {
            PrimState::Reg(v) => {
                w.u8(PRIM_REG);
                v.encode(w);
            }
            PrimState::Fifo { depth, items } => {
                w.u8(PRIM_FIFO);
                w.usize(*depth);
                encode_values(w, items.iter());
            }
            PrimState::RegFile(cells) => {
                w.u8(PRIM_REGFILE);
                encode_values(w, cells.iter());
            }
            PrimState::Source { queue } => {
                w.u8(PRIM_SOURCE);
                encode_values(w, queue.iter());
            }
            PrimState::Sink { consumed } => {
                w.u8(PRIM_SINK);
                encode_values(w, consumed.iter());
            }
        }
    }

    /// Decodes one primitive state.
    pub fn decode(r: &mut ByteReader<'_>) -> CodecResult<PrimState> {
        match r.u8()? {
            PRIM_REG => Ok(PrimState::Reg(Value::decode(r)?)),
            PRIM_FIFO => {
                let depth = r.usize()?;
                Ok(PrimState::Fifo {
                    depth,
                    items: VecDeque::from(decode_values(r)?),
                })
            }
            PRIM_REGFILE => Ok(PrimState::RegFile(decode_values(r)?)),
            PRIM_SOURCE => Ok(PrimState::Source {
                queue: VecDeque::from(decode_values(r)?),
            }),
            PRIM_SINK => Ok(PrimState::Sink {
                consumed: decode_values(r)?,
            }),
            _ => Err(CodecError::Malformed("unknown primitive-state tag")),
        }
    }
}

/// Encodes a `u64`-count-prefixed slice of `u64` counters.
pub fn encode_u64s(w: &mut ByteWriter, vals: &[u64]) {
    w.u64(vals.len() as u64);
    for v in vals {
        w.u64(*v);
    }
}

/// Decodes a `u64`-count-prefixed vector of `u64` counters.
pub fn decode_u64s(r: &mut ByteReader<'_>) -> CodecResult<Vec<u64>> {
    let n = r.seq_len(8)?;
    let mut vs = Vec::with_capacity(n);
    for _ in 0..n {
        vs.push(r.u64()?);
    }
    Ok(vs)
}

/// Encodes a `u64`-count-prefixed slice of booleans.
pub fn encode_bools(w: &mut ByteWriter, vals: &[bool]) {
    w.u64(vals.len() as u64);
    for v in vals {
        w.bool(*v);
    }
}

/// Decodes a `u64`-count-prefixed vector of booleans.
pub fn decode_bools(r: &mut ByteReader<'_>) -> CodecResult<Vec<bool>> {
    let n = r.seq_len(1)?;
    let mut vs = Vec::with_capacity(n);
    for _ in 0..n {
        vs.push(r.bool()?);
    }
    Ok(vs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Type;

    fn roundtrip_value(v: &Value) {
        let mut w = ByteWriter::new();
        v.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let back = Value::decode(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(&back, v, "roundtrip of {v}");
        // Canonical values re-encode byte-identically.
        let mut w2 = ByteWriter::new();
        back.encode(&mut w2);
        assert_eq!(w2.into_bytes(), bytes);
    }

    #[test]
    fn value_roundtrips() {
        roundtrip_value(&Value::Bool(true));
        roundtrip_value(&Value::Bool(false));
        roundtrip_value(&Value::bits(17, 0x1abcd));
        roundtrip_value(&Value::int(32, -12345));
        roundtrip_value(&Value::int(5, -16));
        roundtrip_value(&Value::Vec(vec![
            Value::complex(Value::int(32, -5), Value::int(32, 1 << 20)),
            Value::complex(Value::int(32, 42), Value::int(32, -1)),
        ]));
        roundtrip_value(&Value::zero(&Type::vector(3, Type::complex(Type::fixpt()))));
    }

    #[test]
    fn prim_state_roundtrips() {
        let states = [
            PrimState::Reg(Value::int(8, -3)),
            PrimState::Fifo {
                depth: 4,
                items: VecDeque::from(vec![Value::int(8, 1), Value::int(8, 2)]),
            },
            PrimState::RegFile(vec![Value::bits(12, 0xfff); 3]),
            PrimState::Source {
                queue: VecDeque::from(vec![Value::Bool(true)]),
            },
            PrimState::Sink {
                consumed: vec![Value::int(32, 7)],
            },
        ];
        for st in &states {
            let mut w = ByteWriter::new();
            st.encode(&mut w);
            let bytes = w.into_bytes();
            let mut r = ByteReader::new(&bytes);
            assert_eq!(&PrimState::decode(&mut r).unwrap(), st);
            r.finish().unwrap();
        }
    }

    #[test]
    fn truncations_error_not_panic() {
        let mut w = ByteWriter::new();
        PrimState::RegFile(vec![Value::int(32, 5); 8]).encode(&mut w);
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = ByteReader::new(&bytes[..cut]);
            assert!(
                PrimState::decode(&mut r).is_err(),
                "decode of {cut}-byte prefix should fail"
            );
        }
    }

    #[test]
    fn crafted_count_does_not_preallocate() {
        // A Vec claiming u64::MAX elements followed by no data: seq_len
        // rejects it before any allocation happens.
        let mut w = ByteWriter::new();
        w.u8(4); // VAL_VEC
        w.u64(u64::MAX);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(Value::decode(&mut r), Err(CodecError::Truncated));
    }

    #[test]
    fn deep_nesting_is_rejected() {
        // 70 nested single-element vectors exceed MAX_VALUE_DEPTH.
        let mut bytes = Vec::new();
        for _ in 0..70 {
            bytes.push(4u8); // VAL_VEC
            bytes.extend_from_slice(&1u64.to_le_bytes());
        }
        bytes.push(0); // innermost Bool(false)
        let mut r = ByteReader::new(&bytes);
        assert_eq!(
            Value::decode(&mut r),
            Err(CodecError::Malformed("value nesting too deep"))
        );
    }

    #[test]
    fn bad_tags_and_flags_are_malformed() {
        let mut r = ByteReader::new(&[99]);
        assert!(matches!(
            Value::decode(&mut r),
            Err(CodecError::Malformed(_))
        ));
        let mut r = ByteReader::new(&[7]);
        assert!(matches!(r.bool(), Err(CodecError::Malformed(_))));
        // Non-UTF-8 string payload.
        let mut w = ByteWriter::new();
        w.u64(2);
        w.bytes(&[0xff, 0xfe]);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(r.str(), Err(CodecError::Malformed(_))));
    }
}
