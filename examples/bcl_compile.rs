//! The full compiler pipeline on a textual BCL program: parse, type
//! check, elaborate, infer domains, partition, co-simulate, and emit the
//! C++ and BSV the real tool chain would consume.
//!
//! ```sh
//! cargo run --example bcl_compile
//! ```

use bcl_core::domain::{HW, SW};
use bcl_core::partition::partition;
use bcl_core::sched::SwOptions;
use bcl_core::Value;
use bcl_platform::cosim::Cosim;
use bcl_platform::link::LinkConfig;

/// A little accumulator accelerator: software streams operands in, the
/// hardware partition multiply-accumulates, software reads totals back.
const SRC: &str = r#"
module MacOffload {
  source ops : Vector#(2, Int#(32)) @ SW;
  sink totals : Int#(32) @ SW;
  sync toHw[4] : Vector#(2, Int#(32)) from SW to HW;
  sync toSw[4] : Int#(32) from HW to SW;
  reg acc = 0;
  reg count = 0;

  rule feed:
    let p = ops.first() in { toHw.enq(p) | ops.deq() }

  rule mac:
    let p = toHw.first() in
      { acc := acc + p[0] * p[1] | count := count + 1 | toHw.deq() }

  rule report:
    when (count == 4) { toSw.enq(acc) | count := 0 | acc := 0 }

  rule drain:
    let t = toSw.first() in { totals.enq(t) | toSw.deq() }
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("--- source ---------------------------------------------------");
    println!("{SRC}");

    // Parse + type check + elaborate.
    let program = bcl_frontend::parse(SRC)?;
    bcl_frontend::typecheck(&program)?;
    let design = bcl_core::elaborate(&program)?;
    println!("--- elaboration ----------------------------------------------");
    println!(
        "{} primitives, {} rules",
        design.prims.len(),
        design.rules.len()
    );

    // Domain inference + partitioning.
    let parts = partition(&design, SW)?;
    println!("\n--- partitions -----------------------------------------------");
    for (dom, d) in &parts.partitions {
        let rules: Vec<&str> = d.rules.iter().map(|r| r.name.as_str()).collect();
        println!("{dom}: rules {rules:?}");
    }
    for c in &parts.channels {
        println!(
            "channel `{}`: {} -> {}, {} words/message",
            c.name,
            c.from_domain,
            c.to_domain,
            c.ty.words()
        );
    }

    // Code generation for both sides.
    let hw = parts.partition(HW).expect("hw partition");
    let bsv = bcl_backend::emit_bsv(hw)?;
    println!("\n--- generated BSV (hardware partition) ------------------------");
    println!("{bsv}");
    let sw = parts.partition(SW).expect("sw partition");
    let cxx = bcl_backend::emit_cxx(sw, Default::default());
    println!("--- generated C++ (software partition, first 40 lines) --------");
    for line in cxx.lines().skip_while(|l| !l.contains("class")).take(40) {
        println!("{line}");
    }

    // And run the whole system on the modeled platform.
    println!("\n--- co-simulation ---------------------------------------------");
    let mut cs = Cosim::new(&parts, SW, HW, LinkConfig::default(), SwOptions::default())?;
    for i in 0..8i64 {
        cs.push_source(
            "ops",
            Value::Vec(vec![Value::int(32, i), Value::int(32, i + 1)]),
        );
    }
    let out = cs.run_until(|c| c.sink_count("totals") == 2, 100_000)?;
    let totals: Vec<i64> = cs
        .sink_values("totals")
        .iter()
        .map(|v| v.as_int().unwrap())
        .collect();
    println!(
        "totals = {totals:?} after {} FPGA cycles",
        out.fpga_cycles()
    );
    // 0*1 + 1*2 + 2*3 + 3*4 = 20; 4*5 + 5*6 + 6*7 + 7*8 = 148.
    assert_eq!(totals, vec![20, 148]);
    println!("(expected [20, 148] — correct)");
    Ok(())
}
