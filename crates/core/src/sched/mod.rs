//! Rule schedulers: the software execution strategy (§6.2–6.3) and the
//! BSV-style synchronous hardware scheduler (§6.4).
//!
//! The same elaborated design can be driven by either scheduler; the paper's
//! central observation is that software wants to "pass the algorithm over
//! the data" (run rules in dataflow order, one datum end-to-end) while
//! hardware wants to "pass the data through the algorithm" (fire every
//! stage once per clock on different data). Both schedulers resolve the
//! nondeterministic choice of the one-rule-at-a-time semantics — neither
//! can produce a behaviour the rules don't allow.

mod hw;
mod sw;

pub use hw::{hw_check, HwReport, HwSim, HwSnapshot};
pub use sw::{ExecBackend, Strategy, SwOptions, SwReport, SwRunner, SwSnapshot};

use crate::store::Cost;

/// Converts the abstract cost counters of rule execution into CPU cycles.
///
/// The weights model the generated C++ of §6.2: ALU ops are ~1 cycle,
/// shadow and commit copies are memory traffic, a rollback is a pipeline
/// disaster, and a transaction that could not be guard-lifted pays the
/// try/catch setup the paper works so hard to remove (Figures 9/10).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// Per weighted ALU operation.
    pub op: u64,
    /// Per primitive value-method call.
    pub read: u64,
    /// Per primitive action-method call.
    pub write: u64,
    /// Per word copied into a shadow.
    pub shadow_word: u64,
    /// Per word copied at commit.
    pub commit_word: u64,
    /// Per rollback (exception unwind + state restore).
    pub rollback: u64,
    /// Fixed overhead per scheduler guard evaluation.
    pub guard_eval: u64,
    /// Fixed overhead per transactional rule attempt (try/catch setup).
    pub txn_setup: u64,
    /// Fixed overhead per in-place (guard-lifted) rule execution.
    pub inplace_run: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            op: 1,
            read: 1,
            write: 1,
            shadow_word: 2,
            commit_word: 2,
            rollback: 25,
            guard_eval: 2,
            txn_setup: 30,
            inplace_run: 2,
        }
    }
}

impl CostModel {
    /// Total CPU cycles for a set of counters.
    pub fn cycles(&self, c: &Cost) -> u64 {
        c.ops * self.op
            + c.reads * self.read
            + c.writes * self.write
            + c.shadow_words * self.shadow_word
            + c.commit_words * self.commit_word
            + c.rollbacks * self.rollback
            + c.guard_evals * self.guard_eval
            + c.txn_setups * self.txn_setup
            + c.inplace_runs * self.inplace_run
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_model_weighs_counters() {
        let m = CostModel::default();
        let mut c = Cost::default();
        assert_eq!(m.cycles(&c), 0);
        c.ops = 10;
        c.rollbacks = 1;
        assert_eq!(m.cycles(&c), 10 + 25);
        c.txn_setups = 2;
        assert_eq!(m.cycles(&c), 10 + 25 + 60);
    }
}
