//! Static analysis: read/write sets, pairwise rule conflicts, and the
//! dataflow successor relation.
//!
//! The conflict matrix drives the hardware scheduler (§6.4: "the compiler
//! does pair-wise static analysis to conservatively estimate conflicts
//! between rules") and the sequentialization transformation (§6.3). The
//! dataflow relation drives the chained software scheduler ("the execution
//! of one rule may enable another, permitting the construction of longer
//! sequences of rule invocations").

use crate::ast::{Action, Expr, PrimId, PrimMethod, Target};
use crate::design::Design;
use crate::error::ValidateError;
use crate::prim::PrimSpec;
use crate::types::Type;
use crate::value::Value;
use std::collections::BTreeSet;

/// The set of primitive methods an action (or expression) may invoke.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RwSet {
    /// `(prim, method)` pairs for value (read) methods.
    pub reads: BTreeSet<(PrimId, PrimMethod)>,
    /// `(prim, method)` pairs for action (write) methods.
    pub writes: BTreeSet<(PrimId, PrimMethod)>,
}

impl RwSet {
    /// Collects the read/write set of an action.
    pub fn of_action(a: &Action) -> RwSet {
        let mut s = RwSet::default();
        s.visit_action(a);
        s
    }

    /// Collects the read set of an expression (expressions cannot write).
    pub fn of_expr(e: &Expr) -> RwSet {
        let mut s = RwSet::default();
        s.visit_expr(e);
        s
    }

    /// All primitives written.
    pub fn written_prims(&self) -> BTreeSet<PrimId> {
        self.writes.iter().map(|(p, _)| *p).collect()
    }

    /// All primitives read.
    pub fn read_prims(&self) -> BTreeSet<PrimId> {
        self.reads.iter().map(|(p, _)| *p).collect()
    }

    /// All primitives touched in any way.
    pub fn touched_prims(&self) -> BTreeSet<PrimId> {
        self.written_prims()
            .union(&self.read_prims())
            .copied()
            .collect()
    }

    fn record(&mut self, t: &Target) {
        if let Target::Prim(id, m) = t {
            if m.is_write() {
                self.writes.insert((*id, *m));
            } else {
                self.reads.insert((*id, *m));
            }
        }
    }

    fn visit_action(&mut self, a: &Action) {
        match a {
            Action::NoAction => {}
            Action::Write(t, e) => {
                self.record(t);
                self.visit_expr(e);
            }
            Action::If(c, x, y) => {
                self.visit_expr(c);
                self.visit_action(x);
                self.visit_action(y);
            }
            Action::Par(x, y) | Action::Seq(x, y) => {
                self.visit_action(x);
                self.visit_action(y);
            }
            Action::When(g, x) => {
                self.visit_expr(g);
                self.visit_action(x);
            }
            Action::Let(_, e, x) => {
                self.visit_expr(e);
                self.visit_action(x);
            }
            Action::Loop(c, x) => {
                self.visit_expr(c);
                self.visit_action(x);
            }
            Action::LocalGuard(x) => self.visit_action(x),
            Action::Call(t, args) => {
                self.record(t);
                args.iter().for_each(|e| self.visit_expr(e));
            }
        }
    }

    fn visit_expr(&mut self, e: &Expr) {
        match e {
            Expr::Const(_) | Expr::Var(_) => {}
            Expr::Un(_, a) => self.visit_expr(a),
            Expr::Bin(_, a, b) => {
                self.visit_expr(a);
                self.visit_expr(b);
            }
            Expr::Cond(a, b, c) => {
                self.visit_expr(a);
                self.visit_expr(b);
                self.visit_expr(c);
            }
            Expr::When(a, b) | Expr::Let(_, a, b) | Expr::Index(a, b) => {
                self.visit_expr(a);
                self.visit_expr(b);
            }
            Expr::Field(a, _) => self.visit_expr(a),
            Expr::Call(t, args) => {
                self.record(t);
                args.iter().for_each(|x| self.visit_expr(x));
            }
            Expr::MkVec(es) => es.iter().for_each(|x| self.visit_expr(x)),
            Expr::MkStruct(fs) => fs.iter().for_each(|(_, x)| self.visit_expr(x)),
            Expr::UpdateIndex(a, b, c) => {
                self.visit_expr(a);
                self.visit_expr(b);
                self.visit_expr(c);
            }
            Expr::UpdateField(a, _, c) => {
                self.visit_expr(a);
                self.visit_expr(c);
            }
        }
    }
}

/// Per-rule static sensitivity sets for event-driven scheduling: which
/// primitives each rule's *lifted guard* reads (its sensitivity list) and
/// which its body writes, plus the inverted map from primitive to the
/// rules whose guards must be re-evaluated when it is dirtied.
///
/// A rule with no lifted guard has an empty read set — the scheduler
/// always attempts it, so there is no verdict to invalidate. A guard with
/// an empty read set is constant: its verdict can never change, so never
/// appearing in `readers_of` is exactly right.
#[derive(Debug, Clone)]
pub struct Sensitivity {
    /// Primitives read by each rule's lifted guard (indexed like the
    /// rule plans).
    pub guard_reads: Vec<BTreeSet<PrimId>>,
    /// Primitives written by each rule's body.
    pub body_writes: Vec<BTreeSet<PrimId>>,
    /// `readers_of[p]`: the rules whose guard reads primitive `p`
    /// (ascending rule index).
    pub readers_of: Vec<Vec<usize>>,
}

impl Sensitivity {
    /// Computes the sensitivity sets for a set of compiled rule plans
    /// over a design with `n_prims` primitives.
    pub fn of_plans(plans: &[crate::xform::RulePlan], n_prims: usize) -> Sensitivity {
        let guard_reads: Vec<BTreeSet<PrimId>> = plans
            .iter()
            .map(|p| match &p.guard {
                Some(g) => RwSet::of_expr(g).touched_prims(),
                None => BTreeSet::new(),
            })
            .collect();
        let body_writes: Vec<BTreeSet<PrimId>> = plans
            .iter()
            .map(|p| RwSet::of_action(&p.body).written_prims())
            .collect();
        let mut readers_of = vec![Vec::new(); n_prims];
        for (rule, reads) in guard_reads.iter().enumerate() {
            for p in reads {
                readers_of[p.0].push(rule);
            }
        }
        Sensitivity {
            guard_reads,
            body_writes,
            readers_of,
        }
    }
}

/// Which "port side" of a FIFO a method belongs to. A FIFO's enqueue side
/// and dequeue side are independent ports: an `enq` in one rule does not
/// conflict with a `deq`/`first` in another (both observe cycle-start
/// state), which is what makes elastic pipelines schedulable one stage per
/// clock.
fn fifo_side(m: PrimMethod) -> Option<u8> {
    match m {
        PrimMethod::Enq | PrimMethod::NotFull => Some(0),
        PrimMethod::Deq | PrimMethod::First | PrimMethod::NotEmpty => Some(1),
        _ => None,
    }
}

/// True if two method invocations on the *same* primitive may be executed
/// by two different rules in the same cycle without violating
/// one-rule-at-a-time semantics.
fn methods_compatible(a: PrimMethod, b: PrimMethod) -> bool {
    if !a.is_write() && !b.is_write() {
        return true;
    }
    match (fifo_side(a), fifo_side(b)) {
        // Opposite FIFO sides never conflict; same side conflicts unless
        // both are pure reads (handled above).
        (Some(x), Some(y)) => x != y,
        _ => false,
    }
}

/// True if two rules (given their read/write sets) conflict: firing both in
/// the same hardware clock cycle could produce a state not explainable by
/// some sequential order.
pub fn rules_conflict(a: &RwSet, b: &RwSet) -> bool {
    let pair_conflicts = |xs: &BTreeSet<(PrimId, PrimMethod)>,
                          ys: &BTreeSet<(PrimId, PrimMethod)>| {
        xs.iter().any(|(p, m)| {
            ys.iter()
                .any(|(q, n)| p == q && !methods_compatible(*m, *n))
        })
    };
    pair_conflicts(&a.writes, &b.writes)
        || pair_conflicts(&a.writes, &b.reads)
        || pair_conflicts(&a.reads, &b.writes)
}

/// Pairwise conflict matrix plus per-rule read/write sets for a design.
#[derive(Debug, Clone)]
pub struct ConflictInfo {
    /// Per-rule read/write sets, indexed like `design.rules`.
    pub rwsets: Vec<RwSet>,
    /// `matrix[i][j]` is true when rules `i` and `j` conflict.
    pub matrix: Vec<Vec<bool>>,
}

impl ConflictInfo {
    /// Computes the conflict matrix for a design.
    pub fn of_design(design: &Design) -> ConflictInfo {
        let rwsets: Vec<RwSet> = design
            .rules
            .iter()
            .map(|r| RwSet::of_action(&r.body))
            .collect();
        let n = rwsets.len();
        let mut matrix = vec![vec![false; n]; n];
        for i in 0..n {
            for j in (i + 1)..n {
                let c = rules_conflict(&rwsets[i], &rwsets[j]);
                matrix[i][j] = c;
                matrix[j][i] = c;
            }
        }
        ConflictInfo { rwsets, matrix }
    }

    /// True when rules `i` and `j` conflict.
    pub fn conflicts(&self, i: usize, j: usize) -> bool {
        self.matrix[i][j]
    }
}

/// The dataflow successor relation: rule `j` is a successor of rule `i`
/// when `i` produces state that `j` consumes (enq → deq/first on the same
/// FIFO, or register/regfile write → read). Used by the chained software
/// scheduler to follow data through the design (§6.3 "Scheduling").
pub fn successors(design: &Design) -> Vec<Vec<usize>> {
    let rwsets: Vec<RwSet> = design
        .rules
        .iter()
        .map(|r| RwSet::of_action(&r.body))
        .collect();
    let n = rwsets.len();
    let mut out = vec![Vec::new(); n];
    for i in 0..n {
        for (j, jset) in rwsets.iter().enumerate() {
            if i == j {
                continue;
            }
            let feeds = rwsets[i].writes.iter().any(|(p, m)| match m {
                PrimMethod::Enq => {
                    jset.reads.iter().any(|(q, n)| {
                        q == p && matches!(n, PrimMethod::First | PrimMethod::NotEmpty)
                    }) || jset
                        .writes
                        .iter()
                        .any(|(q, n)| q == p && *n == PrimMethod::Deq)
                }
                PrimMethod::RegWrite | PrimMethod::Upd => jset.reads.iter().any(|(q, _)| q == p),
                _ => false,
            });
            if feeds {
                out[i].push(j);
            }
        }
    }
    out
}

// ---------------------------------------------------------------------
// Static design validation: the panic-free front door.
// ---------------------------------------------------------------------

/// The widest scalar the runtime models exactly (values are masked and
/// sign-extended within a 64-bit word).
pub const MAX_SCALAR_WIDTH: u32 = 64;
/// Upper bound on the marshaled width of any declared type, in bits.
/// Beyond this, `Type::width` (a `u32`) could overflow and `Value::zero`
/// could be asked for pathological allocations.
pub const MAX_TYPE_WIDTH: u64 = 1 << 20;
/// Upper bound on FIFO/synchronizer depth and register-file size.
pub const MAX_CAPACITY: usize = 1 << 16;

/// Computes the bit width of a type with checked arithmetic: `None` on
/// overflow or when a scalar exceeds [`MAX_SCALAR_WIDTH`]. Unlike
/// [`Type::width`] this never overflows (or panics in debug builds) on
/// adversarial inputs like `Vector#(2^30, Vector#(2^30, ...))`.
pub fn checked_type_width(t: &Type) -> Option<u64> {
    match t {
        Type::Bool => Some(1),
        Type::Bits(w) | Type::Int(w) => (*w <= MAX_SCALAR_WIDTH).then_some(u64::from(*w)),
        Type::Vector(n, t) => checked_type_width(t)?.checked_mul(*n as u64),
        Type::Struct(fields) => fields
            .iter()
            .try_fold(0u64, |acc, (_, t)| acc.checked_add(checked_type_width(t)?)),
    }
}

/// Checked bit width of a concrete value (mirrors [`checked_type_width`]).
fn checked_value_width(v: &Value) -> Option<u64> {
    match v {
        Value::Bool(_) => Some(1),
        Value::Int { width, .. } | Value::Bits { width, .. } => {
            (*width <= MAX_SCALAR_WIDTH).then_some(u64::from(*width))
        }
        Value::Vec(items) => items
            .iter()
            .try_fold(0u64, |acc, v| acc.checked_add(checked_value_width(v)?)),
        Value::Struct(fields) => fields
            .iter()
            .try_fold(0u64, |acc, (_, v)| acc.checked_add(checked_value_width(v)?)),
    }
}

/// The number of explicit arguments each primitive method takes.
fn method_arity(m: PrimMethod) -> usize {
    match m {
        PrimMethod::RegWrite | PrimMethod::Enq | PrimMethod::Sub => 1,
        PrimMethod::Upd => 2,
        PrimMethod::RegRead
        | PrimMethod::Deq
        | PrimMethod::First
        | PrimMethod::NotEmpty
        | PrimMethod::NotFull
        | PrimMethod::Clear => 0,
    }
}

/// True when `m` is a legal method of `spec` — position (value vs.
/// action) included. This is exactly the dispatch table of
/// [`crate::prim::PrimState::call_value`]/`call_action`, checked
/// statically.
fn method_allowed(spec: &PrimSpec, m: PrimMethod, action_position: bool) -> bool {
    use PrimMethod::*;
    let ok = match spec {
        PrimSpec::Reg { .. } => matches!(m, RegRead | RegWrite),
        PrimSpec::Fifo { .. } | PrimSpec::Sync { .. } => {
            matches!(m, First | NotEmpty | NotFull | Enq | Deq | Clear)
        }
        PrimSpec::RegFile { .. } => matches!(m, Sub | Upd),
        PrimSpec::Source { .. } => matches!(m, First | NotEmpty | Deq),
        PrimSpec::Sink { .. } => matches!(m, NotFull | Enq),
    };
    ok && (m.is_write() == action_position)
}

struct Validator<'a> {
    design: &'a Design,
    errors: Vec<ValidateError>,
}

impl Validator<'_> {
    /// Checks one resolved target; returns the `(id, method)` pair when
    /// the reference itself is sound (so callers can do further checks).
    fn check_target(
        &mut self,
        t: &Target,
        context: &str,
        nargs: usize,
        action_position: bool,
    ) -> Option<(PrimId, PrimMethod)> {
        match t {
            Target::Named(path, method) => {
                self.errors.push(ValidateError::UnresolvedName {
                    context: context.to_string(),
                    path: path.to_string(),
                    method: method.clone(),
                });
                None
            }
            Target::Prim(id, m) => {
                let Some(p) = self.design.prims.get(id.0) else {
                    self.errors.push(ValidateError::UnknownPrim {
                        context: context.to_string(),
                        id: id.0,
                        prim_count: self.design.prims.len(),
                    });
                    return None;
                };
                if !method_allowed(&p.spec, *m, action_position) {
                    self.errors.push(ValidateError::BadMethod {
                        context: context.to_string(),
                        prim: p.path.to_string(),
                        method: m.name().to_string(),
                        reason: format!(
                            "not a{} method of a {}",
                            if action_position {
                                "n action"
                            } else {
                                " value"
                            },
                            p.spec.kind_name()
                        ),
                    });
                    return None;
                }
                if method_arity(*m) != nargs {
                    self.errors.push(ValidateError::BadMethod {
                        context: context.to_string(),
                        prim: p.path.to_string(),
                        method: m.name().to_string(),
                        reason: format!("expects {} argument(s), got {nargs}", method_arity(*m)),
                    });
                    return None;
                }
                Some((*id, *m))
            }
        }
    }

    fn check_expr(&mut self, e: &Expr, context: &str) {
        match e {
            Expr::Const(_) | Expr::Var(_) => {}
            Expr::Un(_, a) | Expr::Field(a, _) => self.check_expr(a, context),
            Expr::Bin(_, a, b)
            | Expr::When(a, b)
            | Expr::Let(_, a, b)
            | Expr::Index(a, b)
            | Expr::UpdateField(a, _, b) => {
                self.check_expr(a, context);
                self.check_expr(b, context);
            }
            Expr::Cond(a, b, c) | Expr::UpdateIndex(a, b, c) => {
                self.check_expr(a, context);
                self.check_expr(b, context);
                self.check_expr(c, context);
            }
            Expr::MkVec(es) => es.iter().for_each(|x| self.check_expr(x, context)),
            Expr::MkStruct(fs) => fs.iter().for_each(|(_, x)| self.check_expr(x, context)),
            Expr::Call(t, args) => {
                self.check_target(t, context, args.len(), false);
                args.iter().for_each(|x| self.check_expr(x, context));
            }
        }
    }

    fn check_action(&mut self, a: &Action, context: &str) {
        match a {
            Action::NoAction => {}
            Action::Write(t, e) => {
                self.check_target(t, context, 1, true);
                self.check_expr(e, context);
            }
            Action::If(c, x, y) => {
                self.check_expr(c, context);
                self.check_action(x, context);
                self.check_action(y, context);
            }
            Action::Par(x, y) | Action::Seq(x, y) => {
                self.check_action(x, context);
                self.check_action(y, context);
            }
            Action::When(g, x) | Action::Loop(g, x) => {
                self.check_expr(g, context);
                self.check_action(x, context);
            }
            Action::Let(_, e, x) => {
                self.check_expr(e, context);
                self.check_action(x, context);
            }
            Action::LocalGuard(x) => self.check_action(x, context),
            Action::Call(t, args) => {
                self.check_target(t, context, args.len(), true);
                args.iter().for_each(|x| self.check_expr(x, context));
            }
        }
    }

    /// The set of `(prim, method)` writes an action performs on *every*
    /// committing execution. `If` takes the branch intersection, loops
    /// and `localGuard` bodies may not run at all, and `Seq` re-writes
    /// are sequentially legal — so only `Par`-arm overlaps are definite
    /// double writes.
    fn definite_writes(
        &mut self,
        a: &Action,
        rule: &str,
        flagged: &mut BTreeSet<PrimId>,
    ) -> BTreeSet<(PrimId, PrimMethod)> {
        match a {
            Action::NoAction => BTreeSet::new(),
            Action::Write(t, _) | Action::Call(t, _) => match t {
                Target::Prim(id, m) if m.is_write() && self.design.prims.get(id.0).is_some() => {
                    std::iter::once((*id, *m)).collect()
                }
                _ => BTreeSet::new(),
            },
            Action::Par(x, y) => {
                let wx = self.definite_writes(x, rule, flagged);
                let wy = self.definite_writes(y, rule, flagged);
                for (p, m) in &wx {
                    for (q, n) in &wy {
                        if p == q && !methods_compatible(*m, *n) && flagged.insert(*p) {
                            self.errors.push(ValidateError::ConflictingWrites {
                                rule: rule.to_string(),
                                prim: self.design.prims[p.0].path.to_string(),
                            });
                        }
                    }
                }
                wx.union(&wy).copied().collect()
            }
            Action::Seq(x, y) => {
                let wx = self.definite_writes(x, rule, flagged);
                let wy = self.definite_writes(y, rule, flagged);
                wx.union(&wy).copied().collect()
            }
            Action::If(_, x, y) => {
                let wx = self.definite_writes(x, rule, flagged);
                let wy = self.definite_writes(y, rule, flagged);
                wx.intersection(&wy).copied().collect()
            }
            Action::When(_, x) | Action::Let(_, _, x) => self.definite_writes(x, rule, flagged),
            Action::Loop(..) | Action::LocalGuard(..) => BTreeSet::new(),
        }
    }

    fn check_spec(&mut self, path: &str, spec: &PrimSpec) {
        let width = |ty: &Type| match checked_type_width(ty) {
            Some(w) if w <= MAX_TYPE_WIDTH => None,
            Some(w) => Some(format!(
                "type `{ty}` is {w} bits wide (limit {MAX_TYPE_WIDTH})"
            )),
            None => Some(format!(
                "width of type `{ty}` overflows (or a scalar exceeds {MAX_SCALAR_WIDTH} bits)"
            )),
        };
        match spec {
            PrimSpec::Reg { init } => {
                if checked_value_width(init).is_none_or(|w| w > MAX_TYPE_WIDTH) {
                    self.errors.push(ValidateError::WidthOverflow {
                        prim: path.to_string(),
                        detail: format!(
                            "register initializer wider than {MAX_TYPE_WIDTH} bits \
                             (or a scalar exceeds {MAX_SCALAR_WIDTH} bits)"
                        ),
                    });
                }
            }
            PrimSpec::Fifo { depth, ty } | PrimSpec::Sync { depth, ty, .. } => {
                if let Some(detail) = width(ty) {
                    self.errors.push(ValidateError::WidthOverflow {
                        prim: path.to_string(),
                        detail,
                    });
                }
                if *depth == 0 {
                    self.errors.push(ValidateError::ZeroCapacity {
                        prim: path.to_string(),
                        what: "fifo depth".into(),
                    });
                } else if *depth > MAX_CAPACITY {
                    self.errors.push(ValidateError::WidthOverflow {
                        prim: path.to_string(),
                        detail: format!("depth {depth} exceeds the {MAX_CAPACITY} cap"),
                    });
                }
                if let PrimSpec::Sync { from, to, .. } = spec {
                    if from == to {
                        self.errors.push(ValidateError::DegenerateSync {
                            prim: path.to_string(),
                            domain: from.clone(),
                        });
                    }
                }
            }
            PrimSpec::RegFile { size, ty, init } => {
                if let Some(detail) = width(ty) {
                    self.errors.push(ValidateError::WidthOverflow {
                        prim: path.to_string(),
                        detail,
                    });
                }
                if *size == 0 {
                    self.errors.push(ValidateError::ZeroCapacity {
                        prim: path.to_string(),
                        what: "regfile size".into(),
                    });
                } else if *size > MAX_CAPACITY {
                    self.errors.push(ValidateError::WidthOverflow {
                        prim: path.to_string(),
                        detail: format!("size {size} exceeds the {MAX_CAPACITY} cap"),
                    });
                }
                if init.len() > *size {
                    self.errors.push(ValidateError::BadInit {
                        prim: path.to_string(),
                        detail: format!("{} initializers for {size} cells", init.len()),
                    });
                }
            }
            PrimSpec::Source { ty, .. } | PrimSpec::Sink { ty, .. } => {
                if let Some(detail) = width(ty) {
                    self.errors.push(ValidateError::WidthOverflow {
                        prim: path.to_string(),
                        detail,
                    });
                }
            }
        }
    }
}

/// Validates a flat design, returning every diagnostic found.
///
/// The contract (property-tested by the fuzz farm): when `validate(d)`
/// returns `Ok(())`, the whole downstream pipeline —
/// [`crate::domain::infer_domains`], [`crate::partition::partition`],
/// [`crate::xform`] compilation, and execution on either scheduler —
/// is panic-free on `d`. Runtime [`crate::error::ExecError`]s (guard
/// failures, dynamic division by zero, out-of-range register-file
/// indices) remain possible and are returned as `Err`, never aborts.
///
/// # Errors
///
/// A non-empty list of [`ValidateError`] diagnostics, one per defect.
pub fn validate(design: &Design) -> Result<(), Vec<ValidateError>> {
    let mut v = Validator {
        design,
        errors: Vec::new(),
    };

    let mut seen = BTreeSet::new();
    for p in &design.prims {
        if !seen.insert(p.path.to_string()) {
            v.errors.push(ValidateError::DuplicatePath {
                path: p.path.to_string(),
            });
        }
        v.check_spec(p.path.as_str(), &p.spec);
    }

    for r in &design.rules {
        let context = format!("rule `{}`", r.name);
        v.check_action(&r.body, &context);
        let mut flagged = BTreeSet::new();
        v.definite_writes(&r.body, &r.name, &mut flagged);
    }
    for m in &design.act_methods {
        let context = format!("action method `{}`", m.name);
        v.check_action(&m.body, &context);
        let mut flagged = BTreeSet::new();
        v.definite_writes(&m.body, &m.name, &mut flagged);
    }
    for m in &design.val_methods {
        let context = format!("value method `{}`", m.name);
        v.check_expr(&m.body, &context);
    }

    // Only consult domain inference once the structural checks hold —
    // a dangling PrimId would otherwise surface twice.
    if v.errors.is_empty() {
        if let Err(e) = crate::domain::infer_domains(design, crate::domain::SW) {
            v.errors.push(ValidateError::DomainConflict {
                message: e.message().to_string(),
            });
        }
    }

    if v.errors.is_empty() {
        Ok(())
    } else {
        Err(v.errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Path;
    use crate::design::PrimDef;
    use crate::prim::PrimSpec;
    use crate::types::Type;
    use crate::value::Value;

    const R0: PrimId = PrimId(0);
    const Q0: PrimId = PrimId(1);
    const Q1: PrimId = PrimId(2);

    fn call(id: PrimId, m: PrimMethod) -> Action {
        Action::Call(Target::Prim(id, m), vec![])
    }
    fn enq(id: PrimId, e: Expr) -> Action {
        Action::Call(Target::Prim(id, PrimMethod::Enq), vec![e])
    }
    fn first(id: PrimId) -> Expr {
        Expr::Call(Target::Prim(id, PrimMethod::First), vec![])
    }

    #[test]
    fn rwset_collection() {
        // q1.enq(q0.first) ; q0.deq
        let a = Action::Seq(
            Box::new(enq(Q1, first(Q0))),
            Box::new(call(Q0, PrimMethod::Deq)),
        );
        let s = RwSet::of_action(&a);
        assert!(s.reads.contains(&(Q0, PrimMethod::First)));
        assert!(s.writes.contains(&(Q1, PrimMethod::Enq)));
        assert!(s.writes.contains(&(Q0, PrimMethod::Deq)));
        assert_eq!(s.touched_prims().len(), 2);
    }

    #[test]
    fn enq_deq_opposite_sides_do_not_conflict() {
        // Stage i deqs q0 and enqs q1; stage i+1 deqs q1: pipeline rules
        // must be concurrently schedulable.
        let r1 = RwSet::of_action(&Action::Seq(
            Box::new(enq(Q1, first(Q0))),
            Box::new(call(Q0, PrimMethod::Deq)),
        ));
        let r2 = RwSet::of_action(&call(Q1, PrimMethod::Deq));
        assert!(!rules_conflict(&r1, &r2));
    }

    #[test]
    fn double_enq_conflicts() {
        let r1 = RwSet::of_action(&enq(Q0, Expr::int(8, 1)));
        let r2 = RwSet::of_action(&enq(Q0, Expr::int(8, 2)));
        assert!(rules_conflict(&r1, &r2));
    }

    #[test]
    fn reg_write_read_conflicts() {
        let w = RwSet::of_action(&Action::Write(
            Target::Prim(R0, PrimMethod::RegWrite),
            Box::new(Expr::int(8, 1)),
        ));
        let r = RwSet::of_expr(&Expr::Call(Target::Prim(R0, PrimMethod::RegRead), vec![]));
        assert!(rules_conflict(&w, &r));
        assert!(rules_conflict(&w, &w));
        assert!(!rules_conflict(&r, &r));
    }

    #[test]
    fn deq_vs_first_conflicts() {
        // Another rule peeking `first` must not run in the same cycle as a
        // dequeuer in our conservative model.
        let d = RwSet::of_action(&call(Q0, PrimMethod::Deq));
        let f = RwSet::of_expr(&first(Q0));
        assert!(rules_conflict(&d, &f));
    }

    fn pipeline_design() -> Design {
        Design {
            name: "pipe".into(),
            prims: vec![
                PrimDef {
                    path: Path::new("r"),
                    spec: PrimSpec::Reg {
                        init: Value::int(8, 0),
                    },
                },
                PrimDef {
                    path: Path::new("q0"),
                    spec: PrimSpec::Fifo {
                        depth: 2,
                        ty: Type::Int(8),
                    },
                },
                PrimDef {
                    path: Path::new("q1"),
                    spec: PrimSpec::Fifo {
                        depth: 2,
                        ty: Type::Int(8),
                    },
                },
            ],
            rules: vec![
                crate::ast::RuleDef {
                    name: "s0".into(),
                    body: enq(Q0, Expr::int(8, 1)),
                },
                crate::ast::RuleDef {
                    name: "s1".into(),
                    body: Action::Seq(
                        Box::new(enq(Q1, first(Q0))),
                        Box::new(call(Q0, PrimMethod::Deq)),
                    ),
                },
                crate::ast::RuleDef {
                    name: "s2".into(),
                    body: call(Q1, PrimMethod::Deq),
                },
            ],
            ..Default::default()
        }
    }

    #[test]
    fn conflict_matrix_symmetry() {
        let d = pipeline_design();
        let ci = ConflictInfo::of_design(&d);
        for i in 0..3 {
            assert!(!ci.conflicts(i, i));
            for j in 0..3 {
                assert_eq!(ci.conflicts(i, j), ci.conflicts(j, i));
            }
        }
        // The three pipeline stages are mutually conflict-free.
        assert!(!ci.conflicts(0, 1));
        assert!(!ci.conflicts(1, 2));
        assert!(!ci.conflicts(0, 2));
    }

    #[test]
    fn successor_relation_follows_data() {
        let d = pipeline_design();
        let succ = successors(&d);
        assert_eq!(succ[0], vec![1], "s0 enq q0 feeds s1");
        assert_eq!(succ[1], vec![2], "s1 enq q1 feeds s2");
        assert!(succ[2].is_empty());
    }

    #[test]
    fn sensitivity_inverts_guard_reads() {
        let d = pipeline_design();
        let plans = crate::xform::compile_design(&d, crate::xform::CompileOpts::default());
        let sens = Sensitivity::of_plans(&plans, d.prims.len());
        // s0 guards on q0.notFull; s1 on q0.notEmpty ∧ q1.notFull; s2 on
        // q1.notEmpty. The register is in nobody's sensitivity list.
        assert!(sens.guard_reads[0].contains(&Q0));
        assert!(sens.guard_reads[1].contains(&Q0) && sens.guard_reads[1].contains(&Q1));
        assert!(sens.guard_reads[2].contains(&Q1));
        assert_eq!(sens.readers_of[Q0.0], vec![0, 1]);
        assert_eq!(sens.readers_of[Q1.0], vec![1, 2]);
        assert!(sens.readers_of[R0.0].is_empty());
        assert!(sens.body_writes[1].contains(&Q0) && sens.body_writes[1].contains(&Q1));
    }

    // ---- validate(): one test per diagnostic kind -------------------

    fn kinds(d: &Design) -> Vec<&'static str> {
        match validate(d) {
            Ok(()) => vec![],
            Err(es) => es.iter().map(|e| e.kind()).collect(),
        }
    }

    #[test]
    fn validate_accepts_pipeline() {
        assert_eq!(validate(&pipeline_design()), Ok(()));
    }

    #[test]
    fn validate_unknown_prim() {
        let mut d = pipeline_design();
        d.rules[0].body = enq(PrimId(99), Expr::int(8, 1));
        assert_eq!(kinds(&d), vec!["unknown-prim"]);
    }

    #[test]
    fn validate_unresolved_name() {
        let mut d = pipeline_design();
        d.rules[0].body = Action::Call(
            Target::Named(Path::new("ghost"), "enq".into()),
            vec![Expr::int(8, 1)],
        );
        assert_eq!(kinds(&d), vec!["unresolved-name"]);
    }

    #[test]
    fn validate_bad_method_kind_position_and_arity() {
        // sub on a Fifo: wrong kind.
        let mut d = pipeline_design();
        d.rules[0].body = call(Q0, PrimMethod::Sub);
        assert_eq!(kinds(&d), vec!["bad-method"]);
        // enq used in value position.
        let mut d = pipeline_design();
        d.rules[0].body = enq(Q0, Expr::Call(Target::Prim(Q1, PrimMethod::Enq), vec![]));
        assert!(kinds(&d).contains(&"bad-method"));
        // enq with no argument: wrong arity.
        let mut d = pipeline_design();
        d.rules[0].body = call(Q0, PrimMethod::Enq);
        assert_eq!(kinds(&d), vec!["bad-method"]);
    }

    #[test]
    fn validate_width_overflow() {
        // A vector whose total width overflows u32 multiplication — the
        // very shape that would panic `Type::width` in debug builds.
        let mut d = pipeline_design();
        d.prims[1].spec = PrimSpec::Fifo {
            depth: 2,
            ty: Type::vector(1 << 40, Type::vector(1 << 40, Type::Int(32))),
        };
        assert!(kinds(&d).contains(&"width-overflow"));
        // A 65-bit scalar: wider than the modeled word.
        let mut d = pipeline_design();
        d.prims[0].spec = PrimSpec::Reg {
            init: Value::Bits { width: 65, bits: 0 },
        };
        assert!(kinds(&d).contains(&"width-overflow"));
    }

    #[test]
    fn validate_zero_capacity() {
        let mut d = pipeline_design();
        d.prims[1].spec = PrimSpec::Fifo {
            depth: 0,
            ty: Type::Int(8),
        };
        assert!(kinds(&d).contains(&"zero-capacity"));
        let mut d = pipeline_design();
        d.prims[0].spec = PrimSpec::RegFile {
            size: 0,
            ty: Type::Int(8),
            init: vec![],
        };
        assert!(kinds(&d).contains(&"zero-capacity"));
    }

    #[test]
    fn validate_bad_init() {
        let mut d = pipeline_design();
        d.prims[0].spec = PrimSpec::RegFile {
            size: 2,
            ty: Type::Int(8),
            init: vec![Value::int(8, 0); 5],
        };
        assert_eq!(kinds(&d), vec!["bad-init"]);
    }

    #[test]
    fn validate_conflicting_writes() {
        // r._write(1) | r._write(2): both arms always fire.
        let w = |v: i64| {
            Action::Write(
                Target::Prim(R0, PrimMethod::RegWrite),
                Box::new(Expr::int(8, v)),
            )
        };
        let mut d = pipeline_design();
        d.rules[0].body = Action::Par(Box::new(w(1)), Box::new(w(2)));
        assert_eq!(kinds(&d), vec!["conflicting-writes"]);
        // enq | deq on the same FIFO touch opposite sides: fine.
        let mut d = pipeline_design();
        d.rules[0].body = Action::Par(
            Box::new(enq(Q0, Expr::int(8, 1))),
            Box::new(call(Q0, PrimMethod::Deq)),
        );
        assert_eq!(validate(&d), Ok(()));
        // If-branch writes are not definite: no diagnostic (runtime may
        // still raise DoubleWrite when both actually fire).
        let mut d = pipeline_design();
        d.rules[0].body = Action::Par(
            Box::new(Action::If(
                Box::new(Expr::Const(Value::Bool(true))),
                Box::new(w(1)),
                Box::new(Action::NoAction),
            )),
            Box::new(Action::If(
                Box::new(Expr::Const(Value::Bool(false))),
                Box::new(w(2)),
                Box::new(Action::NoAction),
            )),
        );
        assert_eq!(validate(&d), Ok(()));
    }

    #[test]
    fn validate_degenerate_sync() {
        let mut d = pipeline_design();
        d.prims[1].spec = PrimSpec::Sync {
            depth: 2,
            ty: Type::Int(8),
            from: "HW".into(),
            to: "HW".into(),
        };
        assert!(kinds(&d).contains(&"degenerate-sync"));
    }

    #[test]
    fn validate_domain_conflict() {
        // One rule touching both sides of a synchronizer pins itself to
        // two different domains at once.
        let mut d = pipeline_design();
        d.prims[1].spec = PrimSpec::Sync {
            depth: 2,
            ty: Type::Int(8),
            from: "SW".into(),
            to: "HW".into(),
        };
        d.rules[0].body = Action::Par(
            Box::new(enq(Q0, Expr::int(8, 1))),
            Box::new(call(Q0, PrimMethod::Deq)),
        );
        assert_eq!(kinds(&d), vec!["domain-conflict"]);
    }

    #[test]
    fn validate_duplicate_path() {
        let mut d = pipeline_design();
        d.prims[2].path = Path::new("q0");
        assert_eq!(kinds(&d), vec!["duplicate-path"]);
    }

    #[test]
    fn checked_width_matches_simple_types() {
        assert_eq!(checked_type_width(&Type::Bool), Some(1));
        assert_eq!(checked_type_width(&Type::Int(32)), Some(32));
        assert_eq!(
            checked_type_width(&Type::vector(4, Type::Int(16))),
            Some(64)
        );
        assert_eq!(checked_type_width(&Type::Int(65)), None);
        assert_eq!(
            checked_type_width(&Type::Struct(vec![
                ("a".into(), Type::Bool),
                ("b".into(), Type::Bits(7)),
            ])),
            Some(8)
        );
    }
}
