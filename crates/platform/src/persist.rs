//! The durable snapshot format (`BCKP`) and crash-consistent autosave.
//!
//! A snapshot file is a self-contained, versioned binary image of a
//! [`Checkpoint`](crate::cosim::Checkpoint) (plus, when written through
//! [`Cosim::write_snapshot_to`](crate::cosim::Cosim::write_snapshot_to),
//! the recovery context needed to resume mid-recovery runs):
//!
//! ```text
//! header   "BCKP" magic (4) | format version u32 | design fingerprint
//!          u64 | section count u32 | CRC32 over the preceding 20 bytes
//! section  kind u32 | payload length u64 | payload bytes | CRC32 over
//!          kind + length + payload            (repeated, in fixed order)
//! ```
//!
//! Section order is canonical: `META`, `SW`, one `PART` per hardware
//! partition (index-tagged), one `FABRIC` per fabric link, then the
//! optional `CONTEXT` (recovery-policy state, software-owned partition
//! records, fault-fired flags) and `LASTCKPT` (the last automatic
//! recovery checkpoint) sections. All integers are little-endian.
//!
//! The decoder is strictly panic-free: every malformed, truncated,
//! bit-flipped, version-skewed, or wrong-design input yields a typed
//! [`PersistError`]. Declared lengths and counts are validated against
//! the bytes actually present *before* any allocation, so a corrupt
//! count cannot OOM the reader (`tests/persist_format.rs` enforces this
//! over randomized mutations).
//!
//! Crash consistency: [`write_atomically`] writes a temp file in the
//! destination directory, fsyncs it, renames it over the destination,
//! and fsyncs the directory. A crash at any point leaves either the old
//! complete snapshot or the new complete snapshot, never a torn one —
//! and a torn temp file is never looked at, because readers open only
//! the final name.

use std::fmt;
use std::fs::File;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use crate::wire::crc32_bytes;
use bcl_core::codec::{ByteReader, ByteWriter, CodecError};

/// The four magic bytes that open every snapshot file.
pub const MAGIC: [u8; 4] = *b"BCKP";

/// Current snapshot format version. Bump on any incompatible layout
/// change; readers reject versions outside
/// [`MIN_FORMAT_VERSION`]`..=`[`FORMAT_VERSION`] with
/// [`PersistError::UnsupportedVersion`] instead of misparsing.
///
/// * v1 — original container; store snapshots are always tree-backed.
/// * v2 — store snapshots may carry the flat-arena backend (page list +
///   kind tags behind a sentinel). Tree snapshots are encoded
///   byte-identically to v1, so a v2 reader accepts every v1 file.
pub const FORMAT_VERSION: u32 = 2;

/// Oldest snapshot format version this reader still accepts.
pub const MIN_FORMAT_VERSION: u32 = 1;

/// Size of the fixed header including its CRC.
pub(crate) const HEADER_BYTES: usize = 24;

/// Section kinds, in canonical file order.
pub(crate) const SEC_META: u32 = 1;
/// Software runner snapshot section.
pub(crate) const SEC_SW: u32 = 2;
/// Per-hardware-partition snapshot section (one per partition).
pub(crate) const SEC_PART: u32 = 3;
/// Per-fabric-link snapshot section (one per link).
pub(crate) const SEC_FABRIC: u32 = 4;
/// Recovery/resume context section (optional).
pub(crate) const SEC_CONTEXT: u32 = 5;
/// Last automatic recovery checkpoint section (optional).
pub(crate) const SEC_LASTCKPT: u32 = 6;

/// Everything that can go wrong reading or writing a snapshot. The
/// decoder returns these for *any* bad input — it never panics.
#[derive(Debug)]
pub enum PersistError {
    /// An underlying I/O operation failed.
    Io(std::io::Error),
    /// The input does not start with the `BCKP` magic.
    BadMagic,
    /// The input's format version is outside
    /// [`MIN_FORMAT_VERSION`]`..=`[`FORMAT_VERSION`].
    UnsupportedVersion(u32),
    /// The snapshot was taken from a different design/partitioning than
    /// the one trying to resume it.
    FingerprintMismatch {
        /// Fingerprint of the design attempting the resume.
        expected: u64,
        /// Fingerprint recorded in the snapshot.
        found: u64,
    },
    /// The input ends before the bytes its headers promise.
    Truncated,
    /// A CRC32 check failed (section kind, or 0 for the file header).
    Crc {
        /// The section kind whose checksum failed; 0 for the header.
        section: u32,
    },
    /// The bytes are structurally invalid (bad tag, bad ordering,
    /// trailing garbage, count/flag mismatch, ...).
    Malformed(&'static str),
    /// The snapshot decoded cleanly but describes a system whose shape
    /// (partition count, channel count, store layout, rule count)
    /// differs from the one resuming it.
    TopologyMismatch(String),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "snapshot i/o error: {e}"),
            PersistError::BadMagic => write!(f, "not a BCKP snapshot (bad magic)"),
            PersistError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported snapshot format version {v} \
                     (supported: {MIN_FORMAT_VERSION}..={FORMAT_VERSION})"
                )
            }
            PersistError::FingerprintMismatch { expected, found } => write!(
                f,
                "snapshot is for a different design: fingerprint {found:#018x}, \
                 this design is {expected:#018x}"
            ),
            PersistError::Truncated => write!(f, "snapshot is truncated"),
            PersistError::Crc { section: 0 } => write!(f, "snapshot header checksum mismatch"),
            PersistError::Crc { section } => {
                write!(f, "snapshot section {section} checksum mismatch")
            }
            PersistError::Malformed(m) => write!(f, "malformed snapshot: {m}"),
            PersistError::TopologyMismatch(m) => write!(f, "snapshot topology mismatch: {m}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> PersistError {
        PersistError::Io(e)
    }
}

impl From<CodecError> for PersistError {
    fn from(e: CodecError) -> PersistError {
        match e {
            CodecError::Truncated => PersistError::Truncated,
            CodecError::Malformed(m) => PersistError::Malformed(m),
        }
    }
}

/// Result alias for snapshot operations.
pub type PersistResult<T> = Result<T, PersistError>;

/// Automatic snapshot-to-disk policy for [`Cosim::set_autosave`]: every
/// `interval` FPGA cycles the whole system is checkpointed and written
/// atomically to `<dir>/autosave.bckp` (via [`write_atomically`]), so a
/// process killed at *any* instant can be resumed bit- and
/// cycle-identically from the latest complete autosave with
/// [`Cosim::resume_from_file`].
///
/// [`Cosim::set_autosave`]: crate::cosim::Cosim::set_autosave
/// [`Cosim::resume_from_file`]: crate::cosim::Cosim::resume_from_file
#[derive(Debug, Clone)]
pub struct CheckpointPolicy {
    /// FPGA cycles between autosaves (clamped to at least 1).
    pub interval: u64,
    /// Directory the autosave file lives in (created on first write).
    pub dir: PathBuf,
}

impl CheckpointPolicy {
    /// Autosave every `interval` FPGA cycles into `dir`.
    pub fn new(interval: u64, dir: impl Into<PathBuf>) -> CheckpointPolicy {
        CheckpointPolicy {
            interval: interval.max(1),
            dir: dir.into(),
        }
    }

    /// The path autosaves are written to (`<dir>/autosave.bckp`).
    pub fn snapshot_path(&self) -> PathBuf {
        self.dir.join("autosave.bckp")
    }
}

/// A parsed container: header fields plus the CRC-verified sections in
/// file order. Payload bytes are copied out so the caller can decode
/// them independently.
pub(crate) struct Container {
    pub(crate) fingerprint: u64,
    pub(crate) sections: Vec<(u32, Vec<u8>)>,
}

/// Writes a complete snapshot container: header, then each `(kind,
/// payload)` section with its CRC, in the order given.
pub(crate) fn write_container(
    w: &mut impl Write,
    fingerprint: u64,
    sections: &[(u32, Vec<u8>)],
) -> PersistResult<()> {
    let mut head = ByteWriter::new();
    head.bytes(&MAGIC);
    head.u32(FORMAT_VERSION);
    head.u64(fingerprint);
    head.u32(
        u32::try_from(sections.len())
            .map_err(|_| PersistError::Malformed("too many sections for a snapshot container"))?,
    );
    let head = head.into_bytes();
    w.write_all(&head)?;
    w.write_all(&crc32_bytes(&head).to_le_bytes())?;
    for (kind, payload) in sections {
        let mut sec = ByteWriter::new();
        sec.u32(*kind);
        sec.u64(payload.len() as u64);
        sec.bytes(payload);
        let sec = sec.into_bytes();
        w.write_all(&sec)?;
        w.write_all(&crc32_bytes(&sec).to_le_bytes())?;
    }
    Ok(())
}

/// Reads the stream to its end and parses it as a snapshot container.
pub(crate) fn read_container(r: &mut impl Read) -> PersistResult<Container> {
    let mut buf = Vec::new();
    r.read_to_end(&mut buf)?;
    parse_container(&buf)
}

/// Parses a complete in-memory snapshot container. Validates the magic,
/// version, header CRC, and every section CRC; never trusts a declared
/// length beyond the bytes actually present.
pub(crate) fn parse_container(buf: &[u8]) -> PersistResult<Container> {
    if buf.len() >= MAGIC.len() && buf[..MAGIC.len()] != MAGIC {
        return Err(PersistError::BadMagic);
    }
    if buf.len() < HEADER_BYTES {
        return Err(PersistError::Truncated);
    }
    let head = &buf[..HEADER_BYTES - 4];
    let crc = u32::from_le_bytes(buf[HEADER_BYTES - 4..HEADER_BYTES].try_into().unwrap());
    if crc32_bytes(head) != crc {
        return Err(PersistError::Crc { section: 0 });
    }
    let mut r = ByteReader::new(head);
    r.bytes(MAGIC.len())?; // magic, already validated
    let version = r.u32()?;
    if !(MIN_FORMAT_VERSION..=FORMAT_VERSION).contains(&version) {
        return Err(PersistError::UnsupportedVersion(version));
    }
    let fingerprint = r.u64()?;
    let count = r.u32()?;
    r.finish()?;
    let mut sections = Vec::new(); // grows with actual data, not `count`
    let mut off = HEADER_BYTES;
    for _ in 0..count {
        if buf.len() < off + 12 {
            return Err(PersistError::Truncated);
        }
        let kind = u32::from_le_bytes(buf[off..off + 4].try_into().unwrap());
        let len = u64::from_le_bytes(buf[off + 4..off + 12].try_into().unwrap());
        let len = usize::try_from(len).map_err(|_| PersistError::Truncated)?;
        let end = off
            .checked_add(12)
            .and_then(|x| x.checked_add(len))
            .and_then(|x| x.checked_add(4))
            .ok_or(PersistError::Truncated)?;
        if buf.len() < end {
            return Err(PersistError::Truncated);
        }
        let body = &buf[off..end - 4];
        let crc = u32::from_le_bytes(buf[end - 4..end].try_into().unwrap());
        if crc32_bytes(body) != crc {
            return Err(PersistError::Crc { section: kind });
        }
        sections.push((kind, body[12..].to_vec()));
        off = end;
    }
    if off != buf.len() {
        return Err(PersistError::Malformed("trailing bytes after last section"));
    }
    Ok(Container {
        fingerprint,
        sections,
    })
}

/// Writes `bytes` to `path` crash-consistently: temp file in the same
/// directory, `fsync`, `rename` over the destination, directory
/// `fsync`. At every instant `path` names either the previous complete
/// file or the new complete file.
pub fn write_atomically(path: &Path, bytes: &[u8]) -> PersistResult<()> {
    let dir = path.parent().filter(|d| !d.as_os_str().is_empty());
    if let Some(dir) = dir {
        std::fs::create_dir_all(dir)?;
    }
    let file_name = path
        .file_name()
        .ok_or(PersistError::Malformed("snapshot path has no file name"))?;
    let mut tmp = path.to_path_buf();
    tmp.set_file_name(format!(".{}.tmp", file_name.to_string_lossy()));
    {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    if let Some(dir) = dir {
        // Persist the rename itself; best-effort on filesystems that
        // reject directory fsync.
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_sections() -> Vec<(u32, Vec<u8>)> {
        vec![
            (SEC_META, vec![1, 2, 3, 4]),
            (SEC_SW, vec![]),
            (SEC_PART, vec![0xff; 33]),
        ]
    }

    fn encode(sections: &[(u32, Vec<u8>)]) -> Vec<u8> {
        let mut out = Vec::new();
        write_container(&mut out, 0xdead_beef_cafe_f00d, sections).unwrap();
        out
    }

    #[test]
    fn container_roundtrips() {
        let bytes = encode(&roundtrip_sections());
        let c = parse_container(&bytes).unwrap();
        assert_eq!(c.fingerprint, 0xdead_beef_cafe_f00d);
        assert_eq!(c.sections, roundtrip_sections());
    }

    #[test]
    fn every_truncation_is_rejected_without_panic() {
        let bytes = encode(&roundtrip_sections());
        for n in 0..bytes.len() {
            assert!(parse_container(&bytes[..n]).is_err(), "prefix {n} accepted");
        }
    }

    #[test]
    fn every_byte_flip_is_rejected() {
        let bytes = encode(&roundtrip_sections());
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            assert!(parse_container(&bad).is_err(), "flip at {i} accepted");
        }
    }

    #[test]
    fn wrong_magic_and_version_are_typed() {
        let bytes = encode(&roundtrip_sections());
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(matches!(parse_container(&bad), Err(PersistError::BadMagic)));
        // Bump the version and re-seal the header CRC so the version
        // check (not the checksum) is what fires.
        let mut skewed = bytes.clone();
        skewed[4] = 99;
        let crc = crc32_bytes(&skewed[..HEADER_BYTES - 4]);
        skewed[HEADER_BYTES - 4..HEADER_BYTES].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            parse_container(&skewed),
            Err(PersistError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn huge_declared_section_length_is_truncated_not_oom() {
        let bytes = encode(&roundtrip_sections());
        let mut bad = bytes.clone();
        // Corrupt the first section's length field to u64::MAX and
        // re-seal its CRC: the parser must report truncation without
        // allocating anything near the declared size.
        bad[HEADER_BYTES + 4..HEADER_BYTES + 12].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(parse_container(&bad).is_err());
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = encode(&roundtrip_sections());
        bytes.push(0);
        assert!(matches!(
            parse_container(&bytes),
            Err(PersistError::Malformed(_))
        ));
    }

    #[test]
    fn atomic_write_replaces_previous_content() {
        let dir = std::env::temp_dir().join(format!("bckp-test-{}", std::process::id()));
        let path = dir.join("snap.bckp");
        write_atomically(&path, b"first").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        write_atomically(&path, b"second").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
