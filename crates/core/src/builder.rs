//! An embedded DSL for constructing BCL programs from Rust.
//!
//! The paper's BCL inherits BSV's Haskell-style meta-programming: loops in
//! the source are unrolled at elaboration into rules and expressions. In
//! this reproduction, Rust *is* the meta-language — the combinators here
//! play the role of BSV's static elaboration-time constructs, and the
//! [`crate::elab`] pass handles module instantiation and method inlining.
//!
//! ```
//! use bcl_core::builder::{dsl::*, ModuleBuilder};
//! use bcl_core::program::Program;
//! use bcl_core::types::Type;
//!
//! let mut m = ModuleBuilder::new("Counter");
//! m.reg("count", bcl_core::value::Value::int(32, 0));
//! m.rule("tick", write("count", add(read("count"), cint(32, 1))));
//! let program = Program::with_root(m.build());
//! let design = bcl_core::elab::elaborate(&program).unwrap();
//! assert_eq!(design.rules.len(), 1);
//! ```

use crate::ast::{ActMethodDef, Action, Expr, RuleDef, ValMethodDef};
use crate::prim::PrimSpec;
use crate::program::{InstDef, InstKind, ModuleDef};
use crate::types::Type;
use crate::value::Value;

/// Incremental builder for a [`ModuleDef`].
#[derive(Debug, Clone)]
pub struct ModuleBuilder {
    def: ModuleDef,
}

impl ModuleBuilder {
    /// Starts a module definition.
    pub fn new(name: impl Into<String>) -> ModuleBuilder {
        ModuleBuilder {
            def: ModuleDef::new(name),
        }
    }

    /// Declares a constructor parameter.
    pub fn param(&mut self, name: impl Into<String>) -> &mut Self {
        self.def.params.push(name.into());
        self
    }

    /// Instantiates a register with an initial value.
    pub fn reg(&mut self, name: impl Into<String>, init: Value) -> &mut Self {
        self.inst(name, InstKind::Prim(PrimSpec::Reg { init }))
    }

    /// Instantiates a FIFO.
    pub fn fifo(&mut self, name: impl Into<String>, depth: usize, ty: Type) -> &mut Self {
        self.inst(name, InstKind::Prim(PrimSpec::Fifo { depth, ty }))
    }

    /// Instantiates a register file with initial contents.
    pub fn regfile(
        &mut self,
        name: impl Into<String>,
        size: usize,
        ty: Type,
        init: Vec<Value>,
    ) -> &mut Self {
        self.inst(name, InstKind::Prim(PrimSpec::RegFile { size, ty, init }))
    }

    /// Instantiates a synchronizer from one domain to another.
    pub fn sync(
        &mut self,
        name: impl Into<String>,
        depth: usize,
        ty: Type,
        from: impl Into<String>,
        to: impl Into<String>,
    ) -> &mut Self {
        self.inst(
            name,
            InstKind::Prim(PrimSpec::Sync {
                depth,
                ty,
                from: from.into(),
                to: to.into(),
            }),
        )
    }

    /// Domain-polymorphic channel (§4.2 "Domain Polymorphism"): when `from`
    /// and `to` differ this is a synchronizer; when they coincide the
    /// compiler replaces it with a lightweight FIFO, exactly as the paper
    /// describes for `Sync#(t, a, a)`.
    pub fn channel(
        &mut self,
        name: impl Into<String>,
        depth: usize,
        ty: Type,
        from: &str,
        to: &str,
    ) -> &mut Self {
        if from == to {
            self.fifo(name, depth, ty)
        } else {
            self.sync(name, depth, ty, from, to)
        }
    }

    /// Instantiates a test-bench input port pinned to a domain.
    pub fn source(&mut self, name: impl Into<String>, ty: Type, domain: &str) -> &mut Self {
        self.inst(
            name,
            InstKind::Prim(PrimSpec::Source {
                ty,
                domain: domain.into(),
            }),
        )
    }

    /// Instantiates an output port pinned to a domain.
    pub fn sink(&mut self, name: impl Into<String>, ty: Type, domain: &str) -> &mut Self {
        self.inst(
            name,
            InstKind::Prim(PrimSpec::Sink {
                ty,
                domain: domain.into(),
            }),
        )
    }

    /// Instantiates a user-defined submodule.
    pub fn submodule(
        &mut self,
        name: impl Into<String>,
        def: impl Into<String>,
        args: Vec<Value>,
    ) -> &mut Self {
        self.inst(
            name,
            InstKind::Module {
                def: def.into(),
                args,
            },
        )
    }

    fn inst(&mut self, name: impl Into<String>, kind: InstKind) -> &mut Self {
        self.def.insts.push(InstDef {
            name: name.into(),
            kind,
        });
        self
    }

    /// Adds a rule.
    pub fn rule(&mut self, name: impl Into<String>, body: Action) -> &mut Self {
        self.def.rules.push(RuleDef {
            name: name.into(),
            body,
        });
        self
    }

    /// Adds an action method.
    pub fn act_method(
        &mut self,
        name: impl Into<String>,
        args: &[&str],
        body: Action,
    ) -> &mut Self {
        self.def.act_methods.push(ActMethodDef {
            name: name.into(),
            args: args.iter().map(|s| s.to_string()).collect(),
            body,
        });
        self
    }

    /// Adds a value method.
    pub fn val_method(&mut self, name: impl Into<String>, args: &[&str], body: Expr) -> &mut Self {
        self.def.val_methods.push(ValMethodDef {
            name: name.into(),
            args: args.iter().map(|s| s.to_string()).collect(),
            body,
        });
        self
    }

    /// Finishes the module definition.
    pub fn build(&self) -> ModuleDef {
        self.def.clone()
    }

    /// Finishes the module definition, rejecting duplicate instance,
    /// rule, or method names with a typed error instead of letting the
    /// ambiguity surface later (elaboration resolves names by lookup,
    /// so a duplicate silently shadows its twin).
    ///
    /// # Errors
    ///
    /// [`crate::error::ElabError`] naming the first duplicate found.
    pub fn try_build(&self) -> Result<ModuleDef, crate::error::ElabError> {
        let dup = |what: &str, names: &mut std::collections::BTreeSet<String>, n: &str| {
            if names.insert(n.to_string()) {
                Ok(())
            } else {
                Err(crate::error::ElabError::new(format!(
                    "module `{}`: duplicate {what} name `{n}`",
                    self.def.name
                )))
            }
        };
        let mut insts = std::collections::BTreeSet::new();
        for i in &self.def.insts {
            dup("instance", &mut insts, &i.name)?;
        }
        let mut rules = std::collections::BTreeSet::new();
        for r in &self.def.rules {
            dup("rule", &mut rules, &r.name)?;
        }
        // Action and value methods share the call namespace: a call site
        // `x.m(...)` cannot tell which one it resolves to.
        let mut methods = std::collections::BTreeSet::new();
        for m in &self.def.act_methods {
            dup("method", &mut methods, &m.name)?;
        }
        for m in &self.def.val_methods {
            dup("method", &mut methods, &m.name)?;
        }
        Ok(self.def.clone())
    }
}

/// Free-function combinators for expressions and actions. Designed to be
/// glob-imported: `use bcl_core::builder::dsl::*;`.
pub mod dsl {
    use super::*;
    use crate::ast::Target;
    use crate::value::{BinOp, UnOp};

    // ---- expressions -------------------------------------------------

    /// Variable reference.
    pub fn var(n: &str) -> Expr {
        Expr::Var(n.into())
    }
    /// Signed integer constant.
    pub fn cint(width: u32, v: i64) -> Expr {
        Expr::Const(Value::int(width, v))
    }
    /// Boolean constant.
    pub fn cbool(b: bool) -> Expr {
        Expr::Const(Value::Bool(b))
    }
    /// 32-bit fixed-point constant with `frac` fractional bits.
    pub fn cfix(x: f64, frac: u32) -> Expr {
        Expr::Const(Value::fix_from_f64(x, frac))
    }
    /// Arbitrary constant.
    pub fn cval(v: Value) -> Expr {
        Expr::Const(v)
    }
    /// Register read: `read("m.r")` is `m.r._read()`.
    pub fn read(path: &str) -> Expr {
        Expr::Call(Target::Named(path.into(), "_read".into()), vec![])
    }
    /// FIFO head.
    pub fn first(path: &str) -> Expr {
        Expr::Call(Target::Named(path.into(), "first".into()), vec![])
    }
    /// FIFO non-empty probe.
    pub fn not_empty(path: &str) -> Expr {
        Expr::Call(Target::Named(path.into(), "notEmpty".into()), vec![])
    }
    /// FIFO non-full probe.
    pub fn not_full(path: &str) -> Expr {
        Expr::Call(Target::Named(path.into(), "notFull".into()), vec![])
    }
    /// Register-file read.
    pub fn sub(path: &str, idx: Expr) -> Expr {
        Expr::Call(Target::Named(path.into(), "sub".into()), vec![idx])
    }
    /// Value-method call on a submodule.
    pub fn call_val(path: &str, method: &str, args: Vec<Expr>) -> Expr {
        Expr::Call(Target::Named(path.into(), method.into()), args)
    }

    fn bin(op: BinOp, a: Expr, b: Expr) -> Expr {
        Expr::Bin(op, Box::new(a), Box::new(b))
    }
    /// `a + b`.
    pub fn add(a: Expr, b: Expr) -> Expr {
        bin(BinOp::Add, a, b)
    }
    /// `a - b`.
    pub fn sub_e(a: Expr, b: Expr) -> Expr {
        bin(BinOp::Sub, a, b)
    }
    /// `a * b` (integer).
    pub fn mul(a: Expr, b: Expr) -> Expr {
        bin(BinOp::Mul, a, b)
    }
    /// Fixed-point multiply with `frac` fractional bits.
    pub fn fixmul(a: Expr, b: Expr, frac: u32) -> Expr {
        bin(BinOp::FixMul(frac), a, b)
    }
    /// Fixed-point divide with `frac` fractional bits.
    pub fn fixdiv(a: Expr, b: Expr, frac: u32) -> Expr {
        bin(BinOp::FixDiv(frac), a, b)
    }
    /// `a >> b`.
    pub fn shr(a: Expr, b: Expr) -> Expr {
        bin(BinOp::Shr, a, b)
    }
    /// `a << b`.
    pub fn shl(a: Expr, b: Expr) -> Expr {
        bin(BinOp::Shl, a, b)
    }
    /// Bitwise/logical and.
    pub fn and(a: Expr, b: Expr) -> Expr {
        bin(BinOp::And, a, b)
    }
    /// Bitwise/logical or.
    pub fn or(a: Expr, b: Expr) -> Expr {
        bin(BinOp::Or, a, b)
    }
    /// `a == b`.
    pub fn eq(a: Expr, b: Expr) -> Expr {
        bin(BinOp::Eq, a, b)
    }
    /// `a != b`.
    pub fn ne(a: Expr, b: Expr) -> Expr {
        bin(BinOp::Ne, a, b)
    }
    /// `a < b`.
    pub fn lt(a: Expr, b: Expr) -> Expr {
        bin(BinOp::Lt, a, b)
    }
    /// `a <= b`.
    pub fn le(a: Expr, b: Expr) -> Expr {
        bin(BinOp::Le, a, b)
    }
    /// `a > b`.
    pub fn gt(a: Expr, b: Expr) -> Expr {
        bin(BinOp::Gt, a, b)
    }
    /// `a >= b`.
    pub fn ge(a: Expr, b: Expr) -> Expr {
        bin(BinOp::Ge, a, b)
    }
    /// `min(a, b)`.
    pub fn min_e(a: Expr, b: Expr) -> Expr {
        bin(BinOp::Min, a, b)
    }
    /// `max(a, b)`.
    pub fn max_e(a: Expr, b: Expr) -> Expr {
        bin(BinOp::Max, a, b)
    }
    /// Boolean negation.
    pub fn not(a: Expr) -> Expr {
        Expr::Un(UnOp::Not, Box::new(a))
    }
    /// Arithmetic negation.
    pub fn neg(a: Expr) -> Expr {
        Expr::Un(UnOp::Neg, Box::new(a))
    }
    /// `c ? t : f`.
    pub fn cond(c: Expr, t: Expr, f: Expr) -> Expr {
        Expr::Cond(Box::new(c), Box::new(t), Box::new(f))
    }
    /// Guarded expression `v when g`.
    pub fn when_e(v: Expr, g: Expr) -> Expr {
        Expr::When(Box::new(v), Box::new(g))
    }
    /// Let expression.
    pub fn let_e(n: &str, v: Expr, body: Expr) -> Expr {
        Expr::Let(n.into(), Box::new(v), Box::new(body))
    }
    /// Vector element.
    pub fn index(v: Expr, i: Expr) -> Expr {
        Expr::Index(Box::new(v), Box::new(i))
    }
    /// Struct field.
    pub fn field(v: Expr, f: &str) -> Expr {
        Expr::Field(Box::new(v), f.into())
    }
    /// Vector literal.
    pub fn mkvec(es: Vec<Expr>) -> Expr {
        Expr::MkVec(es)
    }
    /// Struct literal.
    pub fn mkstruct(fs: Vec<(&str, Expr)>) -> Expr {
        Expr::MkStruct(fs.into_iter().map(|(n, e)| (n.to_string(), e)).collect())
    }
    /// Complex literal `{re, im}`.
    pub fn cplx(re: Expr, im: Expr) -> Expr {
        mkstruct(vec![("re", re), ("im", im)])
    }
    /// Functional vector update.
    pub fn upd_index(v: Expr, i: Expr, x: Expr) -> Expr {
        Expr::UpdateIndex(Box::new(v), Box::new(i), Box::new(x))
    }
    /// Functional struct update.
    pub fn upd_field(v: Expr, f: &str, x: Expr) -> Expr {
        Expr::UpdateField(Box::new(v), f.into(), Box::new(x))
    }

    // ---- actions -----------------------------------------------------

    /// Register write `path := e`.
    pub fn write(path: &str, e: Expr) -> Action {
        Action::Write(Target::Named(path.into(), "_write".into()), Box::new(e))
    }
    /// FIFO enqueue.
    pub fn enq(path: &str, e: Expr) -> Action {
        Action::Call(Target::Named(path.into(), "enq".into()), vec![e])
    }
    /// FIFO dequeue.
    pub fn deq(path: &str) -> Action {
        Action::Call(Target::Named(path.into(), "deq".into()), vec![])
    }
    /// Register-file update.
    pub fn upd(path: &str, idx: Expr, v: Expr) -> Action {
        Action::Call(Target::Named(path.into(), "upd".into()), vec![idx, v])
    }
    /// Action-method call on a submodule.
    pub fn call_act(path: &str, method: &str, args: Vec<Expr>) -> Action {
        Action::Call(Target::Named(path.into(), method.into()), args)
    }
    /// Parallel composition of any number of actions (right fold).
    pub fn par(actions: Vec<Action>) -> Action {
        actions
            .into_iter()
            .rev()
            .reduce(|acc, a| Action::Par(Box::new(a), Box::new(acc)))
            .unwrap_or(Action::NoAction)
    }
    /// Sequential composition of any number of actions (right fold).
    pub fn seq(actions: Vec<Action>) -> Action {
        actions
            .into_iter()
            .rev()
            .reduce(|acc, a| Action::Seq(Box::new(a), Box::new(acc)))
            .unwrap_or(Action::NoAction)
    }
    /// Conditional action without else.
    pub fn if_a(c: Expr, t: Action) -> Action {
        Action::If(Box::new(c), Box::new(t), Box::new(Action::NoAction))
    }
    /// Conditional action with else.
    pub fn if_else(c: Expr, t: Action, e: Action) -> Action {
        Action::If(Box::new(c), Box::new(t), Box::new(e))
    }
    /// Guarded action `a when g`.
    pub fn when_a(g: Expr, a: Action) -> Action {
        Action::When(Box::new(g), Box::new(a))
    }
    /// Let action.
    pub fn let_a(n: &str, v: Expr, body: Action) -> Action {
        Action::Let(n.into(), Box::new(v), Box::new(body))
    }
    /// Loop action `loop c a`.
    pub fn loop_a(c: Expr, body: Action) -> Action {
        Action::Loop(Box::new(c), Box::new(body))
    }
    /// `localGuard a`.
    pub fn local_guard(a: Action) -> Action {
        Action::LocalGuard(Box::new(a))
    }
    /// The empty action.
    pub fn no_action() -> Action {
        Action::NoAction
    }
    /// Pop the head of `from` and run `body` with it bound to `name`
    /// (common move idiom): `let name = from.first in (body | from.deq)`.
    pub fn with_first(name: &str, from: &str, body: Action) -> Action {
        let_a(
            name,
            first(from),
            Action::Par(Box::new(body), Box::new(deq(from))),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::dsl::*;
    use super::*;
    use crate::elab::elaborate;
    use crate::program::Program;
    use crate::sched::{SwOptions, SwRunner};

    #[test]
    fn counter_module_runs() {
        let mut m = ModuleBuilder::new("Counter");
        m.reg("count", Value::int(32, 0));
        m.rule(
            "tick",
            when_a(
                lt(read("count"), cint(32, 3)),
                write("count", add(read("count"), cint(32, 1))),
            ),
        );
        let d = elaborate(&Program::with_root(m.build())).unwrap();
        let mut r = SwRunner::new(&d, SwOptions::default());
        let fired = r.run_until_quiescent(100).unwrap();
        assert_eq!(fired, 3, "rule self-disables at 3");
    }

    #[test]
    fn try_build_rejects_duplicates() {
        let mut m = ModuleBuilder::new("Dup");
        m.reg("r", Value::int(8, 0));
        m.rule("tick", no_action());
        assert!(m.try_build().is_ok());
        m.rule("tick", no_action());
        let e = m.try_build().unwrap_err();
        assert!(e.message().contains("duplicate rule name `tick`"), "{e}");

        let mut m = ModuleBuilder::new("Dup2");
        m.reg("r", Value::int(8, 0));
        m.fifo("r", 2, Type::Int(8));
        assert!(m
            .try_build()
            .unwrap_err()
            .message()
            .contains("duplicate instance name `r`"));

        let mut m = ModuleBuilder::new("Dup3");
        m.act_method("m", &[], no_action());
        m.val_method("m", &[], cint(8, 0));
        assert!(m
            .try_build()
            .unwrap_err()
            .message()
            .contains("duplicate method name `m`"));
    }

    #[test]
    fn par_seq_folds() {
        assert_eq!(par(vec![]), Action::NoAction);
        assert_eq!(seq(vec![no_action()]), Action::NoAction);
        let three = par(vec![no_action(), no_action(), no_action()]);
        assert!(matches!(three, Action::Par(..)));
    }

    #[test]
    fn with_first_moves_data() {
        let mut m = ModuleBuilder::new("Mover");
        m.fifo("a", 2, Type::Int(8));
        m.fifo("b", 2, Type::Int(8));
        m.rule("seed", enq("a", cint(8, 7)));
        m.rule("move", with_first("x", "a", enq("b", var("x"))));
        let d = elaborate(&Program::with_root(m.build())).unwrap();
        let mut r = SwRunner::new(&d, SwOptions::default());
        r.run_until_quiescent(5).unwrap();
        let b = d.prim_id("b").unwrap();
        assert_eq!(
            r.store
                .state(b)
                .call_value(crate::ast::PrimMethod::First, &[])
                .unwrap(),
            Value::int(8, 7)
        );
    }

    #[test]
    fn channel_degenerates_to_fifo() {
        let mut m = ModuleBuilder::new("M");
        m.channel("c1", 2, Type::Bool, "SW", "SW");
        m.channel("c2", 2, Type::Bool, "SW", "HW");
        let def = m.build();
        assert!(matches!(
            def.inst("c1").unwrap().kind,
            InstKind::Prim(PrimSpec::Fifo { .. })
        ));
        assert!(matches!(
            def.inst("c2").unwrap().kind,
            InstKind::Prim(PrimSpec::Sync { .. })
        ));
    }

    #[test]
    fn submodule_methods_compose() {
        let mut inner = ModuleBuilder::new("Inner");
        inner.param("k");
        inner.fifo("q", 2, Type::Int(32));
        inner.act_method("put", &["x"], enq("q", mul(var("x"), var("k"))));
        inner.val_method("get", &[], first("q"));

        let mut outer = ModuleBuilder::new("Outer");
        outer.submodule("i", "Inner", vec![Value::int(32, 10)]);
        outer.reg("out", Value::int(32, 0));
        outer.rule("feed", call_act("i", "put", vec![cint(32, 4)]));
        outer.rule("collect", write("out", call_val("i", "get", vec![])));

        let mut p = Program::with_root(outer.build());
        p.add_module(inner.build());
        let d = elaborate(&p).unwrap();
        let mut r = SwRunner::new(&d, SwOptions::default());
        r.run_until_quiescent(10).unwrap();
        let out = d.prim_id("out").unwrap();
        assert_eq!(
            r.store
                .state(out)
                .call_value(crate::ast::PrimMethod::RegRead, &[])
                .unwrap(),
            Value::int(32, 40)
        );
    }
}
