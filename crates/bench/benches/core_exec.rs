//! Criterion bench for the core runtime primitives: transactional rule
//! execution vs. the guard-lifted in-place fast path, and hardware-
//! simulator cycle throughput.

use bcl_core::builder::{dsl::*, ModuleBuilder};
use bcl_core::program::Program;
use bcl_core::sched::{HwSim, Strategy, SwOptions, SwRunner};
use bcl_core::types::Type;
use bcl_core::value::Value;
use bcl_core::xform::CompileOpts;
use bcl_core::Store;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn counter_design(n_rules: usize) -> bcl_core::Design {
    let mut m = ModuleBuilder::new("Counters");
    for i in 0..n_rules {
        let r = format!("r{i}");
        m.reg(&r, Value::int(32, 0));
        m.rule(
            format!("tick{i}"),
            when_a(
                lt(read(&r), cint(32, 1_000_000)),
                write(&r, add(read(&r), cint(32, 1))),
            ),
        );
    }
    bcl_core::elaborate(&Program::with_root(m.build())).unwrap()
}

fn bench_exec(c: &mut Criterion) {
    let mut g = c.benchmark_group("core_exec");
    let d = counter_design(8);

    g.bench_function("sw_inplace_1000_firings", |b| {
        b.iter(|| {
            let mut r = SwRunner::new(&d, SwOptions::default());
            black_box(r.run_until_quiescent(1000).unwrap())
        })
    });
    g.bench_function("sw_transactional_1000_firings", |b| {
        let opts = SwOptions {
            compile: CompileOpts {
                lift: false,
                sequentialize: false,
            },
            ..Default::default()
        };
        b.iter(|| {
            let mut r = SwRunner::new(&d, opts);
            black_box(r.run_until_quiescent(1000).unwrap())
        })
    });
    g.bench_function("hw_sim_1000_cycles", |b| {
        b.iter(|| {
            let mut sim = HwSim::new(&d).unwrap();
            for _ in 0..1000 {
                black_box(sim.step().unwrap());
            }
        })
    });
    g.bench_function("sw_dataflow_pipeline", |b| {
        // A 4-stage pipeline moving 64 items.
        let mut m = ModuleBuilder::new("Pipe");
        m.source("src", Type::Int(32), "SW");
        m.sink("snk", Type::Int(32), "SW");
        for i in 0..3 {
            m.fifo(format!("q{i}"), 2, Type::Int(32));
        }
        m.rule("s0", with_first("x", "src", enq("q0", var("x"))));
        m.rule(
            "s1",
            with_first("x", "q0", enq("q1", add(var("x"), cint(32, 1)))),
        );
        m.rule(
            "s2",
            with_first("x", "q1", enq("q2", mul(var("x"), cint(32, 2)))),
        );
        m.rule("s3", with_first("x", "q2", enq("snk", var("x"))));
        let d = bcl_core::elaborate(&Program::with_root(m.build())).unwrap();
        b.iter(|| {
            let mut store = Store::new(&d);
            let src = d.prim_id("src").unwrap();
            for i in 0..64 {
                store.push_source(src, Value::int(32, i));
            }
            let mut r = SwRunner::with_store(
                &d,
                store,
                SwOptions {
                    strategy: Strategy::Dataflow,
                    ..Default::default()
                },
            );
            black_box(r.run_until_quiescent(10_000).unwrap())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_exec);
criterion_main!(benches);
