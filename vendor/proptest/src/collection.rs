//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// An inclusive size band for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// Generates `Vec`s whose length lies in `size` and whose elements come
/// from `elem`.
pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        elem,
        size: size.into(),
    }
}

/// Strategy returned by [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    elem: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max - self.size.min) as u128 + 1;
        let n = self.size.min + rng.below(span) as usize;
        (0..n).map(|_| self.elem.generate(rng)).collect()
    }
}
