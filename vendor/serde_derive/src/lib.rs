//! No-op `Serialize`/`Deserialize` derive macros for the vendored serde
//! stub. They accept the same derive positions as the real macros and
//! expand to nothing, which is sound because nothing in the workspace
//! invokes serialization at runtime.

use proc_macro::TokenStream;

/// Expands to nothing; satisfies `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; satisfies `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
