//! The rule interpreter: evaluates kernel BCL expressions and executes
//! actions against a transactional [`Txn`] or — for guard-lifted rules —
//! directly against the committed [`Store`] (§6.2–6.3).
//!
//! Every interpreter step is metered through the transaction's [`Cost`]
//! counters; the software cost model converts those counters into CPU
//! cycles, which is what stands in for the execution time of the
//! generated C++ of the paper.

use crate::ast::{Action, Expr, PrimId, PrimMethod, Target};
use crate::error::{ExecError, ExecResult};
use crate::store::{Cost, ShadowPolicy, Store, Txn};
use crate::value::{BinOp, UnOp, Value};

/// A lexical environment for let-bound variables and method formals.
#[derive(Debug, Default, Clone)]
pub struct Env {
    vars: Vec<(String, Value)>,
}

impl Env {
    /// An empty environment.
    pub fn new() -> Env {
        Env::default()
    }

    /// Pushes a binding (shadowing allowed).
    pub fn push(&mut self, name: &str, v: Value) {
        self.vars.push((name.to_string(), v));
    }

    /// Pops the most recent binding.
    pub fn pop(&mut self) {
        self.vars.pop();
    }

    /// Looks up a variable, innermost binding first.
    pub fn get(&self, name: &str) -> ExecResult<&Value> {
        self.vars
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v)
            .ok_or_else(|| ExecError::Malformed(format!("unbound variable `{name}`")))
    }
}

/// Evaluates an expression inside a transaction.
///
/// # Errors
///
/// `GuardFail` when a `when` guard or an implicitly guarded primitive
/// method (FIFO `first` on empty, ...) fails; type/bounds errors for
/// malformed programs.
pub fn eval(txn: &mut Txn<'_>, env: &mut Env, e: &Expr) -> ExecResult<Value> {
    match e {
        Expr::Const(v) => Ok(v.clone()),
        Expr::Var(n) => env.get(n).cloned(),
        Expr::Un(op, a) => {
            let va = eval(txn, env, a)?;
            txn.cost.ops += 1;
            Value::un_op(*op, &va)
        }
        Expr::Bin(op, a, b) => {
            let va = eval(txn, env, a)?;
            let vb = eval(txn, env, b)?;
            txn.cost.ops += op.cpu_cost();
            Value::bin_op(*op, &va, &vb)
        }
        Expr::Cond(c, t, f) => {
            let vc = eval(txn, env, c)?.as_bool()?;
            txn.cost.ops += 1;
            if vc {
                eval(txn, env, t)
            } else {
                eval(txn, env, f)
            }
        }
        Expr::When(v, g) => {
            // Guards in expressions: the guard is always evaluated (A.4/A.5
            // direction: guards in condition predicates always count).
            let gv = eval(txn, env, g)?.as_bool()?;
            txn.cost.ops += 1;
            if gv {
                eval(txn, env, v)
            } else {
                Err(ExecError::GuardFail)
            }
        }
        Expr::Let(n, v, b) => {
            let vv = eval(txn, env, v)?;
            env.push(n, vv);
            let r = eval(txn, env, b);
            env.pop();
            r
        }
        Expr::Call(t, args) => {
            let (id, m) = expect_prim(t)?;
            let mut vals = Vec::with_capacity(args.len());
            for a in args {
                vals.push(eval(txn, env, a)?);
            }
            txn.call_value(id, m, &vals)
        }
        Expr::Index(v, i) => {
            let vv = eval(txn, env, v)?;
            let iv = eval(txn, env, i)?.as_index()?;
            txn.cost.ops += 1;
            vv.index(iv).cloned()
        }
        Expr::Field(v, f) => {
            let vv = eval(txn, env, v)?;
            txn.cost.ops += 1;
            vv.field(f).cloned()
        }
        Expr::MkVec(es) => {
            let mut out = Vec::with_capacity(es.len());
            for e in es {
                out.push(eval(txn, env, e)?);
            }
            txn.cost.ops += es.len() as u64;
            Ok(Value::Vec(out))
        }
        Expr::MkStruct(fs) => {
            let mut out = Vec::with_capacity(fs.len());
            for (n, e) in fs {
                out.push((n.clone(), eval(txn, env, e)?));
            }
            txn.cost.ops += fs.len() as u64;
            Ok(Value::Struct(out))
        }
        Expr::UpdateIndex(v, i, x) => {
            let vv = eval(txn, env, v)?;
            let iv = eval(txn, env, i)?.as_index()?;
            let xv = eval(txn, env, x)?;
            // Functional update costs a copy of the vector.
            txn.cost.ops += vv.as_vec().map(|s| s.len() as u64).unwrap_or(1);
            vv.update_index(iv, xv)
        }
        Expr::UpdateField(v, f, x) => {
            let vv = eval(txn, env, v)?;
            let xv = eval(txn, env, x)?;
            txn.cost.ops += 1;
            vv.update_field(f, xv)
        }
    }
}

/// Executes an action inside a transaction.
///
/// # Errors
///
/// `GuardFail` invalidates the enclosing atomic action (unless absorbed by
/// `localGuard`); `DoubleWrite` when parallel branches collide; loop-bound
/// and type errors for malformed programs.
pub fn exec(txn: &mut Txn<'_>, env: &mut Env, a: &Action) -> ExecResult<()> {
    match a {
        Action::NoAction => Ok(()),
        Action::Write(t, e) => {
            let (id, m) = expect_prim(t)?;
            let v = eval(txn, env, e)?;
            txn.call_action(id, m, &[v])
        }
        Action::If(c, th, el) => {
            let vc = eval(txn, env, c)?.as_bool()?;
            txn.cost.ops += 1;
            if vc {
                exec(txn, env, th)
            } else {
                exec(txn, env, el)
            }
        }
        Action::Par(x, y) => {
            // One environment serves both branches: bindings are scoped
            // (every push is popped on all exit paths, including guard
            // failure), so the env is back to its entry shape when the
            // first branch returns and the second starts from the same
            // view — no per-branch clone needed.
            txn.run_par_ctx(env, |t, env| exec(t, env, x), |t, env| exec(t, env, y))
        }
        Action::Seq(x, y) => {
            exec(txn, env, x)?;
            exec(txn, env, y)
        }
        Action::When(g, x) => {
            let gv = eval(txn, env, g)?.as_bool()?;
            txn.cost.ops += 1;
            if gv {
                exec(txn, env, x)
            } else if txn.policy == ShadowPolicy::InPlace {
                // A failing guard on the in-place path is a lifting bug:
                // earlier writes cannot be rolled back.
                Err(ExecError::Malformed(
                    "guard failed during in-place execution (unsound lifting)".into(),
                ))
            } else {
                Err(ExecError::GuardFail)
            }
        }
        Action::Let(n, e, x) => {
            let v = eval(txn, env, e)?;
            env.push(n, v);
            let r = exec(txn, env, x);
            env.pop();
            r
        }
        Action::Loop(c, body) => {
            let mut iters = 0u64;
            loop {
                let cv = eval(txn, env, c)?.as_bool()?;
                txn.cost.ops += 1;
                if !cv {
                    return Ok(());
                }
                exec(txn, env, body)?;
                iters += 1;
                if iters > txn.max_loop_iters {
                    return Err(ExecError::Malformed(format!(
                        "loop exceeded {} iterations",
                        txn.max_loop_iters
                    )));
                }
            }
        }
        Action::LocalGuard(x) => {
            if txn.policy == ShadowPolicy::InPlace {
                return Err(ExecError::Malformed(
                    "localGuard reached an in-place (guard-lifted) execution".into(),
                ));
            }
            txn.push_frame();
            match exec(txn, env, x) {
                Ok(()) => txn.pop_merge(),
                Err(ExecError::GuardFail) => {
                    txn.pop_discard();
                    Ok(())
                }
                Err(e) => {
                    txn.pop_discard();
                    Err(e)
                }
            }
        }
        Action::Call(t, args) => {
            let (id, m) = expect_prim(t)?;
            let mut vals = Vec::with_capacity(args.len());
            for a in args {
                vals.push(eval(txn, env, a)?);
            }
            txn.call_action(id, m, &vals)
        }
    }
}

fn expect_prim(t: &Target) -> ExecResult<(crate::ast::PrimId, crate::ast::PrimMethod)> {
    match t {
        Target::Prim(id, m) => Ok((*id, *m)),
        Target::Named(p, m) => Err(ExecError::Malformed(format!(
            "unelaborated method call `{p}.{m}` reached the interpreter"
        ))),
    }
}

/// The outcome of attempting one rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuleOutcome {
    /// The rule's updates were committed.
    Fired,
    /// A guard failed; state is unchanged.
    GuardFailed,
}

/// Runs one rule as a transaction: execute, commit on success, roll back on
/// guard failure. Other errors propagate. The returned cost includes
/// everything: execution, shadowing, commit or rollback.
pub fn run_rule(
    store: &mut Store,
    body: &Action,
    policy: ShadowPolicy,
) -> ExecResult<(RuleOutcome, Cost)> {
    let mut txn = Txn::new(store, policy);
    txn.cost.txn_setups += 1;
    let mut env = Env::new();
    match exec(&mut txn, &mut env, body) {
        Ok(()) => Ok((RuleOutcome::Fired, txn.commit())),
        Err(ExecError::GuardFail) => Ok((RuleOutcome::GuardFailed, txn.rollback())),
        Err(e) => Err(e),
    }
}

/// Runs a fully guard-lifted rule body directly against the committed
/// store — no shadows, no commit, no rollback capability (§6.3). The
/// caller must have established that the lifted guard holds.
///
/// # Errors
///
/// A `GuardFail` or disallowed construct (`Par`, `localGuard`) surfacing
/// here means the lifting transformation was unsound for this rule and is
/// reported as a `Malformed` error; the committed state may be partially
/// updated in that case.
pub fn run_rule_inplace(store: &mut Store, body: &Action) -> ExecResult<Cost> {
    let mut txn = Txn::new(store, ShadowPolicy::InPlace);
    txn.cost.inplace_runs += 1;
    let mut env = Env::new();
    match exec(&mut txn, &mut env, body) {
        Ok(()) => Ok(txn.commit()),
        Err(ExecError::GuardFail) => Err(ExecError::Malformed(
            "guard failure during in-place execution (unsound lifting)".into(),
        )),
        Err(e) => Err(e),
    }
}

/// Evaluates a pure expression against the committed store without opening
/// a transaction (scheduler guard evaluation). Any `GuardFail` is reported
/// as `Ok(false)` when the expression is used as a guard via
/// [`eval_guard_ro`].
pub fn eval_ro(store: &mut Store, env: &mut Env, e: &Expr, cost: &mut Cost) -> ExecResult<Value> {
    // A read-only transaction: writes are a malformed-program error, which
    // we get for free because guard expressions contain no action calls.
    let mut txn = Txn::new(store, ShadowPolicy::Partial);
    let r = eval(&mut txn, env, e);
    cost.add(&txn.cost);
    // No commit: value context only. (Txn dropped; nothing was written.)
    r
}

/// Evaluates a lifted guard: `Ok(true)`/`Ok(false)`, with guard failures
/// inside the guard expression itself (e.g. `first` of an empty FIFO used
/// in arithmetic) folding to `false`.
pub fn eval_guard_ro(store: &mut Store, e: &Expr, cost: &mut Cost) -> ExecResult<bool> {
    cost.guard_evals += 1;
    let mut env = Env::new();
    match eval_ro(store, &mut env, e, cost) {
        Ok(v) => v.as_bool(),
        Err(ExecError::GuardFail) => Ok(false),
        Err(e) => Err(e),
    }
}

// ---------------------------------------------------------------------------
// Compiled execution: a small stack machine over flat instruction streams.
//
// The compiler (`crate::xform::compile_expr` / `compile_action`) turns a
// rule's guard and body into a `Prog` once, at design-compile time:
// let-bound variables become slot indices, control flow becomes jumps, and
// every instruction charges exactly the cost the AST interpreter would —
// the machine changes wall-clock time, never the modeled cycle counts.
// ---------------------------------------------------------------------------

/// One instruction of the compiled rule format. Operands are pre-resolved:
/// locals are slot indices, method calls carry `PrimId`s, jump targets are
/// instruction offsets.
#[derive(Debug, Clone, PartialEq)]
pub enum Instr {
    /// Push a constant.
    Push(Value),
    /// Push a copy of a local slot.
    Load(usize),
    /// Pop an index (from the index stack) and push a copy of that element
    /// of a local slot — fused `Load` + `Index`, so the vector itself is
    /// never cloned onto the stack. Charges one op, like `Index`.
    LoadIndex(usize),
    /// Push a copy of one field of a local slot — fused `Load` + `Field`.
    /// Charges one op, like `Field`.
    LoadField(usize, String),
    /// Pop into a local slot.
    StoreSlot(usize),
    /// Pop one operand, push the result; charges one op.
    Un(UnOp),
    /// Pop two operands, push the result; charges the operator's cost.
    Bin(BinOp),
    /// Unconditional jump.
    Jump(usize),
    /// Pop a bool, charge one op, jump when false (`Cond`/`If`/`Loop`).
    BranchFalse(usize),
    /// Pop a bool, charge one op, guard-fail when false (expression `when`).
    WhenExpr,
    /// Pop a bool, charge one op, guard-fail when false (action `when`);
    /// a failure under `InPlace` is a lifting bug.
    WhenAct,
    /// Pop `n` arguments, invoke a value method, push the result.
    CallValue(PrimId, PrimMethod, usize),
    /// Pop `n` arguments, invoke an action method.
    CallAction(PrimId, PrimMethod, usize),
    /// Pop a value, coerce to an index, push on the index stack.
    AsIndex,
    /// Pop a vector and an index, push the element; charges one op.
    Index,
    /// Pop a struct, push the named field; charges one op.
    Field(String),
    /// Pop `n` elements into a vector; charges `n` ops.
    MkVec(usize),
    /// Pop one value per field name into a struct; charges one op per field.
    MkStruct(Vec<String>),
    /// Pop the new element, the vector, and an index; push the functionally
    /// updated vector; charges its length in ops.
    UpdateIndex,
    /// Pop the new value and the struct; push the update; charges one op.
    UpdateField(String),
    /// Open the isolation frame of a parallel composition's first branch
    /// ([`Txn::par_start`]).
    ParStart,
    /// Switch from the first parallel branch to the second
    /// ([`Txn::par_mid`]).
    ParMid,
    /// Close a parallel composition: double-write check and merge
    /// ([`Txn::par_end`]).
    ParEnd,
    /// Zero a loop-iteration counter (loop entry).
    CtrReset(usize),
    /// Bump a loop-iteration counter and fail when it exceeds the
    /// transaction's loop bound (end of each iteration).
    CtrIncCheck(usize),
}

/// A compiled guard or rule body: a flat instruction stream plus the local
/// slot and loop-counter footprint it needs.
#[derive(Debug, Clone, PartialEq)]
pub struct Prog {
    /// The instruction stream.
    pub code: Vec<Instr>,
    /// Number of local slots (one per `let`, pre-resolved).
    pub slots: usize,
    /// Number of loop-iteration counters.
    pub ctrs: usize,
}

/// Where a compiled program reads and writes primitives: a transaction for
/// rule bodies, a bare store for guard evaluation (no shadow frames, no
/// commit — guards are pure).
pub trait PrimPort {
    /// Invokes a value method.
    fn call_value(&mut self, id: PrimId, m: PrimMethod, args: &[Value]) -> ExecResult<Value>;
    /// Invokes an action method.
    fn call_action(&mut self, id: PrimId, m: PrimMethod, args: &[Value]) -> ExecResult<()>;
    /// The cost counters to charge.
    fn cost(&mut self) -> &mut Cost;
    /// The shadow policy in effect (decides how a failing `when` reports).
    fn policy(&self) -> ShadowPolicy;
    /// Safety bound on loop iterations.
    fn loop_bound(&self) -> u64;
    /// Opens a parallel-branch frame (compiled `Par`). Ports that cannot
    /// execute actions reject it.
    ///
    /// # Errors
    ///
    /// `Malformed` where parallel composition is not executable.
    fn par_start(&mut self) -> ExecResult<()> {
        Err(ExecError::Malformed(
            "parallel composition reached a port without transaction frames".into(),
        ))
    }
    /// Switches from the first parallel branch to the second.
    fn par_mid(&mut self) {}
    /// Closes a parallel composition (double-write check and merge).
    ///
    /// # Errors
    ///
    /// `DoubleWrite` when the branches' write sets intersect.
    fn par_end(&mut self) -> ExecResult<()> {
        Ok(())
    }
}

impl PrimPort for Txn<'_> {
    fn call_value(&mut self, id: PrimId, m: PrimMethod, args: &[Value]) -> ExecResult<Value> {
        Txn::call_value(self, id, m, args)
    }
    fn call_action(&mut self, id: PrimId, m: PrimMethod, args: &[Value]) -> ExecResult<()> {
        Txn::call_action(self, id, m, args)
    }
    fn cost(&mut self) -> &mut Cost {
        &mut self.cost
    }
    fn policy(&self) -> ShadowPolicy {
        self.policy
    }
    fn loop_bound(&self) -> u64 {
        self.max_loop_iters
    }
    fn par_start(&mut self) -> ExecResult<()> {
        Txn::par_start(self)
    }
    fn par_mid(&mut self) {
        Txn::par_mid(self);
    }
    fn par_end(&mut self) -> ExecResult<()> {
        Txn::par_end(self)
    }
}

/// Read-only port over a committed store for guard evaluation. Skipping
/// the transaction entirely (no frame stack, no shadow map) is the main
/// wall-clock win for guards; the metered cost is identical because a
/// fresh partial-shadow transaction charges nothing until first write.
pub struct GuardPort<'a> {
    store: &'a Store,
    cost: &'a mut Cost,
}

impl PrimPort for GuardPort<'_> {
    fn call_value(&mut self, id: PrimId, m: PrimMethod, args: &[Value]) -> ExecResult<Value> {
        self.cost.reads += 1;
        self.store.call_value_at(id, m, args)
    }
    fn call_action(&mut self, _: PrimId, m: PrimMethod, _: &[Value]) -> ExecResult<()> {
        Err(ExecError::Malformed(format!(
            "action method `{m:?}` called in a guard expression"
        )))
    }
    fn cost(&mut self) -> &mut Cost {
        self.cost
    }
    fn policy(&self) -> ShadowPolicy {
        ShadowPolicy::Partial
    }
    fn loop_bound(&self) -> u64 {
        1_000_000
    }
}

/// The stack machine. One instance is kept per scheduler and reused across
/// every guard and body execution, so the value/index stacks and slot
/// arrays are allocated once and recycled.
#[derive(Debug, Default)]
pub struct Vm {
    stack: Vec<Value>,
    slots: Vec<Value>,
    idx: Vec<usize>,
    ctrs: Vec<u64>,
}

impl Vm {
    /// A fresh machine with empty scratch space.
    pub fn new() -> Vm {
        Vm::default()
    }

    /// Runs a compiled program against a port. Returns the value left on
    /// the stack (an expression program) or `None` (an action program).
    ///
    /// # Errors
    ///
    /// Exactly those of the AST interpreter on the same program: guard
    /// failures, type/bounds errors, loop-bound and double-write errors.
    pub fn run<P: PrimPort>(&mut self, port: &mut P, prog: &Prog) -> ExecResult<Option<Value>> {
        self.stack.clear();
        self.idx.clear();
        self.slots.clear();
        self.slots.resize(prog.slots, Value::Bool(false));
        self.ctrs.clear();
        self.ctrs.resize(prog.ctrs, 0);
        let mut pc = 0usize;
        while let Some(instr) = prog.code.get(pc) {
            match instr {
                Instr::Push(v) => self.stack.push(v.clone()),
                Instr::Load(s) => self.stack.push(self.slots[*s].clone()),
                Instr::LoadIndex(s) => {
                    let i = self.idx.pop().expect("index stack underflow");
                    port.cost().ops += 1;
                    let v = self.slots[*s].index(i)?.clone();
                    self.stack.push(v);
                }
                Instr::LoadField(s, f) => {
                    port.cost().ops += 1;
                    let v = self.slots[*s].field(f)?.clone();
                    self.stack.push(v);
                }
                Instr::StoreSlot(s) => self.slots[*s] = self.pop(),
                Instr::Un(op) => {
                    let a = self.pop();
                    port.cost().ops += 1;
                    self.stack.push(Value::un_op(*op, &a)?);
                }
                Instr::Bin(op) => {
                    let b = self.pop();
                    let a = self.pop();
                    port.cost().ops += op.cpu_cost();
                    self.stack.push(Value::bin_op(*op, &a, &b)?);
                }
                Instr::Jump(t) => {
                    pc = *t;
                    continue;
                }
                Instr::BranchFalse(t) => {
                    let c = self.pop().as_bool()?;
                    port.cost().ops += 1;
                    if !c {
                        pc = *t;
                        continue;
                    }
                }
                Instr::WhenExpr => {
                    let g = self.pop().as_bool()?;
                    port.cost().ops += 1;
                    if !g {
                        return Err(ExecError::GuardFail);
                    }
                }
                Instr::WhenAct => {
                    let g = self.pop().as_bool()?;
                    port.cost().ops += 1;
                    if !g {
                        return Err(if port.policy() == ShadowPolicy::InPlace {
                            ExecError::Malformed(
                                "guard failed during in-place execution (unsound lifting)".into(),
                            )
                        } else {
                            ExecError::GuardFail
                        });
                    }
                }
                Instr::CallValue(id, m, n) => {
                    let args = self.stack.split_off(self.stack.len() - n);
                    let v = port.call_value(*id, *m, &args)?;
                    self.stack.push(v);
                }
                Instr::CallAction(id, m, n) => {
                    let args = self.stack.split_off(self.stack.len() - n);
                    port.call_action(*id, *m, &args)?;
                }
                Instr::AsIndex => {
                    let i = self.pop().as_index()?;
                    self.idx.push(i);
                }
                Instr::Index => {
                    let v = self.pop();
                    let i = self.idx.pop().expect("index stack underflow");
                    port.cost().ops += 1;
                    self.stack.push(v.index(i)?.clone());
                }
                Instr::Field(f) => {
                    let v = self.pop();
                    port.cost().ops += 1;
                    self.stack.push(v.field(f)?.clone());
                }
                Instr::MkVec(n) => {
                    let items = self.stack.split_off(self.stack.len() - n);
                    port.cost().ops += *n as u64;
                    self.stack.push(Value::Vec(items));
                }
                Instr::MkStruct(names) => {
                    let vals = self.stack.split_off(self.stack.len() - names.len());
                    port.cost().ops += names.len() as u64;
                    self.stack
                        .push(Value::Struct(names.iter().cloned().zip(vals).collect()));
                }
                Instr::UpdateIndex => {
                    let x = self.pop();
                    let v = self.pop();
                    let i = self.idx.pop().expect("index stack underflow");
                    port.cost().ops += v.as_vec().map(|s| s.len() as u64).unwrap_or(1);
                    self.stack.push(v.update_index(i, x)?);
                }
                Instr::UpdateField(f) => {
                    let x = self.pop();
                    let v = self.pop();
                    port.cost().ops += 1;
                    self.stack.push(v.update_field(f, x)?);
                }
                Instr::ParStart => port.par_start()?,
                Instr::ParMid => port.par_mid(),
                Instr::ParEnd => port.par_end()?,
                Instr::CtrReset(k) => self.ctrs[*k] = 0,
                Instr::CtrIncCheck(k) => {
                    self.ctrs[*k] += 1;
                    if self.ctrs[*k] > port.loop_bound() {
                        return Err(ExecError::Malformed(format!(
                            "loop exceeded {} iterations",
                            port.loop_bound()
                        )));
                    }
                }
            }
            pc += 1;
        }
        Ok(self.stack.pop())
    }

    fn pop(&mut self) -> Value {
        self.stack.pop().expect("value stack underflow")
    }
}

/// Compiled counterpart of [`eval_guard_ro`]: evaluates a guard program
/// directly against the committed store, folding guard failures to
/// `Ok(false)`. Charges identical cost to the AST path.
pub fn eval_guard_compiled(
    vm: &mut Vm,
    store: &Store,
    prog: &Prog,
    cost: &mut Cost,
) -> ExecResult<bool> {
    cost.guard_evals += 1;
    let mut port = GuardPort { store, cost };
    match vm.run(&mut port, prog) {
        Ok(Some(v)) => v.as_bool(),
        Ok(None) => Err(ExecError::Malformed(
            "guard program left no value on the stack".into(),
        )),
        Err(ExecError::GuardFail) => Ok(false),
        Err(e) => Err(e),
    }
}

/// Compiled counterpart of [`run_rule`]: executes a body program as a
/// transaction, committing on success and rolling back on guard failure.
pub fn run_rule_compiled(
    vm: &mut Vm,
    store: &mut Store,
    prog: &Prog,
    policy: ShadowPolicy,
) -> ExecResult<(RuleOutcome, Cost)> {
    let mut txn = Txn::new(store, policy);
    txn.cost.txn_setups += 1;
    match vm.run(&mut txn, prog) {
        Ok(_) => Ok((RuleOutcome::Fired, txn.commit())),
        Err(ExecError::GuardFail) => Ok((RuleOutcome::GuardFailed, txn.rollback())),
        Err(e) => Err(e),
    }
}

/// Compiled counterpart of [`run_rule_inplace`]: executes a fully
/// guard-lifted body program straight against the committed store.
pub fn run_rule_inplace_compiled(vm: &mut Vm, store: &mut Store, prog: &Prog) -> ExecResult<Cost> {
    let mut txn = Txn::new(store, ShadowPolicy::InPlace);
    txn.cost.inplace_runs += 1;
    match vm.run(&mut txn, prog) {
        Ok(_) => Ok(txn.commit()),
        Err(ExecError::GuardFail) => Err(ExecError::Malformed(
            "guard failure during in-place execution (unsound lifting)".into(),
        )),
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Path, PrimId, PrimMethod};
    use crate::design::{Design, PrimDef};
    use crate::prim::PrimSpec;
    use crate::types::Type;
    use crate::value::BinOp;

    fn d3() -> Design {
        Design {
            name: "t".into(),
            prims: vec![
                PrimDef {
                    path: Path::new("a"),
                    spec: PrimSpec::Reg {
                        init: Value::int(32, 1),
                    },
                },
                PrimDef {
                    path: Path::new("b"),
                    spec: PrimSpec::Reg {
                        init: Value::int(32, 2),
                    },
                },
                PrimDef {
                    path: Path::new("q"),
                    spec: PrimSpec::Fifo {
                        depth: 2,
                        ty: Type::Int(32),
                    },
                },
            ],
            ..Default::default()
        }
    }

    const A: PrimId = PrimId(0);
    const B: PrimId = PrimId(1);
    const Q: PrimId = PrimId(2);

    fn read(id: PrimId) -> Expr {
        Expr::Call(Target::Prim(id, PrimMethod::RegRead), vec![])
    }
    fn write(id: PrimId, e: Expr) -> Action {
        Action::Write(Target::Prim(id, PrimMethod::RegWrite), Box::new(e))
    }
    fn reg_val(s: &Store, id: PrimId) -> i64 {
        s.state(id)
            .call_value(PrimMethod::RegRead, &[])
            .unwrap()
            .as_int()
            .unwrap()
    }

    #[test]
    fn rule_commit() {
        let d = d3();
        let mut s = Store::new(&d);
        let body = write(
            A,
            Expr::Bin(BinOp::Add, Box::new(read(A)), Box::new(Expr::int(32, 10))),
        );
        let (out, cost) = run_rule(&mut s, &body, ShadowPolicy::Partial).unwrap();
        assert_eq!(out, RuleOutcome::Fired);
        assert_eq!(reg_val(&s, A), 11);
        assert!(cost.ops >= 1);
    }

    #[test]
    fn guard_failure_rolls_back() {
        let d = d3();
        let mut s = Store::new(&d);
        // a := 99 ; (noAction when false)
        let body = Action::Seq(
            Box::new(write(A, Expr::int(32, 99))),
            Box::new(Action::When(
                Box::new(Expr::f()),
                Box::new(Action::NoAction),
            )),
        );
        let (out, cost) = run_rule(&mut s, &body, ShadowPolicy::Partial).unwrap();
        assert_eq!(out, RuleOutcome::GuardFailed);
        assert_eq!(reg_val(&s, A), 1, "rollback must restore");
        assert_eq!(cost.rollbacks, 1);
    }

    #[test]
    fn parallel_swap_rule() {
        let d = d3();
        let mut s = Store::new(&d);
        let body = Action::Par(Box::new(write(A, read(B))), Box::new(write(B, read(A))));
        run_rule(&mut s, &body, ShadowPolicy::Partial).unwrap();
        assert_eq!(reg_val(&s, A), 2);
        assert_eq!(reg_val(&s, B), 1);
    }

    #[test]
    fn seq_is_not_swap() {
        let d = d3();
        let mut s = Store::new(&d);
        let body = Action::Seq(Box::new(write(A, read(B))), Box::new(write(B, read(A))));
        run_rule(&mut s, &body, ShadowPolicy::Partial).unwrap();
        assert_eq!(reg_val(&s, A), 2);
        assert_eq!(reg_val(&s, B), 2, "sequential: b sees a's update");
    }

    #[test]
    fn local_guard_absorbs_failure() {
        let d = d3();
        let mut s = Store::new(&d);
        // a := 5 ; localGuard { b := 9 ; noAction when false }
        let body = Action::Seq(
            Box::new(write(A, Expr::int(32, 5))),
            Box::new(Action::LocalGuard(Box::new(Action::Seq(
                Box::new(write(B, Expr::int(32, 9))),
                Box::new(Action::When(
                    Box::new(Expr::f()),
                    Box::new(Action::NoAction),
                )),
            )))),
        );
        let (out, _) = run_rule(&mut s, &body, ShadowPolicy::Partial).unwrap();
        assert_eq!(out, RuleOutcome::Fired);
        assert_eq!(reg_val(&s, A), 5, "outer effect commits");
        assert_eq!(reg_val(&s, B), 2, "guarded inner effect discarded");
    }

    #[test]
    fn dynamic_length_loop_with_local_guard() {
        // The paper's non-atomic-atomic-loop idiom: drain a FIFO into `a`
        // (summing) until empty, terminating via guard failure.
        let d = d3();
        let mut s = Store::new(&d);
        for v in [10, 20, 30] {
            if let crate::prim::PrimState::Fifo { items, depth } = s.state_mut(Q) {
                *depth = 10;
                items.push_back(Value::int(32, v));
            }
        }
        // cond := true; loop(cond) { cond := false; localGuard { a := a + q.first; q.deq; cond := true } }
        // Encode cond as register B (0/1).
        let cond_true = write(B, Expr::int(32, 1));
        let cond_false = write(B, Expr::int(32, 0));
        let cond_read = Expr::Bin(BinOp::Eq, Box::new(read(B)), Box::new(Expr::int(32, 1)));
        let drain = Action::Seq(
            Box::new(write(
                A,
                Expr::Bin(
                    BinOp::Add,
                    Box::new(read(A)),
                    Box::new(Expr::Call(Target::Prim(Q, PrimMethod::First), vec![])),
                ),
            )),
            Box::new(Action::Seq(
                Box::new(Action::Call(Target::Prim(Q, PrimMethod::Deq), vec![])),
                Box::new(cond_true.clone()),
            )),
        );
        let body = Action::Seq(
            Box::new(write(A, Expr::int(32, 0))),
            Box::new(Action::Seq(
                Box::new(cond_true),
                Box::new(Action::Loop(
                    Box::new(cond_read),
                    Box::new(Action::Seq(
                        Box::new(cond_false),
                        Box::new(Action::LocalGuard(Box::new(drain))),
                    )),
                )),
            )),
        );
        let (out, _) = run_rule(&mut s, &body, ShadowPolicy::Partial).unwrap();
        assert_eq!(out, RuleOutcome::Fired);
        assert_eq!(reg_val(&s, A), 60, "all three values drained and summed");
    }

    #[test]
    fn loop_bound_enforced() {
        let d = d3();
        let mut s = Store::new(&d);
        let body = Action::Loop(Box::new(Expr::t()), Box::new(Action::NoAction));
        let mut txn = Txn::new(&mut s, ShadowPolicy::Partial);
        txn.max_loop_iters = 10;
        let mut env = Env::new();
        let r = exec(&mut txn, &mut env, &body);
        assert!(matches!(r, Err(ExecError::Malformed(_))));
    }

    #[test]
    fn when_expression_guards() {
        let d = d3();
        let mut s = Store::new(&d);
        // a := (b when (b > 5))  -- fails since b == 2
        let body = write(
            A,
            Expr::When(
                Box::new(read(B)),
                Box::new(Expr::Bin(
                    BinOp::Gt,
                    Box::new(read(B)),
                    Box::new(Expr::int(32, 5)),
                )),
            ),
        );
        let (out, _) = run_rule(&mut s, &body, ShadowPolicy::Partial).unwrap();
        assert_eq!(out, RuleOutcome::GuardFailed);
    }

    #[test]
    fn let_binding_and_shadowing() {
        let d = d3();
        let mut s = Store::new(&d);
        // let x = 3 in let x = x + 1 in a := x
        let body = Action::Let(
            "x".into(),
            Box::new(Expr::int(32, 3)),
            Box::new(Action::Let(
                "x".into(),
                Box::new(Expr::Bin(
                    BinOp::Add,
                    Box::new(Expr::Var("x".into())),
                    Box::new(Expr::int(32, 1)),
                )),
                Box::new(write(A, Expr::Var("x".into()))),
            )),
        );
        run_rule(&mut s, &body, ShadowPolicy::Partial).unwrap();
        assert_eq!(reg_val(&s, A), 4);
    }

    #[test]
    fn vector_expressions() {
        let d = d3();
        let mut s = Store::new(&d);
        // a := (update [10,20,30] at 1 to 99)[1] + [10,20,30][2]
        let v = Expr::MkVec(vec![
            Expr::int(32, 10),
            Expr::int(32, 20),
            Expr::int(32, 30),
        ]);
        let upd = Expr::UpdateIndex(
            Box::new(v.clone()),
            Box::new(Expr::int(32, 1)),
            Box::new(Expr::int(32, 99)),
        );
        let body = write(
            A,
            Expr::Bin(
                BinOp::Add,
                Box::new(Expr::Index(Box::new(upd), Box::new(Expr::int(32, 1)))),
                Box::new(Expr::Index(Box::new(v), Box::new(Expr::int(32, 2)))),
            ),
        );
        run_rule(&mut s, &body, ShadowPolicy::Partial).unwrap();
        assert_eq!(reg_val(&s, A), 129);
    }

    #[test]
    fn struct_expressions() {
        let d = d3();
        let mut s = Store::new(&d);
        let st = Expr::MkStruct(vec![
            ("re".into(), Expr::int(32, 7)),
            ("im".into(), Expr::int(32, 8)),
        ]);
        let body = write(
            A,
            Expr::Field(
                Box::new(Expr::UpdateField(
                    Box::new(st),
                    "im".into(),
                    Box::new(Expr::int(32, 80)),
                )),
                "im".into(),
            ),
        );
        run_rule(&mut s, &body, ShadowPolicy::Partial).unwrap();
        assert_eq!(reg_val(&s, A), 80);
    }

    #[test]
    fn guard_eval_ro_folds_failures() {
        let d = d3();
        let mut s = Store::new(&d);
        let mut cost = Cost::default();
        // Guard reads q.first on an empty FIFO -> false, not an error.
        let g = Expr::Bin(
            BinOp::Gt,
            Box::new(Expr::Call(Target::Prim(Q, PrimMethod::First), vec![])),
            Box::new(Expr::int(32, 0)),
        );
        assert!(!eval_guard_ro(&mut s, &g, &mut cost).unwrap());
        assert_eq!(cost.guard_evals, 1);
    }

    #[test]
    fn unelaborated_call_is_malformed() {
        let d = d3();
        let mut s = Store::new(&d);
        let body = Action::Call(Target::Named("x".into(), "enq".into()), vec![]);
        assert!(matches!(
            run_rule(&mut s, &body, ShadowPolicy::Partial),
            Err(ExecError::Malformed(_))
        ));
    }
}
