//! Measures the durable-snapshot machinery for EXPERIMENTS.md R2:
//! snapshot size and encode/decode latency as a function of the live
//! state the system carries, and the wall-clock overhead autosave adds
//! to a real decode at various intervals.
//!
//! ```sh
//! cargo run --release --example persist_bench
//! ```

use bcl_core::builder::{dsl::*, ModuleBuilder};
use bcl_core::domain::{HW, SW};
use bcl_core::partition::partition;
use bcl_core::program::Program;
use bcl_core::sched::SwOptions;
use bcl_core::types::Type;
use bcl_core::value::Value;
use bcl_platform::cosim::{Checkpoint, Cosim, RecoveryPolicy};
use bcl_platform::link::{FaultConfig, LinkConfig};
use bcl_vorbis::frames::frame_stream;
use bcl_vorbis::partitions::{run_partition, run_partition_autosaving, VorbisPartition};
use std::time::Instant;

/// The failback demo's offload kernel with a `scratch`-entry register
/// file: the knob that scales the partition's live state.
fn offload_design(scratch: usize) -> bcl_core::design::Design {
    let mut m = ModuleBuilder::new("Offload");
    m.source("src", Type::Int(32), SW);
    m.sink("snk", Type::Int(32), SW);
    m.channel("inSync", 16, Type::Int(32), SW, HW);
    m.channel("outSync", 16, Type::Int(32), HW, SW);
    m.rule("feed", with_first("x", "src", enq("inSync", var("x"))));
    m.regfile(
        "scratch",
        scratch,
        Type::Int(32),
        vec![Value::int(32, 0); scratch],
    );
    m.rule(
        "compute",
        with_first(
            "x",
            "inSync",
            par(vec![
                upd(
                    "scratch",
                    and(var("x"), cint(32, scratch as i64 - 1)),
                    var("x"),
                ),
                enq("outSync", add(var("x"), var("x"))),
            ]),
        ),
    );
    m.rule("drain", with_first("y", "outSync", enq("snk", var("y"))));
    bcl_core::elaborate(&Program::with_root(m.build())).unwrap()
}

/// Median-of-N wall-clock time for one call, in microseconds.
fn time_us(n: u32, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..n)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn size_and_latency() -> Result<(), Box<dyn std::error::Error>> {
    println!("snapshot size and codec latency vs live state (median of 64):\n");
    println!(
        "{:>8} {:>10} {:>12} {:>12}",
        "scratch", "bytes", "encode (us)", "decode (us)"
    );
    for scratch in [4usize, 64, 256, 1024, 4096] {
        let parts = partition(&offload_design(scratch), SW)?;
        let mut cs = Cosim::with_faults(
            &parts,
            SW,
            HW,
            LinkConfig::default(),
            FaultConfig::none(),
            SwOptions::default(),
        )?;
        for i in 0..600i64 {
            cs.push_source("src", Value::int(32, i));
        }
        // Mid-stream steady state: FIFOs occupied, scratch partly written.
        let out = cs.run_until(|c| c.fpga_cycles >= 400, 1_000_000)?;
        assert!(out.is_done());
        let bytes = cs.snapshot_bytes()?;
        let encode = time_us(64, || {
            cs.snapshot_bytes().unwrap();
        });
        let decode = time_us(64, || {
            Checkpoint::read_from(&mut bytes.as_slice()).unwrap();
        });
        println!(
            "{:>8} {:>10} {:>12.1} {:>12.1}",
            scratch,
            bytes.len(),
            encode,
            decode
        );
    }
    Ok(())
}

fn autosave_overhead() -> Result<(), Box<dyn std::error::Error>> {
    let frames = frame_stream(32, 21);
    let dir = std::env::temp_dir().join(format!("bcl_persist_bench_{}", std::process::id()));
    std::fs::create_dir_all(&dir)?;
    let baseline = {
        let t = Instant::now();
        let run = run_partition(VorbisPartition::E, &frames)?;
        (t.elapsed().as_secs_f64() * 1e3, run.fpga_cycles)
    };
    println!(
        "\nautosave overhead, Vorbis E on {} frames ({} cycles, {:.1} ms without autosave):\n",
        frames.len(),
        baseline.1,
        baseline.0
    );
    println!(
        "{:>10} {:>10} {:>12} {:>10}",
        "interval", "saves", "wall (ms)", "overhead"
    );
    for interval in [2_000u64, 500, 100] {
        let t = Instant::now();
        let run = run_partition_autosaving(
            VorbisPartition::E,
            &frames,
            FaultConfig::none(),
            RecoveryPolicy::Fail,
            interval,
            &dir,
        )?;
        let wall = t.elapsed().as_secs_f64() * 1e3;
        assert_eq!(
            run.fpga_cycles, baseline.1,
            "autosave must not change timing"
        );
        println!(
            "{:>10} {:>10} {:>12.1} {:>9.0}%",
            interval,
            run.fpga_cycles / interval + 1,
            wall,
            (wall / baseline.0 - 1.0) * 100.0
        );
    }
    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    size_and_latency()?;
    autosave_overhead()
}
