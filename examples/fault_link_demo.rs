//! Demonstrates the fault-injected link and the reliable transport that
//! hides it: the same Vorbis decode is run over a perfect link and over
//! a lossy/corrupting/duplicating/reordering one, and the PCM comes out
//! bit-identical. Pass `--dead` to kill one direction entirely and watch
//! the stall detector diagnose it instead of hanging.
//!
//! ```sh
//! cargo run --release --example fault_link_demo [seed] [loss%] [corrupt%]
//! cargo run --release --example fault_link_demo -- --dead
//! ```

use bcl_core::builder::{dsl::*, ModuleBuilder};
use bcl_core::domain::{HW, SW};
use bcl_core::partition::partition;
use bcl_core::program::Program;
use bcl_core::sched::SwOptions;
use bcl_core::types::Type;
use bcl_core::value::Value;
use bcl_platform::cosim::{Cosim, CosimOutcome};
use bcl_platform::link::{FaultConfig, LinkConfig};
use bcl_vorbis::frames::frame_stream;
use bcl_vorbis::partitions::{run_partition, run_partition_with_faults, VorbisPartition};

fn dead_direction_demo() -> Result<(), Box<dyn std::error::Error>> {
    let mut m = ModuleBuilder::new("Echo");
    m.source("src", Type::Int(32), SW);
    m.sink("snk", Type::Int(32), SW);
    m.channel("toHw", 2, Type::Int(32), SW, HW);
    m.channel("toSw", 2, Type::Int(32), HW, SW);
    m.rule("feed", with_first("x", "src", enq("toHw", var("x"))));
    m.rule("echo", with_first("x", "toHw", enq("toSw", var("x"))));
    m.rule("drain", with_first("x", "toSw", enq("snk", var("x"))));
    let design = bcl_core::elaborate(&Program::with_root(m.build()))?;
    let parts = partition(&design, SW)?;

    let faults = FaultConfig {
        drop: [0.0, 1.0], // HW->SW direction loses everything
        ..FaultConfig::none()
    };
    let mut cs = Cosim::with_faults(
        &parts,
        SW,
        HW,
        LinkConfig::default(),
        faults,
        SwOptions::default(),
    )?;
    cs.push_source("src", Value::int(32, 42));
    println!("running echo with a 100%-loss HW->SW direction...");
    match cs.run_until(|c| c.sink_count("snk") == 1, u64::MAX / 2)? {
        CosimOutcome::Stalled {
            fpga_cycles,
            channels,
        } => {
            println!("stalled after {fpga_cycles} FPGA cycles; per-channel diagnostics:");
            for ch in &channels {
                println!("  {ch}");
            }
        }
        other => println!("unexpected outcome: {other:?}"),
    }
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--dead") {
        return dead_direction_demo();
    }
    let seed: u64 = args.first().and_then(|s| s.parse().ok()).unwrap_or(2012);
    let loss: f64 = args
        .get(1)
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(20.0)
        .clamp(0.0, 99.0)
        / 100.0;
    let corrupt: f64 = args
        .get(2)
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(10.0)
        .clamp(0.0, 99.0)
        / 100.0;
    let faults = FaultConfig::uniform(seed, loss, corrupt, 0.10, 0.10);

    let frames = frame_stream(2, 11);
    let clean = run_partition(VorbisPartition::E, &frames)?;
    println!(
        "clean link:  {} PCM samples, {} FPGA cycles",
        clean.pcm.len(),
        clean.fpga_cycles
    );

    let faulty = run_partition_with_faults(VorbisPartition::E, &frames, faults.clone())?;
    let s = &faulty.link;
    println!(
        "faulty link: {} PCM samples, {} FPGA cycles (seed {seed}, \
         {:.0}% drop, {:.0}% corrupt, 10% dup, 10% reorder)",
        faulty.pcm.len(),
        faulty.fpga_cycles,
        loss * 100.0,
        corrupt * 100.0,
    );
    println!(
        "  faults injected: {} dropped, {} corrupted, {} duplicated, {} reordered",
        s.dropped_to_hw + s.dropped_to_sw,
        s.corrupted_to_hw + s.corrupted_to_sw,
        s.duplicated_to_hw + s.duplicated_to_sw,
        s.reordered_to_hw + s.reordered_to_sw,
    );
    println!(
        "  PCM bit-identical to clean run: {}",
        if faulty.pcm == clean.pcm {
            "yes"
        } else {
            "NO!"
        }
    );

    let again = run_partition_with_faults(VorbisPartition::E, &frames, faults)?;
    println!(
        "  same seed reproduces exactly: {}",
        if again.fpga_cycles == faulty.fpga_cycles && again.link == faulty.link {
            "yes"
        } else {
            "NO!"
        }
    );
    Ok(())
}
