//! Static analysis: read/write sets, pairwise rule conflicts, and the
//! dataflow successor relation.
//!
//! The conflict matrix drives the hardware scheduler (§6.4: "the compiler
//! does pair-wise static analysis to conservatively estimate conflicts
//! between rules") and the sequentialization transformation (§6.3). The
//! dataflow relation drives the chained software scheduler ("the execution
//! of one rule may enable another, permitting the construction of longer
//! sequences of rule invocations").

use crate::ast::{Action, Expr, PrimId, PrimMethod, Target};
use crate::design::Design;
use std::collections::BTreeSet;

/// The set of primitive methods an action (or expression) may invoke.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RwSet {
    /// `(prim, method)` pairs for value (read) methods.
    pub reads: BTreeSet<(PrimId, PrimMethod)>,
    /// `(prim, method)` pairs for action (write) methods.
    pub writes: BTreeSet<(PrimId, PrimMethod)>,
}

impl RwSet {
    /// Collects the read/write set of an action.
    pub fn of_action(a: &Action) -> RwSet {
        let mut s = RwSet::default();
        s.visit_action(a);
        s
    }

    /// Collects the read set of an expression (expressions cannot write).
    pub fn of_expr(e: &Expr) -> RwSet {
        let mut s = RwSet::default();
        s.visit_expr(e);
        s
    }

    /// All primitives written.
    pub fn written_prims(&self) -> BTreeSet<PrimId> {
        self.writes.iter().map(|(p, _)| *p).collect()
    }

    /// All primitives read.
    pub fn read_prims(&self) -> BTreeSet<PrimId> {
        self.reads.iter().map(|(p, _)| *p).collect()
    }

    /// All primitives touched in any way.
    pub fn touched_prims(&self) -> BTreeSet<PrimId> {
        self.written_prims()
            .union(&self.read_prims())
            .copied()
            .collect()
    }

    fn record(&mut self, t: &Target) {
        if let Target::Prim(id, m) = t {
            if m.is_write() {
                self.writes.insert((*id, *m));
            } else {
                self.reads.insert((*id, *m));
            }
        }
    }

    fn visit_action(&mut self, a: &Action) {
        match a {
            Action::NoAction => {}
            Action::Write(t, e) => {
                self.record(t);
                self.visit_expr(e);
            }
            Action::If(c, x, y) => {
                self.visit_expr(c);
                self.visit_action(x);
                self.visit_action(y);
            }
            Action::Par(x, y) | Action::Seq(x, y) => {
                self.visit_action(x);
                self.visit_action(y);
            }
            Action::When(g, x) => {
                self.visit_expr(g);
                self.visit_action(x);
            }
            Action::Let(_, e, x) => {
                self.visit_expr(e);
                self.visit_action(x);
            }
            Action::Loop(c, x) => {
                self.visit_expr(c);
                self.visit_action(x);
            }
            Action::LocalGuard(x) => self.visit_action(x),
            Action::Call(t, args) => {
                self.record(t);
                args.iter().for_each(|e| self.visit_expr(e));
            }
        }
    }

    fn visit_expr(&mut self, e: &Expr) {
        match e {
            Expr::Const(_) | Expr::Var(_) => {}
            Expr::Un(_, a) => self.visit_expr(a),
            Expr::Bin(_, a, b) => {
                self.visit_expr(a);
                self.visit_expr(b);
            }
            Expr::Cond(a, b, c) => {
                self.visit_expr(a);
                self.visit_expr(b);
                self.visit_expr(c);
            }
            Expr::When(a, b) | Expr::Let(_, a, b) | Expr::Index(a, b) => {
                self.visit_expr(a);
                self.visit_expr(b);
            }
            Expr::Field(a, _) => self.visit_expr(a),
            Expr::Call(t, args) => {
                self.record(t);
                args.iter().for_each(|x| self.visit_expr(x));
            }
            Expr::MkVec(es) => es.iter().for_each(|x| self.visit_expr(x)),
            Expr::MkStruct(fs) => fs.iter().for_each(|(_, x)| self.visit_expr(x)),
            Expr::UpdateIndex(a, b, c) => {
                self.visit_expr(a);
                self.visit_expr(b);
                self.visit_expr(c);
            }
            Expr::UpdateField(a, _, c) => {
                self.visit_expr(a);
                self.visit_expr(c);
            }
        }
    }
}

/// Per-rule static sensitivity sets for event-driven scheduling: which
/// primitives each rule's *lifted guard* reads (its sensitivity list) and
/// which its body writes, plus the inverted map from primitive to the
/// rules whose guards must be re-evaluated when it is dirtied.
///
/// A rule with no lifted guard has an empty read set — the scheduler
/// always attempts it, so there is no verdict to invalidate. A guard with
/// an empty read set is constant: its verdict can never change, so never
/// appearing in `readers_of` is exactly right.
#[derive(Debug, Clone)]
pub struct Sensitivity {
    /// Primitives read by each rule's lifted guard (indexed like the
    /// rule plans).
    pub guard_reads: Vec<BTreeSet<PrimId>>,
    /// Primitives written by each rule's body.
    pub body_writes: Vec<BTreeSet<PrimId>>,
    /// `readers_of[p]`: the rules whose guard reads primitive `p`
    /// (ascending rule index).
    pub readers_of: Vec<Vec<usize>>,
}

impl Sensitivity {
    /// Computes the sensitivity sets for a set of compiled rule plans
    /// over a design with `n_prims` primitives.
    pub fn of_plans(plans: &[crate::xform::RulePlan], n_prims: usize) -> Sensitivity {
        let guard_reads: Vec<BTreeSet<PrimId>> = plans
            .iter()
            .map(|p| match &p.guard {
                Some(g) => RwSet::of_expr(g).touched_prims(),
                None => BTreeSet::new(),
            })
            .collect();
        let body_writes: Vec<BTreeSet<PrimId>> = plans
            .iter()
            .map(|p| RwSet::of_action(&p.body).written_prims())
            .collect();
        let mut readers_of = vec![Vec::new(); n_prims];
        for (rule, reads) in guard_reads.iter().enumerate() {
            for p in reads {
                readers_of[p.0].push(rule);
            }
        }
        Sensitivity {
            guard_reads,
            body_writes,
            readers_of,
        }
    }
}

/// Which "port side" of a FIFO a method belongs to. A FIFO's enqueue side
/// and dequeue side are independent ports: an `enq` in one rule does not
/// conflict with a `deq`/`first` in another (both observe cycle-start
/// state), which is what makes elastic pipelines schedulable one stage per
/// clock.
fn fifo_side(m: PrimMethod) -> Option<u8> {
    match m {
        PrimMethod::Enq | PrimMethod::NotFull => Some(0),
        PrimMethod::Deq | PrimMethod::First | PrimMethod::NotEmpty => Some(1),
        _ => None,
    }
}

/// True if two method invocations on the *same* primitive may be executed
/// by two different rules in the same cycle without violating
/// one-rule-at-a-time semantics.
fn methods_compatible(a: PrimMethod, b: PrimMethod) -> bool {
    if !a.is_write() && !b.is_write() {
        return true;
    }
    match (fifo_side(a), fifo_side(b)) {
        // Opposite FIFO sides never conflict; same side conflicts unless
        // both are pure reads (handled above).
        (Some(x), Some(y)) => x != y,
        _ => false,
    }
}

/// True if two rules (given their read/write sets) conflict: firing both in
/// the same hardware clock cycle could produce a state not explainable by
/// some sequential order.
pub fn rules_conflict(a: &RwSet, b: &RwSet) -> bool {
    let pair_conflicts = |xs: &BTreeSet<(PrimId, PrimMethod)>,
                          ys: &BTreeSet<(PrimId, PrimMethod)>| {
        xs.iter().any(|(p, m)| {
            ys.iter()
                .any(|(q, n)| p == q && !methods_compatible(*m, *n))
        })
    };
    pair_conflicts(&a.writes, &b.writes)
        || pair_conflicts(&a.writes, &b.reads)
        || pair_conflicts(&a.reads, &b.writes)
}

/// Pairwise conflict matrix plus per-rule read/write sets for a design.
#[derive(Debug, Clone)]
pub struct ConflictInfo {
    /// Per-rule read/write sets, indexed like `design.rules`.
    pub rwsets: Vec<RwSet>,
    /// `matrix[i][j]` is true when rules `i` and `j` conflict.
    pub matrix: Vec<Vec<bool>>,
}

impl ConflictInfo {
    /// Computes the conflict matrix for a design.
    pub fn of_design(design: &Design) -> ConflictInfo {
        let rwsets: Vec<RwSet> = design
            .rules
            .iter()
            .map(|r| RwSet::of_action(&r.body))
            .collect();
        let n = rwsets.len();
        let mut matrix = vec![vec![false; n]; n];
        for i in 0..n {
            for j in (i + 1)..n {
                let c = rules_conflict(&rwsets[i], &rwsets[j]);
                matrix[i][j] = c;
                matrix[j][i] = c;
            }
        }
        ConflictInfo { rwsets, matrix }
    }

    /// True when rules `i` and `j` conflict.
    pub fn conflicts(&self, i: usize, j: usize) -> bool {
        self.matrix[i][j]
    }
}

/// The dataflow successor relation: rule `j` is a successor of rule `i`
/// when `i` produces state that `j` consumes (enq → deq/first on the same
/// FIFO, or register/regfile write → read). Used by the chained software
/// scheduler to follow data through the design (§6.3 "Scheduling").
pub fn successors(design: &Design) -> Vec<Vec<usize>> {
    let rwsets: Vec<RwSet> = design
        .rules
        .iter()
        .map(|r| RwSet::of_action(&r.body))
        .collect();
    let n = rwsets.len();
    let mut out = vec![Vec::new(); n];
    for i in 0..n {
        for (j, jset) in rwsets.iter().enumerate() {
            if i == j {
                continue;
            }
            let feeds = rwsets[i].writes.iter().any(|(p, m)| match m {
                PrimMethod::Enq => {
                    jset.reads.iter().any(|(q, n)| {
                        q == p && matches!(n, PrimMethod::First | PrimMethod::NotEmpty)
                    }) || jset
                        .writes
                        .iter()
                        .any(|(q, n)| q == p && *n == PrimMethod::Deq)
                }
                PrimMethod::RegWrite | PrimMethod::Upd => jset.reads.iter().any(|(q, _)| q == p),
                _ => false,
            });
            if feeds {
                out[i].push(j);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Path;
    use crate::design::PrimDef;
    use crate::prim::PrimSpec;
    use crate::types::Type;
    use crate::value::Value;

    const R0: PrimId = PrimId(0);
    const Q0: PrimId = PrimId(1);
    const Q1: PrimId = PrimId(2);

    fn call(id: PrimId, m: PrimMethod) -> Action {
        Action::Call(Target::Prim(id, m), vec![])
    }
    fn enq(id: PrimId, e: Expr) -> Action {
        Action::Call(Target::Prim(id, PrimMethod::Enq), vec![e])
    }
    fn first(id: PrimId) -> Expr {
        Expr::Call(Target::Prim(id, PrimMethod::First), vec![])
    }

    #[test]
    fn rwset_collection() {
        // q1.enq(q0.first) ; q0.deq
        let a = Action::Seq(
            Box::new(enq(Q1, first(Q0))),
            Box::new(call(Q0, PrimMethod::Deq)),
        );
        let s = RwSet::of_action(&a);
        assert!(s.reads.contains(&(Q0, PrimMethod::First)));
        assert!(s.writes.contains(&(Q1, PrimMethod::Enq)));
        assert!(s.writes.contains(&(Q0, PrimMethod::Deq)));
        assert_eq!(s.touched_prims().len(), 2);
    }

    #[test]
    fn enq_deq_opposite_sides_do_not_conflict() {
        // Stage i deqs q0 and enqs q1; stage i+1 deqs q1: pipeline rules
        // must be concurrently schedulable.
        let r1 = RwSet::of_action(&Action::Seq(
            Box::new(enq(Q1, first(Q0))),
            Box::new(call(Q0, PrimMethod::Deq)),
        ));
        let r2 = RwSet::of_action(&call(Q1, PrimMethod::Deq));
        assert!(!rules_conflict(&r1, &r2));
    }

    #[test]
    fn double_enq_conflicts() {
        let r1 = RwSet::of_action(&enq(Q0, Expr::int(8, 1)));
        let r2 = RwSet::of_action(&enq(Q0, Expr::int(8, 2)));
        assert!(rules_conflict(&r1, &r2));
    }

    #[test]
    fn reg_write_read_conflicts() {
        let w = RwSet::of_action(&Action::Write(
            Target::Prim(R0, PrimMethod::RegWrite),
            Box::new(Expr::int(8, 1)),
        ));
        let r = RwSet::of_expr(&Expr::Call(Target::Prim(R0, PrimMethod::RegRead), vec![]));
        assert!(rules_conflict(&w, &r));
        assert!(rules_conflict(&w, &w));
        assert!(!rules_conflict(&r, &r));
    }

    #[test]
    fn deq_vs_first_conflicts() {
        // Another rule peeking `first` must not run in the same cycle as a
        // dequeuer in our conservative model.
        let d = RwSet::of_action(&call(Q0, PrimMethod::Deq));
        let f = RwSet::of_expr(&first(Q0));
        assert!(rules_conflict(&d, &f));
    }

    fn pipeline_design() -> Design {
        Design {
            name: "pipe".into(),
            prims: vec![
                PrimDef {
                    path: Path::new("r"),
                    spec: PrimSpec::Reg {
                        init: Value::int(8, 0),
                    },
                },
                PrimDef {
                    path: Path::new("q0"),
                    spec: PrimSpec::Fifo {
                        depth: 2,
                        ty: Type::Int(8),
                    },
                },
                PrimDef {
                    path: Path::new("q1"),
                    spec: PrimSpec::Fifo {
                        depth: 2,
                        ty: Type::Int(8),
                    },
                },
            ],
            rules: vec![
                crate::ast::RuleDef {
                    name: "s0".into(),
                    body: enq(Q0, Expr::int(8, 1)),
                },
                crate::ast::RuleDef {
                    name: "s1".into(),
                    body: Action::Seq(
                        Box::new(enq(Q1, first(Q0))),
                        Box::new(call(Q0, PrimMethod::Deq)),
                    ),
                },
                crate::ast::RuleDef {
                    name: "s2".into(),
                    body: call(Q1, PrimMethod::Deq),
                },
            ],
            ..Default::default()
        }
    }

    #[test]
    fn conflict_matrix_symmetry() {
        let d = pipeline_design();
        let ci = ConflictInfo::of_design(&d);
        for i in 0..3 {
            assert!(!ci.conflicts(i, i));
            for j in 0..3 {
                assert_eq!(ci.conflicts(i, j), ci.conflicts(j, i));
            }
        }
        // The three pipeline stages are mutually conflict-free.
        assert!(!ci.conflicts(0, 1));
        assert!(!ci.conflicts(1, 2));
        assert!(!ci.conflicts(0, 2));
    }

    #[test]
    fn successor_relation_follows_data() {
        let d = pipeline_design();
        let succ = successors(&d);
        assert_eq!(succ[0], vec![1], "s0 enq q0 feeds s1");
        assert_eq!(succ[1], vec![2], "s1 enq q1 feeds s2");
        assert!(succ[2].is_empty());
    }

    #[test]
    fn sensitivity_inverts_guard_reads() {
        let d = pipeline_design();
        let plans = crate::xform::compile_design(&d, crate::xform::CompileOpts::default());
        let sens = Sensitivity::of_plans(&plans, d.prims.len());
        // s0 guards on q0.notFull; s1 on q0.notEmpty ∧ q1.notFull; s2 on
        // q1.notEmpty. The register is in nobody's sensitivity list.
        assert!(sens.guard_reads[0].contains(&Q0));
        assert!(sens.guard_reads[1].contains(&Q0) && sens.guard_reads[1].contains(&Q1));
        assert!(sens.guard_reads[2].contains(&Q1));
        assert_eq!(sens.readers_of[Q0.0], vec![0, 1]);
        assert_eq!(sens.readers_of[Q1.0], vec![1, 2]);
        assert!(sens.readers_of[R0.0].is_empty());
        assert!(sens.body_writes[1].contains(&Q0) && sens.body_writes[1].contains(&Q1));
    }
}
