//! The physical channel model.
//!
//! Stands in for the paper's experimental platform (Figure 11): a Xilinx
//! ML507 where the PPC440 (400 MHz) talks to FPGA logic (100 MHz) over
//! LocalLink with embedded HDMA engines. The paper reports a ~100
//! FPGA-cycle round-trip latency and up to 400 MB/s of streaming
//! bandwidth; the defaults here reproduce exactly those numbers
//! (50-cycle one-way latency, one 32-bit word per 100 MHz cycle).
//!
//! Time is measured in FPGA cycles throughout. The link is full duplex:
//! each direction has its own serialization resource.
//!
//! ## Fault injection
//!
//! Real LocalLink/DMA-class interconnects drop, corrupt, duplicate, and
//! reorder frames. [`FaultConfig`] turns this model into an *unreliable*
//! channel: each direction gets an independent, seed-derived PRNG stream
//! and per-frame drop/corrupt/duplicate/reorder probabilities, plus a
//! deterministic script of targeted faults ("drop the Nth SW→HW frame").
//! The same seed and send sequence always produces the same fault
//! schedule, so co-simulations under fault injection are exactly
//! reproducible. Injected faults are tallied per direction in
//! [`LinkStats`]; surviving the faults is the job of the reliable
//! transport in [`crate::transactor`].

use bcl_core::codec::{ByteReader, ByteWriter, CodecError, CodecResult};
use std::collections::VecDeque;

/// Direction of travel across a partition boundary.
///
/// A link always has an "A side" and a "B side". On a CPU-attached
/// link the A side is the software partition; on a shared-fabric link
/// between two hardware partitions the A side is whichever partition
/// the cosim designated when it built the link's transactor — the
/// names below read `Sw`/`Hw` for the dominant case.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dir {
    /// From the software (A-side) partition to the hardware (B-side)
    /// partition.
    SwToHw,
    /// From the hardware (B-side) partition to the software (A-side)
    /// partition.
    HwToSw,
}

impl Dir {
    fn idx(self) -> usize {
        match self {
            Dir::SwToHw => 0,
            Dir::HwToSw => 1,
        }
    }

    /// The opposite direction (the one ACKs for this direction's data
    /// travel in).
    pub fn opposite(self) -> Dir {
        match self {
            Dir::SwToHw => Dir::HwToSw,
            Dir::HwToSw => Dir::SwToHw,
        }
    }
}

/// Physical-channel parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkConfig {
    /// One-way message latency in FPGA cycles (default 50, i.e. a ~100
    /// cycle round trip as measured in §7).
    pub one_way_latency: u64,
    /// Serialization bandwidth in 32-bit words per FPGA cycle (default 1,
    /// i.e. 400 MB/s at 100 MHz).
    pub words_per_cycle: u64,
    /// CPU cycles the software driver spends per marshaled word
    /// (uncached bus access / memcpy into the DMA buffer).
    pub sw_word_cost: u64,
    /// Fixed CPU cycles per message on the software side (bus transaction
    /// setup — this is the §2 "overhead of a bus transaction" that burst
    /// transfer amortizes).
    pub sw_msg_overhead: u64,
    /// CPU cycles per FPGA cycle (default 4: 400 MHz / 100 MHz).
    pub cpu_per_fpga: u64,
}

impl Default for LinkConfig {
    fn default() -> Self {
        LinkConfig {
            one_way_latency: 50,
            words_per_cycle: 1,
            sw_word_cost: 8,
            sw_msg_overhead: 64,
            cpu_per_fpga: 4,
        }
    }
}

/// A message in flight: a marshaled value on one virtual channel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Index of the virtual channel (synchronizer) this belongs to.
    pub channel: usize,
    /// Marshaled payload.
    pub words: Vec<u32>,
}

/// A kind of injected link fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The frame is silently discarded (it still occupies the wire).
    Drop,
    /// Random bits inside one 32-bit word of the frame are flipped.
    Corrupt,
    /// A second copy of the frame is delivered shortly after the first.
    Duplicate,
    /// The frame is delayed by a random amount, letting later frames
    /// overtake it.
    Reorder,
}

/// A scripted fault against the hardware *partition* itself rather than
/// the link: the modeled FPGA resets or dies at a given FPGA cycle,
/// wiping its store and all transport state. The co-simulation applies
/// these; recovering from them is the job of the recovery policy
/// (`bcl_platform::cosim::RecoveryPolicy`). Each scripted fault fires at
/// most once per run — it models an event in the environment, so it is
/// deliberately *not* part of a checkpoint and does not re-fire when a
/// recovery policy rewinds the cycle counter past it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionFault {
    /// At this FPGA cycle the hardware partition resets: its store
    /// returns to power-on values, the transactors lose their transport
    /// state, and frames on the wire are discarded — but the partition
    /// keeps executing from the reset state.
    ResetAt(u64),
    /// At this FPGA cycle the hardware partition goes down and stays
    /// down (no cycles execute, nothing is pumped); only a recovery
    /// policy can bring the system back.
    DieAt(u64),
    /// At this FPGA cycle the hardware partition comes back to life. It
    /// only has an effect while the partition is software-owned (after a
    /// `DieAt` was survived by `RecoveryPolicy::FailoverToSoftware`):
    /// the co-simulation extracts the partition's live state back out of
    /// the fused software design, reloads the hardware store, rebuilds
    /// the transactor transport from scratch, and resumes co-execution.
    /// While the partition is running in hardware a `ReviveAt` is
    /// ignored (and stays armed, so a later death can still be revived).
    ReviveAt(u64),
}

impl PartitionFault {
    /// The FPGA cycle at which the fault strikes.
    pub fn cycle(&self) -> u64 {
        match self {
            PartitionFault::ResetAt(c) | PartitionFault::DieAt(c) | PartitionFault::ReviveAt(c) => {
                *c
            }
        }
    }

    /// True if the partition stays down after the fault.
    pub fn is_fatal(&self) -> bool {
        matches!(self, PartitionFault::DieAt(_))
    }
}

/// A scripted fault: deterministically applied to the `nth` (0-based)
/// frame sent in direction `dir`, regardless of the random rates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScriptedFault {
    /// Direction of the targeted frame.
    pub dir: Dir,
    /// 0-based index of the targeted frame within that direction's send
    /// sequence.
    pub nth: u64,
    /// What happens to it.
    pub kind: FaultKind,
}

/// Deterministic, seed-driven fault model for the link.
///
/// All probabilities are per frame, in `[0, 1]`, applied independently
/// per direction (indexed by [`Dir`]: `[SwToHw, HwToSw]`). With the
/// default [`FaultConfig::none`] the link behaves exactly like the
/// original perfect channel and the transactor takes its zero-overhead
/// fast path.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// PRNG seed; the same seed reproduces the same fault schedule.
    pub seed: u64,
    /// Per-direction probability of dropping a frame.
    pub drop: [f64; 2],
    /// Per-direction probability of corrupting a frame (bit flips within
    /// one word; always caught by the transactor's CRC32).
    pub corrupt: [f64; 2],
    /// Per-direction probability of duplicating a frame.
    pub duplicate: [f64; 2],
    /// Per-direction probability of delaying a frame past its
    /// successors.
    pub reorder: [f64; 2],
    /// Targeted faults applied on top of the random rates.
    pub script: Vec<ScriptedFault>,
    /// Scripted faults against the hardware partition itself (resets and
    /// deaths). These do not affect the link's frame-level fault schedule
    /// and do not disable the transactor's fast path on an otherwise
    /// perfect link.
    pub partition: Vec<PartitionFault>,
}

impl FaultConfig {
    /// A perfect link: no faults, transactor fast path enabled.
    pub fn none() -> FaultConfig {
        FaultConfig {
            seed: 0,
            drop: [0.0; 2],
            corrupt: [0.0; 2],
            duplicate: [0.0; 2],
            reorder: [0.0; 2],
            script: Vec::new(),
            partition: Vec::new(),
        }
    }

    /// The same fault rates in both directions.
    pub fn uniform(
        seed: u64,
        drop: f64,
        corrupt: f64,
        duplicate: f64,
        reorder: f64,
    ) -> FaultConfig {
        FaultConfig {
            seed,
            drop: [drop; 2],
            corrupt: [corrupt; 2],
            duplicate: [duplicate; 2],
            reorder: [reorder; 2],
            script: Vec::new(),
            partition: Vec::new(),
        }
    }

    /// Adds a scripted fault (builder style).
    pub fn with_scripted(mut self, dir: Dir, nth: u64, kind: FaultKind) -> FaultConfig {
        self.script.push(ScriptedFault { dir, nth, kind });
        self
    }

    /// Adds a scripted hardware-partition fault (builder style).
    pub fn with_partition_fault(mut self, f: PartitionFault) -> FaultConfig {
        self.partition.push(f);
        self
    }

    /// True if any partition-level fault (reset/death) is scripted.
    pub fn has_partition_faults(&self) -> bool {
        !self.partition.is_empty()
    }

    /// True if any *link-level* fault can ever fire. When false, the
    /// transactor runs its unframed fast path and behaves exactly like
    /// the seed model — partition faults alone do not disable the fast
    /// path, since they do not touch frames on the wire.
    pub fn is_active(&self) -> bool {
        !self.script.is_empty()
            || self
                .drop
                .iter()
                .chain(&self.corrupt)
                .chain(&self.duplicate)
                .chain(&self.reorder)
                .any(|&p| p > 0.0)
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig::none()
    }
}

/// SplitMix64: small, fast, and deterministic — one stream per link
/// direction so the two directions' fault schedules are independent.
#[derive(Debug, Clone)]
struct FaultRng {
    state: u64,
}

impl FaultRng {
    fn new(seed: u64, salt: u64) -> FaultRng {
        FaultRng {
            state: seed ^ salt.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// True with probability `p`.
    fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            // Still consume a draw so rate changes don't shift the rest
            // of the schedule.
            let _ = self.next_u64();
            return true;
        }
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }

    /// Uniform value in `[0, n)`.
    fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n.max(1)
    }
}

#[derive(Debug, Clone)]
struct Direction {
    /// When the serializer is next free (FPGA cycle).
    busy_until: u64,
    /// In-flight messages, kept sorted by delivery time (stable for
    /// equal times, so the fault-free path preserves send order).
    in_flight: VecDeque<(u64, Message)>,
    words_sent: u64,
    messages_sent: u64,
    /// Frames handed to `send` so far (indexes the fault script).
    frames_seen: u64,
    rng: FaultRng,
    dropped: u64,
    corrupted: u64,
    duplicated: u64,
    reordered: u64,
}

impl Direction {
    fn new(seed: u64, salt: u64) -> Direction {
        Direction {
            busy_until: 0,
            in_flight: VecDeque::new(),
            words_sent: 0,
            messages_sent: 0,
            frames_seen: 0,
            rng: FaultRng::new(seed, salt),
            dropped: 0,
            corrupted: 0,
            duplicated: 0,
            reordered: 0,
        }
    }

    /// Inserts a frame keeping the queue sorted by delivery time;
    /// insertion after equal times preserves send order.
    fn insert_sorted(&mut self, at: u64, msg: Message) {
        let pos = self.in_flight.partition_point(|(t, _)| *t <= at);
        self.in_flight.insert(pos, (at, msg));
    }
}

/// Cumulative traffic and fault statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Words sent SW→HW.
    pub words_to_hw: u64,
    /// Words sent HW→SW.
    pub words_to_sw: u64,
    /// Messages sent SW→HW.
    pub msgs_to_hw: u64,
    /// Messages sent HW→SW.
    pub msgs_to_sw: u64,
    /// Frames dropped by fault injection, SW→HW.
    pub dropped_to_hw: u64,
    /// Frames dropped by fault injection, HW→SW.
    pub dropped_to_sw: u64,
    /// Frames corrupted by fault injection, SW→HW.
    pub corrupted_to_hw: u64,
    /// Frames corrupted by fault injection, HW→SW.
    pub corrupted_to_sw: u64,
    /// Frames duplicated by fault injection, SW→HW.
    pub duplicated_to_hw: u64,
    /// Frames duplicated by fault injection, HW→SW.
    pub duplicated_to_sw: u64,
    /// Frames delayed past their successors by fault injection, SW→HW.
    pub reordered_to_hw: u64,
    /// Frames delayed past their successors by fault injection, HW→SW.
    pub reordered_to_sw: u64,
}

impl LinkStats {
    /// Accumulates another link's counters into this one. The multi-
    /// partition cosim sums per-partition links into a single bus-level
    /// view ("to_hw" then means "away from software" on any link).
    pub fn merge(&mut self, other: &LinkStats) {
        self.words_to_hw += other.words_to_hw;
        self.words_to_sw += other.words_to_sw;
        self.msgs_to_hw += other.msgs_to_hw;
        self.msgs_to_sw += other.msgs_to_sw;
        self.dropped_to_hw += other.dropped_to_hw;
        self.dropped_to_sw += other.dropped_to_sw;
        self.corrupted_to_hw += other.corrupted_to_hw;
        self.corrupted_to_sw += other.corrupted_to_sw;
        self.duplicated_to_hw += other.duplicated_to_hw;
        self.duplicated_to_sw += other.duplicated_to_sw;
        self.reordered_to_hw += other.reordered_to_hw;
        self.reordered_to_sw += other.reordered_to_sw;
    }

    /// Total frames affected by any injected fault.
    pub fn faults_injected(&self) -> u64 {
        self.dropped_to_hw
            + self.dropped_to_sw
            + self.corrupted_to_hw
            + self.corrupted_to_sw
            + self.duplicated_to_hw
            + self.duplicated_to_sw
            + self.reordered_to_hw
            + self.reordered_to_sw
    }
}

/// The complete mutable state of a [`Link`]: both directions'
/// serializer clocks, in-flight frames, statistics, and — crucially —
/// the fault PRNG streams, so a restored run replays the exact same
/// fault schedule it would have seen uninterrupted.
#[derive(Debug, Clone)]
pub struct LinkSnapshot {
    dirs: [Direction; 2],
}

impl LinkConfig {
    /// Appends this configuration's stable binary encoding (five `u64`s).
    pub fn encode(&self, w: &mut ByteWriter) {
        w.u64(self.one_way_latency);
        w.u64(self.words_per_cycle);
        w.u64(self.sw_word_cost);
        w.u64(self.sw_msg_overhead);
        w.u64(self.cpu_per_fpga);
    }

    /// Decodes a configuration written by [`LinkConfig::encode`].
    pub fn decode(r: &mut ByteReader<'_>) -> CodecResult<LinkConfig> {
        Ok(LinkConfig {
            one_way_latency: r.u64()?,
            words_per_cycle: r.u64()?,
            sw_word_cost: r.u64()?,
            sw_msg_overhead: r.u64()?,
            cpu_per_fpga: r.u64()?,
        })
    }
}

impl Dir {
    fn encode(self, w: &mut ByteWriter) {
        w.u8(self.idx() as u8);
    }

    fn decode(r: &mut ByteReader<'_>) -> CodecResult<Dir> {
        match r.u8()? {
            0 => Ok(Dir::SwToHw),
            1 => Ok(Dir::HwToSw),
            _ => Err(CodecError::Malformed("unknown link direction")),
        }
    }
}

impl FaultKind {
    fn encode(self, w: &mut ByteWriter) {
        w.u8(match self {
            FaultKind::Drop => 0,
            FaultKind::Corrupt => 1,
            FaultKind::Duplicate => 2,
            FaultKind::Reorder => 3,
        });
    }

    fn decode(r: &mut ByteReader<'_>) -> CodecResult<FaultKind> {
        match r.u8()? {
            0 => Ok(FaultKind::Drop),
            1 => Ok(FaultKind::Corrupt),
            2 => Ok(FaultKind::Duplicate),
            3 => Ok(FaultKind::Reorder),
            _ => Err(CodecError::Malformed("unknown fault kind")),
        }
    }
}

impl PartitionFault {
    /// Appends this scripted partition fault's stable binary encoding.
    pub fn encode(&self, w: &mut ByteWriter) {
        let (tag, cycle) = match self {
            PartitionFault::ResetAt(c) => (0u8, *c),
            PartitionFault::DieAt(c) => (1, *c),
            PartitionFault::ReviveAt(c) => (2, *c),
        };
        w.u8(tag);
        w.u64(cycle);
    }

    /// Decodes a fault written by [`PartitionFault::encode`].
    pub fn decode(r: &mut ByteReader<'_>) -> CodecResult<PartitionFault> {
        let tag = r.u8()?;
        let cycle = r.u64()?;
        match tag {
            0 => Ok(PartitionFault::ResetAt(cycle)),
            1 => Ok(PartitionFault::DieAt(cycle)),
            2 => Ok(PartitionFault::ReviveAt(cycle)),
            _ => Err(CodecError::Malformed("unknown partition-fault tag")),
        }
    }
}

impl FaultConfig {
    /// Appends this fault model's stable binary encoding: seed, the four
    /// per-direction rate pairs as IEEE-754 bits, and both fault scripts.
    pub fn encode(&self, w: &mut ByteWriter) {
        w.u64(self.seed);
        for rates in [&self.drop, &self.corrupt, &self.duplicate, &self.reorder] {
            w.f64(rates[0]);
            w.f64(rates[1]);
        }
        w.u64(self.script.len() as u64);
        for s in &self.script {
            s.dir.encode(w);
            w.u64(s.nth);
            s.kind.encode(w);
        }
        w.u64(self.partition.len() as u64);
        for p in &self.partition {
            p.encode(w);
        }
    }

    /// Decodes a fault model written by [`FaultConfig::encode`].
    pub fn decode(r: &mut ByteReader<'_>) -> CodecResult<FaultConfig> {
        let seed = r.u64()?;
        let mut rates = [[0.0f64; 2]; 4];
        for pair in &mut rates {
            pair[0] = r.f64()?;
            pair[1] = r.f64()?;
        }
        let n = r.seq_len(10)?;
        let mut script = Vec::with_capacity(n);
        for _ in 0..n {
            let dir = Dir::decode(r)?;
            let nth = r.u64()?;
            let kind = FaultKind::decode(r)?;
            script.push(ScriptedFault { dir, nth, kind });
        }
        let n = r.seq_len(9)?;
        let mut partition = Vec::with_capacity(n);
        for _ in 0..n {
            partition.push(PartitionFault::decode(r)?);
        }
        Ok(FaultConfig {
            seed,
            drop: rates[0],
            corrupt: rates[1],
            duplicate: rates[2],
            reorder: rates[3],
            script,
            partition,
        })
    }
}

impl Message {
    fn encode(&self, w: &mut ByteWriter) {
        w.usize(self.channel);
        w.u64(self.words.len() as u64);
        for word in &self.words {
            w.u32(*word);
        }
    }

    fn decode(r: &mut ByteReader<'_>) -> CodecResult<Message> {
        let channel = r.usize()?;
        let n = r.seq_len(4)?;
        let mut words = Vec::with_capacity(n);
        for _ in 0..n {
            words.push(r.u32()?);
        }
        Ok(Message { channel, words })
    }
}

impl Direction {
    fn encode(&self, w: &mut ByteWriter) {
        w.u64(self.busy_until);
        w.u64(self.in_flight.len() as u64);
        for (at, msg) in &self.in_flight {
            w.u64(*at);
            msg.encode(w);
        }
        w.u64(self.words_sent);
        w.u64(self.messages_sent);
        w.u64(self.frames_seen);
        w.u64(self.rng.state);
        w.u64(self.dropped);
        w.u64(self.corrupted);
        w.u64(self.duplicated);
        w.u64(self.reordered);
    }

    fn decode(r: &mut ByteReader<'_>) -> CodecResult<Direction> {
        let busy_until = r.u64()?;
        let n = r.seq_len(24)?;
        let mut in_flight = VecDeque::with_capacity(n);
        for _ in 0..n {
            let at = r.u64()?;
            in_flight.push_back((at, Message::decode(r)?));
        }
        Ok(Direction {
            busy_until,
            in_flight,
            words_sent: r.u64()?,
            messages_sent: r.u64()?,
            frames_seen: r.u64()?,
            rng: FaultRng { state: r.u64()? },
            dropped: r.u64()?,
            corrupted: r.u64()?,
            duplicated: r.u64()?,
            reordered: r.u64()?,
        })
    }
}

impl LinkSnapshot {
    /// Appends this snapshot's stable binary encoding — both directions'
    /// serializer clocks, in-flight frames, statistics, and fault-PRNG
    /// states, so a decoded snapshot replays the exact same fault
    /// schedule the capturing link would have.
    pub fn encode(&self, w: &mut ByteWriter) {
        self.dirs[0].encode(w);
        self.dirs[1].encode(w);
    }

    /// Decodes a snapshot written by [`LinkSnapshot::encode`].
    pub fn decode(r: &mut ByteReader<'_>) -> CodecResult<LinkSnapshot> {
        Ok(LinkSnapshot {
            dirs: [Direction::decode(r)?, Direction::decode(r)?],
        })
    }
}

/// The modeled physical link.
#[derive(Debug)]
pub struct Link {
    cfg: LinkConfig,
    faults: FaultConfig,
    faults_active: bool,
    dirs: [Direction; 2],
}

impl Link {
    /// Creates a perfect link with the given parameters.
    pub fn new(cfg: LinkConfig) -> Link {
        Link::with_faults(cfg, FaultConfig::none())
    }

    /// Creates a link with deterministic fault injection.
    pub fn with_faults(cfg: LinkConfig, faults: FaultConfig) -> Link {
        let dirs = [
            Direction::new(faults.seed, 1),
            Direction::new(faults.seed, 2),
        ];
        let faults_active = faults.is_active();
        Link {
            cfg,
            faults,
            faults_active,
            dirs,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &LinkConfig {
        &self.cfg
    }

    /// The fault model.
    pub fn fault_config(&self) -> &FaultConfig {
        &self.faults
    }

    /// True if this link can ever drop, corrupt, duplicate, or reorder a
    /// frame. The transactor keys its protocol choice off this.
    pub fn faults_active(&self) -> bool {
        self.faults_active
    }

    /// Enqueues a message at time `now`, returning its delivery time.
    /// Serialization occupies the direction's bandwidth back-to-back
    /// (burst behaviour: a long message is one DMA burst). Under fault
    /// injection the frame may additionally be dropped, corrupted,
    /// duplicated, or delayed — deterministically for a given seed and
    /// send sequence.
    pub fn send(&mut self, dir: Dir, msg: Message, now: u64) -> u64 {
        let Link {
            cfg,
            faults,
            faults_active,
            dirs,
        } = self;
        let one_way = cfg.one_way_latency;
        let words_per_cycle = cfg.words_per_cycle;
        let d = &mut dirs[dir.idx()];
        let words = msg.words.len() as u64;
        let start = d.busy_until.max(now);
        let ser = words.div_ceil(words_per_cycle).max(1);
        d.busy_until = start + ser;
        let deliver_at = d.busy_until + one_way;
        d.words_sent += words;
        d.messages_sent += 1;
        let frame_idx = d.frames_seen;
        d.frames_seen += 1;

        if !*faults_active {
            d.in_flight.push_back((deliver_at, msg));
            return deliver_at;
        }

        // Independent random draws first, then scripted overrides. The
        // draws happen unconditionally (even when a script already
        // decided the same kind) so editing the script never shifts the
        // random schedule downstream of it.
        let di = dir.idx();
        let mut drop = d.rng.chance(faults.drop[di]);
        let mut corrupt = d.rng.chance(faults.corrupt[di]);
        let mut duplicate = d.rng.chance(faults.duplicate[di]);
        let mut reorder = d.rng.chance(faults.reorder[di]);
        for s in &faults.script {
            if s.dir == dir && s.nth == frame_idx {
                match s.kind {
                    FaultKind::Drop => drop = true,
                    FaultKind::Corrupt => corrupt = true,
                    FaultKind::Duplicate => duplicate = true,
                    FaultKind::Reorder => reorder = true,
                }
            }
        }

        if drop {
            d.dropped += 1;
            return deliver_at;
        }
        let mut msg = msg;
        if corrupt && !msg.words.is_empty() {
            // Flip 1–3 bits inside one word: a burst error of at most 32
            // bits, which CRC32 detects with certainty.
            let w = d.rng.below(msg.words.len() as u64) as usize;
            let flips = 1 + d.rng.below(3);
            for _ in 0..flips {
                msg.words[w] ^= 1 << d.rng.below(32);
            }
            d.corrupted += 1;
        }
        let mut at = deliver_at;
        if reorder {
            // Delay far enough that back-to-back successors overtake it.
            at += 1 + d.rng.below(2 * one_way + 1);
            d.reordered += 1;
        }
        let dup_at = if duplicate {
            d.duplicated += 1;
            Some(at + 1 + d.rng.below(one_way + 1))
        } else {
            None
        };
        d.insert_sorted(at, msg.clone());
        if let Some(t) = dup_at {
            d.insert_sorted(t, msg);
        }
        deliver_at
    }

    /// Pops every message whose delivery time is `<= now` in the given
    /// direction, in delivery order.
    pub fn deliveries(&mut self, dir: Dir, now: u64) -> Vec<Message> {
        let d = &mut self.dirs[dir.idx()];
        let mut out = Vec::new();
        while let Some((t, msg)) = d.in_flight.pop_front() {
            if t <= now {
                out.push(msg);
            } else {
                d.in_flight.push_front((t, msg));
                break;
            }
        }
        out
    }

    /// Number of messages still in flight in a direction.
    pub fn in_flight(&self, dir: Dir) -> usize {
        self.dirs[dir.idx()].in_flight.len()
    }

    /// The messages currently in flight in a direction, in delivery
    /// order. The software-failover path uses this to recover in-transit
    /// values from a fault-free (unframed) link.
    pub fn in_flight_messages(&self, dir: Dir) -> impl Iterator<Item = &Message> {
        self.dirs[dir.idx()].in_flight.iter().map(|(_, m)| m)
    }

    /// Captures the link's complete mutable state for a later
    /// [`Link::restore`].
    pub fn snapshot(&self) -> LinkSnapshot {
        LinkSnapshot {
            dirs: self.dirs.clone(),
        }
    }

    /// Rewinds the link to a previously captured snapshot: in-flight
    /// frames, serializer occupancy, statistics, and the fault PRNG
    /// streams all return to the capture instant.
    pub fn restore(&mut self, snap: &LinkSnapshot) {
        self.dirs.clone_from(&snap.dirs);
    }

    /// Discards every frame currently on the wire in both directions, as
    /// a partition reset does (the DMA session is severed). Serializer
    /// timing, statistics, and the fault PRNG streams are untouched.
    pub fn clear_in_flight(&mut self) {
        for d in &mut self.dirs {
            d.in_flight.clear();
        }
    }

    /// Traffic totals.
    pub fn stats(&self) -> LinkStats {
        LinkStats {
            words_to_hw: self.dirs[0].words_sent,
            words_to_sw: self.dirs[1].words_sent,
            msgs_to_hw: self.dirs[0].messages_sent,
            msgs_to_sw: self.dirs[1].messages_sent,
            dropped_to_hw: self.dirs[0].dropped,
            dropped_to_sw: self.dirs[1].dropped,
            corrupted_to_hw: self.dirs[0].corrupted,
            corrupted_to_sw: self.dirs[1].corrupted,
            duplicated_to_hw: self.dirs[0].duplicated,
            duplicated_to_sw: self.dirs[1].duplicated,
            reordered_to_hw: self.dirs[0].reordered,
            reordered_to_sw: self.dirs[1].reordered,
        }
    }

    /// CPU-cycle cost for the software side to marshal (or demarshal) a
    /// message of `words` words.
    pub fn sw_transfer_cost(&self, words: usize) -> u64 {
        self.cfg.sw_msg_overhead + self.cfg.sw_word_cost * words as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(ch: usize, n: usize) -> Message {
        Message {
            channel: ch,
            words: vec![0xaa; n],
        }
    }

    #[test]
    fn latency_is_config_plus_serialization() {
        let mut l = Link::new(LinkConfig::default());
        let t = l.send(Dir::SwToHw, msg(0, 1), 0);
        assert_eq!(t, 51, "1 cycle serialization + 50 latency");
        assert!(l.deliveries(Dir::SwToHw, 50).is_empty());
        assert_eq!(l.deliveries(Dir::SwToHw, 51).len(), 1);
        assert_eq!(l.in_flight(Dir::SwToHw), 0);
    }

    #[test]
    fn round_trip_is_about_100_cycles() {
        // The §7 headline: ping at t=0, echo immediately, response arrives
        // ~2 * (latency + serialization) ≈ 102 cycles later.
        let mut l = Link::new(LinkConfig::default());
        let t1 = l.send(Dir::SwToHw, msg(0, 1), 0);
        let t2 = l.send(Dir::HwToSw, msg(0, 1), t1);
        assert_eq!(t2, 102);
    }

    #[test]
    fn bandwidth_serializes_bursts() {
        let mut l = Link::new(LinkConfig::default());
        // A 128-word frame occupies the link 128 cycles.
        let t = l.send(Dir::SwToHw, msg(0, 128), 0);
        assert_eq!(t, 178);
        // The next message queues behind it.
        let t2 = l.send(Dir::SwToHw, msg(0, 128), 0);
        assert_eq!(t2, 306);
        // The opposite direction is independent (full duplex).
        let t3 = l.send(Dir::HwToSw, msg(0, 1), 0);
        assert_eq!(t3, 51);
    }

    #[test]
    fn deliveries_preserve_order() {
        let mut l = Link::new(LinkConfig::default());
        l.send(Dir::SwToHw, msg(1, 1), 0);
        l.send(Dir::SwToHw, msg(2, 1), 0);
        let d = l.deliveries(Dir::SwToHw, 1000);
        assert_eq!(d.len(), 2);
        assert_eq!(d[0].channel, 1);
        assert_eq!(d[1].channel, 2);
    }

    #[test]
    fn stats_accumulate() {
        let mut l = Link::new(LinkConfig::default());
        l.send(Dir::SwToHw, msg(0, 10), 0);
        l.send(Dir::HwToSw, msg(0, 3), 0);
        let s = l.stats();
        assert_eq!(s.words_to_hw, 10);
        assert_eq!(s.words_to_sw, 3);
        assert_eq!(s.msgs_to_hw, 1);
        assert_eq!(s.msgs_to_sw, 1);
    }

    #[test]
    fn sw_cost_scales_with_words() {
        let l = Link::new(LinkConfig::default());
        assert_eq!(l.sw_transfer_cost(0), 64);
        assert_eq!(l.sw_transfer_cost(10), 64 + 80);
    }

    #[test]
    fn scripted_drop_discards_exactly_the_nth_frame() {
        let faults = FaultConfig::none().with_scripted(Dir::SwToHw, 1, FaultKind::Drop);
        let mut l = Link::with_faults(LinkConfig::default(), faults);
        for ch in 0..3 {
            l.send(Dir::SwToHw, msg(ch, 1), 0);
        }
        let d = l.deliveries(Dir::SwToHw, 10_000);
        let chans: Vec<usize> = d.iter().map(|m| m.channel).collect();
        assert_eq!(chans, vec![0, 2], "frame #1 dropped, others intact");
        assert_eq!(l.stats().dropped_to_hw, 1);
        // Stats still count the dropped frame as sent: it occupied the wire.
        assert_eq!(l.stats().msgs_to_hw, 3);
    }

    #[test]
    fn scripted_corrupt_flips_bits_and_counts() {
        let faults = FaultConfig::none().with_scripted(Dir::HwToSw, 0, FaultKind::Corrupt);
        let mut l = Link::with_faults(LinkConfig::default(), faults);
        l.send(Dir::HwToSw, msg(0, 4), 0);
        let d = l.deliveries(Dir::HwToSw, 10_000);
        assert_eq!(d.len(), 1);
        assert_ne!(d[0].words, vec![0xaa; 4], "payload must differ");
        assert_eq!(l.stats().corrupted_to_sw, 1);
    }

    #[test]
    fn scripted_duplicate_delivers_twice() {
        let faults = FaultConfig::none().with_scripted(Dir::SwToHw, 0, FaultKind::Duplicate);
        let mut l = Link::with_faults(LinkConfig::default(), faults);
        l.send(Dir::SwToHw, msg(7, 2), 0);
        let d = l.deliveries(Dir::SwToHw, 10_000);
        assert_eq!(d.len(), 2);
        assert_eq!(d[0], d[1]);
        assert_eq!(l.stats().duplicated_to_hw, 1);
    }

    #[test]
    fn scripted_reorder_lets_successor_overtake() {
        let faults = FaultConfig::none().with_scripted(Dir::SwToHw, 0, FaultKind::Reorder);
        let mut l = Link::with_faults(LinkConfig::default(), faults);
        l.send(Dir::SwToHw, msg(1, 1), 0);
        l.send(Dir::SwToHw, msg(2, 1), 0);
        let d = l.deliveries(Dir::SwToHw, 10_000);
        assert_eq!(d.len(), 2);
        assert_eq!(d[0].channel, 2, "delayed frame overtaken");
        assert_eq!(d[1].channel, 1);
        assert_eq!(l.stats().reordered_to_hw, 1);
    }

    #[test]
    fn same_seed_reproduces_the_same_schedule() {
        let run = || {
            let mut l = Link::with_faults(
                LinkConfig::default(),
                FaultConfig::uniform(42, 0.3, 0.2, 0.1, 0.1),
            );
            for i in 0..200 {
                l.send(Dir::SwToHw, msg(i % 4, 1 + i % 3), i as u64);
            }
            let delivered = l.deliveries(Dir::SwToHw, 1_000_000);
            (l.stats(), delivered)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn inactive_faults_cost_nothing() {
        // FaultConfig::none() must leave the model bit-for-bit identical
        // to the seed behaviour, including delivery times.
        let mut a = Link::new(LinkConfig::default());
        let mut b = Link::with_faults(LinkConfig::default(), FaultConfig::none());
        for i in 0..50 {
            assert_eq!(
                a.send(Dir::SwToHw, msg(0, 1 + i % 5), i as u64),
                b.send(Dir::SwToHw, msg(0, 1 + i % 5), i as u64)
            );
        }
        assert_eq!(a.stats(), b.stats());
        assert!(!b.faults_active());
    }

    #[test]
    fn snapshot_restore_replays_faults_and_deliveries() {
        let faults = FaultConfig::uniform(7, 0.3, 0.2, 0.1, 0.1);
        let mut l = Link::with_faults(LinkConfig::default(), faults);
        for i in 0..50 {
            l.send(Dir::SwToHw, msg(i % 3, 1), i as u64);
        }
        let snap = l.snapshot();
        let run = |l: &mut Link| {
            for i in 50..100 {
                l.send(Dir::SwToHw, msg(i % 3, 1), i as u64);
            }
            (l.deliveries(Dir::SwToHw, 1_000_000), l.stats())
        };
        let first = run(&mut l);
        l.restore(&snap);
        let second = run(&mut l);
        assert_eq!(first, second, "PRNG and wire state must rewind exactly");
    }

    #[test]
    fn partition_faults_do_not_disable_fast_path() {
        let f = FaultConfig::none().with_partition_fault(PartitionFault::ResetAt(100));
        assert!(f.has_partition_faults());
        assert!(!f.is_active(), "link-level faults stay off");
        assert_eq!(PartitionFault::ResetAt(100).cycle(), 100);
        assert!(!PartitionFault::ResetAt(100).is_fatal());
        assert!(PartitionFault::DieAt(5).is_fatal());
        let l = Link::with_faults(LinkConfig::default(), f);
        assert!(!l.faults_active());
    }

    #[test]
    fn clear_in_flight_drops_the_wire_only() {
        let mut l = Link::new(LinkConfig::default());
        l.send(Dir::SwToHw, msg(0, 1), 0);
        l.send(Dir::HwToSw, msg(1, 1), 0);
        assert_eq!(l.in_flight(Dir::SwToHw), 1);
        l.clear_in_flight();
        assert_eq!(l.in_flight(Dir::SwToHw), 0);
        assert_eq!(l.in_flight(Dir::HwToSw), 0);
        let s = l.stats();
        assert_eq!(s.msgs_to_hw, 1, "statistics survive the wipe");
        assert_eq!(s.msgs_to_sw, 1);
    }

    #[test]
    fn sustained_streaming_hits_full_bandwidth() {
        // 400 MB/s at 100 MHz = 1 word/cycle: sending 1000 single-word
        // messages back-to-back occupies exactly 1000 cycles of link time.
        let mut l = Link::new(LinkConfig::default());
        let mut last = 0;
        for _ in 0..1000 {
            last = l.send(Dir::SwToHw, msg(0, 1), 0);
        }
        assert_eq!(last, 1000 + 50);
    }
}
