//! Criterion bench for the §7 platform microbenchmarks: synchronizer
//! round trip and sustained streaming over the modeled LocalLink.

use bcl_bench::{measure_round_trip, measure_stream_bandwidth};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_link(c: &mut Criterion) {
    let mut g = c.benchmark_group("platform_link");
    g.sample_size(10);
    g.bench_function("round_trip", |b| b.iter(|| black_box(measure_round_trip())));
    g.bench_function("stream_1k_words", |b| {
        b.iter(|| black_box(measure_stream_bandwidth(1000)))
    });
    g.finish();
}

criterion_group!(benches, bench_link);
criterion_main!(benches);
