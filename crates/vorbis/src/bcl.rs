//! The Vorbis back-end as a BCL program (§4.1 / §4.5 of the paper).
//!
//! The same generic kernels of [`crate::kernel`] are instantiated with
//! [`ExprArith`], whose "values" are kernel-BCL expressions: elaborating
//! the resulting program yields a design whose software/hardware
//! executions are bit-identical to the native baseline by construction.
//!
//! The module structure mirrors the paper's `mkPartitionedVorbisBackEnd`:
//! an `IFFTPipe` submodule (three stage rules — `mkIFFTPipe`), a `Window`
//! submodule, pre/post rules (the "IMDCT FSMs"), and feed/drain rules (the
//! "Backend FSMs"), connected by domain-polymorphic channels. Assigning
//! domains to the three functional blocks chooses the partition: channels
//! whose two ends land in the same domain elaborate to plain FIFOs, the
//! others to synchronizers (§4.2 "Domain Polymorphism").

use crate::kernel::{
    ifft_layer, imdct_post, imdct_pre, window_apply, Arith, Cplx, FRAC, K, N, STAGES,
};
use bcl_core::builder::{dsl::*, ModuleBuilder};
use bcl_core::design::Design;
use bcl_core::domain::SW;
use bcl_core::program::Program;
use bcl_core::types::Type;
use bcl_core::value::Value;
use bcl_core::{ElabError, Expr};

/// Expression-building arithmetic: values are BCL expressions.
#[derive(Debug, Default, Clone)]
pub struct ExprArith;

impl Arith for ExprArith {
    type V = Expr;
    fn add(&mut self, a: &Expr, b: &Expr) -> Expr {
        add(a.clone(), b.clone())
    }
    fn sub(&mut self, a: &Expr, b: &Expr) -> Expr {
        sub_e(a.clone(), b.clone())
    }
    fn mulc(&mut self, a: &Expr, c: f64) -> Expr {
        fixmul(a.clone(), cfix(c, FRAC), FRAC)
    }
}

/// Domain assignment for the three functional blocks. Every partition of
/// Figure 12 is one choice of these three names (the Backend FSMs —
/// feed/drain — always live in software, and "the output from the
/// windowing function is always in SW").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VorbisDomains {
    /// Domain of the IMDCT pre/post rules and the parameter tables.
    pub imdct: String,
    /// Domain of the IFFT core.
    pub ifft: String,
    /// Domain of the windowing function.
    pub window: String,
}

impl VorbisDomains {
    /// Everything in software.
    pub fn all_sw() -> Self {
        VorbisDomains {
            imdct: SW.into(),
            ifft: SW.into(),
            window: SW.into(),
        }
    }
}

/// The element type of a spectral frame: `Vector#(K, Int#(32))`.
pub fn frame_ty() -> Type {
    Type::vector(K, Type::fixpt())
}

/// The IFFT working type: `Vector#(N, Complex#(Int#(32)))`.
pub fn cvec_ty() -> Type {
    Type::vector(N, Type::complex(Type::fixpt()))
}

/// Post-IMDCT real vector: `Vector#(N, Int#(32))`.
pub fn rvec_ty() -> Type {
    Type::vector(N, Type::fixpt())
}

/// PCM output frame: `Vector#(K, Int#(32))`.
pub fn pcm_ty() -> Type {
    Type::vector(K, Type::fixpt())
}

/// Vector-of-reals view of a variable.
fn rvec_of_var(name: &str, len: usize) -> Vec<Expr> {
    (0..len)
        .map(|i| index(var(name), cint(32, i as i64)))
        .collect()
}

/// Vector-of-complex view of a variable.
fn cvec_of_var(name: &str) -> Vec<Cplx<Expr>> {
    (0..N)
        .map(|i| {
            let e = index(var(name), cint(32, i as i64));
            Cplx::new(field(e.clone(), "re"), field(e, "im"))
        })
        .collect()
}

/// Packs complex expression pairs into a vector literal.
fn cvec_expr(xs: Vec<Cplx<Expr>>) -> Expr {
    mkvec(xs.into_iter().map(|c| cplx(c.re, c.im)).collect())
}

/// Packs real expressions into a vector literal.
fn rvec_expr(xs: Vec<Expr>) -> Expr {
    mkvec(xs)
}

/// The IMDCT pre-twiddle as an expression over frame variable `x`.
pub fn pre_expr() -> Expr {
    let mut a = ExprArith;
    let frame = rvec_of_var("x", K);
    cvec_expr(imdct_pre(&mut a, &frame))
}

/// One IFFT pipeline stage (two radix-2 layers) over vector variable `x`.
/// The intermediate layer is let-bound so hardware shares the butterfly
/// network and software evaluates each butterfly once.
pub fn ifft_stage_expr(stage: usize) -> Expr {
    let mut a = ExprArith;
    let l1 = ifft_layer(&mut a, &cvec_of_var("x"), 2 * stage);
    let l2 = ifft_layer(&mut a, &cvec_of_var("stage_t"), 2 * stage + 1);
    let_e("stage_t", cvec_expr(l1), cvec_expr(l2))
}

/// The IMDCT post-twiddle + bit-reversal over vector variable `x`.
pub fn post_expr() -> Expr {
    let mut a = ExprArith;
    rvec_expr(imdct_post(&mut a, &cvec_of_var("x")))
}

/// The windowing computation: produces the PCM vector from frame variable
/// `x` and the `tail` register.
pub fn pcm_expr() -> Expr {
    let mut a = ExprArith;
    let tail = rvec_of_var("win_tail", K);
    let cur = rvec_of_var("x", N);
    let (pcm, _) = window_apply(&mut a, &tail, &cur);
    let_e("win_tail", read("tail"), rvec_expr(pcm))
}

/// The new window tail (second half of the current frame).
pub fn tail_expr() -> Expr {
    let cur = rvec_of_var("x", N);
    rvec_expr(cur[K..].to_vec())
}

/// The pipelined IFFT module (`mkIFFTPipe`, §4.5): one rule per stage,
/// FIFOs between stages, `input`/`output`/`deq` interface methods.
pub fn mk_ifft_pipe() -> bcl_core::ModuleDef {
    let mut m = ModuleBuilder::new("IFFTPipe");
    for i in 0..=STAGES {
        m.fifo(format!("buff{i}"), 2, cvec_ty());
    }
    for s in 0..STAGES {
        let from = format!("buff{s}");
        let to = format!("buff{}", s + 1);
        m.rule(
            format!("stage{}", s + 1),
            let_a(
                "x",
                first(&from),
                par(vec![enq(&to, ifft_stage_expr(s)), deq(&from)]),
            ),
        );
    }
    m.act_method("input", &["x"], enq("buff0", var("x")));
    m.val_method("output", &[], first(&format!("buff{STAGES}")));
    m.act_method("deq", &[], deq(&format!("buff{STAGES}")));
    m.build()
}

/// The combinational IFFT module (`mkIFFTComb`, §4.5): all stages in one
/// rule. In hardware this is one gigantic single-cycle block (the paper's
/// "extremely long combinational path"); in software it is the same work
/// as the pipelined version without intermediate FIFO traffic.
pub fn mk_ifft_comb() -> bcl_core::ModuleDef {
    let mut m = ModuleBuilder::new("IFFTComb");
    m.fifo("inQ", 2, cvec_ty());
    m.fifo("outQ", 2, cvec_ty());
    let mut body = var("x");
    // Chain the stages through let bindings: x -> s1 -> s2 -> s3.
    for s in 0..STAGES {
        body = let_e("x", body, ifft_stage_expr(s));
    }
    m.rule(
        "doIFFT",
        let_a("x", first("inQ"), par(vec![enq("outQ", body), deq("inQ")])),
    );
    m.act_method("input", &["x"], enq("inQ", var("x")));
    m.val_method("output", &[], first("outQ"));
    m.act_method("deq", &[], deq("outQ"));
    m.build()
}

/// The windowing module (`mkWindow`): holds the overlap tail register.
pub fn mk_window() -> bcl_core::ModuleDef {
    let mut m = ModuleBuilder::new("Window");
    m.fifo("inQ", 2, rvec_ty());
    m.fifo("outQ", 2, pcm_ty());
    m.reg("tail", Value::zero(&pcm_ty()));
    m.rule(
        "doWindow",
        let_a(
            "x",
            first("inQ"),
            par(vec![
                enq("outQ", pcm_expr()),
                write("tail", tail_expr()),
                deq("inQ"),
            ]),
        ),
    );
    m.act_method("input", &["x"], enq("inQ", var("x")));
    m.val_method("output", &[], first("outQ"));
    m.act_method("deq", &[], deq("outQ"));
    m.build()
}

/// Options for constructing the back-end.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BackendOptions {
    /// Domain placement (the partition).
    pub domains: VorbisDomains,
    /// Use the pipelined IFFT (`mkIFFTPipe`) instead of the combinational
    /// one (`mkIFFTComb`).
    pub pipelined_ifft: bool,
    /// Channel/synchronizer depth.
    pub channel_depth: usize,
}

impl Default for BackendOptions {
    fn default() -> Self {
        BackendOptions {
            domains: VorbisDomains::all_sw(),
            pipelined_ifft: true,
            channel_depth: 2,
        }
    }
}

/// Builds the complete partitioned back-end program
/// (`mkPartitionedVorbisBackEnd` of §4.2).
pub fn build_backend(opts: &BackendOptions) -> Program {
    let d = &opts.domains;
    let dep = opts.channel_depth;
    let ifft_def = if opts.pipelined_ifft {
        "IFFTPipe"
    } else {
        "IFFTComb"
    };

    let mut m = ModuleBuilder::new("VorbisBackEnd");
    m.source("src", frame_ty(), SW);
    m.sink("audioDev", pcm_ty(), SW);
    m.channel("chIn", dep, frame_ty(), SW, &d.imdct);
    m.channel("chPre", dep, cvec_ty(), &d.imdct, &d.ifft);
    m.channel("chIfft", dep, cvec_ty(), &d.ifft, &d.imdct);
    m.channel("chPost", dep, rvec_ty(), &d.imdct, &d.window);
    m.channel("chOut", dep, pcm_ty(), &d.window, SW);
    m.submodule("ifft", ifft_def, vec![]);
    m.submodule("window", "Window", vec![]);

    // Backend FSMs (always software).
    m.rule("feed", with_first("x", "src", enq("chIn", var("x"))));
    m.rule("drain", with_first("x", "chOut", enq("audioDev", var("x"))));
    // IMDCT FSMs.
    m.rule(
        "preTwiddle",
        with_first("x", "chIn", enq("chPre", pre_expr())),
    );
    m.rule(
        "postTwiddle",
        with_first("x", "chIfft", enq("chPost", post_expr())),
    );
    // IFFT feed/drain (§4.2's feedIFFT / drainIFFT rules).
    m.rule(
        "feedIFFT",
        with_first("x", "chPre", call_act("ifft", "input", vec![var("x")])),
    );
    m.rule(
        "drainIFFT",
        let_a(
            "x",
            call_val("ifft", "output", vec![]),
            par(vec![
                enq("chIfft", var("x")),
                call_act("ifft", "deq", vec![]),
            ]),
        ),
    );
    // Window transfer rules (the paper's xfer / output rules).
    m.rule(
        "xfer",
        with_first("x", "chPost", call_act("window", "input", vec![var("x")])),
    );
    m.rule(
        "output",
        let_a(
            "x",
            call_val("window", "output", vec![]),
            par(vec![
                enq("chOut", var("x")),
                call_act("window", "deq", vec![]),
            ]),
        ),
    );

    let mut p = Program::with_root(m.build());
    p.add_module(mk_ifft_pipe());
    p.add_module(mk_ifft_comb());
    p.add_module(mk_window());
    p
}

/// Convenience: builds and elaborates in one step.
///
/// # Errors
///
/// Propagates elaboration errors (which indicate a bug in the builders).
pub fn build_design(opts: &BackendOptions) -> Result<Design, ElabError> {
    bcl_core::elaborate(&build_backend(opts))
}

/// Converts a fixed-point frame into the BCL frame value.
pub fn frame_value(frame: &[i64]) -> Value {
    Value::Vec(frame.iter().map(|&v| Value::int(32, v)).collect())
}

/// Extracts PCM samples from a sink's consumed vector values.
pub fn pcm_of_values(values: &[Value]) -> Vec<i64> {
    values
        .iter()
        .flat_map(|v| match v {
            Value::Vec(vs) => vs
                .iter()
                .map(|x| x.as_int().expect("pcm ints"))
                .collect::<Vec<_>>(),
            other => panic!("pcm sink holds non-vector {other}"),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frames::frame_stream;
    use crate::native::NativeBackend;
    use bcl_core::sched::{Strategy, SwOptions, SwRunner};

    fn run_sw(opts: &BackendOptions, frames: &[Vec<i64>]) -> Vec<i64> {
        let design = build_design(opts).expect("elaborates");
        let mut store = bcl_core::Store::new(&design);
        let src = design.prim_id("src").unwrap();
        for f in frames {
            store.push_source(src, frame_value(f));
        }
        let mut r = SwRunner::with_store(
            &design,
            store,
            SwOptions {
                strategy: Strategy::Dataflow,
                ..Default::default()
            },
        );
        r.run_until_quiescent(1_000_000).unwrap();
        let snk = design.prim_id("audioDev").unwrap();
        pcm_of_values(r.store.sink_values(snk))
    }

    #[test]
    fn bcl_backend_matches_native_bit_exactly() {
        let frames = frame_stream(3, 11);
        let expected = NativeBackend::new().run(&frames);
        let got = run_sw(&BackendOptions::default(), &frames);
        assert_eq!(
            got, expected,
            "generated design must agree with hand-written code"
        );
    }

    #[test]
    fn comb_and_pipe_ifft_agree() {
        let frames = frame_stream(2, 5);
        let pipe = run_sw(&BackendOptions::default(), &frames);
        let comb = run_sw(
            &BackendOptions {
                pipelined_ifft: false,
                ..Default::default()
            },
            &frames,
        );
        assert_eq!(pipe, comb);
    }

    #[test]
    fn design_shape() {
        let d = build_design(&BackendOptions::default()).unwrap();
        // 4 IFFT buffers + 2 window FIFOs + tail reg + src + sink + 5 channels.
        assert_eq!(d.prims.len(), 14);
        // 8 root rules + 3 stage rules + 1 window rule.
        assert_eq!(d.rules.len(), 12);
        assert!(d.prim_id("ifft.buff0").is_some());
        assert!(d.prim_id("window.tail").is_some());
    }

    #[test]
    fn all_sw_design_has_no_syncs() {
        let d = build_design(&BackendOptions::default()).unwrap();
        assert!(d.syncs().is_empty());
        let hw = VorbisDomains {
            imdct: "HW".into(),
            ifft: "HW".into(),
            window: "HW".into(),
        };
        let d2 = build_design(&BackendOptions {
            domains: hw,
            ..Default::default()
        })
        .unwrap();
        assert_eq!(d2.syncs().len(), 2, "chIn and chOut become synchronizers");
    }
}
