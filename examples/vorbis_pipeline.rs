//! The paper's running example end to end: decode a synthetic Vorbis
//! stream with the back-end split across hardware and software, and
//! verify the PCM against the hand-written decoder.
//!
//! ```sh
//! cargo run --release --example vorbis_pipeline [A|B|C|D|E|F] [frames]
//! ```

use bcl_vorbis::frames::frame_stream;
use bcl_vorbis::kernel::{from_fix, K};
use bcl_vorbis::native::NativeBackend;
use bcl_vorbis::partitions::{run_partition, VorbisPartition};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let which = match args.first().map(|s| s.as_str()) {
        Some("A") => VorbisPartition::A,
        Some("B") => VorbisPartition::B,
        Some("C") => VorbisPartition::C,
        Some("D") => VorbisPartition::D,
        Some("F") => VorbisPartition::F,
        _ => VorbisPartition::E,
    };
    let n: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(16);

    println!(
        "decoding {n} frames under partition {} ({})\n",
        which.label(),
        which.description()
    );
    let frames = frame_stream(n, 2012);
    let run = run_partition(which, &frames)?;

    println!(
        "  execution time : {} FPGA cycles ({:.0} per frame)",
        run.fpga_cycles,
        run.cycles_per_frame()
    );
    println!("  software work  : {} CPU cycles", run.sw_cpu_cycles);
    println!(
        "  bus traffic    : {} words to HW, {} words to SW",
        run.link.words_to_hw, run.link.words_to_sw
    );

    // Golden check against the hand-written decoder (F2).
    let golden = NativeBackend::new().run(&frames);
    assert_eq!(run.pcm, golden, "partitioned decode must be bit-exact");
    println!("  golden check   : PCM bit-exact with the hand-written decoder\n");

    // A tiny oscilloscope: the first frame of PCM as an ASCII waveform.
    println!("first PCM frame:");
    for (i, &s) in run.pcm.iter().take(K).enumerate() {
        let x = from_fix(s);
        let col = ((x + 1.0) * 24.0).clamp(0.0, 48.0) as usize;
        println!(
            "  {i:2} {}{}",
            " ".repeat(col),
            if x >= 0.0 { '+' } else { '-' }
        );
    }
    Ok(())
}
