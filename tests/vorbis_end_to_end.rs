//! Cross-crate integration: the Vorbis back-end through every layer of
//! the system — builder, elaboration, domain inference, partitioning,
//! co-simulation — against the native and event-driven baselines.

use bcl_vorbis::bcl::{build_design, BackendOptions};
use bcl_vorbis::frames::frame_stream;
use bcl_vorbis::native::NativeBackend;
use bcl_vorbis::partitions::{run_partition, VorbisPartition};
use bcl_vorbis::sysc::run_systemc_baseline;

#[test]
fn all_eight_implementations_agree() {
    // Six partitions + hand-written native + SystemC-style, all decoding
    // the same stream to the same bits — the paper's interoperability
    // claim made executable.
    let frames = frame_stream(5, 71);
    let golden = NativeBackend::new().run(&frames);
    for p in VorbisPartition::ALL {
        let run = run_partition(p, &frames).unwrap_or_else(|e| panic!("{p:?}: {e}"));
        assert_eq!(run.pcm, golden, "partition {}", p.label());
    }
    let sysc = run_systemc_baseline(&frames, Default::default());
    assert_eq!(sysc.pcm, golden, "SystemC-style baseline");
}

#[test]
fn partition_cost_shape_matches_figure_13() {
    let frames = frame_stream(15, 2012);
    let t = |p| run_partition(p, &frames).unwrap().fpga_cycles;
    let a = t(VorbisPartition::A);
    let c = t(VorbisPartition::C);
    let d = t(VorbisPartition::D);
    let e = t(VorbisPartition::E);
    let f = t(VorbisPartition::F);
    // §7.1: "the slowest partition is not the one which computes
    // everything in SW (F). In fact, partitions A and C are both slightly
    // slower than F."
    assert!(a > f, "A={a} F={f}");
    assert!(c > f, "C={c} F={f}");
    // Full-hardware back-end wins; IMDCT+IFFT in hardware is second.
    assert!(e < d && d < f, "E={e} D={d} F={f}");
}

#[test]
fn baseline_relationship_matches_figure_13() {
    let frames = frame_stream(15, 2012);
    let f = run_partition(VorbisPartition::F, &frames).unwrap();
    let mut native = NativeBackend::new();
    native.run(&frames);
    let f2 = native.cpu_cycles() / 4;
    let f1 = run_systemc_baseline(&frames, Default::default()).cpu_cycles / 4;
    // "The SystemC implementation is roughly 3x slower"; "the manual C++
    // version is slightly faster than the generated one".
    let ratio = f1 as f64 / f2 as f64;
    assert!((2.0..4.5).contains(&ratio), "F1/F2 = {ratio:.2}");
    assert!(f2 < f.fpga_cycles, "hand-written must beat generated");
    assert!(
        f.fpga_cycles < f1,
        "generated ({}) must beat event-driven simulation ({f1})",
        f.fpga_cycles
    );
}

#[test]
fn hardware_partitions_pass_the_hw_legality_check() {
    use bcl_core::domain::{HW, SW};
    use bcl_core::partition::partition;
    use bcl_core::sched::hw_check;
    for p in VorbisPartition::ALL {
        let opts = BackendOptions {
            domains: p.domains(),
            ..Default::default()
        };
        let d = build_design(&opts).unwrap();
        let parts = partition(&d, SW).unwrap();
        if let Ok(hw) = parts.partition(HW) {
            hw_check(hw).unwrap_or_else(|e| panic!("{p:?}: {e}"));
        }
    }
}

#[test]
fn generated_code_emits_for_both_sides() {
    use bcl_core::domain::{HW, SW};
    use bcl_core::partition::partition;
    let opts = BackendOptions {
        domains: VorbisPartition::D.domains(),
        ..Default::default()
    };
    let d = build_design(&opts).unwrap();
    let parts = partition(&d, SW).unwrap();
    let bsv = bcl_backend::emit_bsv(parts.partition(HW).unwrap()).unwrap();
    assert!(bsv.contains("module mk"));
    assert!(bsv.contains("rule ifft_stage1"), "{bsv}");
    let cxx = bcl_backend::emit_cxx(parts.partition(SW).unwrap(), Default::default());
    assert!(cxx.contains("bool drain()"), "SW keeps the drain rule");
}

#[test]
fn determinism_across_runs() {
    let frames = frame_stream(6, 3);
    let r1 = run_partition(VorbisPartition::C, &frames).unwrap();
    let r2 = run_partition(VorbisPartition::C, &frames).unwrap();
    assert_eq!(r1.pcm, r2.pcm);
    assert_eq!(
        r1.fpga_cycles, r2.fpga_cycles,
        "the whole cosim is deterministic"
    );
    assert_eq!(r1.link, r2.link);
}
