//! Bounding volume hierarchy construction (the paper's "BVH Ctor").
//!
//! A median-split binary BVH with up to [`LEAF_SIZE`] triangles per leaf.
//! Construction is a one-time setup pass ("Once the geometry has been
//! loaded to memory, the module labeled BVH Ctor performs an initial
//! pass") and is shared verbatim by every partition — what the evaluation
//! varies is where *traversal* and *intersection* run, so the constructor
//! executes as host code that initializes the BVH memory of whichever
//! partition owns it.
//!
//! Leaves reference a contiguous range of the *reordered* triangle array
//! ([`Bvh::tris`]), which is what Scene Mem is initialized with.

use crate::geom::{Aabb, Tri};

/// Maximum triangles per leaf.
pub const LEAF_SIZE: usize = 4;

/// A flattened BVH node. Internal nodes have `count == 0`; leaves have
/// `left == right == -1` and reference `tris[first .. first + count]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Node {
    /// Bounds of the subtree.
    pub bb: Aabb,
    /// Left child index, or -1 for leaves.
    pub left: i64,
    /// Right child index, or -1 for leaves.
    pub right: i64,
    /// First triangle (in the reordered array) for leaves.
    pub first: i64,
    /// Number of triangles (0 for internal nodes).
    pub count: i64,
}

impl Node {
    /// True for leaf nodes.
    pub fn is_leaf(&self) -> bool {
        self.count > 0
    }
}

/// A built hierarchy plus the leaf-ordered triangle array.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bvh {
    /// Flattened nodes, root at index 0.
    pub nodes: Vec<Node>,
    /// Triangles reordered so each leaf's are contiguous.
    pub tris: Vec<Tri>,
    /// Maximum depth (bounds the traversal stack).
    pub depth: usize,
}

/// Builds a median-split BVH over the triangles.
///
/// # Panics
///
/// Panics on an empty scene.
pub fn build_bvh(tris: &[Tri]) -> Bvh {
    assert!(!tris.is_empty(), "cannot build a BVH over an empty scene");
    let boxes: Vec<Aabb> = tris.iter().map(Tri::bbox).collect();
    let mut order: Vec<usize> = (0..tris.len()).collect();
    let mut nodes = Vec::with_capacity(2 * tris.len());
    let mut max_depth = 0;
    build(
        &boxes,
        &mut order,
        0,
        tris.len(),
        &mut nodes,
        1,
        &mut max_depth,
    );
    let reordered = order.iter().map(|&i| tris[i]).collect();
    Bvh {
        nodes,
        tris: reordered,
        depth: max_depth,
    }
}

fn build(
    boxes: &[Aabb],
    order: &mut [usize],
    lo: usize,
    hi: usize,
    nodes: &mut Vec<Node>,
    depth: usize,
    max_depth: &mut usize,
) -> usize {
    *max_depth = (*max_depth).max(depth);
    let me = nodes.len();
    let mut bb = boxes[order[lo]];
    for &t in &order[lo + 1..hi] {
        bb = bb.union(boxes[t]);
    }
    if hi - lo <= LEAF_SIZE {
        nodes.push(Node {
            bb,
            left: -1,
            right: -1,
            first: lo as i64,
            count: (hi - lo) as i64,
        });
        return me;
    }
    nodes.push(Node {
        bb,
        left: -1,
        right: -1,
        first: -1,
        count: 0,
    });
    // Split on the longest centroid axis at the median.
    let ext = |f: fn(&Aabb) -> i64| {
        let vals: Vec<i64> = order[lo..hi].iter().map(|&t| f(&boxes[t])).collect();
        vals.iter().max().unwrap() - vals.iter().min().unwrap()
    };
    let ex = ext(|b| b.centroid().x);
    let ey = ext(|b| b.centroid().y);
    let ez = ext(|b| b.centroid().z);
    let key: fn(&Aabb) -> i64 = if ex >= ey && ex >= ez {
        |b| b.centroid().x
    } else if ey >= ez {
        |b| b.centroid().y
    } else {
        |b| b.centroid().z
    };
    order[lo..hi].sort_by_key(|&t| (key(&boxes[t]), t));
    let mid = lo + (hi - lo) / 2;
    let left = build(boxes, order, lo, mid, nodes, depth + 1, max_depth);
    let right = build(boxes, order, mid, hi, nodes, depth + 1, max_depth);
    nodes[me].left = left as i64;
    nodes[me].right = right as i64;
    me
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::make_scene;

    #[test]
    fn leaves_cover_all_triangles_once() {
        let tris = make_scene(64, 3);
        let bvh = build_bvh(&tris);
        let mut covered = [false; 64];
        for n in bvh.nodes.iter().filter(|n| n.is_leaf()) {
            assert!(n.count as usize <= LEAF_SIZE);
            for i in n.first..n.first + n.count {
                assert!(!covered[i as usize], "triangle {} covered twice", i);
                covered[i as usize] = true;
            }
        }
        assert!(covered.iter().all(|&b| b));
        // The reordered array is a permutation of the input.
        assert_eq!(bvh.tris.len(), 64);
        for t in &tris {
            assert!(bvh.tris.contains(t));
        }
    }

    #[test]
    fn children_are_contained_in_parent() {
        let tris = make_scene(32, 9);
        let bvh = build_bvh(&tris);
        for n in &bvh.nodes {
            if !n.is_leaf() {
                for c in [n.left, n.right] {
                    let cb = bvh.nodes[c as usize].bb;
                    assert!(cb.min.x >= n.bb.min.x && cb.max.x <= n.bb.max.x);
                    assert!(cb.min.y >= n.bb.min.y && cb.max.y <= n.bb.max.y);
                    assert!(cb.min.z >= n.bb.min.z && cb.max.z <= n.bb.max.z);
                }
            }
        }
    }

    #[test]
    fn depth_is_logarithmic() {
        let tris = make_scene(256, 1);
        let bvh = build_bvh(&tris);
        assert!(
            bvh.depth <= 10,
            "median split keeps the tree balanced: {}",
            bvh.depth
        );
    }

    #[test]
    fn tiny_scene_is_one_leaf() {
        let tris = make_scene(3, 2);
        let bvh = build_bvh(&tris);
        assert_eq!(bvh.nodes.len(), 1);
        assert!(bvh.nodes[0].is_leaf());
        assert_eq!(bvh.nodes[0].count, 3);
        assert_eq!(bvh.depth, 1);
    }

    #[test]
    fn leaf_bounds_contain_their_triangles() {
        let tris = make_scene(48, 8);
        let bvh = build_bvh(&tris);
        for n in bvh.nodes.iter().filter(|n| n.is_leaf()) {
            for i in n.first..n.first + n.count {
                let tb = bvh.tris[i as usize].bbox();
                assert!(tb.min.x >= n.bb.min.x && tb.max.x <= n.bb.max.x);
                assert!(tb.min.z >= n.bb.min.z && tb.max.z <= n.bb.max.z);
            }
        }
    }
}
