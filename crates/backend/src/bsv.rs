//! Bluespec SystemVerilog generation for hardware partitions (§6.4).
//!
//! "With the exception of loops and sequential composition, BCL can be
//! translated to legal BSV, which is then compiled to Verilog using the
//! BSV compiler." This module performs that translation: each hardware
//! partition becomes a BSV module with `mkReg`/`mkSizedFIFOF`/`mkRegFileFull`
//! state, one `rule` per BCL rule (with the lifted guard as the rule
//! condition), and struct/vector typedefs. Designs containing loops,
//! sequential composition, or `localGuard` are rejected, exactly as the
//! paper prescribes.

use bcl_core::ast::{Action, Expr, PrimId, PrimMethod, Target};
use bcl_core::design::Design;
use bcl_core::error::ElabError;
use bcl_core::prim::PrimSpec;
use bcl_core::sched::HwSim;
use bcl_core::types::Type;
use bcl_core::value::{BinOp, UnOp, Value};
use bcl_core::xform::{compile_design, CompileOpts};
use std::collections::BTreeMap;
use std::fmt::Write as _;

struct Emitter<'d> {
    design: &'d Design,
    typedefs: BTreeMap<String, String>, // rendered fields -> name
}

/// Generates BSV source for a hardware partition.
///
/// # Errors
///
/// Fails the hardware legality check (loops, sequential composition,
/// `localGuard`).
pub fn emit_bsv(design: &Design) -> Result<String, ElabError> {
    // Reuse the HW simulator's legality check.
    HwSim::new(design)?;
    let mut e = Emitter {
        design,
        typedefs: BTreeMap::new(),
    };
    Ok(e.emit())
}

impl<'d> Emitter<'d> {
    fn prim_name(&self, id: PrimId) -> String {
        self.design.prim(id).path.as_str().replace('.', "_")
    }

    fn bsv_type(&mut self, t: &Type) -> String {
        match t {
            Type::Bool => "Bool".into(),
            Type::Bits(w) => format!("Bit#({w})"),
            Type::Int(w) => format!("Int#({w})"),
            Type::Vector(n, t) => format!("Vector#({n}, {})", self.bsv_type(t)),
            Type::Struct(fs) => {
                let body: String = fs
                    .iter()
                    .map(|(n, t)| format!("    {} {n};\n", self.bsv_type(t)))
                    .collect();
                if let Some(name) = self.typedefs.get(&body) {
                    return name.clone();
                }
                let name = format!("TStruct{}", self.typedefs.len());
                self.typedefs.insert(body, name.clone());
                name
            }
        }
    }

    fn bsv_value(&mut self, v: &Value) -> String {
        match v {
            Value::Bool(b) => if *b { "True" } else { "False" }.to_string(),
            Value::Int { val, .. } => val.to_string(),
            Value::Bits { bits, .. } => format!("'h{bits:x}"),
            Value::Vec(vs) => {
                // BSV vector literals via `vec(...)` (Vector package).
                let items: Vec<String> = vs.iter().map(|x| self.bsv_value(x)).collect();
                format!("vec({})", items.join(", "))
            }
            Value::Struct(fs) => {
                let ty = self.bsv_type(&v.type_of());
                let items: Vec<String> = fs
                    .iter()
                    .map(|(n, x)| format!("{n}: {}", self.bsv_value(x)))
                    .collect();
                format!("{ty} {{{}}}", items.join(", "))
            }
        }
    }

    fn expr(&mut self, e: &Expr) -> String {
        match e {
            Expr::Const(v) => self.bsv_value(v),
            Expr::Var(n) => n.clone(),
            Expr::Un(UnOp::Not, a) => format!("!({})", self.expr(a)),
            Expr::Un(UnOp::Neg, a) => format!("-({})", self.expr(a)),
            Expr::Un(UnOp::Inv, a) => format!("~({})", self.expr(a)),
            Expr::Bin(op, a, b) => {
                let (a, b) = (self.expr(a), self.expr(b));
                match op {
                    BinOp::FixMul(f) => format!("fxMul({a}, {b}, {f})"),
                    BinOp::FixDiv(f) => format!("fxDiv({a}, {b}, {f})"),
                    BinOp::Min => format!("min({a}, {b})"),
                    BinOp::Max => format!("max({a}, {b})"),
                    BinOp::Add => format!("({a} + {b})"),
                    BinOp::Sub => format!("({a} - {b})"),
                    BinOp::Mul => format!("({a} * {b})"),
                    BinOp::Div => format!("({a} / {b})"),
                    BinOp::Rem => format!("({a} % {b})"),
                    BinOp::And => format!("({a} && {b})"),
                    BinOp::Or => format!("({a} || {b})"),
                    BinOp::Xor => format!("({a} ^ {b})"),
                    BinOp::Shl => format!("({a} << {b})"),
                    BinOp::Shr => format!("({a} >> {b})"),
                    BinOp::Eq => format!("({a} == {b})"),
                    BinOp::Ne => format!("({a} != {b})"),
                    BinOp::Lt => format!("({a} < {b})"),
                    BinOp::Le => format!("({a} <= {b})"),
                    BinOp::Gt => format!("({a} > {b})"),
                    BinOp::Ge => format!("({a} >= {b})"),
                }
            }
            Expr::Cond(c, t, f) => {
                format!("({} ? {} : {})", self.expr(c), self.expr(t), self.expr(f))
            }
            Expr::When(v, g) => format!("when({}, {})", self.expr(g), self.expr(v)),
            Expr::Let(..) => {
                // Let chains are flattened into rule-local bindings by the
                // statement emitter; a let in pure expression position is
                // emitted as a `begin ... end` block expression.
                let mut binds = Vec::new();
                let mut cur = e;
                while let Expr::Let(n, v, b) = cur {
                    binds.push((n.clone(), v.as_ref().clone()));
                    cur = b;
                }
                let mut s = String::from("(begin ");
                for (n, v) in binds {
                    let _ = write!(s, "let {n} = {}; ", self.expr(&v));
                }
                let _ = write!(s, "{} end)", self.expr(cur));
                s
            }
            Expr::Call(Target::Prim(id, m), args) => {
                let obj = self.prim_name(*id);
                let args: Vec<String> = args.iter().map(|a| self.expr(a)).collect();
                match m {
                    PrimMethod::RegRead => obj,
                    PrimMethod::First => format!("{obj}.first"),
                    PrimMethod::NotEmpty => format!("{obj}.notEmpty"),
                    PrimMethod::NotFull => format!("{obj}.notFull"),
                    PrimMethod::Sub => format!("{obj}.sub({})", args.join(", ")),
                    other => format!("/* bad value method {} */", other.name()),
                }
            }
            Expr::Call(Target::Named(p, m), _) => format!("/* unresolved {p}.{m} */"),
            Expr::Index(v, i) => format!("{}[{}]", self.expr(v), self.expr(i)),
            Expr::Field(v, f) => format!("{}.{f}", self.expr(v)),
            Expr::MkVec(es) => {
                let items: Vec<String> = es.iter().map(|x| self.expr(x)).collect();
                format!("vec({})", items.join(", "))
            }
            Expr::MkStruct(fs) => {
                let field_types: Vec<(String, Type)> =
                    fs.iter().map(|(n, _)| (n.clone(), Type::Bits(0))).collect();
                let _ = field_types;
                let items: Vec<String> = fs
                    .iter()
                    .map(|(n, x)| format!("{n}: {}", self.expr(x)))
                    .collect();
                format!("unpack(pack(/* struct */ {{{}}}))", items.join(", "))
            }
            Expr::UpdateIndex(v, i, x) => {
                format!(
                    "update({}, {}, {})",
                    self.expr(v),
                    self.expr(i),
                    self.expr(x)
                )
            }
            Expr::UpdateField(v, f, x) => {
                format!("updateField_{f}({}, {})", self.expr(v), self.expr(x))
            }
        }
    }

    fn stmts(&mut self, a: &Action, indent: usize, out: &mut String) {
        let pad = " ".repeat(indent);
        match a {
            Action::NoAction => {
                let _ = writeln!(out, "{pad}noAction;");
            }
            Action::Write(t, e) => {
                if let Target::Prim(id, _) = t {
                    let _ = writeln!(out, "{pad}{} <= {};", self.prim_name(*id), self.expr(e));
                }
            }
            Action::Call(Target::Prim(id, m), args) => {
                let obj = self.prim_name(*id);
                let args: Vec<String> = args.iter().map(|x| self.expr(x)).collect();
                let call = match m {
                    PrimMethod::Enq => format!("{obj}.enq({})", args.join(", ")),
                    PrimMethod::Deq => format!("{obj}.deq"),
                    PrimMethod::Clear => format!("{obj}.clear"),
                    PrimMethod::Upd => format!("{obj}.upd({})", args.join(", ")),
                    PrimMethod::RegWrite => {
                        let _ = writeln!(out, "{pad}{obj} <= {};", args.join(", "));
                        return;
                    }
                    other => format!("/* bad action method {} */", other.name()),
                };
                let _ = writeln!(out, "{pad}{call};");
            }
            Action::Call(Target::Named(p, m), _) => {
                let _ = writeln!(out, "{pad}/* unresolved {p}.{m} */;");
            }
            Action::If(c, t, f) => {
                let _ = writeln!(out, "{pad}if ({}) begin", self.expr(c));
                self.stmts(t, indent + 4, out);
                if !matches!(**f, Action::NoAction) {
                    let _ = writeln!(out, "{pad}end else begin");
                    self.stmts(f, indent + 4, out);
                }
                let _ = writeln!(out, "{pad}end");
            }
            Action::Par(x, y) => {
                // Parallel composition is BSV's native action semantics.
                self.stmts(x, indent, out);
                self.stmts(y, indent, out);
            }
            Action::When(g, x) => {
                let _ = writeln!(out, "{pad}// residual guard");
                let _ = writeln!(out, "{pad}when ({}) begin", self.expr(g));
                self.stmts(x, indent + 4, out);
                let _ = writeln!(out, "{pad}end");
            }
            Action::Let(n, e, x) => {
                let _ = writeln!(out, "{pad}let {n} = {};", self.expr(e));
                self.stmts(x, indent, out);
            }
            Action::Seq(..) | Action::Loop(..) | Action::LocalGuard(..) => {
                // Rejected by hw_check before emission.
                let _ = writeln!(out, "{pad}/* untranslatable */;");
            }
        }
    }

    fn emit(&mut self) -> String {
        let design = self.design;
        // Lift guards so each rule condition is explicit BSV.
        let plans = compile_design(
            design,
            CompileOpts {
                lift: true,
                sequentialize: false,
            },
        );

        let mut state = String::new();
        for (id, p) in design.prims_iter() {
            let name = self.prim_name(id);
            match &p.spec {
                PrimSpec::Reg { init } => {
                    let t = self.bsv_type(&init.type_of());
                    let v = self.bsv_value(init);
                    let _ = writeln!(state, "    Reg#({t}) {name} <- mkReg({v});");
                }
                PrimSpec::Fifo { depth, ty } | PrimSpec::Sync { depth, ty, .. } => {
                    let t = self.bsv_type(ty);
                    let _ = writeln!(state, "    FIFOF#({t}) {name} <- mkSizedFIFOF({depth});");
                }
                PrimSpec::RegFile { size, ty, .. } => {
                    let t = self.bsv_type(ty);
                    let _ = writeln!(
                        state,
                        "    RegFile#(Bit#(32), {t}) {name} <- mkRegFileFull; // {size} entries"
                    );
                }
                PrimSpec::Source { ty, .. } => {
                    let t = self.bsv_type(ty);
                    let _ = writeln!(
                        state,
                        "    FIFOF#({t}) {name} <- mkSizedFIFOF(16); // input port"
                    );
                }
                PrimSpec::Sink { ty, .. } => {
                    let t = self.bsv_type(ty);
                    let _ = writeln!(
                        state,
                        "    FIFOF#({t}) {name} <- mkSizedFIFOF(16); // output port"
                    );
                }
            }
        }

        let mut rules = String::new();
        for (i, rule) in design.rules.iter().enumerate() {
            let plan = &plans[i];
            let rname = rule.name.replace('.', "_");
            let guard = match &plan.guard {
                Some(g) => self.expr(g),
                None => "True".into(),
            };
            let _ = writeln!(rules, "    rule {rname} ({guard});");
            self.stmts(&plan.body.clone(), 8, &mut rules);
            let _ = writeln!(rules, "    endrule\n");
        }

        let mut typedefs = String::new();
        for (body, name) in self
            .typedefs
            .iter()
            .map(|(b, n)| (b.clone(), n.clone()))
            .collect::<Vec<_>>()
        {
            let _ = writeln!(
                typedefs,
                "typedef struct {{\n{body}}} {name} deriving (Bits, Eq);\n"
            );
        }

        let mod_name = design.name.replace(['.', '-'], "_");
        format!(
            "// Generated by bcl-backend from design `{}`\nimport FIFOF::*;\nimport Vector::*;\nimport RegFile::*;\n\n{typedefs}module mk{mod_name}();\n{state}\n{rules}endmodule\n",
            design.name
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcl_core::builder::{dsl::*, ModuleBuilder};
    use bcl_core::program::Program;

    fn pipe_design() -> Design {
        let mut m = ModuleBuilder::new("Pipe");
        m.fifo("q0", 2, Type::Int(32));
        m.fifo("q1", 2, Type::Int(32));
        m.reg("count", Value::int(32, 0));
        m.rule(
            "move",
            with_first(
                "x",
                "q0",
                par(vec![
                    enq("q1", mul(var("x"), cint(32, 3))),
                    write("count", add(read("count"), cint(32, 1))),
                ]),
            ),
        );
        bcl_core::elaborate(&Program::with_root(m.build())).unwrap()
    }

    #[test]
    fn emits_module_and_state() {
        let bsv = emit_bsv(&pipe_design()).unwrap();
        assert!(bsv.contains("module mkPipe();"), "{bsv}");
        assert!(
            bsv.contains("FIFOF#(Int#(32)) q0 <- mkSizedFIFOF(2);"),
            "{bsv}"
        );
        assert!(bsv.contains("Reg#(Int#(32)) count <- mkReg(0);"), "{bsv}");
        assert!(bsv.contains("endmodule"), "{bsv}");
    }

    #[test]
    fn rule_guard_is_lifted_into_condition() {
        let bsv = emit_bsv(&pipe_design()).unwrap();
        // Guard: q1 not full AND q0 not empty (implicit guards of enq/first/deq).
        assert!(bsv.contains("rule move ("), "{bsv}");
        assert!(bsv.contains("q1.notFull"), "{bsv}");
        assert!(bsv.contains("q0.notEmpty"), "{bsv}");
        assert!(bsv.contains("q1.enq((x * 3));"), "{bsv}");
        assert!(bsv.contains("count <= (count + 1);"), "{bsv}");
    }

    #[test]
    fn seq_rules_are_rejected() {
        let mut m = ModuleBuilder::new("Bad");
        m.reg("a", Value::int(8, 0));
        m.rule(
            "s",
            seq(vec![write("a", cint(8, 1)), write("a", cint(8, 2))]),
        );
        let d = bcl_core::elaborate(&Program::with_root(m.build())).unwrap();
        let e = emit_bsv(&d).unwrap_err();
        assert!(e.message().contains("sequential"), "{e}");
    }

    #[test]
    fn struct_typedefs_are_emitted() {
        let mut m = ModuleBuilder::new("S");
        m.fifo("p", 1, Type::complex(Type::Int(16)));
        let d = bcl_core::elaborate(&Program::with_root(m.build())).unwrap();
        let bsv = emit_bsv(&d).unwrap();
        assert!(bsv.contains("typedef struct {"), "{bsv}");
        assert!(bsv.contains("Int#(16) re;"), "{bsv}");
        assert!(bsv.contains("deriving (Bits, Eq);"), "{bsv}");
    }
}
