//! Compile-and-run smoke for the C++ backend (§6 of the paper).
//!
//! Emits a standalone program for the full-software Vorbis partition
//! (partition F), builds it with the system C++ compiler, runs it, and
//! diffs its sink stream bit-for-bit against the cosimulator running
//! the same frames. Both generated styles are exercised: the
//! transactional Figure 9 code (`lift: false`) and the guard-lifted
//! in-situ Figure 10 code (`lift: true`).
//!
//! Skips gracefully (with a message) when no C++ compiler is on PATH.

use bcl_backend::cxx::{emit_cxx_harness, flatten_value, CxxOptions};
use bcl_core::sched::ExecBackend;
use bcl_core::value::Value;
use bcl_vorbis::bcl::{build_design, frame_value, BackendOptions};
use bcl_vorbis::frames::frame_stream;
use bcl_vorbis::partitions::{build_cosim, VorbisPartition};
use std::process::Command;

/// Locates a working C++ compiler, trying the usual names.
fn find_cxx() -> Option<&'static str> {
    ["c++", "g++", "clang++"].into_iter().find(|cc| {
        Command::new(cc)
            .arg("--version")
            .output()
            .map(|o| o.status.success())
            .unwrap_or(false)
    })
}

/// Runs the simulator on `frames` and returns the sink stream flattened
/// to the decimal-leaf form the generated C++ program prints.
fn simulator_sink_leaves(frames: &[Vec<i64>]) -> Vec<i64> {
    let mut cosim = build_cosim(VorbisPartition::F, frames, ExecBackend::Event).unwrap();
    let want = frames.len();
    cosim
        .run_until(|c| c.sink_count("audioDev") == want, 1_000_000)
        .unwrap();
    assert_eq!(
        cosim.sink_count("audioDev"),
        want,
        "simulator did not drain"
    );
    let mut out = Vec::new();
    for v in cosim.sink_values("audioDev") {
        flatten_value(v, &mut out);
    }
    out
}

/// Compiles `code` with `cc` and returns the parsed stdout of the
/// resulting binary (one decimal integer per line).
fn compile_and_run(cc: &str, code: &str, name: &str) -> Vec<i64> {
    let dir = std::env::temp_dir().join(format!("bcl_cxx_smoke_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let src = dir.join(format!("{name}.cpp"));
    let bin = dir.join(name);
    std::fs::write(&src, code).unwrap();
    let out = Command::new(cc)
        .arg("-std=c++17")
        .arg("-O1")
        .arg("-o")
        .arg(&bin)
        .arg(&src)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "C++ compilation of {name} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let run = Command::new(&bin).output().unwrap();
    assert!(
        run.status.success(),
        "{name} exited with {:?}:\n{}",
        run.status.code(),
        String::from_utf8_lossy(&run.stderr)
    );
    String::from_utf8(run.stdout)
        .unwrap()
        .lines()
        .map(|l| {
            l.trim()
                .parse()
                .expect("non-integer line in harness output")
        })
        .collect()
}

#[test]
fn cxx_program_matches_simulator() {
    let Some(cc) = find_cxx() else {
        eprintln!("skipping cxx smoke: no C++ compiler found (tried c++, g++, clang++)");
        return;
    };
    let frames = frame_stream(2, 7);
    let expect = simulator_sink_leaves(&frames);
    assert!(!expect.is_empty(), "simulator produced no sink output");

    // Partition F is the all-software configuration: the whole pipeline
    // lives in one C++ class and `schedule()` can drain it to
    // quiescence with no hardware partition in the loop.
    let design = build_design(&BackendOptions {
        domains: VorbisPartition::F.domains(),
        ..Default::default()
    })
    .unwrap();
    let inputs: Vec<Value> = frames.iter().map(|f| frame_value(f)).collect();

    for (lift, name) in [(true, "lifted"), (false, "txn")] {
        let code = emit_cxx_harness(&design, CxxOptions { lift }, "src", &inputs, "audioDev");
        let got = compile_and_run(cc, &code, &format!("vorbis_f_{name}"));
        assert_eq!(
            got, expect,
            "C++ (lift={lift}) sink stream diverged from the simulator"
        );
    }
}
