//! The kernel BCL abstract syntax (Figure 7 of the paper).
//!
//! A program is a list of module definitions plus a designated root. Each
//! module has state-element instantiations, rules (guarded atomic actions),
//! and interface methods. After static elaboration ([`crate::elab`]) the
//! module hierarchy disappears: method calls target primitive state elements
//! directly (registers, FIFOs, register files, synchronizers) and all rules
//! live in one flat [`crate::design::Design`].
//!
//! Beyond the paper's minimal kernel grammar we carry vector/struct
//! construction and access expressions; the paper's full BCL has these (it
//! is "a modern statically-typed language ... with rich data structures"),
//! they are simply elided from the kernel figure.

use crate::value::{BinOp, UnOp, Value};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A hierarchical instance path, e.g. `backend.ifft.buff0`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Path(pub String);

impl Path {
    /// Creates a path from a dotted string.
    pub fn new(s: impl Into<String>) -> Self {
        Path(s.into())
    }

    /// Appends a component: `a.join("b")` is `a.b`.
    pub fn join(&self, comp: &str) -> Path {
        if self.0.is_empty() {
            Path(comp.to_string())
        } else {
            Path(format!("{}.{}", self.0, comp))
        }
    }

    /// The dotted string form.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<&str> for Path {
    fn from(s: &str) -> Self {
        Path::new(s)
    }
}

/// Identifies a primitive state element in an elaborated design.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PrimId(pub usize);

/// The methods exposed by primitive state elements.
///
/// | Primitive | Methods |
/// |---|---|
/// | `Reg`      | `RegRead`, `RegWrite` |
/// | `Fifo` / `Sync` | `Enq`, `Deq`, `First`, `NotEmpty`, `NotFull`, `Clear` |
/// | `RegFile`  | `Sub` (read), `Upd` (write) |
/// | `Source`   | `First`, `Deq`, `NotEmpty` (test-bench input) |
/// | `Sink`     | `Enq`, `NotFull` (test-bench / device output) |
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum PrimMethod {
    /// Register read.
    RegRead,
    /// Register write.
    RegWrite,
    /// FIFO enqueue (guarded on not-full).
    Enq,
    /// FIFO dequeue (guarded on not-empty).
    Deq,
    /// FIFO head (guarded on not-empty).
    First,
    /// FIFO not-empty probe (never blocks).
    NotEmpty,
    /// FIFO not-full probe (never blocks).
    NotFull,
    /// FIFO clear.
    Clear,
    /// Register-file read at an index.
    Sub,
    /// Register-file write at an index.
    Upd,
}

impl PrimMethod {
    /// Parses the surface-syntax method name used in programs
    /// (`_read`, `_write`, `enq`, `deq`, `first`, `notEmpty`, `notFull`,
    /// `clear`, `sub`, `upd`).
    pub fn parse(name: &str) -> Option<PrimMethod> {
        Some(match name {
            "_read" | "read" => PrimMethod::RegRead,
            "_write" | "write" => PrimMethod::RegWrite,
            "enq" => PrimMethod::Enq,
            "deq" => PrimMethod::Deq,
            "first" => PrimMethod::First,
            "notEmpty" => PrimMethod::NotEmpty,
            "notFull" => PrimMethod::NotFull,
            "clear" => PrimMethod::Clear,
            "sub" => PrimMethod::Sub,
            "upd" => PrimMethod::Upd,
            _ => return None,
        })
    }

    /// The surface-syntax name.
    pub fn name(self) -> &'static str {
        match self {
            PrimMethod::RegRead => "_read",
            PrimMethod::RegWrite => "_write",
            PrimMethod::Enq => "enq",
            PrimMethod::Deq => "deq",
            PrimMethod::First => "first",
            PrimMethod::NotEmpty => "notEmpty",
            PrimMethod::NotFull => "notFull",
            PrimMethod::Clear => "clear",
            PrimMethod::Sub => "sub",
            PrimMethod::Upd => "upd",
        }
    }

    /// True if the method mutates the primitive's state. Two parallel
    /// sub-actions may not both invoke a mutating method on the same
    /// primitive (DOUBLE WRITE ERROR), and two rules whose write sets
    /// overlap conflict in the hardware scheduler.
    pub fn is_write(self) -> bool {
        matches!(
            self,
            PrimMethod::RegWrite
                | PrimMethod::Enq
                | PrimMethod::Deq
                | PrimMethod::Clear
                | PrimMethod::Upd
        )
    }

    /// True if the method returns a value (usable in expressions).
    pub fn is_value(self) -> bool {
        matches!(
            self,
            PrimMethod::RegRead
                | PrimMethod::First
                | PrimMethod::NotEmpty
                | PrimMethod::NotFull
                | PrimMethod::Sub
        )
    }
}

/// The target of a method call: either a named instance (pre-elaboration)
/// or a resolved primitive (post-elaboration).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Target {
    /// A call on a named submodule instance, resolved during elaboration.
    Named(Path, String),
    /// A call on a primitive state element of the elaborated design.
    Prim(PrimId, PrimMethod),
}

/// Kernel BCL expressions (`e` in Figure 7).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Expr {
    /// Constant value.
    Const(Value),
    /// Variable reference (`t` in the grammar): let-bound names and method
    /// arguments.
    Var(String),
    /// Unary primitive operation.
    Un(UnOp, Box<Expr>),
    /// Binary primitive operation (`e op e`).
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Conditional expression (`e ? e : e`).
    Cond(Box<Expr>, Box<Expr>, Box<Expr>),
    /// Guarded expression (`e when e`): the value of the first operand,
    /// valid only when the second evaluates to true.
    When(Box<Expr>, Box<Expr>),
    /// Non-strict let binding (`t = e in e`).
    Let(String, Box<Expr>, Box<Expr>),
    /// Value method call (`m.f(e)`): register read, FIFO `first`, ...
    Call(Target, Vec<Expr>),
    /// Vector element read.
    Index(Box<Expr>, Box<Expr>),
    /// Struct field read.
    Field(Box<Expr>, String),
    /// Vector construction.
    MkVec(Vec<Expr>),
    /// Struct construction.
    MkStruct(Vec<(String, Expr)>),
    /// Functional vector update: a copy of the vector with one element
    /// replaced.
    UpdateIndex(Box<Expr>, Box<Expr>, Box<Expr>),
    /// Functional struct update.
    UpdateField(Box<Expr>, String, Box<Expr>),
}

/// Kernel BCL actions (`a` in Figure 7).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Action {
    /// The empty action.
    NoAction,
    /// Register update (`r := e`); sugar for `Call(reg, RegWrite, [e])`.
    Write(Target, Box<Expr>),
    /// Conditional action (`if e then a else a`). The else branch is
    /// optional in the surface language.
    If(Box<Expr>, Box<Action>, Box<Action>),
    /// Parallel composition (`a | a`): both observe the same initial state;
    /// writes merge, double writes are dynamic errors.
    Par(Box<Action>, Box<Action>),
    /// Sequential composition (`a ; a`): the second observes the first's
    /// updates.
    Seq(Box<Action>, Box<Action>),
    /// Guarded action (`a when e`): a guard failure invalidates the whole
    /// enclosing atomic action.
    When(Box<Expr>, Box<Action>),
    /// Let action (`t = e in a`).
    Let(String, Box<Expr>, Box<Action>),
    /// Loop action (`loop e a`): repeats `a` while `e` is true. Loops are
    /// sequential composition under the hood and are only implementable in
    /// software (§6.4); the hardware backend rejects them.
    Loop(Box<Expr>, Box<Action>),
    /// `localGuard a`: converts a guard failure inside `a` into `noAction`
    /// instead of propagating it to the enclosing rule.
    LocalGuard(Box<Action>),
    /// Action method call (`m.g(e)`).
    Call(Target, Vec<Expr>),
}

impl Expr {
    /// Boolean constant `true`.
    pub fn t() -> Expr {
        Expr::Const(Value::Bool(true))
    }

    /// Boolean constant `false`.
    pub fn f() -> Expr {
        Expr::Const(Value::Bool(false))
    }

    /// Integer constant of the given width.
    pub fn int(width: u32, v: i64) -> Expr {
        Expr::Const(Value::int(width, v))
    }

    /// Structural size of the expression tree (used in tests and as a
    /// rough proxy for combinational logic area).
    pub fn size(&self) -> usize {
        match self {
            Expr::Const(_) | Expr::Var(_) => 1,
            Expr::Un(_, a) => 1 + a.size(),
            Expr::Bin(_, a, b) => 1 + a.size() + b.size(),
            Expr::Cond(c, t, e) => 1 + c.size() + t.size() + e.size(),
            Expr::When(v, g) => 1 + v.size() + g.size(),
            Expr::Let(_, e, b) => 1 + e.size() + b.size(),
            Expr::Call(_, args) => 1 + args.iter().map(Expr::size).sum::<usize>(),
            Expr::Index(v, i) => 1 + v.size() + i.size(),
            Expr::Field(v, _) => 1 + v.size(),
            Expr::MkVec(es) => 1 + es.iter().map(Expr::size).sum::<usize>(),
            Expr::MkStruct(fs) => 1 + fs.iter().map(|(_, e)| e.size()).sum::<usize>(),
            Expr::UpdateIndex(v, i, x) => 1 + v.size() + i.size() + x.size(),
            Expr::UpdateField(v, _, x) => 1 + v.size() + x.size(),
        }
    }
}

impl Action {
    /// Structural size of the action tree.
    pub fn size(&self) -> usize {
        match self {
            Action::NoAction => 1,
            Action::Write(_, e) => 1 + e.size(),
            Action::If(c, t, e) => 1 + c.size() + t.size() + e.size(),
            Action::Par(a, b) | Action::Seq(a, b) => 1 + a.size() + b.size(),
            Action::When(g, a) => 1 + g.size() + a.size(),
            Action::Let(_, e, a) => 1 + e.size() + a.size(),
            Action::Loop(c, a) => 1 + c.size() + a.size(),
            Action::LocalGuard(a) => 1 + a.size(),
            Action::Call(_, args) => 1 + args.iter().map(Expr::size).sum::<usize>(),
        }
    }

    /// True if the action contains a sequential composition or loop
    /// (not directly implementable in hardware, §6.4).
    pub fn has_seq_or_loop(&self) -> bool {
        match self {
            Action::NoAction | Action::Write(..) | Action::Call(..) => false,
            Action::Seq(..) | Action::Loop(..) => true,
            Action::If(_, t, e) => t.has_seq_or_loop() || e.has_seq_or_loop(),
            Action::Par(a, b) => a.has_seq_or_loop() || b.has_seq_or_loop(),
            Action::When(_, a) | Action::Let(_, _, a) | Action::LocalGuard(a) => {
                a.has_seq_or_loop()
            }
        }
    }
}

/// A rule: a named guarded atomic action (`Rule n a`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RuleDef {
    /// The rule name (unique within a module; prefixed by instance path
    /// after elaboration).
    pub name: String,
    /// The rule body. The rule's guard is the conjunction of all `when`
    /// guards in the body (explicit and implicit).
    pub body: Action,
}

/// An action method definition (`ActMeth n λt.a`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActMethodDef {
    /// Method name.
    pub name: String,
    /// Formal argument names.
    pub args: Vec<String>,
    /// Method body.
    pub body: Action,
}

/// A value method definition (`ValMeth n λt.e`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ValMethodDef {
    /// Method name.
    pub name: String,
    /// Formal argument names.
    pub args: Vec<String>,
    /// Method body (a pure, possibly guarded expression).
    pub body: Expr,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_join() {
        let p = Path::new("a").join("b").join("c");
        assert_eq!(p.as_str(), "a.b.c");
        assert_eq!(Path::new("").join("x").as_str(), "x");
        assert_eq!(p.to_string(), "a.b.c");
    }

    #[test]
    fn prim_method_parse_roundtrip() {
        for m in [
            PrimMethod::RegRead,
            PrimMethod::RegWrite,
            PrimMethod::Enq,
            PrimMethod::Deq,
            PrimMethod::First,
            PrimMethod::NotEmpty,
            PrimMethod::NotFull,
            PrimMethod::Clear,
            PrimMethod::Sub,
            PrimMethod::Upd,
        ] {
            assert_eq!(PrimMethod::parse(m.name()), Some(m));
        }
        assert_eq!(PrimMethod::parse("bogus"), None);
    }

    #[test]
    fn write_classification() {
        assert!(PrimMethod::RegWrite.is_write());
        assert!(PrimMethod::Deq.is_write());
        assert!(!PrimMethod::First.is_write());
        assert!(PrimMethod::First.is_value());
        assert!(!PrimMethod::Enq.is_value());
    }

    #[test]
    fn expr_size() {
        let e = Expr::Bin(
            crate::value::BinOp::Add,
            Box::new(Expr::int(8, 1)),
            Box::new(Expr::Var("x".into())),
        );
        assert_eq!(e.size(), 3);
    }

    #[test]
    fn seq_loop_detection() {
        let w = Action::Write(
            Target::Named("r".into(), "_write".into()),
            Box::new(Expr::int(8, 0)),
        );
        assert!(!w.has_seq_or_loop());
        let s = Action::Seq(Box::new(w.clone()), Box::new(Action::NoAction));
        assert!(s.has_seq_or_loop());
        let l = Action::LocalGuard(Box::new(Action::Loop(
            Box::new(Expr::t()),
            Box::new(w.clone()),
        )));
        assert!(l.has_seq_or_loop());
        let p = Action::Par(Box::new(w), Box::new(Action::NoAction));
        assert!(!p.has_seq_or_loop());
    }
}
