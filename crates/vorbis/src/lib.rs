//! # bcl-vorbis — the Ogg Vorbis back-end evaluation application
//!
//! The paper's running example and first benchmark (§2, §4, §7.1): the
//! back-end of an Ogg Vorbis decoder — IMDCT pre-twiddle, 64-point IFFT,
//! post-twiddle with bit reversal, and overlap windowing, in 32-bit fixed
//! point with 24 fractional bits — written in BCL and partitioned six
//! different ways between hardware and software (Figure 12), plus the
//! hand-written software (F2) and SystemC-style (F1) baselines of
//! Figure 13.
//!
//! All implementations share the same generic kernels
//! ([`kernel`]), so every partition, the native baseline, and the
//! event-driven baseline produce **bit-identical PCM**; what varies is
//! where the work happens and what the movement costs.
//!
//! ```
//! use bcl_vorbis::frames::frame_stream;
//! use bcl_vorbis::native::NativeBackend;
//! use bcl_vorbis::partitions::{run_partition, VorbisPartition};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let frames = frame_stream(2, 42);
//! let golden = NativeBackend::new().run(&frames);
//! let run = run_partition(VorbisPartition::E, &frames)?;
//! assert_eq!(run.pcm, golden);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod bcl;
pub mod frames;
pub mod kernel;
pub mod native;
pub mod partitions;
pub mod sysc;
