//! The failback headline property: for any die → failover → revive
//! schedule, the run produces *bit-identical* final outputs to the
//! fault-free run — on the echo micro-design and on the real Vorbis and
//! raytracer partitions — and a revived run resumes accruing FPGA cycles
//! (no silent software-only tail: after `ReviveAt` the partition executes
//! rules in hardware again).
//!
//! The lifecycle under test is documented in DESIGN.md § "Partition
//! lifecycle and failback": Running → Dead → SoftwareOwned → Reviving →
//! Running.

use bcl_core::builder::{dsl::*, ModuleBuilder};
use bcl_core::domain::{HW, SW};
use bcl_core::partition::partition;
use bcl_core::program::Program;
use bcl_core::sched::SwOptions;
use bcl_core::types::Type;
use bcl_core::value::Value;
use bcl_platform::cosim::{Cosim, PartitionLifecycle, RecoveryPolicy};
use bcl_platform::link::{FaultConfig, LinkConfig, PartitionFault};
use bcl_raytrace::bvh::build_bvh;
use bcl_raytrace::geom::make_scene;
use bcl_raytrace::partitions::{
    run_partition as rt_run, run_partition_with_recovery as rt_run_recovery, RtPartition,
};
use bcl_vorbis::frames::frame_stream;
use bcl_vorbis::partitions::{
    run_partition as vorbis_run, run_partition_with_recovery as vorbis_run_recovery,
    VorbisPartition,
};
use proptest::prelude::*;

/// src(SW) -> toHw -> echo(HW) -> toSw -> snk(SW): the smallest design
/// whose every item must cross the hardware partition.
fn echo_design() -> bcl_core::design::Design {
    let mut m = ModuleBuilder::new("Echo");
    m.source("src", Type::Int(32), SW);
    m.sink("snk", Type::Int(32), SW);
    m.channel("toHw", 2, Type::Int(32), SW, HW);
    m.channel("toSw", 2, Type::Int(32), HW, SW);
    m.rule("feed", with_first("x", "src", enq("toHw", var("x"))));
    m.rule("echo", with_first("x", "toHw", enq("toSw", var("x"))));
    m.rule("drain", with_first("x", "toSw", enq("snk", var("x"))));
    bcl_core::elaborate(&Program::with_root(m.build())).unwrap()
}

/// Runs the Echo cosim under a die/revive schedule with a failover
/// policy, returning (sink values, fpga_cycles, revived, hw_cycles).
fn run_echo_failback(
    schedule: &[PartitionFault],
    grace: u64,
    inputs: &[i64],
) -> (Vec<i64>, u64, bool, Option<u64>) {
    let mut faults = FaultConfig::none();
    for &f in schedule {
        faults = faults.with_partition_fault(f);
    }
    let parts = partition(&echo_design(), SW).unwrap();
    let mut cs = Cosim::with_faults(
        &parts,
        SW,
        HW,
        LinkConfig::default(),
        faults,
        SwOptions::default(),
    )
    .unwrap();
    cs.set_recovery_policy(RecoveryPolicy::failover(grace));
    for &i in inputs {
        cs.push_source("src", Value::int(32, i));
    }
    let want = inputs.len();
    let out = cs
        .run_until(|c| c.sink_count("snk") == want, 10_000_000)
        .unwrap();
    assert!(out.is_done(), "echo did not complete: {out:?}");
    let vals = cs
        .sink_values("snk")
        .iter()
        .map(|v| v.as_int().unwrap())
        .collect();
    let running = cs.partition_lifecycle(HW) == Some(PartitionLifecycle::Running);
    let hw_cycles = cs.partition_hw_cycles(HW).filter(|_| running);
    (vals, out.fpga_cycles(), cs.revived(), hw_cycles)
}

/// A die → revive chain: up to two generations of death and scripted
/// revival. `ReviveAt` cycles that elapse while the partition is still
/// dead fire as soon as the splice completes, so any ordering is legal.
fn arb_failback_schedule() -> impl Strategy<Value = (Vec<PartitionFault>, u64)> {
    (
        50u64..600,  // first death
        1u64..1_500, // revive delay after the death
        0u64..1_000, // optional second death delay (0 = none)
        1u64..1_500, // second revive delay
        20u64..200,  // failover grace
    )
        .prop_map(|(die1, rdelta1, die2_delta, rdelta2, grace)| {
            let mut s = vec![
                PartitionFault::DieAt(die1),
                PartitionFault::ReviveAt(die1 + rdelta1),
            ];
            if die2_delta > 0 {
                let die2 = die1 + rdelta1 + die2_delta;
                s.push(PartitionFault::DieAt(die2));
                s.push(PartitionFault::ReviveAt(die2 + rdelta2));
            }
            (s, grace)
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    #[test]
    fn echo_is_bit_identical_under_any_failback_schedule(
        (schedule, grace) in arb_failback_schedule(),
        inputs in proptest::collection::vec(-1000i64..1000, 40..120),
    ) {
        let (clean, _, _, _) = run_echo_failback(&[], grace, &inputs);
        prop_assert_eq!(&clean, &inputs, "fault-free echo must be the identity");
        let (vals, cycles_a, revived, hw_cycles) =
            run_echo_failback(&schedule, grace, &inputs);
        prop_assert_eq!(&vals, &clean, "die → failover → revive changed the stream");
        // Determinism: the same schedule reproduces the same cycle count.
        let (_, cycles_b, _, _) = run_echo_failback(&schedule, grace, &inputs);
        prop_assert_eq!(cycles_a, cycles_b, "failback runs must be reproducible");
        // No silent software-only tail: when a revival fired and the
        // state transfer completed before the end of the run, the
        // partition must have executed cycles in hardware again.
        if revived {
            if let Some(hw) = hw_cycles {
                prop_assert!(hw > 0, "revived partition never cycled in hardware");
            }
        }
    }
}

#[test]
fn echo_revival_strictly_accrues_hardware_cycles() {
    // Deterministic mid-run revival: scripted one cycle after the death,
    // it fires the moment the failover splice completes (`ReviveAt`
    // cycles in the past fire at the next recovery scan), while most of
    // the input stream is still queued. The FPGA cycle counter of the
    // revived partition must then strictly increase until the end.
    let inputs: Vec<i64> = (0..100).collect();
    let schedule = [PartitionFault::DieAt(150), PartitionFault::ReviveAt(151)];
    let mut faults = FaultConfig::none();
    for &f in &schedule {
        faults = faults.with_partition_fault(f);
    }
    let parts = partition(&echo_design(), SW).unwrap();
    let mut cs = Cosim::with_faults(
        &parts,
        SW,
        HW,
        LinkConfig::default(),
        faults,
        SwOptions::default(),
    )
    .unwrap();
    cs.set_recovery_policy(RecoveryPolicy::failover(40));
    for &i in &inputs {
        cs.push_source("src", Value::int(32, i));
    }
    // Step until the revived partition is executing again.
    while cs.partition_lifecycle(HW) != Some(PartitionLifecycle::Running) || !cs.revived() {
        cs.step().unwrap();
        assert!(cs.fpga_cycles < 1_000_000, "revival never completed");
    }
    let at_handback = cs.partition_hw_cycles(HW).unwrap();
    let out = cs
        .run_until(|c| c.sink_count("snk") == inputs.len(), 10_000_000)
        .unwrap();
    assert!(out.is_done(), "revived echo did not complete: {out:?}");
    let at_end = cs.partition_hw_cycles(HW).unwrap();
    assert!(
        at_end > at_handback,
        "FPGA cycles must strictly increase post-revival ({at_end} !> {at_handback})"
    );
    let vals: Vec<i64> = cs
        .sink_values("snk")
        .iter()
        .map(|v| v.as_int().unwrap())
        .collect();
    assert_eq!(vals, inputs, "the revived run changed the stream");
}

proptest! {
    // Each case decodes the stream twice; keep the count low.
    #![proptest_config(ProptestConfig { cases: 3, ..ProptestConfig::default() })]

    #[test]
    fn vorbis_failback_is_bit_identical_and_finishes_in_hardware(
        die_pct in 30u64..60,
    ) {
        let frames = frame_stream(2, 11);
        let clean = vorbis_run(VorbisPartition::E, &frames).unwrap();
        // Die somewhere in the first two thirds, revive immediately after
        // the splice: the rest of the decode must run in hardware.
        let die_at = clean.fpga_cycles * die_pct / 100;
        let faults = FaultConfig::none()
            .with_partition_fault(PartitionFault::DieAt(die_at))
            .with_partition_fault(PartitionFault::ReviveAt(die_at + 1));
        let run = vorbis_run_recovery(
            VorbisPartition::E,
            &frames,
            faults,
            RecoveryPolicy::failover((die_at / 4).max(1)),
        )
        .unwrap();
        prop_assert!(run.failed_over, "the death must strike mid-decode");
        prop_assert!(run.revived, "the revival must fire");
        prop_assert_eq!(&run.pcm, &clean.pcm, "failback changed the PCM");
        prop_assert_eq!(run.hw_partitions, 1, "the decode must finish in hardware");
    }

    #[test]
    fn raytrace_failback_is_bit_identical_and_finishes_in_hardware(
        die_pct in 30u64..60,
    ) {
        let bvh = build_bvh(&make_scene(16, 2));
        let clean = rt_run(RtPartition::E, &bvh, 2, 2).unwrap();
        let die_at = clean.fpga_cycles * die_pct / 100;
        let faults = FaultConfig::none()
            .with_partition_fault(PartitionFault::DieAt(die_at))
            .with_partition_fault(PartitionFault::ReviveAt(die_at + 1));
        let run = rt_run_recovery(
            RtPartition::E,
            &bvh,
            2,
            2,
            faults,
            RecoveryPolicy::failover((die_at / 4).max(1)),
        )
        .unwrap();
        prop_assert!(run.failed_over, "the death must strike mid-render");
        prop_assert!(run.revived, "the revival must fire");
        prop_assert_eq!(&run.image, &clean.image, "failback changed the image");
        prop_assert_eq!(run.hw_partitions, 2, "both accelerators must finish in hardware");
    }
}
